#include "analysis/ratios.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace cdbp::ratios {

namespace {
constexpr double kEps = 1e-12;
}

double onlineLowerBound() { return (1.0 + std::sqrt(5.0)) / 2.0; }

double adversaryOptimalX() { return (1.0 + std::sqrt(5.0)) / 2.0; }

double adversaryGuarantee(double x) {
  if (!(x > 1)) throw std::invalid_argument("adversaryGuarantee: need x > 1");
  return std::min((x + 1.0) / x, (2.0 * x + 1.0) / (x + 1.0));
}

double firstFitUpperBound(double mu) { return mu + 4.0; }

double anyFitLowerBound(double mu) { return mu + 1.0; }

double nextFitUpperBound(double mu) { return 2.0 * mu + 1.0; }

double hybridFirstFitUpperBound(double mu) { return mu + 5.0; }

double cdtRatio(double rho, double minDuration, double mu) {
  if (!(rho > 0) || !(minDuration > 0) || !(mu >= 1)) {
    throw std::invalid_argument("cdtRatio: need rho, Delta > 0 and mu >= 1");
  }
  return rho / minDuration + mu * minDuration / rho + 3.0;
}

double cdtBestRatio(double mu) {
  if (!(mu >= 1)) throw std::invalid_argument("cdtBestRatio: need mu >= 1");
  return 2.0 * std::sqrt(mu) + 3.0;
}

double cdRatio(double alpha, double mu) {
  if (!(alpha > 1) || !(mu >= 1)) {
    throw std::invalid_argument("cdRatio: need alpha > 1 and mu >= 1");
  }
  double categories = std::ceil(std::log(mu) / std::log(alpha) - kEps);
  categories = std::max(categories, 0.0);
  return alpha + categories + 4.0;
}

double cdRatioForCategories(double mu, std::size_t n) {
  if (!(mu >= 1) || n == 0) {
    throw std::invalid_argument("cdRatioForCategories: need mu >= 1 and n >= 1");
  }
  return std::pow(mu, 1.0 / static_cast<double>(n)) + static_cast<double>(n) + 3.0;
}

std::size_t optimalDurationCategories(double mu) {
  if (!(mu >= 1)) {
    throw std::invalid_argument("optimalDurationCategories: need mu >= 1");
  }
  // mu^(1/n) decreases toward 1 while n grows linearly, so the objective is
  // unimodal-ish and the optimum is O(log mu); scanning a generous window
  // is exact and cheap.
  std::size_t bestN = 1;
  double bestValue = std::numeric_limits<double>::infinity();
  std::size_t limit = static_cast<std::size_t>(std::log2(std::max(mu, 2.0))) + 8;
  for (std::size_t n = 1; n <= limit; ++n) {
    double value = cdRatioForCategories(mu, n);
    if (value < bestValue - kEps) {
      bestValue = value;
      bestN = n;
    }
  }
  return bestN;
}

double cdBestRatio(double mu) {
  return cdRatioForCategories(mu, optimalDurationCategories(mu));
}

double bucketFirstFitBound(double alpha, double mu) {
  if (!(alpha > 1) || !(mu > 1)) {
    throw std::invalid_argument("bucketFirstFitBound: need alpha > 1, mu > 1");
  }
  return (2.0 * alpha + 2.0) * std::ceil(std::log(mu) / std::log(alpha) - kEps);
}

double classificationCrossoverMu(double lo, double hi) {
  // cdtBestRatio - cdBestRatio is negative for small mu (CDT wins) and
  // positive for large mu (CD wins); bisect the sign change. cdBestRatio is
  // piecewise smooth, so bisection on the difference is robust.
  auto diff = [](double mu) { return cdtBestRatio(mu) - cdBestRatio(mu); };
  if (diff(lo) > 0 || diff(hi) < 0) {
    throw std::invalid_argument(
        "classificationCrossoverMu: no sign change in [lo, hi]");
  }
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    (diff(mid) <= 0 ? lo : hi) = mid;
  }
  return 0.5 * (lo + hi);
}

double randomizedAdversaryValue(double x, double p, double tau) {
  if (!(x > 1) || p < 0 || p > 1 || tau < 0) {
    throw std::invalid_argument("randomizedAdversaryValue: invalid parameters");
  }
  // Case A (adversary stops after the first two items): co-location costs
  // x, separation costs x + 1; the optimum is x.
  double caseA = (p * x + (1 - p) * (x + 1)) / x;
  // Case B (two 1/2+eps items follow at tau): a co-located pair blocks
  // both late items (cost 2x + 1); a separated pair absorbs them at the
  // optimum x + 1 + 2 tau.
  double optB = x + 1 + 2 * tau;
  double caseB = (p * (2 * x + 1) + (1 - p) * optB) / optB;
  return std::max(caseA, caseB);
}

double randomizedAdversaryBest(double x, double tau) {
  // caseA decreases in p, caseB increases: the max is minimized where they
  // cross; ternary search is robust to the kink.
  double lo = 0, hi = 1;
  for (int iter = 0; iter < 200; ++iter) {
    double m1 = lo + (hi - lo) / 3;
    double m2 = hi - (hi - lo) / 3;
    if (randomizedAdversaryValue(x, m1, tau) <
        randomizedAdversaryValue(x, m2, tau)) {
      hi = m2;
    } else {
      lo = m1;
    }
  }
  return randomizedAdversaryValue(x, 0.5 * (lo + hi), tau);
}

}  // namespace cdbp::ratios
