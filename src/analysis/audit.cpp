#include "analysis/audit.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/epsilon.hpp"
#include "core/lower_bounds.hpp"

namespace cdbp {

namespace {
constexpr double kAuditSlack = 1e-6;

AuditCheck makeCheck(std::string name, double lhs, double rhs) {
  AuditCheck check;
  check.name = std::move(name);
  check.lhs = lhs;
  check.rhs = rhs;
  check.holds = lhs <= rhs + kAuditSlack;
  return check;
}
}  // namespace

std::string AuditCheck::describe() const {
  std::ostringstream os;
  os << (holds ? "[ok]  " : "[FAIL] ") << name << ": " << lhs
     << (holds ? " <= " : " > ") << rhs;
  return os.str();
}

bool AuditReport::allHold() const {
  for (const AuditCheck& check : checks) {
    if (!check.holds) return false;
  }
  return true;
}

std::string AuditReport::describe() const {
  std::ostringstream os;
  for (const AuditCheck& check : checks) os << check.describe() << '\n';
  return os.str();
}

AuditReport auditFeasibility(const Instance& instance, const Packing& packing) {
  AuditReport report;
  auto error = packing.validate();
  AuditCheck feasible;
  feasible.name = error.has_value() ? "packing validates (" + *error + ")"
                                    : "packing validates";
  feasible.holds = !error.has_value();
  report.checks.push_back(feasible);

  double usage = packing.totalUsage();
  double lb3 = lowerBounds(instance).ceilIntegral;
  report.checks.push_back(makeCheck("LB3 <= usage", lb3, usage));
  double trivial = 0;
  for (const Item& r : instance.items()) trivial += r.duration();
  report.checks.push_back(makeCheck("usage <= sum of durations", usage, trivial));
  return report;
}

AuditReport auditDdff(const Instance& instance, const Packing& packing) {
  AuditReport report = auditFeasibility(instance, packing);
  double usage = packing.totalUsage();
  report.checks.push_back(makeCheck("Thm 1: usage <= 4 d(R) + span(R)", usage,
                                    4.0 * instance.demand() + instance.span()));
  return report;
}

AuditReport auditDualColoring(const Instance& instance,
                              const DualColoringResult& result) {
  AuditReport report = auditFeasibility(instance, result.packing);

  // Open bins at every elementary segment probe.
  double worstExcess = 0;
  for (Time t : instance.eventTimes()) {
    Time probe = t + 1e-7;
    double s = instance.totalSizeAt(probe);
    if (s <= kSizeEps) continue;
    double nearest = std::round(s);
    if (std::fabs(s - nearest) <= kSizeEps) s = nearest;
    double cap = 4.0 * std::ceil(s - 1e-12);
    double open = static_cast<double>(result.packing.openBinsAt(probe));
    worstExcess = std::max(worstExcess, open - cap);
  }
  report.checks.push_back(
      makeCheck("Thm 2: open bins <= 4 ceil(S(t)) everywhere", worstExcess, 0));
  report.checks.push_back(makeCheck("Thm 2: usage <= 4 LB3",
                                    result.packing.totalUsage(),
                                    4.0 * lowerBounds(instance).ceilIntegral));

  if (result.chart) {
    const DemandChart& chart = *result.chart;
    report.checks.push_back(
        makeCheck("Lemma 2: colored area == chart area",
                  std::fabs(chart.coloredArea() - chart.chartArea()),
                  1e-6 * std::max(1.0, chart.chartArea())));
    AuditCheck inChart;
    inChart.name = "Lemma 3: placements inside the chart";
    inChart.holds = chart.allPlacementsInsideChart();
    report.checks.push_back(inChart);
    report.checks.push_back(
        makeCheck("Lemma 4: all small items placed",
                  static_cast<double>(chart.items().size()),
                  static_cast<double>(chart.placements().size())));
    report.checks.push_back(makeCheck(
        "Lemma 5: max placement overlap <= 2",
        static_cast<double>(chart.maxPlacementOverlap()), 2));
  }
  return report;
}

AuditReport auditClassifyByDeparture(const Instance& instance,
                                     const Packing& packing, Time rho) {
  AuditReport report = auditFeasibility(instance, packing);
  double delta = instance.minDuration();
  double mu = instance.durationRatio();
  double bound = (rho / delta + 2.0) * instance.demand() +
                 (mu * delta + rho) / rho * instance.span();
  report.checks.push_back(makeCheck(
      "Thm 4 (ineq. 9): usage <= (rho/D+2) d + (mu D+rho)/rho span",
      packing.totalUsage(), bound));
  return report;
}

AuditReport auditClassifyByDuration(const Instance& instance,
                                    const Packing& packing, double alpha) {
  AuditReport report = auditFeasibility(instance, packing);
  double mu = instance.durationRatio();
  double categories =
      std::max(1.0, std::ceil(std::log(mu) / std::log(alpha) - 1e-12) + 1.0);
  double bound =
      (alpha + 3.0) * instance.demand() + categories * instance.span();
  report.checks.push_back(makeCheck(
      "Thm 5 (ineq. 10): usage <= (a+3) d + (ceil(log_a mu)+1) span",
      packing.totalUsage(), bound));
  return report;
}

}  // namespace cdbp
