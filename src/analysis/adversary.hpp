// The Theorem 3 adaptive adversary, executable against any online policy.
//
// The adversary presents two items of size 1/2 - eps at time 0 (durations x
// and 1). If the algorithm co-locates them, the adversary continues with
// two items of size 1/2 + eps (case B); otherwise it stops (case A). The
// worst of the two case ratios is at least min{(x+1)/x, (2x+1)/(x+1)},
// which at x = (1+sqrt(5))/2 equals the golden ratio.
#pragma once

#include "online/policy.hpp"

namespace cdbp {

struct AdversaryOutcome {
  bool coLocated = false;   ///< whether the policy packed items 1,2 together
  double algorithmUsage = 0;  ///< usage on the case the adversary selected
  double optimalUsage = 0;    ///< optimum on that case
  double ratio = 0;           ///< algorithmUsage / optimalUsage
  double guarantee = 0;       ///< min{(x+1)/x, (2x+1)/(x+1)} for this x
};

/// Plays the adversary against `policy`. `x` is the duration of the long
/// items, `eps` the size offset, `tau` the case-B arrival instant.
AdversaryOutcome runTheorem3Adversary(OnlinePolicy& policy, double x,
                                      double eps = 1e-3, double tau = 1e-3);

}  // namespace cdbp
