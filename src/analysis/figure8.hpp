// Figure 8 (paper §5.4): best-achievable competitive ratios of the two
// classification strategies vs the original First Fit, as functions of mu.
#pragma once

#include <vector>

namespace cdbp {

struct Figure8Row {
  double mu = 0;
  double firstFit = 0;          ///< mu + 4 (non-clairvoyant First Fit)
  double cdtBest = 0;           ///< 2*sqrt(mu) + 3 (Theorem 4, durations known)
  double cdBest = 0;            ///< min_n mu^(1/n) + n + 3 (Theorem 5)
  std::size_t cdBestN = 0;      ///< the optimal category count attaining cdBest
  double lowerBound = 0;        ///< (1+sqrt(5))/2 (Theorem 3)
};

/// Evaluates the Figure 8 curves on the given mu grid.
std::vector<Figure8Row> figure8Series(const std::vector<double>& muGrid);

/// The paper's x-axis: mu from 1 to `muMax` on a uniform grid of `points`.
std::vector<double> figure8MuGrid(double muMax = 100.0, std::size_t points = 100);

}  // namespace cdbp
