#include "analysis/figure8.hpp"

#include "analysis/ratios.hpp"

namespace cdbp {

std::vector<Figure8Row> figure8Series(const std::vector<double>& muGrid) {
  std::vector<Figure8Row> rows;
  rows.reserve(muGrid.size());
  for (double mu : muGrid) {
    Figure8Row row;
    row.mu = mu;
    row.firstFit = ratios::firstFitUpperBound(mu);
    row.cdtBest = ratios::cdtBestRatio(mu);
    row.cdBestN = ratios::optimalDurationCategories(mu);
    row.cdBest = ratios::cdRatioForCategories(mu, row.cdBestN);
    row.lowerBound = ratios::onlineLowerBound();
    rows.push_back(row);
  }
  return rows;
}

std::vector<double> figure8MuGrid(double muMax, std::size_t points) {
  std::vector<double> grid;
  grid.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    double mu = 1.0 + (muMax - 1.0) * static_cast<double>(i) /
                          static_cast<double>(points - 1);
    grid.push_back(mu);
  }
  return grid;
}

}  // namespace cdbp
