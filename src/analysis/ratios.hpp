// Closed-form competitive/approximation ratio formulas from the paper and
// the prior work it compares against (§5, Theorems 3-5, and §5.4).
#pragma once

#include <cstddef>

namespace cdbp::ratios {

/// Theorem 3: lower bound (1+sqrt(5))/2 on the competitive ratio of every
/// deterministic online algorithm for Clairvoyant MinUsageTime DBP.
double onlineLowerBound();

/// The adversary's duration parameter x that attains the Theorem 3 bound
/// (x = golden ratio; min{(x+1)/x, (2x+1)/(x+1)} is maximized there).
double adversaryOptimalX();

/// min{(x+1)/x, (2x+1)/(x+1)} — the guaranteed ratio the Theorem 3
/// adversary extracts from any deterministic algorithm at parameter x.
double adversaryGuarantee(double x);

/// Tang et al. 2016: First Fit upper bound mu + 4 (non-clairvoyant; the
/// curve labeled "original First Fit" in Figure 8).
double firstFitUpperBound(double mu);

/// Li et al.: any Any Fit algorithm is at least (mu + 1)-competitive.
double anyFitLowerBound(double mu);

/// Kamali & Lopez-Ortiz: Next Fit upper bound 2*mu + 1.
double nextFitUpperBound(double mu);

/// Li et al.: Hybrid First Fit upper bound mu + 5 (mu known).
double hybridFirstFitUpperBound(double mu);

/// Theorem 4 (general form): classify-by-departure-time First Fit ratio
/// rho/Delta + mu*Delta/rho + 3.
double cdtRatio(double rho, double minDuration, double mu);

/// Theorem 4 (durations known, rho = sqrt(mu)*Delta): 2*sqrt(mu) + 3.
double cdtBestRatio(double mu);

/// Theorem 5 (general form): classify-by-duration First Fit ratio
/// alpha + ceil(log_alpha(mu)) + 4 for alpha > 1.
double cdRatio(double alpha, double mu);

/// Theorem 5 (durations known): mu^(1/n) + n + 3 for n duration categories.
double cdRatioForCategories(double mu, std::size_t n);

/// argmin_n>=1 of cdRatioForCategories(mu, n).
std::size_t optimalDurationCategories(double mu);

/// Theorem 5 (durations known): min_n mu^(1/n) + n + 3.
double cdBestRatio(double mu);

/// Shalom et al.: BucketFirstFit bound (2*alpha+2)*ceil(log_alpha(mu)) for
/// online interval scheduling — the result §5.3 improves on.
double bucketFirstFitBound(double alpha, double mu);

/// The mu value where the two classification strategies' best-achievable
/// curves cross (the paper reports the crossover at mu = 4: CDT wins below,
/// CD wins above). Found by bisection on cdtBestRatio - cdBestRatio.
double classificationCrossoverMu(double lo = 1.0, double hi = 64.0);

/// The Theorem 3 game played against a *randomized* first decision: the
/// algorithm co-locates the first two items with probability p. Returns the
/// oblivious adversary's value max{E[ratio | case A], E[ratio | case B]}.
/// Theorem 3's (1+sqrt(5))/2 bound applies only to deterministic
/// algorithms; minimizing this over p dips below it.
double randomizedAdversaryValue(double x, double p, double tau = 0);

/// min over p in [0,1] of randomizedAdversaryValue(x, p, tau), by ternary
/// search (the value is the max of two linear functions of p).
double randomizedAdversaryBest(double x, double tau = 0);

}  // namespace cdbp::ratios
