// Empirical performance evaluation: run policies/offline algorithms on
// instances and report usage normalized by the Proposition 3 lower bound.
//
// usage / LB3 overestimates the true ratio to OPT_total (LB3 <= OPT_total),
// so these figures are conservative: an algorithm whose empirical ratio is
// close to 1 is provably near-optimal on that workload.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/packing.hpp"
#include "online/policy.hpp"
#include "util/stats.hpp"

namespace cdbp {

struct EmpiricalResult {
  std::string algorithm;
  double usage = 0;
  double lb3 = 0;         ///< Proposition 3 lower bound
  double ratio = 0;       ///< usage / lb3
  std::size_t binsOpened = 0;
  std::size_t maxOpenBins = 0;
};

/// Runs one online policy over one instance.
EmpiricalResult evaluatePolicy(const Instance& instance, OnlinePolicy& policy);

/// Evaluates an offline algorithm (given as a packing function) the same
/// way, so offline and online results are directly comparable.
EmpiricalResult evaluateOffline(
    const Instance& instance, const std::string& name,
    const std::function<Packing(const Instance&)>& algorithm);

/// Aggregated ratio of one algorithm across seeds.
struct RatioSummary {
  std::string algorithm;
  SummaryStats ratios;
};

/// Runs `makePolicy()` over `seeds.size()` instances drawn by
/// `makeInstance(seed)`, in parallel, and aggregates the ratios. Each task
/// builds its own policy instance, so policies need not be thread-safe.
RatioSummary sweepPolicy(
    const std::vector<std::uint64_t>& seeds,
    const std::function<Instance(std::uint64_t)>& makeInstance,
    const std::function<PolicyPtr()>& makePolicy);

}  // namespace cdbp
