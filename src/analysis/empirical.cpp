#include "analysis/empirical.hpp"

#include <mutex>

#include "core/lower_bounds.hpp"
#include "sim/simulator.hpp"
#include "util/thread_pool.hpp"

namespace cdbp {

EmpiricalResult evaluatePolicy(const Instance& instance, OnlinePolicy& policy) {
  SimResult sim = simulateOnline(instance, policy);
  EmpiricalResult result;
  result.algorithm = policy.name();
  result.usage = sim.totalUsage;
  result.lb3 = lowerBounds(instance).ceilIntegral;
  result.ratio = result.lb3 > 0 ? result.usage / result.lb3 : 1.0;
  result.binsOpened = sim.binsOpened;
  result.maxOpenBins = sim.maxOpenBins;
  return result;
}

EmpiricalResult evaluateOffline(
    const Instance& instance, const std::string& name,
    const std::function<Packing(const Instance&)>& algorithm) {
  Packing packing = algorithm(instance);
  EmpiricalResult result;
  result.algorithm = name;
  result.usage = packing.totalUsage();
  result.lb3 = lowerBounds(instance).ceilIntegral;
  result.ratio = result.lb3 > 0 ? result.usage / result.lb3 : 1.0;
  result.binsOpened = packing.numBins();
  result.maxOpenBins = packing.maxConcurrentBins();
  return result;
}

RatioSummary sweepPolicy(
    const std::vector<std::uint64_t>& seeds,
    const std::function<Instance(std::uint64_t)>& makeInstance,
    const std::function<PolicyPtr()>& makePolicy) {
  RatioSummary summary;
  std::vector<double> ratios(seeds.size(), 0.0);
  {
    ThreadPool pool;
    parallelFor(pool, seeds.size(), [&](std::size_t i) {
      Instance instance = makeInstance(seeds[i]);
      PolicyPtr policy = makePolicy();
      ratios[i] = evaluatePolicy(instance, *policy).ratio;
    });
  }
  PolicyPtr probe = makePolicy();
  summary.algorithm = probe->name();
  for (double r : ratios) summary.ratios.add(r);
  return summary;
}

}  // namespace cdbp
