#include "analysis/empirical.hpp"

#include "core/lower_bounds.hpp"
#include "sim/run_many.hpp"
#include "sim/simulator.hpp"

namespace cdbp {

EmpiricalResult evaluatePolicy(const Instance& instance, OnlinePolicy& policy) {
  SimResult sim = simulateOnline(instance, policy);
  EmpiricalResult result;
  result.algorithm = policy.name();
  result.usage = sim.totalUsage;
  result.lb3 = lowerBounds(instance).ceilIntegral;
  result.ratio = result.lb3 > 0 ? result.usage / result.lb3 : 1.0;
  result.binsOpened = sim.binsOpened;
  result.maxOpenBins = sim.maxOpenBins;
  return result;
}

EmpiricalResult evaluateOffline(
    const Instance& instance, const std::string& name,
    const std::function<Packing(const Instance&)>& algorithm) {
  Packing packing = algorithm(instance);
  EmpiricalResult result;
  result.algorithm = name;
  result.usage = packing.totalUsage();
  result.lb3 = lowerBounds(instance).ceilIntegral;
  result.ratio = result.lb3 > 0 ? result.usage / result.lb3 : 1.0;
  result.binsOpened = packing.numBins();
  result.maxOpenBins = packing.maxConcurrentBins();
  return result;
}

RatioSummary sweepPolicy(
    const std::vector<std::uint64_t>& seeds,
    const std::function<Instance(std::uint64_t)>& makeInstance,
    const std::function<PolicyPtr()>& makePolicy) {
  // A single-policy column of the runMany grid; the factory escape hatch
  // carries the caller's preconfigured constructor. makePolicy runs once
  // per cell, concurrently — the same contract the old parallelFor had.
  RunManySpec spec;
  spec.instances.push_back(makeInstance);
  spec.policies.emplace_back(
      "custom", [&makePolicy](const PolicyContext&) { return makePolicy(); });
  spec.seeds = seeds;

  RatioSummary summary;
  for (const RunResult& run : runMany(spec)) {
    summary.algorithm = run.policyName;
    summary.ratios.add(run.ratio);
  }
  if (seeds.empty()) summary.algorithm = makePolicy()->name();
  return summary;
}

}  // namespace cdbp
