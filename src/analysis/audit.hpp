// Runtime auditing of the paper's proven guarantees.
//
// Each audit re-derives the inequality a theorem's proof actually
// establishes and evaluates it on a concrete (instance, packing) pair. The
// audits are deliberately redundant with the algorithms — an independent
// implementation of the accounting — so they catch bugs in either side.
// The test suite runs them across randomized workloads; downstream users
// can run them on their own traces.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "core/packing.hpp"
#include "offline/dual_coloring.hpp"

namespace cdbp {

struct AuditCheck {
  std::string name;
  double lhs = 0;  ///< measured quantity
  double rhs = 0;  ///< proven bound
  bool holds = false;

  std::string describe() const;
};

struct AuditReport {
  std::vector<AuditCheck> checks;

  bool allHold() const;
  /// Multi-line human-readable summary.
  std::string describe() const;
};

/// Checks common to every algorithm: the packing validates, and its usage
/// is sandwiched between the Proposition 3 bound and the sum of durations.
AuditReport auditFeasibility(const Instance& instance, const Packing& packing);

/// Theorem 1 accounting: usage < 4 d(R) + span(R) (and hence <= 5 OPT).
AuditReport auditDdff(const Instance& instance, const Packing& packing);

/// Theorem 2 accounting: open bins at every event probe <= 4 ceil(S(t)),
/// usage <= 4 LB3, and Lemmas 2-5 on the Phase 1 chart.
AuditReport auditDualColoring(const Instance& instance,
                              const DualColoringResult& result);

/// Theorem 4 accounting (inequality (9)):
/// usage < (rho/Delta + 2) d(R) + (mu Delta + rho)/rho * span(R).
AuditReport auditClassifyByDeparture(const Instance& instance,
                                     const Packing& packing, Time rho);

/// Theorem 5 accounting (inequality (10) summed):
/// usage <= (alpha + 3) d(R) + (ceil(log_alpha mu) + 1) span(R).
AuditReport auditClassifyByDuration(const Instance& instance,
                                    const Packing& packing, double alpha);

}  // namespace cdbp
