#include "analysis/adversary.hpp"

#include "analysis/ratios.hpp"
#include "sim/simulator.hpp"
#include "workload/adversarial.hpp"

namespace cdbp {

AdversaryOutcome runTheorem3Adversary(OnlinePolicy& policy, double x, double eps,
                                      double tau) {
  AdversaryOutcome outcome;
  outcome.guarantee = ratios::adversaryGuarantee(x);

  Instance caseA = theorem3CaseA(x, eps);
  SimResult first = simulateOnline(caseA, policy);
  outcome.coLocated =
      first.packing.binOf(0) == first.packing.binOf(1);

  if (!outcome.coLocated) {
    // The adversary stops: case A is the final input.
    outcome.algorithmUsage = first.totalUsage;
    outcome.optimalUsage = x;  // both items in one bin
  } else {
    // The adversary springs case B. A deterministic policy repeats its
    // case A decisions on the shared prefix, so re-running on case B is
    // the adaptive game.
    Instance caseB = theorem3CaseB(x, eps, tau);
    SimResult second = simulateOnline(caseB, policy);
    outcome.algorithmUsage = second.totalUsage;
    outcome.optimalUsage = x + 1 + 2 * tau;  // pair 1&3 and 2&4
  }
  outcome.ratio = outcome.algorithmUsage / outcome.optimalUsage;
  return outcome;
}

}  // namespace cdbp
