// Online scheduling of flexible jobs: a job becomes known at its release
// time (with size, processing length and deadline) and the scheduler may
// DEFER its start, but no later than deadline - length. Bins follow the
// online server model (close forever when empty). This is the online side
// of the paper's §6 flexible-jobs extension.
//
// The simulator is event-driven: at every event (job release, departure,
// forced-start deadline) the policy reconsiders all pending jobs; a job
// still pending at its latest start time is force-placed by First Fit.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/packing.hpp"
#include "flexible/flexible_job.hpp"
#include "sim/placement_view.hpp"

namespace cdbp {

/// A policy decision for one pending job at one instant.
struct FlexDecision {
  bool startNow = false;
  /// Target bin when starting (kNewBin opens a fresh bin). Ignored when
  /// deferring.
  BinId bin = kNewBin;

  static FlexDecision defer() { return {false, kNewBin}; }
  static FlexDecision start(BinId bin) { return {true, bin}; }
  static FlexDecision startFresh() { return {true, kNewBin}; }
};

class FlexOnlinePolicy {
 public:
  virtual ~FlexOnlinePolicy() = default;
  virtual std::string name() const = 0;

  /// Called for each pending job (release order) at every event time.
  /// `now` >= job.release; the job can still be deferred iff
  /// now < job.latestStart(). Placement queries go through the view, so
  /// they are answered by whichever engine the simulation selected.
  virtual FlexDecision consider(const PlacementView& view,
                                const FlexibleJob& job, Time now) = 0;

  /// Notification after every successful start (policies tracking per-bin
  /// state override this; default no-op).
  virtual void onPlaced(BinId /*bin*/, Time /*departure*/) {}

  virtual void reset() {}
};

/// Baseline: start every job immediately at release, First Fit bin choice
/// (ignores the scheduling flexibility entirely).
class FlexStartAsapFF : public FlexOnlinePolicy {
 public:
  std::string name() const override { return "Flex-ASAP-FF"; }
  FlexDecision consider(const PlacementView& view, const FlexibleJob& job,
                        Time now) override;
};

/// Defer-to-align: start a job early only when some open bin offers a
/// zero-marginal-usage slot (it fits now and the bin's latest known
/// departure already covers now + length); otherwise wait. Jobs that never
/// find such a slot start at their forced deadline.
class FlexDeferAlign : public FlexOnlinePolicy {
 public:
  std::string name() const override { return "Flex-DeferAlign"; }
  FlexDecision consider(const PlacementView& view, const FlexibleJob& job,
                        Time now) override;
  void reset() override { binEnds_.clear(); }
  void onPlaced(BinId bin, Time departure) override;

 private:
  std::vector<Time> binEnds_;  // indexed by BinId
};

struct FlexOnlineResult {
  std::vector<Time> starts;
  std::shared_ptr<const Instance> fixedInstance;
  Packing packing;
  Time totalUsage = 0;
  std::size_t binsOpened = 0;
  std::size_t forcedStarts = 0;  ///< jobs started exactly at their latest start time

  std::optional<std::string> validate(const FlexibleInstance& instance) const;
};

struct FlexSimOptions {
  /// Placement engine selection; both engines produce bit-identical
  /// schedules and packings (the flexible differential suite pins this).
  PlacementEngine engine = PlacementEngine::kIndexed;
};

/// Runs the event-driven online simulation. Throws std::logic_error when a
/// policy starts a job into an infeasible bin.
FlexOnlineResult simulateFlexibleOnline(const FlexibleInstance& instance,
                                        FlexOnlinePolicy& policy,
                                        const FlexSimOptions& options = {});

}  // namespace cdbp
