#include "flexible/online_flexible.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "core/epsilon.hpp"

namespace cdbp {

FlexDecision FlexStartAsapFF::consider(const PlacementView& view,
                                       const FlexibleJob& job, Time) {
  BinId id = view.firstFit(job.size);
  return id == kNewBin ? FlexDecision::startFresh() : FlexDecision::start(id);
}

void FlexDeferAlign::onPlaced(BinId bin, Time departure) {
  if (static_cast<std::size_t>(bin) >= binEnds_.size()) {
    binEnds_.resize(static_cast<std::size_t>(bin) + 1, 0);
  }
  binEnds_[static_cast<std::size_t>(bin)] =
      std::max(binEnds_[static_cast<std::size_t>(bin)], departure);
}

FlexDecision FlexDeferAlign::consider(const PlacementView& view,
                                      const FlexibleJob& job, Time now) {
  bool forced = now >= job.latestStart() - kTimeEps;
  // Look for a zero-marginal slot: fits now and the bin is already
  // committed past now + length. The slot criterion depends on policy
  // state (binEnds_) the substrate cannot rank by, so this stays a
  // bespoke scan over the view's open-list surface.
  // cdbp-lint: allow(raw-bin-loop): selection keys on policy-private binEnds_, not a substrate query
  for (BinId id : view.openBins()) {
    if (!view.fits(id, job.size)) continue;
    Time binEnd = static_cast<std::size_t>(id) < binEnds_.size()
                      ? binEnds_[static_cast<std::size_t>(id)]
                      : 0;
    if (binEnd >= now + job.length - kTimeEps) return FlexDecision::start(id);
  }
  if (!forced) return FlexDecision::defer();
  // Forced: plain First Fit, fresh bin as a last resort.
  BinId id = view.firstFit(job.size);
  return id == kNewBin ? FlexDecision::startFresh() : FlexDecision::start(id);
}

std::optional<std::string> FlexOnlineResult::validate(
    const FlexibleInstance& instance) const {
  if (starts.size() != instance.size()) return "starts size mismatch";
  for (const FlexibleJob& j : instance.jobs()) {
    Time s = starts[j.id];
    if (s < j.release - kTimeEps || s > j.latestStart() + kTimeEps) {
      return "job " + std::to_string(j.id) + " started at " +
             std::to_string(s) + " outside its window";
    }
  }
  return packing.validate();
}

FlexOnlineResult simulateFlexibleOnline(const FlexibleInstance& instance,
                                        FlexOnlinePolicy& policy,
                                        const FlexSimOptions& options) {
  if (options.engine == PlacementEngine::kSharded) {
    throw std::invalid_argument(
        "simulateFlexibleOnline: the sharded engine is scalar-only; "
        "use kIndexed or kLinearScan");
  }
  policy.reset();
  BinManager bins(options.engine == PlacementEngine::kIndexed);
  std::vector<Time> starts(instance.size(),
                           std::numeric_limits<Time>::quiet_NaN());
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  std::size_t forcedStarts = 0;

  // Jobs ordered by release; `released` holds pending (released, not yet
  // started) job ids in release order.
  std::vector<ItemId> byRelease;
  for (const FlexibleJob& j : instance.jobs()) byRelease.push_back(j.id);
  std::stable_sort(byRelease.begin(), byRelease.end(),
                   [&](ItemId a, ItemId b) {
                     if (instance[a].release != instance[b].release) {
                       return instance[a].release < instance[b].release;
                     }
                     return a < b;
                   });
  std::size_t nextRelease = 0;
  std::vector<ItemId> pending;

  using Departure = std::pair<Time, ItemId>;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>>
      departures;

  auto placeJob = [&](const FlexibleJob& job, BinId target, Time now,
                      bool forced) {
    if (target == kNewBin) {
      target = bins.openBin(0, now);
      // cdbp-analyze: allow(engine-bypass): simulator-side validation re-check of the policy's answer, not a policy query
    } else if (!bins.wouldFit(target, job.size)) {
      // Validation re-check: wouldFit is the uncounted twin of fits(), so
      // sim.fit_checks measures policy-issued queries only.
      throw std::logic_error(policy.name() + " started job " +
                             std::to_string(job.id) +
                             " into an infeasible bin");
    }
    bins.addItem(target, job.size);
    starts[job.id] = now;
    binOf[job.id] = target;
    departures.emplace(now + job.length, job.id);
    if (forced) ++forcedStarts;
    policy.onPlaced(target, now + job.length);
  };

  while (nextRelease < byRelease.size() || !pending.empty() ||
         !departures.empty()) {
    // Next event time: earliest of release / departure / forced start.
    Time t = kTimeInfinity;
    if (nextRelease < byRelease.size()) {
      t = std::min(t, instance[byRelease[nextRelease]].release);
    }
    if (!departures.empty()) t = std::min(t, departures.top().first);
    for (ItemId id : pending) t = std::min(t, instance[id].latestStart());

    // 1. Departures free capacity first (half-open intervals).
    while (!departures.empty() && departures.top().first <= t + kTimeEps) {
      ItemId gone = departures.top().second;
      departures.pop();
      bins.removeItem(binOf[gone], instance[gone].size);
    }
    // 2. Releases at t join the pending set.
    while (nextRelease < byRelease.size() &&
           instance[byRelease[nextRelease]].release <= t + kTimeEps) {
      pending.push_back(byRelease[nextRelease]);
      ++nextRelease;
    }
    // 3. Offer pending jobs until a full pass places nothing. Forced jobs
    // (latest start reached) are placed unconditionally.
    bool placedAny = true;
    while (placedAny) {
      placedAny = false;
      for (std::size_t i = 0; i < pending.size();) {
        const FlexibleJob& job = instance[pending[i]];
        bool forced = t >= job.latestStart() - kTimeEps;
        PlacementView view(bins, t);
        FlexDecision decision = policy.consider(view, job, t);
        if (decision.startNow || forced) {
          BinId target = decision.startNow ? decision.bin : kNewBin;
          placeJob(job, target, t, forced);
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          placedAny = true;
        } else {
          ++i;
        }
      }
    }
  }

  FlexOnlineResult result;
  result.starts = starts;
  result.fixedInstance = std::make_shared<Instance>(instance.materialize(starts));
  result.packing = Packing(*result.fixedInstance, std::move(binOf));
  result.totalUsage = result.packing.totalUsage();
  result.binsOpened = bins.binsOpened();
  result.forcedStarts = forcedStarts;
  return result;
}

}  // namespace cdbp
