// Flexible-job workload generation with a slack knob.
#pragma once

#include <cstdint>

#include "flexible/flexible_job.hpp"

namespace cdbp {

struct FlexibleWorkloadSpec {
  std::size_t numJobs = 500;
  double arrivalRate = 4.0;   ///< Poisson release times
  Time minLength = 1.0;
  double mu = 8.0;            ///< lengths uniform in [minLength, mu*minLength]
  /// Window slack as a multiple of the job's own length: deadline =
  /// release + length * (1 + slackFactor * U[0,1]).
  double slackFactor = 1.0;
  Size minSize = 0.05;
  Size maxSize = 0.6;
};

FlexibleInstance generateFlexibleWorkload(const FlexibleWorkloadSpec& spec,
                                          std::uint64_t seed);

}  // namespace cdbp
