#include "flexible/flexible_job.hpp"

#include <cmath>
#include <stdexcept>

#include "core/epsilon.hpp"

namespace cdbp {

FlexibleInstance::FlexibleInstance(std::vector<FlexibleJob> jobs)
    : jobs_(std::move(jobs)) {
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    FlexibleJob& j = jobs_[i];
    if (!(j.size > 0) || lt(kBinCapacity, j.size) || !std::isfinite(j.size)) {
      throw InstanceError("flexible job " + std::to_string(i) +
                          ": size must be in (0, 1]");
    }
    if (!(j.length > 0) || !std::isfinite(j.length)) {
      throw InstanceError("flexible job " + std::to_string(i) +
                          ": length must be positive");
    }
    if (!std::isfinite(j.release) || !std::isfinite(j.deadline) ||
        j.slack() < -kTimeEps) {
      throw InstanceError("flexible job " + std::to_string(i) +
                          ": window [release, deadline) shorter than length");
    }
    j.id = static_cast<ItemId>(i);
  }
}

Instance FlexibleInstance::materialize(const std::vector<Time>& starts) const {
  if (starts.size() != jobs_.size()) {
    throw std::invalid_argument("materialize: starts size mismatch");
  }
  std::vector<Item> items;
  items.reserve(jobs_.size());
  for (const FlexibleJob& j : jobs_) {
    Time s = starts[j.id];
    items.emplace_back(j.id, j.size, s, s + j.length);
  }
  return Instance(std::move(items));
}

}  // namespace cdbp
