// Flexible jobs (paper §6 future work: "model flexible jobs that have
// release times and deadlines and do not have to be processed immediately
// upon arrival"; cf. Khandekar et al. [14]).
//
// A flexible job has a fixed processing length but a movable start: it may
// run on any window [s, s + length) with release <= s and
// s + length <= deadline. The scheduler chooses both the start time and
// the bin.
#pragma once

#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"

namespace cdbp {

struct FlexibleJob {
  ItemId id = 0;
  Size size = 0;
  Time release = 0;
  Time deadline = 0;
  Time length = 0;

  FlexibleJob() = default;
  FlexibleJob(ItemId id_, Size size_, Time release_, Time deadline_, Time length_)
      : id(id_), size(size_), release(release_), deadline(deadline_),
        length(length_) {}

  /// Scheduling freedom: how far the start may move past the release.
  Time slack() const { return deadline - release - length; }

  /// Latest feasible start time.
  Time latestStart() const { return deadline - length; }
};

class FlexibleInstance {
 public:
  FlexibleInstance() = default;

  /// Validates each job: size in (0,1], length > 0, slack >= 0 (the window
  /// must fit the job). Throws InstanceError otherwise.
  explicit FlexibleInstance(std::vector<FlexibleJob> jobs);

  const std::vector<FlexibleJob>& jobs() const { return jobs_; }
  std::size_t size() const { return jobs_.size(); }
  const FlexibleJob& operator[](ItemId id) const { return jobs_[id]; }

  /// The fixed-interval instance induced by a start-time vector.
  Instance materialize(const std::vector<Time>& starts) const;

 private:
  std::vector<FlexibleJob> jobs_;
};

class FlexibleInstanceBuilder {
 public:
  FlexibleInstanceBuilder& add(Size size, Time release, Time deadline,
                               Time length) {
    jobs_.emplace_back(static_cast<ItemId>(jobs_.size()), size, release, deadline,
                       length);
    return *this;
  }

  FlexibleInstance build() { return FlexibleInstance(std::move(jobs_)); }

 private:
  std::vector<FlexibleJob> jobs_;
};

}  // namespace cdbp
