// Schedulers for flexible jobs: choose a start time within each job's
// window and a bin, minimizing total bin usage time.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/packing.hpp"
#include "flexible/flexible_job.hpp"

namespace cdbp {

struct FlexibleSchedule {
  std::vector<Time> starts;  ///< chosen start per job

  /// The fixed-interval instance induced by `starts`. Held by shared_ptr
  /// so its address is stable across moves of the schedule — `packing`
  /// references it.
  std::shared_ptr<const Instance> fixedInstance;

  Packing packing;  ///< the induced fixed-interval packing
  Time totalUsage = 0;

  /// Error description if the schedule violates a job window or a bin
  /// capacity; nullopt when valid.
  std::optional<std::string> validate(const FlexibleInstance& instance) const;
};

/// Baseline: start every job at its release time (ignore the slack), then
/// pack with Duration Descending First Fit.
FlexibleSchedule scheduleAsap(const FlexibleInstance& instance);

/// Alignment-greedy scheduler: jobs in descending length order; each job
/// evaluates candidate start times per open bin — its release, its latest
/// start, and alignment points derived from the bin's current busy
/// periods — and takes the (bin, start) pair minimizing the usage-time
/// increase. Opens a new bin (start = release) when nothing fits. Exploits
/// the slack to nestle jobs into already-paid-for busy periods.
FlexibleSchedule scheduleAligned(const FlexibleInstance& instance);

}  // namespace cdbp
