#include "flexible/flexible_scheduler.hpp"

#include <algorithm>
#include <memory>
#include <set>

#include "core/bin_timeline.hpp"
#include "core/epsilon.hpp"
#include "offline/ddff.hpp"

namespace cdbp {

std::optional<std::string> FlexibleSchedule::validate(
    const FlexibleInstance& instance) const {
  if (starts.size() != instance.size()) return "starts size mismatch";
  for (const FlexibleJob& j : instance.jobs()) {
    Time s = starts[j.id];
    if (s < j.release - kTimeEps || s > j.latestStart() + kTimeEps) {
      return "job " + std::to_string(j.id) + " start " + std::to_string(s) +
             " outside window [" + std::to_string(j.release) + ", " +
             std::to_string(j.latestStart()) + "]";
    }
  }
  return packing.validate();
}

FlexibleSchedule scheduleAsap(const FlexibleInstance& instance) {
  FlexibleSchedule schedule;
  schedule.starts.resize(instance.size());
  for (const FlexibleJob& j : instance.jobs()) schedule.starts[j.id] = j.release;
  schedule.fixedInstance =
      std::make_shared<Instance>(instance.materialize(schedule.starts));
  schedule.packing = durationDescendingFirstFit(*schedule.fixedInstance);
  schedule.totalUsage = schedule.packing.totalUsage();
  return schedule;
}

namespace {

/// Usage increase of adding [s, s + length) to a bin's busy set.
Time usageIncrease(const IntervalSet& busy, Time s, Time length) {
  IntervalSet after = busy;
  after.add({s, s + length});
  return after.measure() - busy.measure();
}

}  // namespace

FlexibleSchedule scheduleAligned(const FlexibleInstance& instance) {
  std::vector<FlexibleJob> order = instance.jobs();
  std::stable_sort(order.begin(), order.end(),
                   [](const FlexibleJob& a, const FlexibleJob& b) {
                     if (a.length != b.length) return a.length > b.length;
                     if (a.release != b.release) return a.release < b.release;
                     return a.id < b.id;
                   });

  std::vector<BinTimeline> bins;
  FlexibleSchedule schedule;
  schedule.starts.resize(instance.size());
  std::vector<BinId> binOf(instance.size(), kUnassigned);

  for (const FlexibleJob& j : order) {
    BinId bestBin = kNewBin;
    Time bestStart = j.release;
    Time bestIncrease = kTimeInfinity;

    for (std::size_t b = 0; b < bins.size(); ++b) {
      const BinTimeline& bin = bins[b];
      // Candidate starts: the window endpoints plus alignment points at
      // the bin's busy-period boundaries (nestle before a period's end or
      // after its start), clamped into the job's window.
      std::set<Time> candidates = {j.release, j.latestStart()};
      for (const Interval& busy : bin.busyPeriods().parts()) {
        for (Time raw : {busy.lo, busy.hi, busy.lo - j.length, busy.hi - j.length}) {
          candidates.insert(std::clamp(raw, j.release, j.latestStart()));
        }
      }
      for (Time s : candidates) {
        Item probe(j.id, j.size, s, s + j.length);
        if (!bin.fits(probe)) continue;
        Time increase = usageIncrease(bin.busyPeriods(), s, j.length);
        // Strictly better increase wins; ties prefer earlier bins and then
        // earlier starts (both checked by iteration order + strict <).
        if (increase < bestIncrease - kTimeEps) {
          bestIncrease = increase;
          bestBin = static_cast<BinId>(b);
          bestStart = s;
        }
      }
    }

    if (bestBin == kNewBin) {
      // Nothing fits anywhere: a fresh bin at the release time costs
      // exactly `length`, the floor for any placement of this job.
      bins.emplace_back();
      bestBin = static_cast<BinId>(bins.size() - 1);
      bestStart = j.release;
    }
    bins[static_cast<std::size_t>(bestBin)].add(
        Item(j.id, j.size, bestStart, bestStart + j.length));
    schedule.starts[j.id] = bestStart;
    binOf[j.id] = bestBin;
  }

  schedule.fixedInstance =
      std::make_shared<Instance>(instance.materialize(schedule.starts));
  schedule.packing = Packing(*schedule.fixedInstance, std::move(binOf));
  schedule.totalUsage = schedule.packing.totalUsage();
  return schedule;
}

}  // namespace cdbp
