#include "flexible/flexible_workload.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace cdbp {

FlexibleInstance generateFlexibleWorkload(const FlexibleWorkloadSpec& spec,
                                          std::uint64_t seed) {
  if (!(spec.mu >= 1) || !(spec.minLength > 0) || !(spec.arrivalRate > 0) ||
      spec.slackFactor < 0 || !(spec.minSize > 0) ||
      spec.minSize > spec.maxSize || spec.maxSize > 1) {
    throw std::invalid_argument("generateFlexibleWorkload: invalid spec");
  }
  Rng rng(seed);
  FlexibleInstanceBuilder builder;
  Time t = 0;
  for (std::size_t i = 0; i < spec.numJobs; ++i) {
    t += rng.exponential(1.0 / spec.arrivalRate);
    Time length = rng.uniform(spec.minLength, spec.mu * spec.minLength);
    Time slack = length * spec.slackFactor * rng.uniform01();
    Size size = rng.uniform(spec.minSize, spec.maxSize);
    builder.add(size, t, t + length + slack, length);
  }
  return builder.build();
}

}  // namespace cdbp
