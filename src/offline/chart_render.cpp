#include "offline/chart_render.hpp"

#include <algorithm>
#include <vector>

#include "core/epsilon.hpp"

namespace cdbp {

void renderDemandChart(const DemandChart& chart, std::ostream& os,
                       const ChartRenderOptions& options) {
  if (chart.placements().empty()) {
    os << "(empty demand chart)\n";
    return;
  }
  std::vector<Time> breakpoints = chart.height().breakpoints();
  Time lo = breakpoints.front();
  Time hi = breakpoints.back();
  double top = chart.maxHeight();
  if (!(hi > lo) || !(top > 0)) {
    os << "(degenerate demand chart)\n";
    return;
  }

  // Full item rectangles I(r) x (h - s(r), h].
  struct Rect {
    ItemId item;
    Interval time;
    double loAlt, hiAlt;
  };
  std::vector<Rect> rects;
  rects.reserve(chart.placements().size());
  for (const ChartPlacement& p : chart.placements()) {
    for (const Item& r : chart.items()) {
      if (r.id == p.item) {
        rects.push_back({r.id, r.interval, p.altitude - r.size, p.altitude});
        break;
      }
    }
  }

  auto cellColor = [&](Time t, double alt) -> char {
    if (lt(chart.height().valueAt(t), alt)) return ' ';  // outside chart
    char glyph = 0;
    int covering = 0;
    for (const Rect& rect : rects) {
      if (rect.time.contains(t) && lt(rect.loAlt, alt) && leq(alt, rect.hiAlt)) {
        ++covering;
        glyph = static_cast<char>('a' + rect.item % 26);
      }
    }
    if (covering >= 2) return '#';
    if (covering == 1) return glyph;
    for (const ChartRect& blue : chart.blueRects()) {
      if (blue.time.contains(t) && leq(alt, blue.hiAlt)) return '.';
    }
    // Not in an item and not blue: either a sampling artifact at a
    // boundary or genuinely uncolored (which Lemma 2 rules out up to
    // measure zero).
    return '.';
  };

  for (int row = 0; row < options.height; ++row) {
    double alt = top * (options.height - row - 0.5) /
                 static_cast<double>(options.height);
    std::string line(static_cast<std::size_t>(options.width), ' ');
    for (int col = 0; col < options.width; ++col) {
      Time t = lo + (hi - lo) * (col + 0.5) / static_cast<double>(options.width);
      line[static_cast<std::size_t>(col)] = cellColor(t, alt);
    }
    os << '|' << line << '\n';
  }
  os << '+' << std::string(static_cast<std::size_t>(options.width), '-') << '\n';
  if (options.showLegend) {
    os << "letters = placed items, '#' = two items overlap, '.' = dead/blue "
          "area, ' ' = outside chart\n";
  }
}

}  // namespace cdbp
