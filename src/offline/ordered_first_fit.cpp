#include "offline/ordered_first_fit.hpp"

#include <algorithm>
#include <vector>

#include "offline/ddff.hpp"
#include "offline/interval_resource.hpp"
#include "sim/placement_view.hpp"

namespace cdbp {

std::string itemOrderName(ItemOrder order) {
  switch (order) {
    case ItemOrder::kDurationDescending:
      return "duration-desc (DDFF)";
    case ItemOrder::kDurationAscending:
      return "duration-asc";
    case ItemOrder::kArrival:
      return "arrival";
    case ItemOrder::kSizeDescending:
      return "size-desc (FFD)";
    case ItemOrder::kDemandDescending:
      return "demand-desc";
  }
  return "unknown";
}

Packing orderedFirstFit(const Instance& instance, ItemOrder order) {
  std::vector<Item> items = instance.items();
  auto tieBreak = [](const Item& a, const Item& b) {
    if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
    return a.id < b.id;
  };
  switch (order) {
    case ItemOrder::kDurationDescending:
      std::stable_sort(items.begin(), items.end(), ddffOrderBefore);
      break;
    case ItemOrder::kDurationAscending:
      std::stable_sort(items.begin(), items.end(),
                       [&](const Item& a, const Item& b) {
                         if (a.duration() != b.duration()) {
                           return a.duration() < b.duration();
                         }
                         return tieBreak(a, b);
                       });
      break;
    case ItemOrder::kArrival:
      std::stable_sort(items.begin(), items.end(), tieBreak);
      break;
    case ItemOrder::kSizeDescending:
      std::stable_sort(items.begin(), items.end(),
                       [&](const Item& a, const Item& b) {
                         if (a.size != b.size) return a.size > b.size;
                         return tieBreak(a, b);
                       });
      break;
    case ItemOrder::kDemandDescending:
      std::stable_sort(items.begin(), items.end(),
                       [&](const Item& a, const Item& b) {
                         if (a.demand() != b.demand()) {
                           return a.demand() > b.demand();
                         }
                         return tieBreak(a, b);
                       });
      break;
  }

  // Append-only interval bins on the generic substrate; see ddff.cpp.
  BasicBinManager<IntervalResource> bins(/*indexed=*/false);
  BasicPlacementView<IntervalResource> view(bins, 0.0);
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  for (const Item& r : items) {
    BinId chosen = view.firstFit(r);
    if (chosen == kNewBin) chosen = bins.openBin(0, r.arrival());
    bins.addItem(chosen, r);
    binOf[r.id] = chosen;
  }
  return Packing(instance, std::move(binOf));
}

}  // namespace cdbp
