#include "offline/ordered_first_fit.hpp"

#include <algorithm>
#include <vector>

#include "core/bin_timeline.hpp"
#include "offline/ddff.hpp"

namespace cdbp {

std::string itemOrderName(ItemOrder order) {
  switch (order) {
    case ItemOrder::kDurationDescending:
      return "duration-desc (DDFF)";
    case ItemOrder::kDurationAscending:
      return "duration-asc";
    case ItemOrder::kArrival:
      return "arrival";
    case ItemOrder::kSizeDescending:
      return "size-desc (FFD)";
    case ItemOrder::kDemandDescending:
      return "demand-desc";
  }
  return "unknown";
}

Packing orderedFirstFit(const Instance& instance, ItemOrder order) {
  std::vector<Item> items = instance.items();
  auto tieBreak = [](const Item& a, const Item& b) {
    if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
    return a.id < b.id;
  };
  switch (order) {
    case ItemOrder::kDurationDescending:
      std::stable_sort(items.begin(), items.end(), ddffOrderBefore);
      break;
    case ItemOrder::kDurationAscending:
      std::stable_sort(items.begin(), items.end(),
                       [&](const Item& a, const Item& b) {
                         if (a.duration() != b.duration()) {
                           return a.duration() < b.duration();
                         }
                         return tieBreak(a, b);
                       });
      break;
    case ItemOrder::kArrival:
      std::stable_sort(items.begin(), items.end(), tieBreak);
      break;
    case ItemOrder::kSizeDescending:
      std::stable_sort(items.begin(), items.end(),
                       [&](const Item& a, const Item& b) {
                         if (a.size != b.size) return a.size > b.size;
                         return tieBreak(a, b);
                       });
      break;
    case ItemOrder::kDemandDescending:
      std::stable_sort(items.begin(), items.end(),
                       [&](const Item& a, const Item& b) {
                         if (a.demand() != b.demand()) {
                           return a.demand() > b.demand();
                         }
                         return tieBreak(a, b);
                       });
      break;
  }

  std::vector<BinTimeline> bins;
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  for (const Item& r : items) {
    std::size_t chosen = bins.size();
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b].fits(r)) {
        chosen = b;
        break;
      }
    }
    if (chosen == bins.size()) bins.emplace_back();
    bins[chosen].add(r);
    binOf[r.id] = static_cast<BinId>(chosen);
  }
  return Packing(instance, std::move(binOf));
}

}  // namespace cdbp
