// X-period decomposition (paper §4.1, Figure 2): the accounting device of
// the Theorem 1 proof.
//
// Given the items of one bin, first reduce to the subset R'_k with no item
// whose interval is contained in another's (arrival and departure orders
// then coincide), then split the union of intervals at the arrival times:
// item r_i owns X(r_i) = [I(r_i)^-, min(I(r_{i+1})^-, I(r_i)^+)). The
// X-period lengths sum to the span of the bin, and each item's X-period is
// a sub-interval of its active interval — the two facts the proof builds
// on, both checked by the tests.
#pragma once

#include <vector>

#include "core/item.hpp"

namespace cdbp {

struct XPeriod {
  ItemId item = 0;
  Interval period;
};

/// The reduced subset R' (no interval contained in another), sorted by
/// arrival time.
std::vector<Item> removeContainedItems(const std::vector<Item>& items);

/// X-periods of the reduced subset of `items` (empty input -> empty).
std::vector<XPeriod> xPeriods(const std::vector<Item>& items);

/// sum_i s(r_i) * l(X(r_i)) — the quantity d_k of the proof, a lower bound
/// on the bin's time-space demand.
double xPeriodDemand(const std::vector<Item>& items);

}  // namespace cdbp
