// Ordered First Fit: the offline First Fit skeleton under configurable
// item orders. Duration-descending is the paper's Theorem 1 algorithm
// (see ddff.hpp); the other orders exist to quantify, by ablation, how
// much the duration-descending choice matters.
#pragma once

#include <string>

#include "core/instance.hpp"
#include "core/packing.hpp"

namespace cdbp {

enum class ItemOrder {
  kDurationDescending,  ///< Theorem 1 (DDFF)
  kDurationAscending,   ///< worst-case-adversarial inverse
  kArrival,             ///< arrival order (offline First Fit baseline)
  kSizeDescending,      ///< classical FFD ordering, ignores time
  kDemandDescending,    ///< by time-space demand s(r) * l(I(r))
};

std::string itemOrderName(ItemOrder order);

/// First Fit with whole-interval feasibility over the given order.
/// orderedFirstFit(inst, kDurationDescending) ==
/// durationDescendingFirstFit(inst).
Packing orderedFirstFit(const Instance& instance, ItemOrder order);

}  // namespace cdbp
