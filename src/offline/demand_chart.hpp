// Demand chart and the Phase 1 coloring of the Dual Coloring algorithm
// (paper §4.2, Figure 3).
//
// The chart is the region under the curve S_S(t) = total size of active
// small items at time t. Phase 1 places every small item at an altitude h —
// occupying the rectangle I(r) x (h - s(r), h] — while coloring the chart
// red (area claimed by placed items) and blue (dead area), scanning
// candidate altitudes from high to low. The resulting placement satisfies
// (Lemmas 2-5): the chart ends fully colored, every item rectangle lies
// inside the chart, every small item is placed, and no three item
// rectangles share a point.
#pragma once

#include <optional>
#include <vector>

#include "core/instance.hpp"
#include "core/step_function.hpp"

namespace cdbp {

/// An axis-aligned rectangle in the chart: time extent x altitude range
/// (loAlt, hiAlt] (half-open from below, matching the paper's convention of
/// leaving an item's lower boundary uncolored).
struct ChartRect {
  Interval time;
  double loAlt = 0;
  double hiAlt = 0;

  double area() const { return time.length() * (hiAlt - loAlt); }
};

/// A small item placed at altitude `altitude`: it occupies
/// I(r) x (altitude - s(r), altitude].
struct ChartPlacement {
  ItemId item = 0;
  double altitude = 0;
};

class DemandChart {
 public:
  /// Builds the chart for `smallItems` (every size must be <= 1/2; checked)
  /// and runs Phase 1 to completion.
  explicit DemandChart(const std::vector<Item>& smallItems);

  /// Placement (altitude) per small item, in the order items were placed.
  const std::vector<ChartPlacement>& placements() const { return placements_; }

  /// Altitude assigned to a given item id; nullopt if the item was never
  /// placed (which would falsify Lemma 4 — tests assert this never
  /// happens).
  std::optional<double> altitudeOf(ItemId id) const;

  /// The chart ceiling S_S(t).
  const StepFunction& height() const { return height_; }

  /// Maximum chart height (used by Phase 2 to size the stripes).
  double maxHeight() const { return height_.maxValue(); }

  const std::vector<ChartRect>& redRects() const { return red_; }
  const std::vector<ChartRect>& blueRects() const { return blue_; }

  /// The small items the chart was built from (ids as given).
  const std::vector<Item>& items() const { return ownedItems_; }

  /// Total chart area = total time-space demand of the small items.
  double chartArea() const { return height_.integral(); }

  /// Lemma 2 check: colored area (red + blue) equals the chart area.
  double coloredArea() const;

  /// Lemma 5 check: the maximum number of item rectangles sharing any
  /// single point of the chart.
  std::size_t maxPlacementOverlap() const;

  /// Lemma 3 check: true when every placed item's rectangle lies within the
  /// chart (its top altitude never exceeds S_S(t) anywhere in I(r)).
  bool allPlacementsInsideChart() const;

 private:
  void runPhaseOne();

  std::vector<Item> ownedItems_;
  StepFunction height_;
  std::vector<ChartPlacement> placements_;
  std::vector<ChartRect> red_;
  std::vector<ChartRect> blue_;
};

}  // namespace cdbp
