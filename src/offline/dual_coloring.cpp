#include "offline/dual_coloring.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "core/epsilon.hpp"
#include "offline/interval_resource.hpp"
#include "sim/placement_view.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace cdbp {

namespace {

/// Packs `items` by First Fit with whole-interval feasibility, assigning
/// bin keys starting at `firstKey`. Returns the number of bins used.
std::size_t firstFitInto(const std::vector<Item>& items, int firstKey,
                         std::map<ItemId, int>* keyOf) {
  // Append-only interval bins on the generic substrate; see ddff.cpp.
  BasicBinManager<IntervalResource> bins(/*indexed=*/false);
  BasicPlacementView<IntervalResource> view(bins, 0.0);
  for (const Item& r : items) {
    BinId chosen = view.firstFit(r);
    if (chosen == kNewBin) chosen = bins.openBin(0, r.arrival());
    bins.addItem(chosen, r);
    (*keyOf)[r.id] = firstKey + static_cast<int>(chosen);
  }
  return bins.binsOpened();
}

}  // namespace

DualColoringResult dualColoring(const Instance& instance) {
  CDBP_TELEM_COUNT("offline.dual_coloring.runs", 1);
  std::vector<Item> small;
  std::vector<Item> large;
  for (const Item& r : instance.items()) {
    if (leq(r.size, 0.5)) {
      small.push_back(r);
    } else {
      large.push_back(r);
    }
  }

  // Abstract bin keys; compacted to dense BinIds at the end. Small items
  // use keys [0, 2m-1): key k-1 for "within stripe k", key m+k-1 for
  // "crossing the boundary between stripes k and k+1". Large items use keys
  // from 2m-1 upward.
  std::map<ItemId, int> keyOf;

  DualColoringResult result;
  std::size_t m = 0;
  std::shared_ptr<DemandChart> chart;
  if (!small.empty()) {
    // Phase 1: the demand chart build (altitude assignment) — the
    // dominant cost; timed separately from the coloring pass below.
    CDBP_TELEM_SCOPED_TIMER(phase1Timer, "offline.dual_coloring.phase1_ns");
    chart = std::make_shared<DemandChart>(small);
  }
  // Phase 2: stripe assignment of the small items, packing the large
  // group, key compaction.
  CDBP_TELEM_SCOPED_TIMER(phase2Timer, "offline.dual_coloring.phase2_ns");
  if (chart) {
    // Phase 2, step 1: number of stripes.
    double peak = chart->maxHeight();
    double scaled = 2.0 * peak;
    double nearest = std::round(scaled);
    if (std::fabs(scaled - nearest) <= kSizeEps) scaled = nearest;
    m = static_cast<std::size_t>(std::ceil(scaled - kSizeEps));

    for (const ChartPlacement& p : chart->placements()) {
      const Item* item = nullptr;
      for (const Item& r : small) {
        if (r.id == p.item) {
          item = &r;
          break;
        }
      }
      CDBP_CHECK(item != nullptr, "dualColoring: chart placement references "
                 "unknown small item ", p.item);
      double top = p.altitude;
      double bottom = p.altitude - item->size;
      // Stripe containing the top: top in ((k-1)/2, k/2].
      double scaledTop = 2.0 * top;
      double nearestTop = std::round(scaledTop);
      if (std::fabs(scaledTop - nearestTop) <= kSizeEps) scaledTop = nearestTop;
      std::size_t k = static_cast<std::size_t>(std::ceil(scaledTop - kSizeEps));
      // Phase 1 caps every altitude by the chart peak, so the stripe index
      // can only leave [1, m] through tolerance noise at the boundaries.
      CDBP_DCHECK(k >= 1 || approxEq(top, 0.0),
                  "dualColoring: item ", p.item, " at altitude ", top,
                  " maps below stripe 1");
      CDBP_DCHECK(k <= m + 1, "dualColoring: item ", p.item, " at altitude ",
                  top, " maps past stripe count ", m);
      k = std::clamp<std::size_t>(k, 1, m);
      double stripeFloor = static_cast<double>(k - 1) / 2.0;
      if (leq(stripeFloor, bottom)) {
        // Fully within stripe k -> the k-th "within" bin (step 5-6).
        keyOf[p.item] = static_cast<int>(k - 1);
      } else {
        // Crosses the boundary between stripes k-1 and k (step 7-8).
        // Boundary index j = k-1 ranges over [1, m-1].
        std::size_t j = k - 1;
        CDBP_DCHECK(j >= 1 && j <= m - 1, "dualColoring: item ", p.item,
                    " crosses boundary ", j, " outside [1, ", m - 1, "]");
        keyOf[p.item] = static_cast<int>(m + j - 1);
      }
    }
  }

  // Large group: packed "arbitrarily" — First Fit keeps it deterministic.
  int largeFirstKey = static_cast<int>(2 * m == 0 ? 0 : 2 * m - 1);
  result.largeBins = firstFitInto(large, largeFirstKey, &keyOf);

  // Compact abstract keys to dense bin ids in increasing key order.
  std::map<int, BinId> dense;
  for (const auto& [item, key] : keyOf) {
    if (!dense.count(key)) {
      BinId next = static_cast<BinId>(dense.size());
      dense[key] = next;
    }
  }
  // Re-walk in key order for a stable, opening-order-like numbering.
  dense.clear();
  std::vector<int> keys;
  for (const auto& [item, key] : keyOf) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (int key : keys) dense[key] = static_cast<BinId>(dense.size());

  std::vector<BinId> binOf(instance.size(), kUnassigned);
  for (const auto& [item, key] : keyOf) binOf[item] = dense[key];

  std::size_t largeKeys = 0;
  for (int key : keys) {
    if (key >= largeFirstKey && !large.empty()) ++largeKeys;
  }
  CDBP_DCHECK(largeKeys <= keys.size(), "dualColoring: stripe bookkeeping "
              "counted ", largeKeys, " large keys among ", keys.size());
  result.packing = Packing(instance, std::move(binOf));
  result.chart = chart;
  result.numStripes = m;
  result.smallBins = keys.size() - largeKeys;
  result.largeBins = largeKeys;
  result.binKind.resize(keys.size());
  for (int key : keys) {
    DualColoringBinKind kind;
    if (key >= largeFirstKey && !large.empty()) {
      kind = DualColoringBinKind::kLarge;
    } else if (key < static_cast<int>(m)) {
      kind = DualColoringBinKind::kWithinStripe;
    } else {
      kind = DualColoringBinKind::kCrossStripe;
    }
    result.binKind[static_cast<std::size_t>(dense[key])] = kind;
  }
  return result;
}

}  // namespace cdbp
