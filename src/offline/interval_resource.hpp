// IntervalResource: the offline algorithms' resource model for the generic
// placement substrate (sim/resource.hpp documents the concept).
//
// Offline First Fit variants (DDFF, Ordered First Fit, Dual Coloring's
// group packing) place items with full knowledge of their active
// intervals: a bin "level" is a whole BinTimeline and an item fits when
// its size fits under the timeline's peak over the item's interval.
// Offline bins accumulate forever — nothing departs mid-run — so the model
// is append-only: kIndexable is false (a BinTimeline has no sound
// componentwise minimum) and subtract is deleted. The substrate's linear
// first-fit scan over bins in opening order reproduces the classic
// std::vector<BinTimeline> loops decision for decision.
#pragma once

#include "core/bin_timeline.hpp"
#include "core/item.hpp"

namespace cdbp {

struct IntervalResource {
  using Level = BinTimeline;
  using Demand = Item;
  struct Shape {};

  /// No tournament tree: interval levels admit no sound subtree summary,
  /// and the offline algorithms are defined by their linear scan order.
  static constexpr bool kIndexable = false;
  static constexpr bool kOrderedLevels = false;

  static Level zeroLevel(const Shape&) { return BinTimeline(); }
  static bool isClosed(const Level&) { return false; }
  static bool fits(const Level& timeline, const Demand& item) {
    return timeline.fits(item);
  }
  static void add(Level& timeline, const Demand& item) { timeline.add(item); }
  /// Offline bins never shrink; any instantiation of removeItem for this
  /// model is a bug caught at compile time.
  static void subtract(Level&, const Demand&) = delete;
  static bool canRelease(const Level&, const Demand&) = delete;
};

}  // namespace cdbp
