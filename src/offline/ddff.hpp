// Duration Descending First Fit (paper §4.1, Theorem 1).
//
// Sort items by non-increasing duration, then First Fit: each item goes to
// the lowest-indexed bin whose level profile can accommodate it throughout
// its whole active interval; a new bin is opened otherwise. 5-approximation
// for Clairvoyant MinUsageTime DBP.
#pragma once

#include "core/instance.hpp"
#include "core/packing.hpp"

namespace cdbp {

Packing durationDescendingFirstFit(const Instance& instance);

/// The sort key used by the algorithm, exposed for tests: duration
/// descending, ties by arrival then id (deterministic).
bool ddffOrderBefore(const Item& a, const Item& b);

}  // namespace cdbp
