// ASCII rendering of a demand chart and its Phase 1 placement — a direct
// visual counterpart of the paper's Figures 3-4, for docs, debugging and
// the batch_analytics example.
#pragma once

#include <ostream>

#include "offline/demand_chart.hpp"

namespace cdbp {

struct ChartRenderOptions {
  int width = 72;   ///< character columns for the time axis
  int height = 18;  ///< character rows for the altitude axis
  bool showLegend = true;
};

/// Draws the chart: item rectangles as letters (cycling a-z by item id),
/// blue (dead) area as '.', area outside the chart blank. Overlapping
/// item pairs render as '#'.
void renderDemandChart(const DemandChart& chart, std::ostream& os,
                       const ChartRenderOptions& options = {});

}  // namespace cdbp
