// Dual Coloring algorithm (paper §4.2, Theorem 2): 4-approximation for
// offline Clairvoyant MinUsageTime DBP.
//
// Items are split into a small group (size <= 1/2) and a large group
// (size > 1/2). Large items are packed by First Fit into large-only bins.
// Small items are placed in the demand chart (Phase 1, see demand_chart.hpp)
// and then mapped to bins by the stripe rule (Phase 2): the chart is cut
// into stripes of height 1/2; items whose rectangle lies within stripe k go
// to the k-th "within" bin, items crossing the boundary between stripes k
// and k+1 go to the k-th "cross" bin.
#pragma once

#include <memory>

#include "core/instance.hpp"
#include "core/packing.hpp"
#include "offline/demand_chart.hpp"

namespace cdbp {

/// Role of a bin in the Dual Coloring construction — the three families the
/// Theorem 2 accounting bounds separately.
enum class DualColoringBinKind {
  kWithinStripe,  ///< small items fully inside one stripe (step 6)
  kCrossStripe,   ///< small items crossing a stripe boundary (step 8)
  kLarge,         ///< large-group bins
};

struct DualColoringResult {
  Packing packing;

  /// The Phase 1 chart for the small group (null when there are no small
  /// items). Exposed for the Lemma 2-5 property tests and for diagnostics.
  std::shared_ptr<const DemandChart> chart;

  /// Number of stripes m = ceil(2 * max_t S_S(t)).
  std::size_t numStripes = 0;

  /// Bin counts before empty-bin compaction, for the accounting in the
  /// Theorem 2 proof: at most m "within" bins, m-1 "cross" bins and
  /// floor(2 S_L) large bins.
  std::size_t smallBins = 0;
  std::size_t largeBins = 0;

  /// Role of each (dense) bin id in `packing` — enables checking the
  /// proof's per-family open-bin bounds, not just their 4*ceil(S) sum.
  std::vector<DualColoringBinKind> binKind;
};

DualColoringResult dualColoring(const Instance& instance);

}  // namespace cdbp
