#include "offline/xperiods.hpp"

#include <algorithm>

namespace cdbp {

std::vector<Item> removeContainedItems(const std::vector<Item>& items) {
  std::vector<Item> sorted = items;
  std::stable_sort(sorted.begin(), sorted.end(), [](const Item& a, const Item& b) {
    if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
    // Among equal arrivals keep the longest first; the shorter ones are
    // contained and dropped below.
    return a.departure() > b.departure();
  });
  std::vector<Item> reduced;
  for (const Item& r : sorted) {
    // r is contained iff some already-kept item (arriving no later) departs
    // no earlier. Kept departures are increasing (see below), so checking
    // the last kept suffices.
    if (!reduced.empty() && reduced.back().departure() >= r.departure()) {
      continue;
    }
    reduced.push_back(r);
  }
  return reduced;
}

std::vector<XPeriod> xPeriods(const std::vector<Item>& items) {
  std::vector<Item> reduced = removeContainedItems(items);
  std::vector<XPeriod> periods;
  periods.reserve(reduced.size());
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    Time end = reduced[i].departure();
    if (i + 1 < reduced.size()) {
      end = std::min(end, reduced[i + 1].arrival());
    }
    periods.push_back({reduced[i].id, {reduced[i].arrival(), end}});
  }
  return periods;
}

double xPeriodDemand(const std::vector<Item>& items) {
  std::vector<Item> reduced = removeContainedItems(items);
  std::vector<XPeriod> periods = xPeriods(items);
  double total = 0;
  for (std::size_t i = 0; i < periods.size(); ++i) {
    total += reduced[i].size * periods[i].period.length();
  }
  return total;
}

}  // namespace cdbp
