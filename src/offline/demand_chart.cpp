#include "offline/demand_chart.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

#include "core/epsilon.hpp"

namespace cdbp {

namespace {

/// The collection M of altitudes to examine, with epsilon-deduplication:
/// altitudes are sums/differences of item sizes, so floating-point noise
/// would otherwise create spurious near-duplicate altitudes.
class AltitudeSet {
 public:
  void insert(double h) {
    if (h <= kSizeEps) return;
    auto it = std::lower_bound(sorted_.begin(), sorted_.end(), h);
    if (it != sorted_.end() && approxEq(*it, h)) return;
    if (it != sorted_.begin() && approxEq(*std::prev(it), h)) return;
    sorted_.insert(it, h);
  }

  bool empty() const { return sorted_.empty(); }

  double popMax() {
    double h = sorted_.back();
    sorted_.pop_back();
    return h;
  }

 private:
  std::vector<double> sorted_;  // ascending
};

enum class Color { kOutside, kRed, kBlue, kUncolored };

}  // namespace

DemandChart::DemandChart(const std::vector<Item>& smallItems)
    : ownedItems_(smallItems) {
  for (const Item& r : ownedItems_) {
    if (lt(0.5, r.size)) {
      throw std::invalid_argument(
          "DemandChart: item " + std::to_string(r.id) +
          " has size > 1/2; large items are packed outside the chart");
    }
  }
  for (const Item& r : ownedItems_) height_.add(r.interval, r.size);
  runPhaseOne();
}

void DemandChart::runPhaseOne() {
  const std::vector<Item>& items = ownedItems_;
  std::vector<bool> placed(items.size(), false);

  // Step 1: M starts as every distinct positive chart height.
  AltitudeSet M;
  for (const StepFunction::Segment& seg : height_.segments()) {
    if (seg.value > kSizeEps) M.insert(seg.value);
  }

  // Classifies the horizontal line at altitude h into maximal red / blue /
  // uncolored / outside intervals. "Outside" marks columns where the chart
  // is lower than h (S_S(t) < h): the eligibility rule of step 7 must treat
  // them like red — an item may only cross I_u and blue columns — which is
  // exactly what makes Lemma 3 (placements stay inside the chart) hold:
  // both I_u and blue columns are known to have chart height >= h.
  auto classify = [&](double h, std::vector<Interval>* red,
                      std::vector<Interval>* uncolored,
                      std::vector<Interval>* outside) {
    std::set<Time> cuts;
    for (Time t : height_.breakpoints()) cuts.insert(t);
    for (const ChartRect& rect : red_) {
      cuts.insert(rect.time.lo);
      cuts.insert(rect.time.hi);
    }
    for (const ChartRect& rect : blue_) {
      cuts.insert(rect.time.lo);
      cuts.insert(rect.time.hi);
    }
    std::vector<Time> times(cuts.begin(), cuts.end());

    auto colorAt = [&](Time mid) {
      if (lt(height_.valueAt(mid), h)) return Color::kOutside;
      for (const ChartRect& rect : red_) {
        if (rect.time.contains(mid) && lt(rect.loAlt, h) && leq(h, rect.hiAlt)) {
          return Color::kRed;
        }
      }
      for (const ChartRect& rect : blue_) {
        if (rect.time.contains(mid) && leq(h, rect.hiAlt)) return Color::kBlue;
      }
      return Color::kUncolored;
    };

    Color runColor = Color::kBlue;  // sentinel: nothing to flush
    Time runStart = 0;
    auto flush = [&](Time end) {
      if (runColor == Color::kRed) red->push_back({runStart, end});
      if (runColor == Color::kUncolored) uncolored->push_back({runStart, end});
      if (runColor == Color::kOutside) outside->push_back({runStart, end});
    };
    for (std::size_t i = 0; i + 1 < times.size(); ++i) {
      Time lo = times[i];
      Time hi = times[i + 1];
      Color c = colorAt((lo + hi) / 2);
      if (c != runColor) {
        flush(lo);
        runColor = c;
        runStart = lo;
      }
    }
    if (!times.empty()) flush(times.back());
  };

  // Step 2: examine altitudes from high to low.
  while (!M.empty()) {
    double h = M.popMax();

    std::vector<Interval> forbidden;  // red intervals + off-chart columns
    std::vector<Interval> uncolored;
    classify(h, &forbidden, &uncolored, &forbidden);
    std::deque<Interval> U(uncolored.begin(), uncolored.end());

    while (!U.empty()) {
      Interval Iu = U.front();
      U.pop_front();

      // Step 7: find an unplaced item intersecting I_u but no other
      // uncolored interval and no red interval at this altitude.
      const Item* found = nullptr;
      for (const Item& r : items) {
        if (placed[&r - items.data()]) continue;
        if (!r.interval.overlaps(Iu)) continue;
        bool clean = true;
        for (const Interval& other : U) {
          if (r.interval.overlaps(other)) {
            clean = false;
            break;
          }
        }
        if (clean) {
          for (const Interval& rd : forbidden) {
            if (r.interval.overlaps(rd)) {
              clean = false;
              break;
            }
          }
        }
        if (clean) {
          found = &r;
          break;
        }
      }

      if (found == nullptr) {
        // Step 18: dead area — color the full column below I_u blue.
        blue_.push_back({Iu, 0.0, h});
        continue;
      }

      // Steps 8-16: place the item at altitude h.
      const Item& r = *found;
      placed[static_cast<std::size_t>(&r - items.data())] = true;
      placements_.push_back({r.id, h});
      Interval covered = r.interval.intersect(Iu);
      ChartRect rect{covered, h - r.size, h};
      red_.push_back(rect);
      forbidden.push_back(covered);
      if (Iu.lo < r.interval.lo) U.push_back({Iu.lo, r.interval.lo});
      if (Iu.hi > r.interval.hi) U.push_back({r.interval.hi, Iu.hi});
      M.insert(h - r.size);
    }
  }
}

std::optional<double> DemandChart::altitudeOf(ItemId id) const {
  for (const ChartPlacement& p : placements_) {
    if (p.item == id) return p.altitude;
  }
  return std::nullopt;
}

double DemandChart::coloredArea() const {
  double total = 0;
  for (const ChartRect& rect : red_) total += rect.area();
  for (const ChartRect& rect : blue_) total += rect.area();
  return total;
}

std::size_t DemandChart::maxPlacementOverlap() const {
  // Build each placed item's full rectangle I(r) x (h - s, h].
  std::vector<ChartRect> rects;
  rects.reserve(placements_.size());
  for (const ChartPlacement& p : placements_) {
    const Item* item = nullptr;
    for (const Item& r : ownedItems_) {
      if (r.id == p.item) {
        item = &r;
        break;
      }
    }
    rects.push_back({item->interval, p.altitude - item->size, p.altitude});
  }

  std::set<Time> cuts;
  for (const ChartRect& rect : rects) {
    cuts.insert(rect.time.lo);
    cuts.insert(rect.time.hi);
  }
  std::vector<Time> times(cuts.begin(), cuts.end());

  std::size_t worst = 0;
  for (std::size_t i = 0; i + 1 < times.size(); ++i) {
    Time mid = (times[i] + times[i + 1]) / 2;
    // Depth is maximized at some rectangle's top altitude.
    for (const ChartRect& probe : rects) {
      if (!probe.time.contains(mid)) continue;
      double alt = probe.hiAlt;
      std::size_t depth = 0;
      for (const ChartRect& rect : rects) {
        if (rect.time.contains(mid) && lt(rect.loAlt, alt) && leq(alt, rect.hiAlt)) {
          ++depth;
        }
      }
      worst = std::max(worst, depth);
    }
  }
  return worst;
}

bool DemandChart::allPlacementsInsideChart() const {
  for (const ChartPlacement& p : placements_) {
    for (const Item& r : ownedItems_) {
      if (r.id != p.item) continue;
      if (lt(height_.minOver(r.interval), p.altitude)) return false;
      if (lt(p.altitude, r.size)) return false;  // bottom below 0
    }
  }
  return true;
}

}  // namespace cdbp
