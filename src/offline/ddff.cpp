#include "offline/ddff.hpp"

#include <algorithm>
#include <vector>

#include "offline/interval_resource.hpp"
#include "sim/placement_view.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

bool ddffOrderBefore(const Item& a, const Item& b) {
  if (a.duration() != b.duration()) return a.duration() > b.duration();
  if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
  return a.id < b.id;
}

Packing durationDescendingFirstFit(const Instance& instance) {
  // The DDFF cost splits into the O(n log n) sort and the First Fit packing
  // scan; the two timers expose that split (DESIGN.md §8.1).
  std::vector<Item> order = instance.items();
  {
    CDBP_TELEM_SCOPED_TIMER(sortTimer, "offline.ddff.sort_ns");
    std::stable_sort(order.begin(), order.end(), ddffOrderBefore);
  }

  CDBP_TELEM_SCOPED_TIMER(packTimer, "offline.ddff.pack_ns");
  // Offline bins never close, so opening order is creation order and the
  // substrate's linear First Fit reproduces the classic vector scan probe
  // for probe; each probe counts toward sim.fit_checks (the former
  // offline.ddff.bins_scanned counter).
  BasicBinManager<IntervalResource> bins(/*indexed=*/false);
  BasicPlacementView<IntervalResource> view(bins, 0.0);
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  for (const Item& r : order) {
    BinId chosen = view.firstFit(r);
    if (chosen == kNewBin) chosen = bins.openBin(0, r.arrival());
    bins.addItem(chosen, r);
    binOf[r.id] = chosen;
  }
  CDBP_TELEM_COUNT("offline.ddff.bins_opened", bins.binsOpened());
  CDBP_TELEM_COUNT("offline.ddff.runs", 1);
  return Packing(instance, std::move(binOf));
}

}  // namespace cdbp
