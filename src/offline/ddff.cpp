#include "offline/ddff.hpp"

#include <algorithm>
#include <vector>

#include "core/bin_timeline.hpp"

namespace cdbp {

bool ddffOrderBefore(const Item& a, const Item& b) {
  if (a.duration() != b.duration()) return a.duration() > b.duration();
  if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
  return a.id < b.id;
}

Packing durationDescendingFirstFit(const Instance& instance) {
  std::vector<Item> order = instance.items();
  std::stable_sort(order.begin(), order.end(), ddffOrderBefore);

  std::vector<BinTimeline> bins;
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  for (const Item& r : order) {
    BinId chosen = kNewBin;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (bins[b].fits(r)) {
        chosen = static_cast<BinId>(b);
        break;
      }
    }
    if (chosen == kNewBin) {
      bins.emplace_back();
      chosen = static_cast<BinId>(bins.size() - 1);
    }
    bins[static_cast<std::size_t>(chosen)].add(r);
    binOf[r.id] = chosen;
  }
  return Packing(instance, std::move(binOf));
}

}  // namespace cdbp
