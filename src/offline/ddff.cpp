#include "offline/ddff.hpp"

#include <algorithm>
#include <vector>

#include "core/bin_timeline.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

bool ddffOrderBefore(const Item& a, const Item& b) {
  if (a.duration() != b.duration()) return a.duration() > b.duration();
  if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
  return a.id < b.id;
}

Packing durationDescendingFirstFit(const Instance& instance) {
  // The DDFF cost splits into the O(n log n) sort and the First Fit packing
  // scan; the two timers expose that split (DESIGN.md §8.1).
  std::vector<Item> order = instance.items();
  {
    CDBP_TELEM_SCOPED_TIMER(sortTimer, "offline.ddff.sort_ns");
    std::stable_sort(order.begin(), order.end(), ddffOrderBefore);
  }

  CDBP_TELEM_SCOPED_TIMER(packTimer, "offline.ddff.pack_ns");
  std::vector<BinTimeline> bins;
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  std::uint64_t scans = 0;
  for (const Item& r : order) {
    BinId chosen = kNewBin;
    for (std::size_t b = 0; b < bins.size(); ++b) {
      ++scans;
      if (bins[b].fits(r)) {
        chosen = static_cast<BinId>(b);
        break;
      }
    }
    if (chosen == kNewBin) {
      bins.emplace_back();
      chosen = static_cast<BinId>(bins.size() - 1);
    }
    bins[static_cast<std::size_t>(chosen)].add(r);
    binOf[r.id] = chosen;
  }
  CDBP_TELEM_COUNT("offline.ddff.bins_scanned", scans);
  CDBP_TELEM_COUNT("offline.ddff.bins_opened", bins.size());
  CDBP_TELEM_COUNT("offline.ddff.runs", 1);
  return Packing(instance, std::move(binOf));
}

}  // namespace cdbp
