// Summary statistics for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace cdbp {

/// Accumulates samples and reports the summary figures the bench harness
/// prints (mean, stddev, min/max, percentiles).
class SummaryStats {
 public:
  void add(double x) { samples_.push_back(x); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double sum() const {
    double total = 0;
    for (double x : samples_) total += x;
    return total;
  }

  double mean() const { return empty() ? 0.0 : sum() / static_cast<double>(count()); }

  double variance() const {
    if (count() < 2) return 0.0;
    double m = mean();
    double accum = 0;
    for (double x : samples_) accum += (x - m) * (x - m);
    return accum / static_cast<double>(count() - 1);
  }

  double stddev() const { return std::sqrt(variance()); }

  double min() const {
    return empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  double max() const {
    return empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  /// Percentile in [0, 100] with linear interpolation between order
  /// statistics.
  double percentile(double p) const {
    if (empty()) return 0.0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted[0];
    double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  }

  double median() const { return percentile(50.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace cdbp
