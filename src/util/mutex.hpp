// Annotated mutex wrapper for clang's thread-safety analysis.
//
// libstdc++'s std::mutex carries no capability annotations, so guarding
// members with it teaches the analysis nothing. cdbp::Mutex is a
// zero-overhead std::mutex wrapper that declares itself a capability;
// cdbp::MutexLock is the scoped acquisition. Condition variables pair
// with them via std::condition_variable_any, which accepts any
// BasicLockable — waiting code passes the Mutex itself, keeping the
// "held across the wait" contract visible to the analysis:
//
//   MutexLock lock(mu_);
//   while (!ready_) cv_.wait(mu_);   // wait's unlock/relock is internal
//
// Predicates must be explicit loops, not wait(lock, lambda): the lambda
// body is analyzed as a separate function that cannot see the caller's
// lock set, so guarded reads inside it would (rightly) fail the build.
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace cdbp {

class CDBP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CDBP_ACQUIRE() { mu_.lock(); }
  void unlock() CDBP_RELEASE() { mu_.unlock(); }
  bool try_lock() CDBP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

class CDBP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CDBP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() CDBP_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace cdbp
