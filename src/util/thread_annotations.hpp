// Clang thread-safety analysis annotations (-Wthread-safety), compiled
// out everywhere else. Annotating the locking discipline makes it a
// compiler-checked contract: clang proves at build time that every
// access to a CDBP_GUARDED_BY member happens with its mutex held, that
// CDBP_REQUIRES callees are only reached under the right lock, and that
// scoped locks cannot leak. GCC and MSVC see empty macros.
//
// The annotations only attach to types that declare themselves a
// capability, so they pair with cdbp::Mutex / cdbp::MutexLock from
// util/mutex.hpp rather than raw std::mutex (libstdc++'s mutex is not
// annotated and would make every annotation vacuous).
//
// CI builds with clang and -Werror=thread-safety, so a violated
// annotation is a build break, not a warning.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CDBP_THREAD_ANNOTATION_(x) __attribute__((x))
#endif
#endif
#ifndef CDBP_THREAD_ANNOTATION_
#define CDBP_THREAD_ANNOTATION_(x)
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define CDBP_CAPABILITY(name) CDBP_THREAD_ANNOTATION_(capability(name))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define CDBP_SCOPED_CAPABILITY CDBP_THREAD_ANNOTATION_(scoped_lockable)

/// Data member may only be read or written while `mu` is held.
#define CDBP_GUARDED_BY(mu) CDBP_THREAD_ANNOTATION_(guarded_by(mu))

/// Pointer member: the *pointee* may only be accessed while `mu` is held.
#define CDBP_PT_GUARDED_BY(mu) CDBP_THREAD_ANNOTATION_(pt_guarded_by(mu))

/// Function requires `mu` to be held on entry (and does not release it).
#define CDBP_REQUIRES(...) \
  CDBP_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function acquires the capability; held on return.
#define CDBP_ACQUIRE(...) \
  CDBP_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function releases the capability; not held on return.
#define CDBP_RELEASE(...) \
  CDBP_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; holds it iff the return value
/// equals `result`.
#define CDBP_TRY_ACQUIRE(result, ...) \
  CDBP_THREAD_ANNOTATION_(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold `mu` — catches self-deadlock on non-recursive
/// mutexes at compile time.
#define CDBP_EXCLUDES(...) \
  CDBP_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function returns a reference to a capability (for accessors).
#define CDBP_RETURN_CAPABILITY(mu) \
  CDBP_THREAD_ANNOTATION_(lock_returned(mu))

/// Escape hatch: disables the analysis for one function. Every use needs
/// a comment explaining why the discipline holds anyway.
#define CDBP_NO_THREAD_SAFETY_ANALYSIS \
  CDBP_THREAD_ANNOTATION_(no_thread_safety_analysis)
