// Minimal command-line flag parsing for bench and example binaries.
//
//   cdbp::Flags flags(argc, argv);
//   long n = flags.getInt("items", 2000);        // note: returns long
//   double mu = flags.getDouble("mu", 16.0);
//   bool csv = flags.getBool("csv", false);
//   if (flags.has("csv")) ...
//
// Accepts --name=value, --name value, and bare --name switches.
//
// Strict mode rejects unknown flags (a typo'd --iterms would otherwise be
// silently ignored and the bench would run with the default):
//
//   cdbp::Flags flags = cdbp::Flags::strictOrDie(
//       argc, argv, {"items", "seeds", "csv", "json"});
//
// The throwing strict constructor is available for code that wants to
// handle the error itself (tests use it).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace cdbp {

class Flags {
 public:
  Flags(int argc, char** argv);

  /// Strict parse: any flag not listed in `allowed`, and any stray
  /// positional argument, throws std::invalid_argument naming the
  /// offender and the accepted flags.
  Flags(int argc, char** argv, const std::vector<std::string>& allowed);

  /// Strict parse for bench/example mains: on error prints the message and
  /// the accepted flags to stderr and exits with status 2.
  static Flags strictOrDie(int argc, char** argv,
                           const std::vector<std::string>& allowed);

  bool has(const std::string& name) const;
  std::string getString(const std::string& name, const std::string& fallback) const;

  /// Integer flag value (parsed as long); `fallback` when absent or empty.
  long getInt(const std::string& name, long fallback) const;
  double getDouble(const std::string& name, double fallback) const;

  /// Boolean flag value. A bare `--name` switch reads as true; otherwise
  /// accepts true/false, yes/no, on/off, 1/0 (case-insensitive). Returns
  /// `fallback` when the flag is absent; throws std::invalid_argument on
  /// any other value.
  bool getBool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cdbp
