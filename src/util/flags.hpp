// Minimal command-line flag parsing for bench and example binaries.
//
//   cdbp::Flags flags(argc, argv);
//   int n = flags.getInt("items", 2000);
//   double mu = flags.getDouble("mu", 16.0);
//   if (flags.has("csv")) ...
//
// Accepts --name=value, --name value, and bare --name switches.
#pragma once

#include <map>
#include <string>

namespace cdbp {

class Flags {
 public:
  Flags(int argc, char** argv);

  bool has(const std::string& name) const;
  std::string getString(const std::string& name, const std::string& fallback) const;
  long getInt(const std::string& name, long fallback) const;
  double getDouble(const std::string& name, double fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cdbp
