// Debug contract checks for invariant-bearing hot paths.
//
// Three macros, modeled on the Abseil/glog family but dependency-free:
//
//   CDBP_CHECK(cond, msg...)   — always on; aborts with file:line on failure.
//   CDBP_DCHECK(cond, msg...)  — like CDBP_CHECK in debug builds; compiled to
//                                a no-op in Release (NDEBUG). The condition is
//                                still type-checked but never evaluated, so a
//                                DCHECK can guard arbitrarily expensive
//                                diagnostics without a Release cost.
//   CDBP_UNREACHABLE(msg)      — marks control flow the invariants rule out;
//                                always aborts (even in Release) because
//                                reaching it means state is already corrupt.
//
// These exist so that sanitizer runs (ASan/UBSan/TSan presets) stop at the
// point of corruption — e.g. a bin level driven negative inside
// BinManager::removeItem — instead of surfacing later as a confusing audit
// or validation failure. Failure messages go to stderr and the process
// aborts, which GTest death tests can assert on (EXPECT_DEATH).
//
// The message arguments are only evaluated and formatted on the failure
// path; they may be any sequence of ostream-streamable values.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cdbp::detail {

/// Streams every argument into one string. Only called on failure paths.
template <typename... Args>
std::string formatCheckMessage(const Args&... args) {
  std::ostringstream os;
  ((os << args), ...);
  return os.str();
}

[[noreturn]] inline void checkFailed(const char* file, int line,
                                     const char* kind, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "%s failed: %s at %s:%d%s%s\n", kind, expr, file, line,
               message.empty() ? "" : ": ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace cdbp::detail

/// Aborts (with file:line and the stringified condition) unless `cond` holds.
#define CDBP_CHECK(cond, ...)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::cdbp::detail::checkFailed(                                   \
          __FILE__, __LINE__, "CDBP_CHECK", #cond,                   \
          ::cdbp::detail::formatCheckMessage(__VA_ARGS__));          \
    }                                                                \
  } while (false)

/// Debug-only CDBP_CHECK. In Release (NDEBUG) the condition and message are
/// type-checked but never evaluated — zero runtime cost.
#ifdef NDEBUG
#define CDBP_DCHECK(cond, ...)                                       \
  do {                                                               \
    if (false && static_cast<bool>((cond))) {                        \
      ::cdbp::detail::checkFailed(                                   \
          __FILE__, __LINE__, "CDBP_DCHECK", #cond,                  \
          ::cdbp::detail::formatCheckMessage(__VA_ARGS__));          \
    }                                                                \
  } while (false)
#else
#define CDBP_DCHECK(cond, ...)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::cdbp::detail::checkFailed(                                   \
          __FILE__, __LINE__, "CDBP_DCHECK", #cond,                  \
          ::cdbp::detail::formatCheckMessage(__VA_ARGS__));          \
    }                                                                \
  } while (false)
#endif

/// Marks control flow the caller's invariants make impossible. Always fatal:
/// reaching it means earlier state is already corrupt, and continuing would
/// turn a localized bug into silent wrong answers.
#define CDBP_UNREACHABLE(...)                                        \
  ::cdbp::detail::checkFailed(                                       \
      __FILE__, __LINE__, "CDBP_UNREACHABLE", "reached",             \
      ::cdbp::detail::formatCheckMessage(__VA_ARGS__))
