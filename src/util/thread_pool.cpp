#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace cdbp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  taskReady_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr error;
  {
    MutexLock lock(mutex_);
    while (inFlight_ != 0) allDone_.wait(mutex_);
    error = std::exchange(firstError_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) taskReady_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    // The decrement must happen on every path — a throwing task that left
    // inFlight_ elevated would wedge wait() forever.
    {
      MutexLock lock(mutex_);
      if (error && !firstError_) firstError_ = error;
      if (--inFlight_ == 0) allDone_.notify_all();
    }
  }
}

void parallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) {
    pool.submit([&body, i] { body(i); });
  }
  pool.wait();
}

}  // namespace cdbp
