#include "util/flags.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "util/parse.hpp"

namespace cdbp {

namespace {

std::string joinAllowed(const std::vector<std::string>& allowed) {
  std::string out;
  for (const std::string& a : allowed) {
    if (!out.empty()) out += ", ";
    out += "--" + a;
  }
  return out.empty() ? "(none)" : out;
}

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

Flags::Flags(int argc, char** argv, const std::vector<std::string>& allowed)
    : Flags(argc, argv) {
  std::set<std::string> known(allowed.begin(), allowed.end());
  for (const auto& [name, value] : values_) {
    if (!known.count(name)) {
      throw std::invalid_argument("unknown flag --" + name + " (accepted: " +
                                  joinAllowed(allowed) + ")");
    }
  }
  // Re-walk argv for stray positionals: tokens that are neither flags nor
  // consumed as a flag's value.
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      // `--name value` consumes the next non-flag token, mirroring the
      // parse above.
      if (arg.find('=') == std::string::npos && i + 1 < argc &&
          std::string(argv[i + 1]).rfind("--", 0) != 0) {
        ++i;
      }
      continue;
    }
    throw std::invalid_argument("unexpected positional argument '" + arg +
                                "' (accepted: " + joinAllowed(allowed) + ")");
  }
}

Flags Flags::strictOrDie(int argc, char** argv,
                         const std::vector<std::string>& allowed) {
  try {
    return Flags(argc, argv, allowed);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "cdbp",
                 e.what());
    std::exit(2);
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::getString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::getInt(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  long value = 0;
  if (!tryParseLong(it->second, value)) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
  return value;
}

double Flags::getDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  double value = 0;
  if (!tryParseDouble(it->second, value)) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
  return value;
}

bool Flags::getBool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  if (it->second.empty()) return true;  // bare --name switch
  std::string v = lowercase(it->second);
  if (v == "true" || v == "yes" || v == "on" || v == "1") return true;
  if (v == "false" || v == "no" || v == "off" || v == "0") return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              it->second + "'");
}

}  // namespace cdbp
