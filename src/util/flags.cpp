#include "util/flags.hpp"

#include <cstdlib>

namespace cdbp {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::string Flags::getString(const std::string& name,
                             const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

long Flags::getInt(const std::string& name, long fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtol(it->second.c_str(), nullptr, 10);
}

double Flags::getDouble(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

}  // namespace cdbp
