// Deterministic random number generation for workloads and property tests.
//
// A thin wrapper over std::mt19937_64 that makes seeding explicit and
// provides the distributions the workload generators need. Identical seeds
// produce identical streams on every platform we target (mt19937_64 output
// is specified by the standard; the distribution helpers below avoid
// std::*_distribution where cross-platform reproducibility matters).
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace cdbp {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 random mantissa bits -> exact uniform dyadic rationals.
    return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t uniformInt(std::uint64_t lo, std::uint64_t hi) {
    // Modulo bias is < 2^-40 for any range we use; acceptable for
    // simulation workloads and fully reproducible.
    return lo + engine_() % (hi - lo + 1);
  }

  /// Exponential with the given mean (mean = 1/rate).
  double exponential(double mean) {
    double u = uniform01();
    // u in [0,1); 1-u in (0,1] so the log is finite.
    return -mean * std::log(1.0 - u);
  }

  /// Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed durations).
  double pareto(double xm, double alpha) {
    double u = uniform01();
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Log-normal via Box-Muller on the underlying normal(mu, sigma).
  double logNormal(double mu, double sigma) {
    double u1 = uniform01();
    double u2 = uniform01();
    // Guard u1 = 0.
    double radius = std::sqrt(-2.0 * std::log(1.0 - u1));
    double normal = radius * std::cos(6.283185307179586 * u2);
    return std::exp(mu + sigma * normal);
  }

  /// Bernoulli(p).
  bool chance(double p) { return uniform01() < p; }

  /// Derives an independent child generator; lets parallel sweeps share one
  /// master seed while keeping per-task streams decorrelated.
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ull); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cdbp
