// MonotonicArena: a chunked bump allocator for short-lived, densely packed
// scratch data — the sharded simulator's structure-of-arrays epoch buffers
// (sim/sharded.cpp). allocate<T>() hands out aligned, contiguous storage
// with no per-allocation bookkeeping; reset() reclaims everything at once
// while keeping the largest chunk, so a buffer that is filled, consumed and
// reset every epoch converges to zero allocator traffic in steady state.
//
// Only trivially destructible element types are accepted: the arena never
// runs destructors (reset() just rewinds the bump pointer).
//
// Not thread-safe: an arena belongs to one writer at a time. The epoch
// pipeline hands a filled arena to worker threads read-only and only
// resets it after the last reader is done (publication ordered by the
// shard queues' mutexes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace cdbp {

class MonotonicArena {
 public:
  /// `chunkBytes` is the granularity of the backing allocations; requests
  /// larger than it get a dedicated chunk of exactly their size.
  explicit MonotonicArena(std::size_t chunkBytes = 1 << 16)
      : chunkBytes_(chunkBytes > 0 ? chunkBytes : 1) {}

  MonotonicArena(const MonotonicArena&) = delete;
  MonotonicArena& operator=(const MonotonicArena&) = delete;

  /// Uninitialized storage for `count` elements of T, aligned to alignof(T).
  /// count == 0 returns a non-null, unusable pointer (like an empty span).
  template <typename T>
  T* allocate(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "MonotonicArena never runs destructors");
    return static_cast<T*>(allocateBytes(count * sizeof(T), alignof(T)));
  }

  /// Rewinds the arena: all prior allocations are invalidated. The largest
  /// chunk is kept (a steady-state epoch reuses it allocation-free);
  /// smaller overflow chunks are released.
  void reset() {
    if (chunks_.empty()) return;
    std::size_t largest = 0;
    for (std::size_t i = 1; i < chunks_.size(); ++i) {
      if (chunks_[i].size > chunks_[largest].size) largest = i;
    }
    if (largest != 0) std::swap(chunks_[0], chunks_[largest]);
    chunks_.resize(1);
    used_ = 0;
    totalUsed_ = 0;
  }

  /// Bytes handed out since the last reset (before alignment padding of
  /// the next request).
  std::size_t bytesUsed() const { return totalUsed_; }

  /// Bytes of backing storage currently held.
  std::size_t bytesReserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* allocateBytes(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    std::size_t offset = alignUp(used_, align);
    if (chunks_.empty() || offset + bytes > chunks_[0].size) {
      // The bump chunk is chunks_[0]; a request that does not fit opens a
      // fresh bump chunk (overflow chunks keep their contents until
      // reset()).
      std::size_t size = bytes > chunkBytes_ ? bytes : chunkBytes_;
      Chunk fresh{std::make_unique<std::byte[]>(size), size};
      chunks_.insert(chunks_.begin(), std::move(fresh));
      offset = 0;
    }
    used_ = offset + bytes;
    totalUsed_ += bytes;
    return chunks_[0].data.get() + offset;
  }

  static std::size_t alignUp(std::size_t value, std::size_t align) {
    return (value + align - 1) & ~(align - 1);
  }

  std::size_t chunkBytes_;
  std::vector<Chunk> chunks_;  // chunks_[0] is the active bump chunk
  std::size_t used_ = 0;       // bump offset within chunks_[0]
  std::size_t totalUsed_ = 0;  // across all chunks since reset()
};

}  // namespace cdbp
