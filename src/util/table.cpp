#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cdbp {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table::addRow: expected " +
                                std::to_string(header_.size()) + " cells, got " +
                                std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << std::right << row[c];
    }
    os << '\n';
  };
  printRow(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (header_.empty() ? 0 : header_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) printRow(row);
}

void Table::printCsv(std::ostream& os) const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto printRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : ",") << quote(row[c]);
    }
    os << '\n';
  };
  printRow(header_);
  for (const auto& row : rows_) printRow(row);
}

}  // namespace cdbp
