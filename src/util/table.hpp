// Fixed-width table rendering for benchmark and example output.
//
// Every bench binary prints its figure/table through this so the output is
// uniform and directly comparable with the series in EXPERIMENTS.md.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cdbp {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must match the header arity.
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders with aligned columns and a header separator.
  void print(std::ostream& os) const;

  /// Renders as CSV (no alignment, comma-separated, quoted when needed).
  void printCsv(std::ostream& os) const;

  std::size_t numRows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cdbp
