// Checked numeric parsing — the sanctioned home of raw number parsing
// (the `raw-number-parse` lint rule points here).
//
// std::stod and friends are parser landmines: they accept partial
// prefixes ("16abc" parses as 16), the unsigned family wraps negative
// input ("-1" parses as 2^64-1), and strtod with a null end pointer
// turns arbitrary junk into 0.0. Every parser under src/ routes through
// these helpers instead: the whole string must be consumed, signs must
// match the target type, and failure is an explicit `false`, never an
// exception or a silent default.
//
// Built on std::from_chars, so parsing is locale-independent and the
// shortest-round-trip doubles the writers emit (io/json_writer.hpp)
// read back bitwise identical. Hex floats ("0x1p3") are intentionally
// rejected. "inf"/"nan" parse as non-finite values — finiteness is the
// caller's policy, not the parser's.
#pragma once

#include <charconv>
#include <cstdint>
#include <string_view>
#include <system_error>

namespace cdbp {

namespace parse_detail {

// Strips one leading '+' (which from_chars never accepts but the stod
// family always did); a sign after the '+' stays malformed.
inline bool stripPlus(std::string_view& s) {
  if (!s.empty() && s.front() == '+') {
    s.remove_prefix(1);
    if (s.empty() || s.front() == '+' || s.front() == '-') return false;
  }
  return true;
}

template <typename T>
bool parseWhole(std::string_view s, T& out) {
  if (s.empty() || !stripPlus(s)) return false;
  T value{};
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), last, value);
  if (ec != std::errc{} || ptr != last) return false;
  out = value;
  return true;
}

}  // namespace parse_detail

/// Parses all of `s` as a double ("1.5", "-2e-3", "inf", "nan"; optional
/// leading '+'; no whitespace, no hex floats, no trailing junk). Returns
/// false without touching `out` otherwise.
inline bool tryParseDouble(std::string_view s, double& out) {
  return parse_detail::parseWhole(s, out);
}

/// Parses all of `s` as a non-negative integer. Rejects '-' outright —
/// no modular wraparound, the std::stoull trap.
inline bool tryParseUint(std::string_view s, std::uint64_t& out) {
  return parse_detail::parseWhole(s, out);
}

/// Parses all of `s` as a signed long (decimal only).
inline bool tryParseLong(std::string_view s, long& out) {
  return parse_detail::parseWhole(s, out);
}

}  // namespace cdbp
