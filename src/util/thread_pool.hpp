// A small fixed-size thread pool plus parallel_for, used by the benchmark
// harness to run independent (seed, parameter) simulation cells
// concurrently. Results are written into pre-sized slots, so no
// synchronization is needed beyond the pool's own queue.
//
// Concurrency contract (verified under the `tsan` CMake preset):
//
//  * submit() and wait() may be called from any thread, including from
//    inside a running task (a task may submit follow-up work).
//  * wait() returns only when every task whose submit() happens-before the
//    wait() call has finished, *including* any tasks those tasks submitted
//    before their own completion. A submit() that races with wait() (no
//    happens-before edge, e.g. from an unrelated thread) is not guaranteed
//    to be observed by that wait() — callers that need such a guarantee
//    must order their submits before the wait themselves, as parallelFor
//    does by submitting everything from the calling thread first.
//  * If a task throws, the exception is captured and rethrown from the next
//    wait() call (first exception wins; later ones are dropped). The pool
//    itself stays usable: workers keep running and in-flight accounting is
//    exception-safe, so a throwing task can never deadlock wait().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace cdbp {

class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers. Exceptions captured after the
  /// last wait() are swallowed (there is no caller left to rethrow to).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution. See the class comment for how task
  /// exceptions are reported.
  void submit(std::function<void()> task) CDBP_EXCLUDES(mutex_);

  /// Blocks until every previously submitted task has finished (see the
  /// class comment for the precise ordering contract), then rethrows the
  /// first captured task exception, if any.
  void wait() CDBP_EXCLUDES(mutex_);

  std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerLoop() CDBP_EXCLUDES(mutex_);

  std::vector<std::thread> workers_;
  Mutex mutex_;
  // condition_variable_any (not condition_variable) so the waiters can
  // pass the annotated Mutex itself — see util/mutex.hpp.
  std::condition_variable_any taskReady_;
  std::condition_variable_any allDone_;
  std::queue<std::function<void()>> queue_ CDBP_GUARDED_BY(mutex_);
  std::size_t inFlight_ CDBP_GUARDED_BY(mutex_) = 0;
  bool stopping_ CDBP_GUARDED_BY(mutex_) = false;
  std::exception_ptr firstError_ CDBP_GUARDED_BY(mutex_);
};

/// Runs body(i) for i in [0, count) across the pool and waits. The body
/// must only touch state owned by index i (or otherwise synchronized).
/// Exception-safe: if one or more bodies throw, every index still runs to
/// completion (or failure), wait() cannot deadlock, and the first exception
/// is rethrown to the caller once all indices have been processed.
void parallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace cdbp
