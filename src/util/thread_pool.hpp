// A small fixed-size thread pool plus parallel_for, used by the benchmark
// harness to run independent (seed, parameter) simulation cells
// concurrently. Results are written into pre-sized slots, so no
// synchronization is needed beyond the pool's own queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cdbp {

class ThreadPool {
 public:
  /// `threads` = 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait();

  std::size_t threadCount() const { return workers_.size(); }

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across the pool and waits. The body
/// must only touch state owned by index i (or otherwise synchronized).
void parallelFor(ThreadPool& pool, std::size_t count,
                 const std::function<void(std::size_t)>& body);

}  // namespace cdbp
