#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cdbp {

namespace {
constexpr char kGlyphs[] = {'*', '+', 'o', 'x', '#', '@', '%', '&'};
}

AsciiChart::AsciiChart(int width, int height) : width_(width), height_(height) {
  if (width_ < 10 || height_ < 4) {
    throw std::invalid_argument("AsciiChart: plot area too small");
  }
}

void AsciiChart::addSeries(std::string name, std::vector<double> x,
                           std::vector<double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("AsciiChart::addSeries: x/y size mismatch");
  }
  char glyph = kGlyphs[series_.size() % (sizeof(kGlyphs) / sizeof(kGlyphs[0]))];
  series_.push_back({std::move(name), std::move(x), std::move(y), glyph});
}

void AsciiChart::print(std::ostream& os) const {
  double xMin = std::numeric_limits<double>::infinity();
  double xMax = -xMin;
  double yMin = std::numeric_limits<double>::infinity();
  double yMax = -yMin;
  for (const Series& s : series_) {
    for (double v : s.x) {
      double vv = logX_ ? std::log10(v) : v;
      xMin = std::min(xMin, vv);
      xMax = std::max(xMax, vv);
    }
    for (double v : s.y) {
      yMin = std::min(yMin, v);
      yMax = std::max(yMax, v);
    }
  }
  if (!(xMax > xMin)) xMax = xMin + 1;
  if (!(yMax > yMin)) yMax = yMin + 1;

  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(static_cast<std::size_t>(width_), ' '));
  for (const Series& s : series_) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      double xv = logX_ ? std::log10(s.x[i]) : s.x[i];
      int col = static_cast<int>(std::lround((xv - xMin) / (xMax - xMin) *
                                             (width_ - 1)));
      int row = static_cast<int>(std::lround((s.y[i] - yMin) / (yMax - yMin) *
                                             (height_ - 1)));
      col = std::clamp(col, 0, width_ - 1);
      row = std::clamp(row, 0, height_ - 1);
      grid[static_cast<std::size_t>(height_ - 1 - row)]
          [static_cast<std::size_t>(col)] = s.glyph;
    }
  }

  std::ostringstream top;
  top << std::setprecision(4) << yMax;
  std::ostringstream bottom;
  bottom << std::setprecision(4) << yMin;
  std::size_t label = std::max(top.str().size(), bottom.str().size());

  for (int row = 0; row < height_; ++row) {
    std::string prefix(label, ' ');
    if (row == 0) prefix = top.str() + std::string(label - top.str().size(), ' ');
    if (row == height_ - 1) {
      prefix = bottom.str() + std::string(label - bottom.str().size(), ' ');
    }
    os << prefix << " |" << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << std::string(label + 1, ' ') << '+' << std::string(static_cast<std::size_t>(width_), '-')
     << '\n';
  std::ostringstream left;
  left << std::setprecision(4) << (logX_ ? std::pow(10.0, xMin) : xMin);
  std::ostringstream right;
  right << std::setprecision(4) << (logX_ ? std::pow(10.0, xMax) : xMax);
  os << std::string(label + 2, ' ') << left.str()
     << std::string(
            std::max<std::size_t>(
                1, static_cast<std::size_t>(width_) - left.str().size() -
                       right.str().size()),
            ' ')
     << right.str() << (logX_ ? "  (log x)" : "") << '\n';
  for (const Series& s : series_) {
    os << "  " << s.glyph << " = " << s.name << '\n';
  }
}

}  // namespace cdbp
