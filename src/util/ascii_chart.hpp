// Terminal line charts: the bench harness renders each paper figure both as
// a numeric table and as an ASCII plot, so "shape" claims (who wins, where
// curves cross) can be eyeballed straight from bench output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace cdbp {

class AsciiChart {
 public:
  /// `width`/`height` are the plot area in character cells.
  AsciiChart(int width = 72, int height = 20);

  /// Adds a named series. Each series is drawn with its own glyph
  /// (assigned in insertion order). x must be ascending.
  void addSeries(std::string name, std::vector<double> x, std::vector<double> y);

  /// Log-scale the x axis (useful for mu sweeps spanning decades).
  void setLogX(bool enabled) { logX_ = enabled; }

  void print(std::ostream& os) const;

 private:
  struct Series {
    std::string name;
    std::vector<double> x;
    std::vector<double> y;
    char glyph;
  };

  int width_;
  int height_;
  bool logX_ = false;
  std::vector<Series> series_;
};

}  // namespace cdbp
