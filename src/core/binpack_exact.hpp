// Exact and heuristic solvers for classical (static) bin packing.
//
// Used to evaluate OPT(R, t) — the minimum number of unit bins into which
// the items active at time t can be repacked — which defines the offline
// adversary OPT_total (paper §3.2).
#pragma once

#include <cstddef>
#include <vector>

#include "core/types.hpp"

namespace cdbp {

/// Number of bins used by First Fit Decreasing on `sizes`.
std::size_t firstFitDecreasingBinCount(std::vector<Size> sizes);

/// ceil(sum of sizes) — the fractional lower bound on the bin count.
std::size_t fractionalBinLowerBound(const std::vector<Size>& sizes);

/// Minimum number of unit-capacity bins that hold all `sizes`.
///
/// Branch-and-bound with descending-size ordering, symmetry breaking (at
/// most one "open a new bin" branch per node) and the fractional lower
/// bound for pruning. Exact for any input, but exponential in the worst
/// case; `maxNodes` caps the search (0 = unlimited). If the cap is hit the
/// best feasible solution found so far (an upper bound) is returned and
/// `*exact` is set to false when provided.
std::size_t minBinCount(std::vector<Size> sizes, std::size_t maxNodes = 0,
                        bool* exact = nullptr);

}  // namespace cdbp
