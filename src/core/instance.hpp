// Instance: an immutable list of items to pack, plus derived statistics.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/item.hpp"
#include "core/types.hpp"

namespace cdbp {

/// Thrown when an instance violates the model's preconditions
/// (size outside (0,1], departure <= arrival, ...).
class InstanceError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A MinUsageTime DBP problem instance: the item list R.
///
/// Construction validates every item against the model of §3.1 and
/// renumbers ids densely in the order given. Use `sortedByArrival()` to get
/// the arrival-order view that online algorithms consume.
class Instance {
 public:
  Instance() = default;

  /// Validates and adopts `items`. Item ids are reassigned to the position
  /// of each item in the list.
  explicit Instance(std::vector<Item> items);

  const std::vector<Item>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const Item& operator[](ItemId id) const { return items_[id]; }

  /// Items ordered by (arrival, id) — the order in which an online
  /// algorithm sees them.
  std::vector<Item> sortedByArrival() const;

  /// Total time-space demand d(R) = sum s(r) * l(I(r)) (Proposition 1).
  double demand() const;

  /// Span of R: measure of the union of all active intervals
  /// (Proposition 2).
  Time span() const;

  /// The union of active intervals as a normalized interval set.
  IntervalSet activeUnion() const;

  /// Minimum item duration Delta; 0 for an empty instance.
  Time minDuration() const;

  /// Maximum item duration; 0 for an empty instance.
  Time maxDuration() const;

  /// mu = max duration / min duration; 1 for an empty instance.
  double durationRatio() const;

  /// All distinct event times (arrivals and departures), sorted.
  std::vector<Time> eventTimes() const;

  /// Total size of active items at time t: S(t).
  Size totalSizeAt(Time t) const;

  /// Ids of items active at time t.
  std::vector<ItemId> activeAt(Time t) const;

  /// Maximum over time of the number of simultaneously active items.
  std::size_t maxConcurrentItems() const;

  /// Maximum over time of S(t).
  Size peakTotalSize() const;

  /// A new instance holding only the items selected by `keep[id]`.
  /// Ids are re-densified.
  Instance filter(const std::vector<bool>& keep) const;

 private:
  std::vector<Item> items_;
};

/// Convenience builder used pervasively in tests and examples.
///
///   Instance inst = InstanceBuilder()
///       .add(0.5, 0.0, 4.0)
///       .add(0.25, 1.0, 3.0)
///       .build();
class InstanceBuilder {
 public:
  /// Appends an item with the given size active on [arrival, departure).
  InstanceBuilder& add(Size size, Time arrival, Time departure) {
    items_.emplace_back(static_cast<ItemId>(items_.size()), size, arrival, departure);
    return *this;
  }

  Instance build() { return Instance(std::move(items_)); }

 private:
  std::vector<Item> items_;
};

}  // namespace cdbp
