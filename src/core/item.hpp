// Item: the unit of work to pack (a job in the scheduling interpretation).
#pragma once

#include <ostream>

#include "core/interval.hpp"
#include "core/types.hpp"

namespace cdbp {

/// An item r with size s(r) and active interval I(r) = [arrival, departure).
///
/// Items are immutable once constructed; identity is carried by `id`, which
/// is the item's index in its owning Instance.
struct Item {
  ItemId id = 0;
  Size size = 0;
  Interval interval;

  Item() = default;
  Item(ItemId id_, Size size_, Time arrival, Time departure)
      : id(id_), size(size_), interval(arrival, departure) {}

  Time arrival() const { return interval.lo; }
  Time departure() const { return interval.hi; }

  /// Item duration l(I(r)).
  Time duration() const { return interval.length(); }

  /// Time-space demand s(r) * l(I(r)) (paper §3.1).
  double demand() const { return size * interval.length(); }

  /// Whether the item is active at time t (arrival inclusive, departure
  /// exclusive).
  bool activeAt(Time t) const { return interval.contains(t); }

  friend bool operator==(const Item&, const Item&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Item& r) {
  return os << "Item{#" << r.id << " s=" << r.size << " I=" << r.interval << "}";
}

}  // namespace cdbp
