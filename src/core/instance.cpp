#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/epsilon.hpp"

namespace cdbp {

Instance::Instance(std::vector<Item> items) : items_(std::move(items)) {
  for (std::size_t i = 0; i < items_.size(); ++i) {
    Item& r = items_[i];
    if (!(r.size > 0) || !std::isfinite(r.size)) {
      throw InstanceError("item " + std::to_string(i) +
                          ": size must be finite and positive, got " +
                          std::to_string(r.size));
    }
    if (lt(kBinCapacity, r.size)) {
      throw InstanceError("item " + std::to_string(i) +
                          ": size exceeds the unit bin capacity: " +
                          std::to_string(r.size));
    }
    if (!std::isfinite(r.interval.lo) || !std::isfinite(r.interval.hi)) {
      throw InstanceError("item " + std::to_string(i) +
                          ": arrival/departure must be finite");
    }
    if (!(r.interval.hi > r.interval.lo)) {
      throw InstanceError("item " + std::to_string(i) +
                          ": departure must be strictly after arrival");
    }
    r.id = static_cast<ItemId>(i);
  }
}

std::vector<Item> Instance::sortedByArrival() const {
  std::vector<Item> order = items_;
  std::stable_sort(order.begin(), order.end(), [](const Item& a, const Item& b) {
    if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
    return a.id < b.id;
  });
  return order;
}

double Instance::demand() const {
  double total = 0;
  for (const Item& r : items_) total += r.demand();
  return total;
}

IntervalSet Instance::activeUnion() const {
  IntervalSet set;
  for (const Item& r : items_) set.add(r.interval);
  return set;
}

Time Instance::span() const { return activeUnion().measure(); }

Time Instance::minDuration() const {
  Time best = kTimeInfinity;
  for (const Item& r : items_) best = std::min(best, r.duration());
  return items_.empty() ? 0 : best;
}

Time Instance::maxDuration() const {
  Time best = 0;
  for (const Item& r : items_) best = std::max(best, r.duration());
  return best;
}

double Instance::durationRatio() const {
  if (items_.empty()) return 1.0;
  return maxDuration() / minDuration();
}

std::vector<Time> Instance::eventTimes() const {
  std::set<Time> times;
  for (const Item& r : items_) {
    times.insert(r.arrival());
    times.insert(r.departure());
  }
  return {times.begin(), times.end()};
}

Size Instance::totalSizeAt(Time t) const {
  Size total = 0;
  for (const Item& r : items_) {
    if (r.activeAt(t)) total += r.size;
  }
  return total;
}

std::vector<ItemId> Instance::activeAt(Time t) const {
  std::vector<ItemId> ids;
  for (const Item& r : items_) {
    if (r.activeAt(t)) ids.push_back(r.id);
  }
  return ids;
}

std::size_t Instance::maxConcurrentItems() const {
  std::size_t best = 0;
  for (Time t : eventTimes()) best = std::max(best, activeAt(t).size());
  return best;
}

Size Instance::peakTotalSize() const {
  Size best = 0;
  for (Time t : eventTimes()) best = std::max(best, totalSizeAt(t));
  return best;
}

Instance Instance::filter(const std::vector<bool>& keep) const {
  std::vector<Item> kept;
  for (const Item& r : items_) {
    if (r.id < keep.size() && keep[r.id]) kept.push_back(r);
  }
  return Instance(std::move(kept));
}

}  // namespace cdbp
