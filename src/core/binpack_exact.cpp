#include "core/binpack_exact.hpp"

#include <algorithm>
#include <cmath>

#include "core/epsilon.hpp"

namespace cdbp {

std::size_t firstFitDecreasingBinCount(std::vector<Size> sizes) {
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  std::vector<Size> levels;
  for (Size s : sizes) {
    bool placed = false;
    for (Size& level : levels) {
      if (fitsCapacity(level, s)) {
        level += s;
        placed = true;
        break;
      }
    }
    if (!placed) levels.push_back(s);
  }
  return levels.size();
}

std::size_t fractionalBinLowerBound(const std::vector<Size>& sizes) {
  double total = 0;
  for (Size s : sizes) total += s;
  if (total <= kSizeEps) return 0;
  double nearest = std::round(total);
  if (std::fabs(total - nearest) <= kSizeEps) total = nearest;
  return static_cast<std::size_t>(std::ceil(total - kSizeEps));
}

namespace {

struct BranchAndBound {
  std::vector<Size> sizes;  // descending
  std::vector<Size> levels;
  std::size_t best;
  std::size_t nodes = 0;
  std::size_t maxNodes;
  bool exact = true;

  void search(std::size_t index, double remaining) {
    if (maxNodes != 0 && nodes >= maxNodes) {
      exact = false;
      return;
    }
    ++nodes;
    if (levels.size() >= best) return;
    if (index == sizes.size()) {
      best = levels.size();
      return;
    }
    // Fractional bound: open bins cannot shrink, and the remaining volume
    // needs at least ceil(remaining - free space in open bins) extra bins.
    double freeSpace = 0;
    for (Size level : levels) freeSpace += freeCapacity(level);
    double overflow = remaining - freeSpace;
    if (overflow > kSizeEps) {
      std::size_t extra = static_cast<std::size_t>(std::ceil(overflow - kSizeEps));
      if (levels.size() + extra >= best) return;
    }

    Size s = sizes[index];
    // Try existing bins; skip bins with identical levels (symmetric).
    for (std::size_t b = 0; b < levels.size(); ++b) {
      bool duplicate = false;
      for (std::size_t a = 0; a < b; ++a) {
        if (approxEq(levels[a], levels[b])) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      if (fitsCapacity(levels[b], s)) {
        levels[b] += s;
        search(index + 1, remaining - s);
        levels[b] -= s;
      }
    }
    // One canonical "new bin" branch.
    if (levels.size() + 1 < best) {
      levels.push_back(s);
      search(index + 1, remaining - s);
      levels.pop_back();
    }
  }
};

}  // namespace

std::size_t minBinCount(std::vector<Size> sizes, std::size_t maxNodes, bool* exact) {
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  std::size_t upper = firstFitDecreasingBinCount(sizes);
  std::size_t lower = fractionalBinLowerBound(sizes);
  if (exact) *exact = true;
  if (upper == lower || sizes.empty()) return upper;

  BranchAndBound bb;
  bb.sizes = std::move(sizes);
  bb.best = upper;
  bb.maxNodes = maxNodes;
  double total = 0;
  for (Size s : bb.sizes) total += s;
  bb.search(0, total);
  if (exact) *exact = bb.exact;
  return bb.best;
}

}  // namespace cdbp
