// OPT_total: the usage time of the offline adversary that may repack all
// active items at any instant (paper §3.2).
//
//   OPT_total(R) = integral over the span of OPT(R, t) dt
//
// where OPT(R, t) is the minimum bin count for the items active at time t.
// Computing OPT(R, t) exactly is itself NP-hard, so the evaluator returns an
// interval [lower, upper]: exact when every event segment was solved to
// optimality within the node budget, otherwise bracketed by the fractional
// bound and First Fit Decreasing.
#pragma once

#include "core/instance.hpp"

namespace cdbp {

struct OptTotalResult {
  double lower = 0;   ///< certified lower bound on OPT_total
  double upper = 0;   ///< certified upper bound on OPT_total
  bool exact = true;  ///< lower == upper (every segment solved exactly)

  double value() const { return upper; }
};

/// Sweeps the event segments of `instance` and sums segment-length-weighted
/// optimal bin counts. `maxNodesPerSegment` caps the branch-and-bound effort
/// spent on each segment (0 = unlimited).
OptTotalResult optTotal(const Instance& instance,
                        std::size_t maxNodesPerSegment = 2'000'000);

}  // namespace cdbp
