// Piecewise-constant functions of time.
//
// The workhorse data structure of cdbp: bin level profiles, the aggregate
// demand curve S(t), the demand chart's ceiling, and open-bin counts are all
// step functions. Supports range-add updates and range queries (max, value,
// integral, ceil-integral, support measure).
#pragma once

#include <map>
#include <vector>

#include "core/interval.hpp"
#include "core/types.hpp"

namespace cdbp {

/// A right-continuous piecewise-constant function f: Time -> double that is
/// zero outside finitely many segments. Internally a sorted map from segment
/// start time to the value held on [start, next-start).
class StepFunction {
 public:
  StepFunction() = default;

  /// f(t) += delta for all t in [I.lo, I.hi). No-op for empty intervals.
  void add(const Interval& I, double delta);

  /// Value f(t).
  double valueAt(Time t) const;

  /// max f over [I.lo, I.hi); 0 for empty intervals. Note a range that lies
  /// entirely outside the support evaluates to the function's value there
  /// (i.e. 0).
  double maxOver(const Interval& I) const;

  /// min f over [I.lo, I.hi); 0 for empty intervals.
  double minOver(const Interval& I) const;

  /// Global maximum of f (0 if f is identically zero).
  double maxValue() const;

  /// Integral of f over its whole support.
  double integral() const;

  /// Integral of f over [I.lo, I.hi).
  double integralOver(const Interval& I) const;

  /// Integral of ceil(f) over the region where f > eps. This is the
  /// Proposition 3 bound when f = S(t). Values within `eps` of an integer
  /// are rounded to it before taking the ceiling, so accumulated
  /// floating-point noise does not inflate the bound.
  double ceilIntegral(double eps) const;

  /// Measure of { t : f(t) > eps } (the span when f is a level profile).
  Time supportMeasure(double eps) const;

  /// The segments [start, end) with their values, including only segments
  /// where the stored value is non-zero. Sorted by start.
  struct Segment {
    Interval interval;
    double value = 0;
  };
  std::vector<Segment> segments() const;

  /// All segment breakpoints (including the leading/trailing zero regions'
  /// boundaries), sorted.
  std::vector<Time> breakpoints() const;

  bool empty() const { return points_.empty(); }

  /// Drops internal breakpoints whose removal does not change the function
  /// (adjacent equal values). Queries are unaffected; this is an
  /// optimization for long-running simulations.
  void normalize();

 private:
  // Ensures a breakpoint exists exactly at t and returns the iterator to it.
  std::map<Time, double>::iterator split(Time t);

  // Maps segment start -> value on [start, next key). The function is 0
  // before the first key. The last key always holds value 0 (the trailing
  // zero region) once any add() happened.
  std::map<Time, double> points_;
};

}  // namespace cdbp
