#include "core/brute_force.hpp"

#include <vector>

#include "core/bin_timeline.hpp"

namespace cdbp {

namespace {

struct Search {
  const Instance* instance = nullptr;
  std::vector<BinTimeline> bins;
  std::vector<BinId> assignment;
  std::vector<BinId> bestAssignment;
  Time bestUsage = kTimeInfinity;
  std::size_t explored = 0;

  Time currentUsage() const {
    Time total = 0;
    for (const BinTimeline& bin : bins) total += bin.usage();
    return total;
  }

  void run(std::size_t index) {
    ++explored;
    // Spans only grow as items are added, so the current usage is a valid
    // lower bound on any completion of this partial assignment.
    if (currentUsage() >= bestUsage) return;
    if (index == instance->size()) {
      bestUsage = currentUsage();
      bestAssignment = assignment;
      return;
    }
    const Item& r = instance->items()[index];
    // Canonical enumeration: try each existing bin, then exactly one new
    // bin. Bins are identified by creation order, which makes every set
    // partition appear exactly once.
    for (std::size_t b = 0; b < bins.size(); ++b) {
      if (!bins[b].fits(r)) continue;
      BinTimeline saved = bins[b];
      bins[b].add(r);
      assignment[index] = static_cast<BinId>(b);
      run(index + 1);
      bins[b] = std::move(saved);
    }
    bins.emplace_back();
    bins.back().add(r);
    assignment[index] = static_cast<BinId>(bins.size() - 1);
    run(index + 1);
    bins.pop_back();
    assignment[index] = kUnassigned;
  }
};

}  // namespace

std::optional<BruteForceResult> bruteForceOptimal(const Instance& instance,
                                                  std::size_t maxItems) {
  if (instance.size() > maxItems) return std::nullopt;
  Search search;
  search.instance = &instance;
  search.assignment.assign(instance.size(), kUnassigned);
  search.run(0);

  BruteForceResult result{Packing(instance, search.bestAssignment),
                          search.bestUsage, search.explored};
  return result;
}

}  // namespace cdbp
