#include "core/opt_total.hpp"

#include <algorithm>
#include <vector>

#include "core/binpack_exact.hpp"

namespace cdbp {

OptTotalResult optTotal(const Instance& instance, std::size_t maxNodesPerSegment) {
  OptTotalResult result;
  std::vector<Time> events = instance.eventTimes();
  // Sweep elementary segments [events[i], events[i+1]); the active set is
  // constant on each.
  for (std::size_t i = 0; i + 1 < events.size(); ++i) {
    Time lo = events[i];
    Time hi = events[i + 1];
    std::vector<Size> active;
    for (const Item& r : instance.items()) {
      if (r.activeAt(lo)) active.push_back(r.size);
    }
    if (active.empty()) continue;
    bool exact = true;
    std::size_t bins = minBinCount(active, maxNodesPerSegment, &exact);
    Time len = hi - lo;
    result.upper += static_cast<double>(bins) * len;
    if (exact) {
      result.lower += static_cast<double>(bins) * len;
    } else {
      result.lower +=
          static_cast<double>(fractionalBinLowerBound(active)) * len;
      result.exact = false;
    }
  }
  return result;
}

}  // namespace cdbp
