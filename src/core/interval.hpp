// Half-open time intervals [lo, hi) and interval-set algebra.
//
// The paper (§3.1) views all active intervals as half-open, which makes
// "departing at t" and "arriving at t" non-overlapping. Every interval in
// cdbp follows that convention.
#pragma once

#include <algorithm>
#include <cassert>
#include <ostream>
#include <vector>

#include "core/types.hpp"

namespace cdbp {

/// A half-open time interval [lo, hi). Empty when hi <= lo.
struct Interval {
  Time lo = 0;
  Time hi = 0;

  constexpr Interval() = default;
  constexpr Interval(Time lo_, Time hi_) : lo(lo_), hi(hi_) {}

  /// Length l(I) = hi - lo; zero for empty intervals.
  constexpr Time length() const { return hi > lo ? hi - lo : 0; }

  constexpr bool empty() const { return hi <= lo; }

  /// Whether time t lies inside [lo, hi).
  constexpr bool contains(Time t) const { return lo <= t && t < hi; }

  /// Whether `other` is fully contained in this interval.
  constexpr bool contains(const Interval& other) const {
    return other.empty() || (lo <= other.lo && other.hi <= hi);
  }

  /// Positive-measure overlap with `other` (half-open semantics: touching
  /// endpoints do not overlap).
  constexpr bool overlaps(const Interval& other) const {
    return std::max(lo, other.lo) < std::min(hi, other.hi);
  }

  /// Intersection; empty if disjoint.
  constexpr Interval intersect(const Interval& other) const {
    return {std::max(lo, other.lo), std::min(hi, other.hi)};
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const Interval& I) {
  return os << "[" << I.lo << ", " << I.hi << ")";
}

/// A set of disjoint, sorted, non-empty half-open intervals.
///
/// Supports the operations the paper's accounting needs: union-insert,
/// total measure (the "span" of an item list is the measure of the union of
/// its active intervals), and point/interval coverage queries.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Builds the normalized union of an arbitrary collection of intervals.
  explicit IntervalSet(std::vector<Interval> intervals) {
    for (const Interval& I : intervals) add(I);
  }

  /// Inserts [I.lo, I.hi), merging with existing overlapping or touching
  /// intervals. Amortized O(log n + k) where k intervals are absorbed.
  void add(Interval I) {
    if (I.empty()) return;
    // Find the first stored interval ending at or after I.lo; everything
    // before it is untouched.
    auto first = std::lower_bound(
        parts_.begin(), parts_.end(), I.lo,
        [](const Interval& p, Time t) { return p.hi < t; });
    auto it = first;
    while (it != parts_.end() && it->lo <= I.hi) {
      I.lo = std::min(I.lo, it->lo);
      I.hi = std::max(I.hi, it->hi);
      ++it;
    }
    it = parts_.erase(first, it);
    parts_.insert(it, I);
  }

  void add(const IntervalSet& other) {
    for (const Interval& I : other.parts_) add(I);
  }

  /// Total measure of the set (sum of part lengths).
  Time measure() const {
    Time total = 0;
    for (const Interval& I : parts_) total += I.length();
    return total;
  }

  bool empty() const { return parts_.empty(); }

  bool contains(Time t) const {
    auto it = std::upper_bound(
        parts_.begin(), parts_.end(), t,
        [](Time tt, const Interval& p) { return tt < p.lo; });
    return it != parts_.begin() && std::prev(it)->contains(t);
  }

  /// Whether any part has positive-measure overlap with I.
  bool overlaps(const Interval& I) const {
    if (I.empty()) return false;
    auto it = std::lower_bound(
        parts_.begin(), parts_.end(), I.lo,
        [](const Interval& p, Time t) { return p.hi <= t; });
    return it != parts_.end() && it->overlaps(I);
  }

  /// Left endpoint of the earliest part; asserts on empty sets.
  Time min() const {
    assert(!parts_.empty());
    return parts_.front().lo;
  }

  /// Right endpoint of the latest part; asserts on empty sets.
  Time max() const {
    assert(!parts_.empty());
    return parts_.back().hi;
  }

  const std::vector<Interval>& parts() const { return parts_; }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  std::vector<Interval> parts_;  // disjoint, sorted by lo
};

/// Measure of the union of `intervals` — the span of an item list when the
/// intervals are the items' active intervals (paper §3.1, Figure 1).
inline Time unionMeasure(const std::vector<Interval>& intervals) {
  return IntervalSet(intervals).measure();
}

}  // namespace cdbp
