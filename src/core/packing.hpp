// Packing: an assignment of items to bins, with validation and metrics.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/bin_timeline.hpp"
#include "core/instance.hpp"
#include "core/step_function.hpp"
#include "core/types.hpp"
#include "util/check.hpp"

namespace cdbp {

/// The result of running a packing algorithm on an Instance: bin id per
/// item. Bin ids must be dense 0..numBins-1 in bin-opening order (the order
/// is only used for reporting; feasibility does not depend on it).
///
/// Lifetime: a Packing references the Instance it was built from (it does
/// not copy it). The instance must outlive the packing and keep a stable
/// address — wrap it in a shared_ptr if the packing is returned past the
/// instance's scope (see FlexibleSchedule for the pattern).
class Packing {
 public:
  Packing() = default;

  /// `binOf[id]` is the bin of item `id`; every item must be assigned.
  Packing(const Instance& instance, std::vector<BinId> binOf);

  const Instance& instance() const { return *instance_; }
  const std::vector<BinId>& binOf() const { return binOf_; }
  BinId binOf(ItemId id) const {
    CDBP_DCHECK(id < binOf_.size(), "binOf: item ", id, " out of range");
    return binOf_[id];
  }
  std::size_t numBins() const { return bins_.size(); }

  /// The reconstructed level/usage timeline of bin b.
  const BinTimeline& bin(BinId b) const {
    CDBP_DCHECK(b >= 0 && static_cast<std::size_t>(b) < bins_.size(),
                "bin: id ", b, " out of range");
    return bins_[static_cast<std::size_t>(b)];
  }

  /// Total bin usage time — the MinUsageTime objective.
  Time totalUsage() const;

  /// Usage time of a single bin (span of its items).
  Time binUsage(BinId b) const { return bin(b).usage(); }

  /// Number of bins that are non-empty at time t.
  std::size_t openBinsAt(Time t) const;

  /// Maximum over time of the number of concurrently non-empty bins (the
  /// classical DBP objective, reported for context).
  std::size_t maxConcurrentBins() const;

  /// The open-bin-count step function over time.
  StepFunction openBinProfile() const;

  /// Average level of non-empty bins, integrated over busy time, divided by
  /// total usage: a utilization figure in (0, 1].
  double averageUtilization() const;

  /// Returns an error description if the packing is infeasible (a bin's
  /// level exceeds the unit capacity somewhere, an item is unassigned, or
  /// bin ids are not dense), or std::nullopt when valid.
  std::optional<std::string> validate() const;

 private:
  const Instance* instance_ = nullptr;
  std::vector<BinId> binOf_;
  std::vector<BinTimeline> bins_;
};

}  // namespace cdbp
