// Fundamental scalar types shared by every cdbp module.
#pragma once

#include <cstdint>
#include <limits>

namespace cdbp {

/// Continuous wall-clock time. Item arrival/departure times, spans and bin
/// usage times are all expressed in these (dimensionless) units.
using Time = double;

/// Resource demand of an item, as a fraction of the unit bin capacity.
/// A valid item size lies in (0, 1].
using Size = double;

/// Identifier of an item within an Instance. Dense, 0-based.
using ItemId = std::uint32_t;

/// Identifier of a bin within a packing. Dense, 0-based, ordered by the
/// opening order of the bins (bin 0 opened first).
using BinId = std::int32_t;

/// Sentinel returned by placement policies to request a fresh bin.
inline constexpr BinId kNewBin = -1;

/// Sentinel for "item not assigned to any bin".
inline constexpr BinId kUnassigned = -2;

/// The capacity of every bin. The paper normalizes capacities to 1 without
/// loss of generality; we keep the constant named for readability.
inline constexpr Size kBinCapacity = 1.0;

inline constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

}  // namespace cdbp
