// Centralized floating-point tolerances.
//
// All geometric decisions in cdbp (capacity checks, demand-chart coloring,
// stripe classification in Dual Coloring) compare sums and differences of
// item sizes and times. Using one shared absolute tolerance keeps those
// decisions mutually consistent: a packing accepted by an algorithm is also
// accepted by the validator, and vice versa.
#pragma once

#include <cmath>

#include "core/types.hpp"

namespace cdbp {

/// Absolute tolerance for size/level comparisons. Item sizes are O(1) and an
/// instance touches each level with at most a few thousand additions, so 1e-9
/// leaves ~6 decimal digits of headroom above double rounding error.
inline constexpr double kSizeEps = 1e-9;

/// Absolute tolerance for time comparisons (event coincidence).
inline constexpr double kTimeEps = 1e-9;

/// a <= b up to tolerance.
inline bool leq(double a, double b, double eps = kSizeEps) { return a <= b + eps; }

/// a < b by more than the tolerance.
inline bool lt(double a, double b, double eps = kSizeEps) { return a < b - eps; }

/// |a - b| within tolerance.
inline bool approxEq(double a, double b, double eps = kSizeEps) {
  return std::fabs(a - b) <= eps;
}

/// True when adding `size` to a bin currently at `level` stays within the
/// unit capacity (up to tolerance).
inline bool fitsCapacity(Size level, Size size) {
  return leq(level + size, kBinCapacity);
}

/// Remaining headroom of a bin at `level`: kBinCapacity - level. The single
/// sanctioned way to do raw capacity arithmetic outside this header (the
/// cdbp_lint `capacity-compare` rule flags direct kBinCapacity expressions).
inline Size freeCapacity(Size level) { return kBinCapacity - level; }

/// Conservative upper bound on any level that can still fit `size`:
/// fitsCapacity(L, size) implies L <= kBinCapacity + kSizeEps - size up to
/// a few ulps of rounding in fl(L + size), so padding by 1e-12 (orders of
/// magnitude above that rounding, orders below kSizeEps) guarantees every
/// fitting level lies at or below the bound. The indexed Best Fit query
/// seeks down from this bound and re-validates with fitsCapacity itself,
/// keeping its answers bit-identical to the linear scan.
inline Size fittingLevelUpperBound(Size size) {
  return kBinCapacity + kSizeEps - size + 1e-12;
}

}  // namespace cdbp
