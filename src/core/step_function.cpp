#include "core/step_function.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace cdbp {

std::map<Time, double>::iterator StepFunction::split(Time t) {
  auto it = points_.lower_bound(t);
  if (it != points_.end() && it->first == t) return it;
  // Value just before t: 0 if t precedes the first breakpoint.
  double value = (it == points_.begin()) ? 0.0 : std::prev(it)->second;
  return points_.emplace_hint(it, t, value);
}

void StepFunction::add(const Interval& I, double delta) {
  if (I.empty() || delta == 0) return;
  CDBP_DCHECK(std::isfinite(I.lo) && std::isfinite(I.hi) && std::isfinite(delta),
              "add: non-finite update [", I.lo, ", ", I.hi, ") += ", delta);
  auto hiIt = split(I.hi);  // split hi first so lo's split can't invalidate it
  auto loIt = split(I.lo);
  for (auto it = loIt; it != hiIt; ++it) it->second += delta;
  // Breakpoint monotonicity invariant: updates only touch [lo, hi), so the
  // trailing region (at and past the last key) always holds exactly 0.
  CDBP_DCHECK(points_.empty() || points_.rbegin()->second == 0.0,
              "add: trailing segment holds ", points_.rbegin()->second,
              " instead of 0");
}

double StepFunction::valueAt(Time t) const {
  auto it = points_.upper_bound(t);
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->second;
}

double StepFunction::maxOver(const Interval& I) const {
  if (I.empty()) return 0.0;
  double best = valueAt(I.lo);
  for (auto it = points_.upper_bound(I.lo); it != points_.end() && it->first < I.hi;
       ++it) {
    best = std::max(best, it->second);
  }
  return best;
}

double StepFunction::minOver(const Interval& I) const {
  if (I.empty()) return 0.0;
  double best = valueAt(I.lo);
  for (auto it = points_.upper_bound(I.lo); it != points_.end() && it->first < I.hi;
       ++it) {
    best = std::min(best, it->second);
  }
  return best;
}

double StepFunction::maxValue() const {
  double best = 0.0;
  for (const auto& [t, v] : points_) best = std::max(best, v);
  return best;
}

double StepFunction::integral() const {
  double total = 0.0;
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    auto next = std::next(it);
    if (next == points_.end()) break;  // trailing region holds value 0
    total += it->second * (next->first - it->first);
  }
  return total;
}

double StepFunction::integralOver(const Interval& I) const {
  if (I.empty()) return 0.0;
  double total = 0.0;
  Time cursor = I.lo;
  double value = valueAt(I.lo);
  for (auto it = points_.upper_bound(I.lo); it != points_.end() && it->first < I.hi;
       ++it) {
    total += value * (it->first - cursor);
    cursor = it->first;
    value = it->second;
  }
  total += value * (I.hi - cursor);
  return total;
}

double StepFunction::ceilIntegral(double eps) const {
  double total = 0.0;
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    auto next = std::next(it);
    if (next == points_.end()) break;
    if (it->second <= eps) continue;
    double nearest = std::round(it->second);
    double value = (std::fabs(it->second - nearest) <= eps) ? nearest : it->second;
    total += std::ceil(value) * (next->first - it->first);
  }
  return total;
}

Time StepFunction::supportMeasure(double eps) const {
  Time total = 0.0;
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    auto next = std::next(it);
    if (next == points_.end()) break;
    if (it->second > eps) total += next->first - it->first;
  }
  return total;
}

std::vector<StepFunction::Segment> StepFunction::segments() const {
  std::vector<Segment> out;
  for (auto it = points_.begin(); it != points_.end(); ++it) {
    auto next = std::next(it);
    if (next == points_.end()) break;
    if (it->second != 0.0) {
      out.push_back({Interval{it->first, next->first}, it->second});
    }
  }
  return out;
}

std::vector<Time> StepFunction::breakpoints() const {
  std::vector<Time> out;
  out.reserve(points_.size());
  for (const auto& [t, v] : points_) out.push_back(t);
  return out;
}

void StepFunction::normalize() {
  double prev = 0.0;
  for (auto it = points_.begin(); it != points_.end();) {
    if (it->second == prev) {
      it = points_.erase(it);
    } else {
      prev = it->second;
      ++it;
    }
  }
}

}  // namespace cdbp
