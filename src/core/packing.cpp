#include "core/packing.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/epsilon.hpp"

namespace cdbp {

Packing::Packing(const Instance& instance, std::vector<BinId> binOf)
    : instance_(&instance), binOf_(std::move(binOf)) {
  if (binOf_.size() != instance.size()) {
    throw std::invalid_argument("Packing: assignment size (" +
                                std::to_string(binOf_.size()) +
                                ") does not match instance size (" +
                                std::to_string(instance.size()) + ")");
  }
  BinId maxBin = -1;
  for (BinId b : binOf_) maxBin = std::max(maxBin, b);
  bins_.resize(static_cast<std::size_t>(maxBin + 1));
  for (const Item& r : instance.items()) {
    BinId b = binOf_[r.id];
    if (b >= 0) bins_[static_cast<std::size_t>(b)].add(r);
  }
}

Time Packing::totalUsage() const {
  Time total = 0;
  for (const BinTimeline& bin : bins_) total += bin.usage();
  return total;
}

std::size_t Packing::openBinsAt(Time t) const {
  std::size_t open = 0;
  for (const BinTimeline& bin : bins_) {
    if (bin.busyPeriods().contains(t)) ++open;
  }
  return open;
}

StepFunction Packing::openBinProfile() const {
  StepFunction profile;
  for (const BinTimeline& bin : bins_) {
    for (const Interval& busy : bin.busyPeriods().parts()) profile.add(busy, 1.0);
  }
  return profile;
}

std::size_t Packing::maxConcurrentBins() const {
  return static_cast<std::size_t>(openBinProfile().maxValue() + 0.5);
}

double Packing::averageUtilization() const {
  Time usage = totalUsage();
  if (usage <= 0) return 0.0;
  return instance_->demand() / usage;
}

std::optional<std::string> Packing::validate() const {
  std::vector<bool> used(bins_.size(), false);
  for (const Item& r : instance_->items()) {
    BinId b = binOf_[r.id];
    if (b < 0) {
      return "item " + std::to_string(r.id) + " is unassigned";
    }
    used[static_cast<std::size_t>(b)] = true;
  }
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    if (!used[b]) {
      return "bin ids are not dense: bin " + std::to_string(b) + " is empty";
    }
    Size peak = bins_[b].peakLevel();
    if (!leq(peak, kBinCapacity)) {
      return "bin " + std::to_string(b) + " exceeds capacity: peak level " +
             std::to_string(peak);
    }
  }
  return std::nullopt;
}

}  // namespace cdbp
