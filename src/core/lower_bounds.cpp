#include "core/lower_bounds.hpp"

#include <algorithm>

#include "core/epsilon.hpp"

namespace cdbp {

StepFunction totalSizeProfile(const Instance& instance) {
  StepFunction profile;
  for (const Item& r : instance.items()) profile.add(r.interval, r.size);
  return profile;
}

double LowerBounds::best() const {
  return std::max({demand, span, ceilIntegral});
}

LowerBounds lowerBounds(const Instance& instance) {
  LowerBounds lb;
  lb.demand = instance.demand();
  StepFunction profile = totalSizeProfile(instance);
  lb.span = profile.supportMeasure(kSizeEps);
  lb.ceilIntegral = profile.ceilIntegral(kSizeEps);
  return lb;
}

}  // namespace cdbp
