// Exhaustive optimum for MinUsageTime DBP on tiny instances.
//
// Unlike OPT_total (the repacking adversary), this searches over actual
// packings — every feasible assignment of items to bins with no migration —
// and returns the one with minimum total usage time. Exponential (restricted
// Bell-number growth); intended for instances of at most ~10 items, where it
// anchors the approximation-ratio tests.
#pragma once

#include <cstddef>
#include <optional>

#include "core/instance.hpp"
#include "core/packing.hpp"

namespace cdbp {

struct BruteForceResult {
  Packing packing;     ///< an optimal packing
  Time usage = 0;      ///< its total usage time
  std::size_t explored = 0;  ///< search nodes visited
};

/// Finds an optimal packing by canonical set-partition enumeration with
/// feasibility and cost pruning. Returns std::nullopt when the instance has
/// more than `maxItems` items (guard against accidental exponential blowup).
std::optional<BruteForceResult> bruteForceOptimal(const Instance& instance,
                                                  std::size_t maxItems = 12);

}  // namespace cdbp
