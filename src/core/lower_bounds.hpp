// The three lower bounds on OPT_total from paper §3.2.
#pragma once

#include "core/instance.hpp"
#include "core/step_function.hpp"

namespace cdbp {

/// The aggregate active-size curve S(t) of the whole instance.
StepFunction totalSizeProfile(const Instance& instance);

struct LowerBounds {
  /// Proposition 1: total time-space demand d(R).
  double demand = 0;
  /// Proposition 2: span(R).
  double span = 0;
  /// Proposition 3: integral of ceil(S(t)) over the span. Tightest.
  double ceilIntegral = 0;

  /// The best (largest) of the three — by Proposition 3's dominance this is
  /// always `ceilIntegral`, but we take the max defensively.
  double best() const;
};

/// Computes all three bounds with a single event sweep.
LowerBounds lowerBounds(const Instance& instance);

}  // namespace cdbp
