// BinTimeline: the level profile of a single bin over all time.
//
// Offline algorithms (Duration Descending First Fit, Dual Coloring's
// validator) insert items out of arrival order, so feasibility of a
// placement must be checked over the item's whole active interval, not just
// at its arrival instant. BinTimeline provides exactly that query.
#pragma once

#include <vector>

#include "core/epsilon.hpp"
#include "core/item.hpp"
#include "core/step_function.hpp"

namespace cdbp {

class BinTimeline {
 public:
  /// Whether `r` can be added without the level exceeding the unit capacity
  /// anywhere in I(r).
  bool fits(const Item& r) const {
    return fitsCapacity(level_.maxOver(r.interval), r.size);
  }

  /// Adds `r` unconditionally (callers check fits() first when required).
  void add(const Item& r) {
    level_.add(r.interval, r.size);
    items_.push_back(r.id);
    busy_.add(r.interval);
  }

  /// Level of the bin at time t.
  Size levelAt(Time t) const { return level_.valueAt(t); }

  /// Maximum level over an interval.
  Size maxLevelOver(const Interval& I) const { return level_.maxOver(I); }

  /// Peak level over all time.
  Size peakLevel() const { return level_.maxValue(); }

  /// Usage time of the bin: measure of the time it is non-empty (the span
  /// of the items placed in it).
  Time usage() const { return busy_.measure(); }

  /// The busy periods of the bin as a normalized interval set.
  const IntervalSet& busyPeriods() const { return busy_; }

  /// Ids of the items placed in the bin, in placement order.
  const std::vector<ItemId>& items() const { return items_; }

  bool empty() const { return items_.empty(); }

  const StepFunction& levelProfile() const { return level_; }

 private:
  StepFunction level_;
  IntervalSet busy_;
  std::vector<ItemId> items_;
};

}  // namespace cdbp
