#include "serve/client.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "util/parse.hpp"

namespace cdbp::serve {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

bool parseServeAddress(const std::string& spec, ServeAddress& out,
                       std::string& error) {
  out = ServeAddress{};
  if (spec.empty()) {
    error = "empty address";
    return false;
  }
  if (spec.rfind("unix:", 0) == 0) {
    out.path = spec.substr(5);
    if (out.path.empty()) {
      error = "unix: address needs a socket path";
      return false;
    }
    return true;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    std::string rest = spec.substr(4);
    std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      error = "tcp: address must be tcp:<host>:<port>";
      return false;
    }
    out.tcp = true;
    out.host = rest.substr(0, colon);
    std::uint64_t port = 0;
    if (!tryParseUint(rest.substr(colon + 1), port) || port == 0 ||
        port > 65535) {
      error = "bad tcp port in '" + spec + "'";
      return false;
    }
    out.port = static_cast<std::uint16_t>(port);
    return true;
  }
  // Bare path shorthand.
  out.path = spec;
  return true;
}

ServeClient::ServeClient(int fd, ClientOptions options)
    : fd_(fd), options_(options) {}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      rbuf_(std::move(other.rbuf_)),
      rpos_(other.rpos_),
      outQueue_(std::move(other.outQueue_)),
      owedReplies_(other.owedReplies_) {}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    rbuf_ = std::move(other.rbuf_);
    rpos_ = other.rpos_;
    outQueue_ = std::move(other.outQueue_);
    owedReplies_ = other.owedReplies_;
  }
  return *this;
}

ServeClient ServeClient::connect(const ServeAddress& address,
                                 ClientOptions options) {
  if (address.tcp) return connectTcp(address.host, address.port, options);
  return connectUnix(address.path, options);
}

ServeClient ServeClient::connectUnix(const std::string& path,
                                     ClientOptions options) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    throwErrno("unix socket path");
  }
  int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throwErrno("socket(AF_UNIX)");
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("connect(unix)");
  }
  return ServeClient(fd, options);
}

ServeClient ServeClient::connectTcp(const std::string& host,
                                    std::uint16_t port,
                                    ClientOptions options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  std::string service = std::to_string(port);
  int rc = getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    throw std::runtime_error(std::string("getaddrinfo('") + host +
                             "'): " + gai_strerror(rc));
  }
  int fd = socket(result->ai_family, result->ai_socktype | SOCK_CLOEXEC,
                  result->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(result);
    throwErrno("socket(AF_INET)");
  }
  if (::connect(fd, result->ai_addr, result->ai_addrlen) < 0) {
    int saved = errno;
    freeaddrinfo(result);
    ::close(fd);
    errno = saved;
    throwErrno("connect(tcp)");
  }
  freeaddrinfo(result);
  return ServeClient(fd, options);
}

void ServeClient::sendAll(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throwErrno("send");
  }
}

void ServeClient::sendRaw(const std::vector<std::uint8_t>& bytes) {
  sendAll(bytes.data(), bytes.size());
}

OwnedFrame ServeClient::readFrame() {
  while (true) {
    FrameView frame;
    std::size_t consumed = 0;
    ExtractStatus status =
        extractFrame(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                     options_.maxFramePayload, frame, consumed);
    if (status == ExtractStatus::kFrame) {
      OwnedFrame owned;
      owned.type = frame.type;
      owned.payload.assign(frame.payload, frame.payload + frame.payloadSize);
      rpos_ += consumed;
      if (rpos_ == rbuf_.size()) {
        rbuf_.clear();
        rpos_ = 0;
      }
      return owned;
    }
    if (status == ExtractStatus::kOversized) {
      throw std::runtime_error("reply frame exceeds the client payload cap");
    }
    std::uint8_t chunk[64 * 1024];
    ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + got);
      continue;
    }
    if (got == 0) {
      throw std::runtime_error("server closed the connection mid-reply");
    }
    if (errno == EINTR) continue;
    throwErrno("recv");
  }
}

OwnedFrame ServeClient::expectFrame(FrameType expected) {
  OwnedFrame frame = readFrame();
  if (frame.type == FrameType::kError) {
    ErrorFrame error;
    if (!decodeError(frame.view(), error)) {
      throw std::runtime_error("undecodable error reply");
    }
    throw ServeError(error.code, error.message);
  }
  if (frame.type != expected) {
    throw std::runtime_error(
        "unexpected reply type " +
        std::to_string(static_cast<unsigned>(frame.type)));
  }
  return frame;
}

HelloOkFrame ServeClient::hello(const HelloFrame& helloIn) {
  std::vector<std::uint8_t> bytes;
  appendHello(bytes, helloIn);
  sendAll(bytes.data(), bytes.size());
  HelloOkFrame ok;
  if (!decodeHelloOk(expectFrame(FrameType::kHelloOk).view(), ok)) {
    throw std::runtime_error("undecodable HELLO_OK reply");
  }
  return ok;
}

PlacedFrame ServeClient::place(double size, double arrival,
                               double departure) {
  std::vector<std::uint8_t> bytes;
  appendPlace(bytes, PlaceFrame{size, arrival, departure});
  sendAll(bytes.data(), bytes.size());
  PlacedFrame placed;
  if (!decodePlaced(expectFrame(FrameType::kPlaced).view(), placed)) {
    throw std::runtime_error("undecodable PLACED reply");
  }
  return placed;
}

DepartOkFrame ServeClient::departUntil(double time) {
  std::vector<std::uint8_t> bytes;
  appendDepart(bytes, DepartFrame{time});
  sendAll(bytes.data(), bytes.size());
  DepartOkFrame ok;
  if (!decodeDepartOk(expectFrame(FrameType::kDepartOk).view(), ok)) {
    throw std::runtime_error("undecodable DEPART_OK reply");
  }
  return ok;
}

StatsOkFrame ServeClient::stats() {
  std::vector<std::uint8_t> bytes;
  appendStats(bytes);
  sendAll(bytes.data(), bytes.size());
  StatsOkFrame ok;
  if (!decodeStatsOk(expectFrame(FrameType::kStatsOk).view(), ok)) {
    throw std::runtime_error("undecodable STATS_OK reply");
  }
  return ok;
}

DrainOkFrame ServeClient::drain() {
  std::vector<std::uint8_t> bytes;
  appendDrain(bytes);
  sendAll(bytes.data(), bytes.size());
  DrainOkFrame ok;
  if (!decodeDrainOk(expectFrame(FrameType::kDrainOk).view(), ok)) {
    throw std::runtime_error("undecodable DRAIN_OK reply");
  }
  return ok;
}

std::string ServeClient::scrape() {
  std::vector<std::uint8_t> bytes;
  appendScrape(bytes);
  sendAll(bytes.data(), bytes.size());
  ScrapeOkFrame ok;
  if (!decodeScrapeOk(expectFrame(FrameType::kScrapeOk).view(), ok)) {
    throw std::runtime_error("undecodable SCRAPE_OK reply");
  }
  return ok.text;
}

void ServeClient::queuePlace(double size, double arrival, double departure) {
  appendPlace(outQueue_, PlaceFrame{size, arrival, departure});
  ++owedReplies_;
}

void ServeClient::flushQueued() {
  if (outQueue_.empty()) return;
  sendAll(outQueue_.data(), outQueue_.size());
  outQueue_.clear();
}

PlacedFrame ServeClient::readPlaced() {
  if (owedReplies_ == 0) {
    throw std::logic_error("readPlaced() with no queued PLACE outstanding");
  }
  PlacedFrame placed;
  if (!decodePlaced(expectFrame(FrameType::kPlaced).view(), placed)) {
    throw std::runtime_error("undecodable PLACED reply");
  }
  --owedReplies_;
  return placed;
}

}  // namespace cdbp::serve
