#include "serve/client.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

namespace cdbp::serve {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Client::Client(int fd, ClientOptions options) : fd_(fd), options_(options) {}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      negotiatedVersion_(other.negotiatedVersion_),
      rbuf_(std::move(other.rbuf_)),
      rpos_(other.rpos_),
      outQueue_(std::move(other.outQueue_)),
      pendingOps_(std::move(other.pendingOps_)),
      inflightBatchOps_(std::move(other.inflightBatchOps_)),
      placedBacklog_(std::move(other.placedBacklog_)),
      pendingFailure_(std::move(other.pendingFailure_)),
      owedReplies_(other.owedReplies_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    negotiatedVersion_ = other.negotiatedVersion_;
    rbuf_ = std::move(other.rbuf_);
    rpos_ = other.rpos_;
    outQueue_ = std::move(other.outQueue_);
    pendingOps_ = std::move(other.pendingOps_);
    inflightBatchOps_ = std::move(other.inflightBatchOps_);
    placedBacklog_ = std::move(other.placedBacklog_);
    pendingFailure_ = std::move(other.pendingFailure_);
    owedReplies_ = other.owedReplies_;
  }
  return *this;
}

Client Client::connect(const Address& address, ClientOptions options) {
  return Client(connectStream(address), options);
}

Client Client::connectUnix(const std::string& path, ClientOptions options) {
  Address address;
  address.kind = Address::Kind::kUnix;
  address.path = path;
  return connect(address, options);
}

Client Client::connectTcp(const std::string& host, std::uint16_t port,
                          ClientOptions options) {
  Address address;
  address.kind = Address::Kind::kTcp;
  address.host = host;
  address.port = port;
  return connect(address, options);
}

void Client::sendAll(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    ssize_t n = send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    throwErrno("send");
  }
}

void Client::sendRaw(const std::vector<std::uint8_t>& bytes) {
  sendAll(bytes.data(), bytes.size());
}

OwnedFrame Client::readFrame() {
  while (true) {
    FrameView frame;
    std::size_t consumed = 0;
    ExtractStatus status =
        extractFrame(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                     options_.maxFramePayload, frame, consumed);
    if (status == ExtractStatus::kFrame) {
      OwnedFrame owned;
      owned.type = frame.type;
      owned.payload.assign(frame.payload, frame.payload + frame.payloadSize);
      rpos_ += consumed;
      if (rpos_ == rbuf_.size()) {
        rbuf_.clear();
        rpos_ = 0;
      }
      return owned;
    }
    if (status == ExtractStatus::kOversized) {
      throw std::runtime_error("reply frame exceeds the client payload cap");
    }
    std::uint8_t chunk[64 * 1024];
    ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + got);
      continue;
    }
    if (got == 0) {
      throw std::runtime_error("server closed the connection mid-reply");
    }
    if (errno == EINTR) continue;
    throwErrno("recv");
  }
}

OwnedFrame Client::expectFrame(FrameType expected) {
  OwnedFrame frame = readFrame();
  if (frame.type == FrameType::kError) {
    ErrorFrame error;
    if (!decodeError(frame.view(), error)) {
      throw std::runtime_error("undecodable error reply");
    }
    throw ServeError(error.code, error.message);
  }
  if (frame.type != expected) {
    throw std::runtime_error(
        "unexpected reply type " +
        std::to_string(static_cast<unsigned>(frame.type)));
  }
  return frame;
}

HelloOkFrame Client::hello(const HelloFrame& helloIn) {
  std::vector<std::uint8_t> bytes;
  appendHello(bytes, helloIn);
  sendAll(bytes.data(), bytes.size());
  HelloOkFrame ok;
  if (!decodeHelloOk(expectFrame(FrameType::kHelloOk).view(), ok)) {
    throw std::runtime_error("undecodable HELLO_OK reply");
  }
  negotiatedVersion_ = ok.version;
  return ok;
}

PlacedFrame Client::place(double size, double arrival, double departure) {
  std::vector<std::uint8_t> bytes;
  appendPlace(bytes, PlaceFrame{size, arrival, departure});
  sendAll(bytes.data(), bytes.size());
  PlacedFrame placed;
  if (!decodePlaced(expectFrame(FrameType::kPlaced).view(), placed)) {
    throw std::runtime_error("undecodable PLACED reply");
  }
  return placed;
}

DepartOkFrame Client::departUntil(double time) {
  std::vector<std::uint8_t> bytes;
  appendDepart(bytes, DepartFrame{time});
  sendAll(bytes.data(), bytes.size());
  DepartOkFrame ok;
  if (!decodeDepartOk(expectFrame(FrameType::kDepartOk).view(), ok)) {
    throw std::runtime_error("undecodable DEPART_OK reply");
  }
  return ok;
}

StatsOkFrame Client::stats() {
  std::vector<std::uint8_t> bytes;
  appendStats(bytes);
  sendAll(bytes.data(), bytes.size());
  StatsOkFrame ok;
  if (!decodeStatsOk(expectFrame(FrameType::kStatsOk).view(), ok)) {
    throw std::runtime_error("undecodable STATS_OK reply");
  }
  return ok;
}

DrainOkFrame Client::drain() {
  std::vector<std::uint8_t> bytes;
  appendDrain(bytes);
  sendAll(bytes.data(), bytes.size());
  DrainOkFrame ok;
  if (!decodeDrainOk(expectFrame(FrameType::kDrainOk).view(), ok)) {
    throw std::runtime_error("undecodable DRAIN_OK reply");
  }
  return ok;
}

std::string Client::scrape() {
  std::vector<std::uint8_t> bytes;
  appendScrape(bytes);
  sendAll(bytes.data(), bytes.size());
  ScrapeOkFrame ok;
  if (!decodeScrapeOk(expectFrame(FrameType::kScrapeOk).view(), ok)) {
    throw std::runtime_error("undecodable SCRAPE_OK reply");
  }
  return ok.text;
}

// --- batch builder ---------------------------------------------------------

Client::Batch& Client::Batch::place(double size, double arrival,
                                    double departure) {
  BatchOp op;
  op.kind = kBatchOpPlace;
  op.place = PlaceFrame{size, arrival, departure};
  frame_.ops.push_back(op);
  return *this;
}

Client::Batch& Client::Batch::depart(double time) {
  BatchOp op;
  op.kind = kBatchOpDepart;
  op.depart = DepartFrame{time};
  frame_.ops.push_back(op);
  return *this;
}

BatchOkFrame Client::Batch::send() { return client_->sendBatch(frame_); }

BatchOkFrame Client::sendBatch(const BatchFrame& frame) {
  if (negotiatedVersion_ < 2) {
    throw std::logic_error(
        "BATCH requires a v2 session (negotiated v" +
        std::to_string(negotiatedVersion_) + "); call hello() first");
  }
  if (frame.ops.size() > kMaxBatchOps) {
    throw std::logic_error("BATCH of " + std::to_string(frame.ops.size()) +
                           " ops exceeds kMaxBatchOps");
  }
  std::vector<std::uint8_t> bytes;
  appendBatch(bytes, frame);
  sendAll(bytes.data(), bytes.size());
  BatchOkFrame ok;
  if (!decodeBatchOk(expectFrame(FrameType::kBatchOk).view(), ok)) {
    throw std::runtime_error("undecodable BATCH_OK reply");
  }
  return ok;
}

// --- pipelined wrapper -----------------------------------------------------

void Client::queuePlace(double size, double arrival, double departure) {
  if (negotiatedVersion_ >= 2) {
    BatchOp op;
    op.kind = kBatchOpPlace;
    op.place = PlaceFrame{size, arrival, departure};
    pendingOps_.push_back(op);
  } else {
    appendPlace(outQueue_, PlaceFrame{size, arrival, departure});
  }
  ++owedReplies_;
}

void Client::flushQueued() {
  if (!pendingOps_.empty()) {
    // Pack the staged ops into BATCH frames, kMaxBatchOps at a time, and
    // remember each frame's op count for reply accounting.
    std::size_t at = 0;
    while (at < pendingOps_.size()) {
      std::size_t take = pendingOps_.size() - at;
      if (take > kMaxBatchOps) take = kMaxBatchOps;
      BatchFrame frame;
      frame.ops.assign(pendingOps_.begin() + static_cast<std::ptrdiff_t>(at),
                       pendingOps_.begin() +
                           static_cast<std::ptrdiff_t>(at + take));
      appendBatch(outQueue_, frame);
      inflightBatchOps_.push_back(take);
      at += take;
    }
    pendingOps_.clear();
  }
  if (outQueue_.empty()) return;
  sendAll(outQueue_.data(), outQueue_.size());
  outQueue_.clear();
}

PlacedFrame Client::readPlaced() {
  while (placedBacklog_.empty()) {
    if (pendingFailure_.has_value()) {
      ErrorFrame failure = std::move(*pendingFailure_);
      pendingFailure_.reset();
      throw ServeError(failure.code, failure.message);
    }
    if (owedReplies_ == 0) {
      throw std::logic_error("readPlaced() with no queued PLACE outstanding");
    }
    if (inflightBatchOps_.empty()) {
      // v1 path: one PLACED per queued PLACE.
      PlacedFrame placed;
      if (!decodePlaced(expectFrame(FrameType::kPlaced).view(), placed)) {
        throw std::runtime_error("undecodable PLACED reply");
      }
      --owedReplies_;
      return placed;
    }
    std::size_t ops = inflightBatchOps_.front();
    inflightBatchOps_.pop_front();
    BatchOkFrame ok;
    if (!decodeBatchOk(expectFrame(FrameType::kBatchOk).view(), ok)) {
      throw std::runtime_error("undecodable BATCH_OK reply");
    }
    for (const BatchResultEntry& entry : ok.results) {
      if (entry.kind == kBatchOpPlace) placedBacklog_.push_back(entry.placed);
    }
    if (ok.failed != 0) {
      // Ops past the failure never ran; stop owing replies for them. The
      // failure itself surfaces once the completed prefix is consumed.
      owedReplies_ -= ops - ok.results.size();
      ErrorFrame failure;
      failure.code = ok.errorCode;
      failure.message = ok.errorMessage;
      pendingFailure_ = std::move(failure);
    }
  }
  PlacedFrame placed = placedBacklog_.front();
  placedBacklog_.pop_front();
  --owedReplies_;
  return placed;
}

}  // namespace cdbp::serve
