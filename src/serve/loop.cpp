#include "serve/loop.hpp"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "telemetry/clock.hpp"

namespace cdbp::serve {

namespace {

void setNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

Loop::Loop(const ServerOptions& options, TenantTable& tenants)
    : options_(options), tenants_(tenants) {
  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) throwErrno("epoll_create1");
  wakeFd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeFd_ < 0) {
    ::close(epollFd_);
    epollFd_ = -1;
    throwErrno("eventfd");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeFd_;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) < 0) {
    ::close(wakeFd_);
    ::close(epollFd_);
    wakeFd_ = epollFd_ = -1;
    throwErrno("epoll_ctl(wakefd)");
  }
}

Loop::~Loop() {
  requestStop();
  if (thread_.joinable()) thread_.join();
  // Closed here — after the join, never inside run() — so a signal
  // handler's requestDrain() can still write the eventfd while the loop
  // is exiting without racing a close/reuse of the descriptor.
  closeListeners();
  for (int* fd : {&epollFd_, &wakeFd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void Loop::addListener(int fd, AcceptHandler onAccept) {
  if (thread_.joinable()) {
    throw std::logic_error("serve::Loop::addListener after start()");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    int saved = errno;
    ::close(fd);
    errno = saved;
    throwErrno("epoll_ctl(listener)");
  }
  listeners_.push_back(Listener{fd, std::move(onAccept)});
}

void Loop::start() {
  if (thread_.joinable()) {
    throw std::logic_error("serve::Loop::start() called twice");
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { run(); });
}

void Loop::adopt(int fd, bool accepted) {
  {
    MutexLock lock(mu_);
    adoptQueue_.emplace_back(fd, accepted);
  }
  wake();
}

void Loop::requestDrain() noexcept {
  drainRequested_.store(true, std::memory_order_release);
  wake();
}

void Loop::requestStop() noexcept {
  stopRequested_.store(true, std::memory_order_release);
  wake();
}

void Loop::join() {
  if (thread_.joinable()) thread_.join();
}

void Loop::wake() noexcept {
  if (wakeFd_ >= 0) {
    std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; the result is
    // intentionally ignored (async-signal-safe path).
    [[maybe_unused]] ssize_t rc = ::write(wakeFd_, &one, sizeof(one));
  }
}

void Loop::adoptPending() {
  std::vector<std::pair<int, bool>> adopted;
  {
    MutexLock lock(mu_);
    adopted.swap(adoptQueue_);
  }
  for (auto [fd, accepted] : adopted) registerSession(fd, accepted);
}

void Loop::run() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (true) {
    if (stopRequested_.load(std::memory_order_acquire)) break;
    if (drainRequested_.load(std::memory_order_acquire)) {
      drainAndExit();
      break;
    }

    adoptPending();

    int n = epoll_wait(epollFd_, events, kMaxEvents, /*timeout ms=*/200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      std::uint32_t mask = events[i].events;
      if (fd == wakeFd_) {
        std::uint64_t drainCount;
        while (::read(wakeFd_, &drainCount, sizeof(drainCount)) > 0) {
        }
        continue;
      }
      bool isListener = false;
      for (std::size_t l = 0; l < listeners_.size(); ++l) {
        if (listeners_[l].fd == fd) {
          acceptPending(l);
          isListener = true;
          break;
        }
      }
      if (isListener) continue;
      auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;  // reaped this iteration
      Session& session = *it->second;
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0 &&
          (mask & (EPOLLIN | EPOLLOUT)) == 0) {
        destroySession(fd);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        session.onWritable();
        if (session.dead() || session.shouldClose()) {
          destroySession(fd);
          continue;
        }
      }
      if ((mask & EPOLLIN) != 0) session.onReadable();
      settleSession(session);
    }
  }

  // Loop exit: close every remaining session.
  while (!sessions_.empty()) destroySession(sessions_.begin()->first);
  running_.store(false, std::memory_order_release);
}

void Loop::closeListeners() {
  for (Listener& listener : listeners_) {
    if (listener.fd >= 0) {
      if (epollFd_ >= 0) epoll_ctl(epollFd_, EPOLL_CTL_DEL, listener.fd, nullptr);
      ::close(listener.fd);
      listener.fd = -1;
    }
  }
}

void Loop::acceptPending(std::size_t listenerIndex) {
  Listener& listener = listeners_[listenerIndex];
  while (true) {
    int fd =
        accept4(listener.fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: nothing to accept
    listener.onAccept(fd);
  }
}

void Loop::registerSession(int fd, bool accepted) {
  setNonBlocking(fd);
  auto session = std::make_unique<Session>(fd, options_, tenants_, counters_);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  session->setAppliedInterest(EPOLLIN);
  if (accepted) {
    counters_.connectionsAccepted.fetch_add(1, std::memory_order_relaxed);
  } else {
    counters_.connectionsAdopted.fetch_add(1, std::memory_order_relaxed);
  }
  sessions_[fd] = std::move(session);
  counters_.openConnections.store(sessions_.size(),
                                  std::memory_order_relaxed);
}

void Loop::settleSession(Session& session) {
  const int fd = session.fd();
  if (session.dead() || session.shouldClose()) {
    destroySession(fd);
    return;
  }
  std::uint32_t want = session.desiredInterest();
  if (want != session.appliedInterest()) {
    session.setAppliedInterest(want);
    epoll_event ev{};
    ev.events = want;
    ev.data.fd = fd;
    epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
  }
}

void Loop::destroySession(int fd) {
  auto it = sessions_.find(fd);
  if (it == sessions_.end()) return;
  it->second->noteClosed();
  sessions_.erase(it);
  counters_.connectionsClosed.fetch_add(1, std::memory_order_relaxed);
  counters_.openConnections.store(sessions_.size(),
                                  std::memory_order_relaxed);
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
}

void Loop::drainAndExit() {
  counters_.draining.store(true, std::memory_order_relaxed);
  closeListeners();
  // Late handoffs may still be queued (the router picked this shard just
  // before the drain flag flipped); register them so their buffered
  // requests get answered too.
  adoptPending();

  // Answer every fully-received request, then flush.
  for (auto& [fd, session] : sessions_) session->beginDrain();

  // Flush loop, bounded by the drain timeout: wait for writability on
  // connections that still hold replies.
  std::uint64_t deadline =
      telemetry::monotonicNanos() + options_.drainTimeoutNanos;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (telemetry::monotonicNanos() < deadline) {
    bool pendingAny = false;
    std::vector<int> open;
    open.reserve(sessions_.size());
    for (const auto& [fd, session] : sessions_) open.push_back(fd);
    for (int fd : open) {
      auto it = sessions_.find(fd);
      if (it == sessions_.end()) continue;
      Session& session = *it->second;
      if (session.dead() || session.pendingWrite() == 0) {
        destroySession(fd);
      } else {
        pendingAny = true;
        session.setAppliedInterest(EPOLLOUT);
        epoll_event ev{};
        ev.events = EPOLLOUT;
        ev.data.fd = fd;
        epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
      }
    }
    if (!pendingAny) break;
    int n = epoll_wait(epollFd_, events, kMaxEvents, 50);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wakeFd_) {
        std::uint64_t drainCount;
        while (::read(wakeFd_, &drainCount, sizeof(drainCount)) > 0) {
        }
        continue;
      }
      auto it = sessions_.find(fd);
      if (it != sessions_.end()) it->second->flush();
    }
    if (stopRequested_.load(std::memory_order_acquire)) break;
  }

  // Whatever could not flush in time is closed regardless.
  while (!sessions_.empty()) destroySession(sessions_.begin()->first);
  counters_.drained.store(true, std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
}

}  // namespace cdbp::serve
