// Session: the per-connection cdbp-serve state machine (DESIGN.md §13.3).
//
// One Session per accepted/adopted fd, owned by exactly one Loop and
// touched only from that loop's thread — which is what keeps the
// per-tenant StreamEngine single-threaded and the served placements
// bit-identical to local simulateStream runs even on a sharded server.
// Cross-thread visibility goes exclusively through the ShardCounters
// atomics and the shared TenantTable; nothing here takes a lock on the
// frame-processing path.
//
// The Session owns the bounded read/write buffers, frame parsing, the
// protocol state machine (HELLO negotiation through DRAIN), and the
// tenant's policy + engine. The owning Loop drives it through a narrow
// surface: onReadable()/onWritable() on epoll events, desiredInterest()
// to re-arm epoll, dead()/shouldClose() to reap it, and
// beginDrain()/flush() during graceful shutdown. A Session never closes
// or erases itself — it flags dead() and lets the Loop destroy it, so
// there is no self-erase reentrancy anywhere in the dispatch path.
//
// Backpressure (§13.4) is per-connection and unchanged from the
// single-loop daemon: processing pauses when the write buffer crosses
// options.writeBufferLimit, resumes below half, and a connection whose
// buffer somehow exceeds limit + maxFramePayload + headroom is shed with
// kBackpressure semantics (counted in ShardCounters::shedConnections).
//
// Version negotiation (v2): HELLO carries the highest version the client
// speaks; the session runs min(client, kProtocolVersion) and rejects
// only clients older than kMinProtocolVersion. A v2-only frame (BATCH)
// arriving on a v1 session gets a typed ERROR(unsupported-version) and
// the connection keeps serving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "online/policy_factory.hpp"
#include "serve/protocol.hpp"
#include "serve/types.hpp"
#include "sim/streaming.hpp"
#include "telemetry/registry.hpp"

namespace cdbp::serve {

class Session {
 public:
  /// Takes ownership of nothing: the Loop owns the fd and closes it when
  /// it destroys the Session. `options` must outlive the session (the
  /// Server owns it); `tenants` and `counters` are the shared tenant
  /// table and the owning shard's counters.
  Session(int fd, const ServerOptions& options, TenantTable& tenants,
          ShardCounters& counters);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  int fd() const { return fd_; }

  /// Drains the socket into the read buffer, processes complete frames,
  /// and pumps (flush / backpressure-resume) until the connection
  /// quiesces. Sets dead() on a read error.
  void onReadable();

  /// Flush-and-resume pump for EPOLLOUT readiness.
  void onWritable();

  /// True once the connection hit an unrecoverable condition (socket
  /// error, shed) — the Loop must destroy the session and close the fd.
  bool dead() const { return dead_; }

  /// True when the session has finished naturally: peer closed or the
  /// session is closing, and every buffered reply has been flushed.
  bool shouldClose() const {
    return (closing_ || peerClosed_) && pendingWrite() == 0;
  }

  /// epoll interest matching the current state: EPOLLIN unless paused/
  /// closing, EPOLLOUT while replies are buffered. The Loop caches the
  /// last applied mask via appliedInterest().
  std::uint32_t desiredInterest() const;
  std::uint32_t appliedInterest() const { return appliedInterest_; }
  void setAppliedInterest(std::uint32_t mask) { appliedInterest_ = mask; }

  std::size_t pendingWrite() const { return wbuf_.size() - wpos_; }

  /// Graceful drain, step 1 (loop thread): stop reading, answer every
  /// fully-received request regardless of backpressure, start flushing.
  void beginDrain();

  /// Graceful drain, step 2: one flush attempt (non-blocking). The Loop
  /// polls EPOLLOUT and calls this until pendingWrite() hits 0 or the
  /// drain deadline expires.
  void flush();

  /// True after a session was opened by HELLO (used by tests/telemetry).
  bool hasTenant() const { return tenantId_ != 0; }
  std::uint64_t tenantId() const { return tenantId_; }

  /// Called by the Loop just before it destroys the session: flags the
  /// tenant row finished (a closed connection can never serve its tenant
  /// again) without disturbing the final items/openBins columns.
  void noteClosed();

 private:
  void pump();
  void processBufferedFrames();
  void handleFrame(const FrameView& frame);
  void handleHello(const FrameView& frame);
  void handlePlace(const FrameView& frame);
  void handleDepart(const FrameView& frame);
  void handleBatch(const FrameView& frame);
  void handleStats();
  void handleDrainRequest();
  void handleScrape();
  /// Session preconditions shared by PLACE/DEPART/BATCH/STATS/DRAIN:
  /// sends the right typed error and returns false when not serviceable.
  bool requireSession(const char* verb);
  void sendError(ErrorCode code, const std::string& message);
  void sendBytes(const std::vector<std::uint8_t>& bytes);
  void flushWrites();
  void noteTenantProgress(bool force);

  const int fd_;
  const ServerOptions& options_;
  TenantTable& tenants_;
  ShardCounters& counters_;

  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;  // parse offset into rbuf_
  std::vector<std::uint8_t> wbuf_;
  std::size_t wpos_ = 0;  // flush offset into wbuf_

  bool readPaused_ = false;  // backpressure: EPOLLIN dropped
  bool closing_ = false;     // close once wbuf_ flushes
  bool peerClosed_ = false;  // read side saw EOF
  bool dead_ = false;        // Loop must reap immediately
  bool drainMode_ = false;   // beginDrain(): backpressure limit overridden
  std::uint32_t appliedInterest_ = 0;

  // Tenant session state, created by HELLO.
  std::uint16_t negotiatedVersion_ = 0;  // 0 until HELLO succeeds
  std::uint64_t tenantId_ = 0;
  std::string tenant_;
  PolicyPtr policy_;
  std::unique_ptr<StreamEngine> engine_;
  bool finished_ = false;
  std::uint64_t placementsSinceNote_ = 0;

  // Per-tenant counters (serve.tenant.<id>.*), resolved once at HELLO.
  // Null when telemetry is compiled out. These are registry references,
  // valid for the process lifetime.
  telemetry::Counter* tenantPlacements_ = nullptr;
  telemetry::Counter* tenantBytes_ = nullptr;
  telemetry::Counter* tenantUsage_ = nullptr;
};

}  // namespace cdbp::serve
