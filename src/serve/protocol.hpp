// cdbp-serve wire protocol: the length-prefixed binary frames the
// placement daemon (serve/server.hpp) and its clients (serve/client.hpp)
// exchange. DESIGN.md §13.2 carries the layout table.
//
// Framing:
//
//   frame   := u32 payload_length | payload
//   payload := u8 frame_type | body
//
// All integers are little-endian; doubles travel as the little-endian
// bytes of their IEEE-754 bit pattern (std::bit_cast via u64), so every
// size/time round-trips bit-exactly — the property the serve-vs-
// simulateStream differential suite pins. Strings are u16 length +
// UTF-8-agnostic raw bytes; the SCRAPE text uses a u32 length.
//
// Versioning: this build speaks v2. HELLO carries the highest version the
// client understands; the server answers HELLO_OK with the negotiated
// version min(client, server) — so a v1 client gets a v1 session (the v1
// frame set is a strict subset of v2) and a v3 client degrades to v2. A
// v2-only frame (BATCH) on a v1-negotiated session costs a typed
// ERROR(unsupported-version) reply, never a disconnect.
//
// v2 adds BATCH/BATCH_OK: many PLACE/DEPART sub-ops for one tenant in one
// frame, executed in order, answered with one combined reply. Sub-ops
// after a failing one do not run; the reply carries the results of the
// completed prefix plus the failing op's index and typed error.
//
// Parsing discipline mirrors util/parse.hpp: every decoder consumes
// explicitly bounded bytes, rejects truncated and over-long bodies with
// `false` (never an exception, never a partial read into `out`), and the
// server answers malformed payloads with a typed kError frame instead of
// disconnecting — the frame boundary is intact, so the stream resyncs.
//
// Session grammar (one session per connection):
//
//   client: HELLO  -> server: HELLO_OK | ERROR
//   client: PLACE  -> server: PLACED   | ERROR     (repeatable)
//   client: DEPART -> server: DEPART_OK| ERROR     (advance virtual time)
//   client: BATCH  -> server: BATCH_OK | ERROR     (v2; repeatable)
//   client: STATS  -> server: STATS_OK | ERROR
//   client: DRAIN  -> server: DRAIN_OK | ERROR     (finishes the session)
//   client: SCRAPE -> server: SCRAPE_OK            (no session required)
//
// Replies come in request order; a typed ERROR answers exactly one
// request (or one undecodable frame) and leaves the connection serving.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cdbp::serve {

/// Highest protocol version this build speaks. HELLO negotiates
/// min(client, kProtocolVersion); versions below kMinProtocolVersion are
/// rejected with kErrProtocolVersion.
inline constexpr std::uint16_t kProtocolVersion = 2;
inline constexpr std::uint16_t kMinProtocolVersion = 1;

/// The version a session speaks after HELLO: min(requested, ours), or 0
/// when `requested` is below the supported floor (reject).
constexpr std::uint16_t negotiateVersion(std::uint16_t requested) {
  if (requested < kMinProtocolVersion) return 0;
  return requested < kProtocolVersion ? requested : kProtocolVersion;
}

/// Default cap on a frame payload (type byte + body). A length prefix
/// above the server's configured cap is unrecoverable (the stream cannot
/// be resynced without trusting the bogus length), so the server answers
/// kErrOversizedFrame and closes after flushing.
inline constexpr std::size_t kDefaultMaxFramePayload = 64 * 1024;

/// Cap on sub-ops per BATCH frame. 2048 ops × 25 bytes ≈ 50 KiB, inside
/// the default payload cap with headroom; decoders reject larger counts
/// as malformed and Client::Batch refuses to build them.
inline constexpr std::size_t kMaxBatchOps = 2048;

enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 0x01,
  kPlace = 0x02,
  kDepart = 0x03,
  kStats = 0x04,
  kDrain = 0x05,
  kScrape = 0x06,
  kBatch = 0x07,  // v2
  // server -> client
  kHelloOk = 0x81,
  kPlaced = 0x82,
  kDepartOk = 0x83,
  kStatsOk = 0x84,
  kDrainOk = 0x85,
  kScrapeOk = 0x86,
  kBatchOk = 0x87,  // v2
  kError = 0xFF,
};

enum class ErrorCode : std::uint16_t {
  kMalformedFrame = 1,   ///< payload did not decode as its frame type
  kOversizedFrame = 2,   ///< length prefix above the server's cap (fatal)
  kUnknownFrameType = 3, ///< type byte outside the known request set
  kProtocolVersion = 4,  ///< HELLO version below kMinProtocolVersion
  kUnknownTenant = 5,    ///< session request before a successful HELLO
  kDuplicateHello = 6,   ///< second HELLO on a connection
  kBadPolicySpec = 7,    ///< makePolicy rejected the HELLO spec
  kBadItem = 8,          ///< PLACE item failed model validation
  kOutOfOrder = 9,       ///< PLACE/DEPART time behind the session watermark
  kSessionFinished = 10, ///< request after DRAIN completed the session
  kBackpressure = 11,    ///< connection shed: client stopped reading
  kInternal = 12,        ///< policy/engine contract violation (fatal)
  kUnsupportedVersion = 13, ///< frame requires a newer negotiated version
};

/// Human-readable mnemonic ("bad-policy-spec") for logs and tests.
const char* errorCodeName(ErrorCode code);

// ---------------------------------------------------------------------------
// Frame bodies. Field order in these structs is wire order.

struct HelloFrame {
  std::uint16_t version = kProtocolVersion;  ///< highest version the client speaks
  std::uint8_t engine = 0;  ///< 0 = indexed, 1 = linear scan
  double minDuration = 0;   ///< PolicyContext::minDuration
  double mu = 1;            ///< PolicyContext::mu
  std::uint64_t seed = 1;   ///< PolicyContext::seed
  std::string tenant;       ///< label for telemetry/tenant table
  std::string policySpec;   ///< makePolicy spec string
};

struct HelloOkFrame {
  std::uint16_t version = kProtocolVersion;  ///< negotiated session version
  std::uint64_t tenantId = 0;
  std::string policyName;  ///< OnlinePolicy::name() of the instantiated policy
};

struct PlaceFrame {
  double size = 0;
  double arrival = 0;
  double departure = 0;
};

struct PlacedFrame {
  std::uint32_t item = 0;  ///< dense per-session item id
  std::int32_t bin = 0;
  std::uint8_t openedNewBin = 0;
  std::int32_t category = 0;
};

struct DepartFrame {
  double time = 0;
};

struct DepartOkFrame {
  std::uint64_t drained = 0;   ///< departures processed by this DEPART
  std::uint64_t openBins = 0;  ///< open bins after the drain
};

// --- v2 batch frames -------------------------------------------------------

/// Sub-op kinds inside a BATCH frame.
inline constexpr std::uint8_t kBatchOpPlace = 0;
inline constexpr std::uint8_t kBatchOpDepart = 1;

/// One BATCH sub-op: `kind` selects which body field is live.
struct BatchOp {
  std::uint8_t kind = kBatchOpPlace;
  PlaceFrame place;    ///< valid when kind == kBatchOpPlace
  DepartFrame depart;  ///< valid when kind == kBatchOpDepart
};

struct BatchFrame {
  std::vector<BatchOp> ops;  ///< executed in order; at most kMaxBatchOps
};

/// One sub-op result inside BATCH_OK, mirroring the standalone replies.
struct BatchResultEntry {
  std::uint8_t kind = kBatchOpPlace;
  PlacedFrame placed;    ///< valid when kind == kBatchOpPlace
  DepartOkFrame depart;  ///< valid when kind == kBatchOpDepart
};

/// Combined reply: results for the completed prefix of the batch. When
/// `failed` is set, the op at `failedIndex` was rejected with
/// `errorCode`/`errorMessage` and no later op ran — results.size() ==
/// failedIndex. The session stays usable unless the code is kInternal.
struct BatchOkFrame {
  std::vector<BatchResultEntry> results;
  std::uint8_t failed = 0;
  std::uint32_t failedIndex = 0;
  ErrorCode errorCode = ErrorCode::kInternal;
  std::string errorMessage;
};

struct StatsOkFrame {
  std::uint64_t items = 0;
  std::uint64_t binsOpened = 0;
  std::uint64_t openBins = 0;
  std::uint64_t pendingDepartures = 0;
  std::uint64_t peakOpenItems = 0;
  std::uint64_t peakResidentBytes = 0;
};

/// Mirrors StreamResult, field for field; doubles are bit-exact.
struct DrainOkFrame {
  std::uint64_t items = 0;
  double totalUsage = 0;
  std::uint64_t binsOpened = 0;
  std::uint64_t maxOpenBins = 0;
  std::uint64_t categoriesUsed = 0;
  double lb3 = 0;
  std::uint64_t peakOpenItems = 0;
  std::uint64_t peakResidentBytes = 0;
};

struct ScrapeOkFrame {
  std::string text;  ///< telemetry::exposeText output (u32-length string)
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// ---------------------------------------------------------------------------
// Encoding: append one complete frame (length prefix included) to `out`.
// STATS/DRAIN/SCRAPE requests have empty bodies.

void appendHello(std::vector<std::uint8_t>& out, const HelloFrame& frame);
void appendHelloOk(std::vector<std::uint8_t>& out, const HelloOkFrame& frame);
void appendPlace(std::vector<std::uint8_t>& out, const PlaceFrame& frame);
void appendPlaced(std::vector<std::uint8_t>& out, const PlacedFrame& frame);
void appendDepart(std::vector<std::uint8_t>& out, const DepartFrame& frame);
void appendDepartOk(std::vector<std::uint8_t>& out, const DepartOkFrame& frame);
void appendBatch(std::vector<std::uint8_t>& out, const BatchFrame& frame);
void appendBatchOk(std::vector<std::uint8_t>& out, const BatchOkFrame& frame);
void appendStats(std::vector<std::uint8_t>& out);
void appendStatsOk(std::vector<std::uint8_t>& out, const StatsOkFrame& frame);
void appendDrain(std::vector<std::uint8_t>& out);
void appendDrainOk(std::vector<std::uint8_t>& out, const DrainOkFrame& frame);
void appendScrape(std::vector<std::uint8_t>& out);
void appendScrapeOk(std::vector<std::uint8_t>& out, const ScrapeOkFrame& frame);
void appendError(std::vector<std::uint8_t>& out, const ErrorFrame& frame);

// ---------------------------------------------------------------------------
// Decoding.

/// One complete frame, extracted from a receive buffer. `payload` points
/// into the caller's buffer (valid until the buffer mutates) and excludes
/// the type byte.
struct FrameView {
  FrameType type = FrameType::kError;
  const std::uint8_t* payload = nullptr;
  std::size_t payloadSize = 0;
};

enum class ExtractStatus {
  kFrame,      ///< `out` holds a frame; consume `consumed` bytes
  kNeedMore,   ///< buffer holds a partial frame; read more bytes
  kOversized,  ///< length prefix exceeds maxPayload — unrecoverable
};

/// Scans the start of [data, data+size) for one frame. On kFrame, sets
/// `out` and `consumed` (prefix + payload). An empty payload (length 0,
/// missing even the type byte) decodes as kFrame with a payload the
/// body decoders reject — the server answers it with kMalformedFrame.
ExtractStatus extractFrame(const std::uint8_t* data, std::size_t size,
                           std::size_t maxPayload, FrameView& out,
                           std::size_t& consumed);

/// Body decoders: return false on truncated/over-long bodies without
/// touching `out`. The FrameView payload excludes the type byte.
bool decodeHello(const FrameView& frame, HelloFrame& out);
bool decodeHelloOk(const FrameView& frame, HelloOkFrame& out);
bool decodePlace(const FrameView& frame, PlaceFrame& out);
bool decodePlaced(const FrameView& frame, PlacedFrame& out);
bool decodeDepart(const FrameView& frame, DepartFrame& out);
bool decodeDepartOk(const FrameView& frame, DepartOkFrame& out);
bool decodeBatch(const FrameView& frame, BatchFrame& out);
bool decodeBatchOk(const FrameView& frame, BatchOkFrame& out);
bool decodeStatsOk(const FrameView& frame, StatsOkFrame& out);
bool decodeDrainOk(const FrameView& frame, DrainOkFrame& out);
bool decodeScrapeOk(const FrameView& frame, ScrapeOkFrame& out);
bool decodeError(const FrameView& frame, ErrorFrame& out);

/// True for the empty-body requests (STATS/DRAIN/SCRAPE): their payload
/// must be exactly the type byte.
bool decodeEmpty(const FrameView& frame);

}  // namespace cdbp::serve
