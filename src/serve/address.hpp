// Shared endpoint addressing for the serve daemon and its clients
// (DESIGN.md §13.7). One spec grammar, parsed once, used by every
// socket-speaking binary — serve::Server listeners, serve::Client
// connects, examples/cdbp_served --listen and stream_replay --connect:
//
//   "unix:<path>"          Unix-domain stream socket
//   "tcp:<host>:<port>"    TCP (host is an IPv4 literal or a name)
//   "<path>"               shorthand for unix:<path>
//
// parse/format round-trip; listenStream/connectStream are the only two
// places in the repo that turn an Address into a socket, so the unlink-
// before-bind, SO_REUSEADDR and CLOEXEC conventions live here exactly
// once.
#pragma once

#include <cstdint>
#include <string>

namespace cdbp::serve {

struct Address {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;        ///< kUnix: filesystem socket path
  std::string host;        ///< kTcp: IPv4 literal or resolvable name
  std::uint16_t port = 0;  ///< kTcp: 0 binds an ephemeral port (listen only)
};

/// Parses a spec into `out`; on failure returns false and fills `error`
/// with a message naming the offending part. A connect-side port of 0 is
/// rejected by connectStream, not here — "tcp:host:0" is a valid listen
/// address.
bool parseAddress(const std::string& spec, Address& out, std::string& error);

/// Canonical spec string ("unix:/tmp/x.sock", "tcp:127.0.0.1:7077").
/// formatAddress(parse(s)) is stable under re-parsing.
std::string formatAddress(const Address& address);

/// Opens a listening stream socket for the address: non-blocking,
/// close-on-exec, backlog as given. Unix paths are unlinked first (the
/// daemon owns its socket file); TCP sets SO_REUSEADDR and reports the
/// kernel-chosen port through `boundPort` when the address asked for port
/// 0. Throws std::system_error on any socket call failure and
/// std::runtime_error when a TCP host does not resolve.
int listenStream(const Address& address, int backlog,
                 std::uint16_t* boundPort = nullptr);

/// Opens a blocking, connected stream socket to the address. Throws
/// std::system_error on failure (std::runtime_error for resolution
/// errors and a zero TCP port).
int connectStream(const Address& address);

}  // namespace cdbp::serve
