#include "serve/session.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <stdexcept>

#include "telemetry/expose.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp::serve {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

// Headroom above writeBufferLimit before a connection is shed. Processing
// stops at the limit and no single reply exceeds maxFramePayload + the
// frame overhead, so in practice the hard cap is unreachable unless a
// reply itself is pathological.
constexpr std::size_t kShedHeadroom = 1024;

// Update the shared tenant row every Nth placement rather than on each
// one: the table is a cross-shard mutex and PLACE is the hot path.
constexpr std::uint64_t kTenantNoteInterval = 64;

}  // namespace

Session::Session(int fd, const ServerOptions& options, TenantTable& tenants,
                 ShardCounters& counters)
    : fd_(fd), options_(options), tenants_(tenants), counters_(counters) {}

std::uint32_t Session::desiredInterest() const {
  std::uint32_t want = 0;
  if (!readPaused_ && !peerClosed_ && !closing_) want |= EPOLLIN;
  if (pendingWrite() > 0) want |= EPOLLOUT;
  return want;
}

void Session::onReadable() {
  std::uint8_t chunk[kReadChunk];
  while (!readPaused_ && !closing_ && !dead_) {
    ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
    if (got > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + got);
      counters_.bytesReceived.fetch_add(static_cast<std::uint64_t>(got),
                                        std::memory_order_relaxed);
      processBufferedFrames();
      // A partial frame cannot exceed the payload cap plus framing: the
      // extractor flags oversized prefixes as soon as they are visible.
      if (got < static_cast<ssize_t>(sizeof(chunk))) break;
      continue;
    }
    if (got == 0) {
      peerClosed_ = true;
      processBufferedFrames();
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dead_ = true;
    return;
  }
  pump();
}

void Session::onWritable() { pump(); }

void Session::pump() {
  while (!dead_) {
    flushWrites();
    if (dead_) return;
    // Below the resume threshold with requests still buffered: pick them
    // back up. The loop re-pauses (and re-flushes) as replies accumulate,
    // so the write buffer never exceeds the limit by more than one reply.
    if (readPaused_ && !closing_ && !drainMode_ &&
        pendingWrite() <= options_.writeBufferLimit / 2) {
      readPaused_ = false;
      std::size_t before = rbuf_.size() - rpos_;
      processBufferedFrames();
      if (readPaused_ || rbuf_.size() - rpos_ != before) continue;
    }
    break;
  }
}

void Session::beginDrain() {
  drainMode_ = true;
  readPaused_ = true;  // no new requests during the drain
  processBufferedFrames();
  flushWrites();
}

void Session::flush() { flushWrites(); }

void Session::noteClosed() {
  if (tenantId_ != 0) tenants_.markFinished(tenantId_);
}

void Session::processBufferedFrames() {
  while (!closing_ && !dead_) {
    // Backpressure: once the write buffer crosses the limit, leave the
    // remaining (already received) requests unprocessed in rbuf_. They
    // resume when the client reads. A graceful drain overrides the limit
    // so every fully-received request is answered before exit.
    if (!drainMode_ && pendingWrite() > options_.writeBufferLimit) {
      if (!readPaused_) {
        readPaused_ = true;
        counters_.throttleEvents.fetch_add(1, std::memory_order_relaxed);
        CDBP_TELEM_COUNT("serve.throttles", 1);
      }
      break;
    }
    if (pendingWrite() >
        options_.writeBufferLimit + options_.maxFramePayload + kShedHeadroom) {
      // Unreachable with well-formed replies; shed defensively.
      closing_ = true;
      counters_.shedConnections.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    FrameView frame;
    std::size_t consumed = 0;
    ExtractStatus status =
        extractFrame(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                     options_.maxFramePayload, frame, consumed);
    if (status == ExtractStatus::kNeedMore) break;
    if (status == ExtractStatus::kOversized) {
      counters_.framesReceived.fetch_add(1, std::memory_order_relaxed);
      sendError(ErrorCode::kOversizedFrame,
                "frame length prefix exceeds the payload cap");
      closing_ = true;  // cannot resync past an untrusted length
      break;
    }
    rpos_ += consumed;
    counters_.framesReceived.fetch_add(1, std::memory_order_relaxed);
    CDBP_TELEM_COUNT("serve.frames_rx", 1);
    if (tenantBytes_ != nullptr) {
      tenantBytes_->add(static_cast<std::uint64_t>(consumed));
    }
    handleFrame(frame);
  }
  // Compact the consumed prefix so rbuf_ stays proportional to what is
  // actually pending.
  if (rpos_ > 0) {
    if (rpos_ == rbuf_.size()) {
      rbuf_.clear();
    } else {
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(rpos_));
    }
    rpos_ = 0;
  }
}

void Session::handleFrame(const FrameView& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      handleHello(frame);
      return;
    case FrameType::kPlace:
      handlePlace(frame);
      return;
    case FrameType::kDepart:
      handleDepart(frame);
      return;
    case FrameType::kBatch:
      handleBatch(frame);
      return;
    case FrameType::kStats:
      if (!decodeEmpty(frame)) {
        sendError(ErrorCode::kMalformedFrame, "STATS carries no body");
        return;
      }
      handleStats();
      return;
    case FrameType::kDrain:
      if (!decodeEmpty(frame)) {
        sendError(ErrorCode::kMalformedFrame, "DRAIN carries no body");
        return;
      }
      handleDrainRequest();
      return;
    case FrameType::kScrape:
      if (!decodeEmpty(frame)) {
        sendError(ErrorCode::kMalformedFrame, "SCRAPE carries no body");
        return;
      }
      handleScrape();
      return;
    case FrameType::kError:
      // The extractor's tag for a zero-length frame (no type byte).
      sendError(ErrorCode::kMalformedFrame, "empty frame");
      return;
    default:
      // Unknown type bytes are answered, never disconnected: a newer
      // client talking to this server gets a typed error per frame and
      // can degrade. The frame boundary is intact, so the stream resyncs.
      sendError(ErrorCode::kUnknownFrameType,
                "unknown frame type " +
                    std::to_string(static_cast<unsigned>(frame.type)));
      return;
  }
}

bool Session::requireSession(const char* verb) {
  if (negotiatedVersion_ == 0) {
    sendError(ErrorCode::kUnknownTenant,
              std::string(verb) + " before HELLO");
    return false;
  }
  if (finished_) {
    sendError(ErrorCode::kSessionFinished,
              std::string(verb) + " after DRAIN");
    return false;
  }
  return true;
}

void Session::handleHello(const FrameView& frame) {
  HelloFrame hello;
  if (!decodeHello(frame, hello)) {
    sendError(ErrorCode::kMalformedFrame, "undecodable HELLO body");
    return;
  }
  std::uint16_t negotiated = negotiateVersion(hello.version);
  if (negotiated == 0) {
    sendError(ErrorCode::kProtocolVersion,
              "server speaks cdbp-serve v" +
                  std::to_string(kMinProtocolVersion) + "..v" +
                  std::to_string(kProtocolVersion) + ", client sent v" +
                  std::to_string(hello.version));
    return;
  }
  if (negotiatedVersion_ != 0) {
    sendError(ErrorCode::kDuplicateHello,
              "connection already carries a session for tenant '" + tenant_ +
                  "'");
    return;
  }
  PolicyContext context;
  context.minDuration = hello.minDuration;
  context.mu = hello.mu;
  context.seed = hello.seed;
  PolicyPtr policy;
  try {
    policy = makePolicy(hello.policySpec, context);
  } catch (const std::exception& e) {
    sendError(ErrorCode::kBadPolicySpec, e.what());
    return;
  }

  StreamOptions streamOptions;
  streamOptions.engine = hello.engine == 1 ? PlacementEngine::kLinearScan
                                           : PlacementEngine::kIndexed;
  auto engine = std::make_unique<StreamEngine>(*policy, streamOptions);

  HelloOkFrame ok;
  ok.version = negotiated;
  ok.policyName = policy->name();
  tenantId_ = tenants_.open(hello.tenant, ok.policyName);
  ok.tenantId = tenantId_;
  tenant_ = hello.tenant;
  policy_ = std::move(policy);
  engine_ = std::move(engine);
  negotiatedVersion_ = negotiated;
  counters_.sessionsOpened.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::kEnabled) {
    // Dynamic metric names cannot go through the CDBP_TELEM_* macros
    // (they cache a static reference on first use); resolve the
    // per-tenant counters once here and hit the atomics directly.
    auto& registry = telemetry::Registry::global();
    std::string prefix = "serve.tenant." + std::to_string(tenantId_);
    tenantPlacements_ = &registry.counter(prefix + ".placements");
    tenantBytes_ = &registry.counter(prefix + ".bytes");
    tenantUsage_ = &registry.counter(prefix + ".usage");
  }
  std::vector<std::uint8_t> reply;
  appendHelloOk(reply, ok);
  sendBytes(reply);
}

void Session::handlePlace(const FrameView& frame) {
  if (!requireSession("PLACE")) return;
  PlaceFrame place;
  if (!decodePlace(frame, place)) {
    sendError(ErrorCode::kMalformedFrame, "undecodable PLACE body");
    return;
  }
  StreamEngine& engine = *engine_;
  if (place.arrival < engine.timeWatermark()) {
    sendError(ErrorCode::kOutOfOrder,
              "PLACE arrival " + std::to_string(place.arrival) +
                  " behind the session watermark " +
                  std::to_string(engine.timeWatermark()));
    return;
  }
  StreamEngine::Placement placed;
  try {
    CDBP_TELEM_SCOPED_TIMER(timer, "serve.place_ns");
    placed =
        engine.place(StreamItem{place.size, place.arrival, place.departure});
  } catch (const std::invalid_argument& e) {
    sendError(ErrorCode::kBadItem, e.what());
    return;
  } catch (const std::logic_error& e) {
    // A policy/engine contract violation is a server-side bug; the
    // session is no longer trustworthy.
    finished_ = true;
    sendError(ErrorCode::kInternal, e.what());
    return;
  }
  CDBP_TELEM_COUNT("serve.placements", 1);
  counters_.placements.fetch_add(1, std::memory_order_relaxed);
  if (tenantPlacements_ != nullptr) tenantPlacements_->add(1);
  ++placementsSinceNote_;
  noteTenantProgress(/*force=*/false);
  PlacedFrame reply;
  reply.item = placed.item;
  reply.bin = placed.bin;
  reply.openedNewBin = placed.openedNewBin ? 1 : 0;
  reply.category = placed.category;
  std::vector<std::uint8_t> bytes;
  appendPlaced(bytes, reply);
  sendBytes(bytes);
}

void Session::handleDepart(const FrameView& frame) {
  if (!requireSession("DEPART")) return;
  DepartFrame depart;
  if (!decodeDepart(frame, depart)) {
    sendError(ErrorCode::kMalformedFrame, "undecodable DEPART body");
    return;
  }
  StreamEngine& engine = *engine_;
  if (depart.time < engine.timeWatermark()) {
    sendError(ErrorCode::kOutOfOrder,
              "DEPART time " + std::to_string(depart.time) +
                  " behind the session watermark " +
                  std::to_string(engine.timeWatermark()));
    return;
  }
  DepartOkFrame ok;
  try {
    ok.drained = engine.drainUntil(depart.time);
  } catch (const std::invalid_argument& e) {
    sendError(ErrorCode::kBadItem, e.what());  // non-finite time
    return;
  }
  ok.openBins = engine.openBins();
  noteTenantProgress(/*force=*/true);
  std::vector<std::uint8_t> bytes;
  appendDepartOk(bytes, ok);
  sendBytes(bytes);
}

void Session::handleBatch(const FrameView& frame) {
  if (negotiatedVersion_ == 0) {
    sendError(ErrorCode::kUnknownTenant, "BATCH before HELLO");
    return;
  }
  if (negotiatedVersion_ < 2) {
    sendError(ErrorCode::kUnsupportedVersion,
              "BATCH requires cdbp-serve v2; this session negotiated v" +
                  std::to_string(negotiatedVersion_));
    return;
  }
  if (finished_) {
    sendError(ErrorCode::kSessionFinished, "BATCH after DRAIN");
    return;
  }
  BatchFrame batch;
  if (!decodeBatch(frame, batch)) {
    sendError(ErrorCode::kMalformedFrame, "undecodable BATCH body");
    return;
  }

  BatchOkFrame ok;
  ok.results.reserve(batch.ops.size());
  auto fail = [&ok](std::size_t index, ErrorCode code, std::string message) {
    ok.failed = 1;
    ok.failedIndex = static_cast<std::uint32_t>(index);
    ok.errorCode = code;
    ok.errorMessage = std::move(message);
  };

  StreamEngine& engine = *engine_;
  std::uint64_t placed = 0;
  for (std::size_t i = 0; i < batch.ops.size(); ++i) {
    const BatchOp& op = batch.ops[i];
    if (op.kind == kBatchOpPlace) {
      if (op.place.arrival < engine.timeWatermark()) {
        fail(i, ErrorCode::kOutOfOrder,
             "PLACE arrival " + std::to_string(op.place.arrival) +
                 " behind the session watermark " +
                 std::to_string(engine.timeWatermark()));
        break;
      }
      StreamEngine::Placement result;
      try {
        CDBP_TELEM_SCOPED_TIMER(timer, "serve.place_ns");
        result = engine.place(
            StreamItem{op.place.size, op.place.arrival, op.place.departure});
      } catch (const std::invalid_argument& e) {
        fail(i, ErrorCode::kBadItem, e.what());
        break;
      } catch (const std::logic_error& e) {
        finished_ = true;
        fail(i, ErrorCode::kInternal, e.what());
        break;
      }
      ++placed;
      BatchResultEntry entry;
      entry.kind = kBatchOpPlace;
      entry.placed.item = result.item;
      entry.placed.bin = result.bin;
      entry.placed.openedNewBin = result.openedNewBin ? 1 : 0;
      entry.placed.category = result.category;
      ok.results.push_back(entry);
    } else {
      if (op.depart.time < engine.timeWatermark()) {
        fail(i, ErrorCode::kOutOfOrder,
             "DEPART time " + std::to_string(op.depart.time) +
                 " behind the session watermark " +
                 std::to_string(engine.timeWatermark()));
        break;
      }
      BatchResultEntry entry;
      entry.kind = kBatchOpDepart;
      try {
        entry.depart.drained = engine.drainUntil(op.depart.time);
      } catch (const std::invalid_argument& e) {
        fail(i, ErrorCode::kBadItem, e.what());
        break;
      }
      entry.depart.openBins = engine.openBins();
      ok.results.push_back(entry);
    }
  }

  counters_.batches.fetch_add(1, std::memory_order_relaxed);
  CDBP_TELEM_COUNT("serve.batches", 1);
  if (placed > 0) {
    CDBP_TELEM_COUNT("serve.placements", placed);
    counters_.placements.fetch_add(placed, std::memory_order_relaxed);
    if (tenantPlacements_ != nullptr) tenantPlacements_->add(placed);
    placementsSinceNote_ += placed;
  }
  noteTenantProgress(/*force=*/true);
  std::vector<std::uint8_t> bytes;
  appendBatchOk(bytes, ok);
  sendBytes(bytes);
}

void Session::handleStats() {
  if (!requireSession("STATS")) return;
  const StreamEngine& engine = *engine_;
  StatsOkFrame ok;
  ok.items = engine.itemsPlaced();
  ok.binsOpened = engine.binsOpened();
  ok.openBins = engine.openBins();
  ok.pendingDepartures = engine.pendingDepartures();
  ok.peakOpenItems = engine.peakOpenItems();
  ok.peakResidentBytes = engine.peakResidentBytes();
  noteTenantProgress(/*force=*/true);
  std::vector<std::uint8_t> bytes;
  appendStatsOk(bytes, ok);
  sendBytes(bytes);
}

void Session::handleDrainRequest() {
  if (negotiatedVersion_ == 0) {
    sendError(ErrorCode::kUnknownTenant, "DRAIN before HELLO");
    return;
  }
  if (finished_) {
    sendError(ErrorCode::kSessionFinished, "session already drained");
    return;
  }
  StreamResult result = engine_->finish();
  finished_ = true;
  DrainOkFrame ok;
  ok.items = result.items;
  ok.totalUsage = result.totalUsage;
  ok.binsOpened = result.binsOpened;
  ok.maxOpenBins = result.maxOpenBins;
  ok.categoriesUsed = result.categoriesUsed;
  ok.lb3 = result.lb3;
  ok.peakOpenItems = result.peakOpenItems;
  ok.peakResidentBytes = result.peakResidentBytes;
  counters_.sessionsFinished.fetch_add(1, std::memory_order_relaxed);
  tenants_.markFinished(tenantId_, result.items, /*openBins=*/0);
  if (tenantUsage_ != nullptr && result.totalUsage > 0) {
    tenantUsage_->add(
        static_cast<std::uint64_t>(std::llround(result.totalUsage)));
  }
  // The engine and policy are spent; release their bin state eagerly so
  // long-lived connections do not pin finished sessions in memory.
  engine_.reset();
  policy_.reset();
  std::vector<std::uint8_t> bytes;
  appendDrainOk(bytes, ok);
  sendBytes(bytes);
}

void Session::handleScrape() {
  CDBP_TELEM_COUNT("serve.scrapes", 1);
  ScrapeOkFrame ok;
  ok.text = telemetry::exposeTextString(telemetry::Registry::global());
  std::vector<std::uint8_t> bytes;
  appendScrapeOk(bytes, ok);
  sendBytes(bytes);
}

void Session::noteTenantProgress(bool force) {
  if (tenantId_ == 0 || engine_ == nullptr) return;
  if (!force && placementsSinceNote_ < kTenantNoteInterval) return;
  placementsSinceNote_ = 0;
  tenants_.noteProgress(tenantId_, engine_->itemsPlaced(),
                        engine_->openBins());
}

void Session::sendError(ErrorCode code, const std::string& message) {
  ErrorFrame error;
  error.code = code;
  error.message = message;
  std::vector<std::uint8_t> bytes;
  appendError(bytes, error);
  sendBytes(bytes);
  counters_.errorsSent.fetch_add(1, std::memory_order_relaxed);
  CDBP_TELEM_COUNT("serve.errors", 1);
}

void Session::sendBytes(const std::vector<std::uint8_t>& bytes) {
  wbuf_.insert(wbuf_.end(), bytes.begin(), bytes.end());
  CDBP_TELEM_COUNT("serve.frames_tx", 1);
  counters_.framesSent.fetch_add(1, std::memory_order_relaxed);
  if (tenantBytes_ != nullptr) {
    tenantBytes_->add(static_cast<std::uint64_t>(bytes.size()));
  }
  std::size_t pending = pendingWrite();
  if (pending > counters_.peakWriteBuffered()) {
    counters_.noteWriteBuffered(pending);
    CDBP_TELEM_GAUGE_SET("serve.write_buffered_bytes", pending);
  }
}

void Session::flushWrites() {
  while (pendingWrite() > 0) {
    ssize_t sent =
        send(fd_, wbuf_.data() + wpos_, pendingWrite(), MSG_NOSIGNAL);
    if (sent > 0) {
      wpos_ += static_cast<std::size_t>(sent);
      counters_.bytesSent.fetch_add(static_cast<std::uint64_t>(sent),
                                    std::memory_order_relaxed);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    dead_ = true;
    return;
  }
  if (wpos_ == wbuf_.size()) {
    wbuf_.clear();
    wpos_ = 0;
  } else if (wpos_ > 64 * 1024) {
    wbuf_.erase(wbuf_.begin(), wbuf_.begin() + static_cast<std::ptrdiff_t>(wpos_));
    wpos_ = 0;
  }
}

}  // namespace cdbp::serve
