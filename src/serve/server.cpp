#include "serve/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "online/policy_factory.hpp"
#include "sim/streaming.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/expose.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp::serve {

namespace {

constexpr std::size_t kReadChunk = 64 * 1024;

// Headroom above writeBufferLimit before a connection is shed. Processing
// stops at the limit and no single reply exceeds maxFramePayload + the
// frame overhead, so in practice the hard cap is unreachable unless a
// reply itself is pathological.
constexpr std::size_t kShedHeadroom = 1024;

void setNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

// Loop-owned per-connection state. Only the event-loop thread touches a
// Connection after registration; cross-thread visibility goes through the
// guarded tables and counters in Server.
struct Server::Connection {
  int fd = -1;
  std::uint32_t interest = 0;  // epoll events currently registered

  std::vector<std::uint8_t> rbuf;
  std::size_t rpos = 0;  // parse offset into rbuf

  std::vector<std::uint8_t> wbuf;
  std::size_t wpos = 0;  // flush offset into wbuf

  bool readPaused = false;  // backpressure: EPOLLIN dropped
  bool closing = false;     // close once wbuf flushes
  bool peerClosed = false;  // read side saw EOF

  // The per-tenant session. One per connection, created by HELLO.
  struct Session {
    std::uint64_t tenantId = 0;
    std::string tenant;
    PolicyPtr policy;
    std::unique_ptr<StreamEngine> engine;
    bool finished = false;
  };
  std::unique_ptr<Session> session;

  std::size_t pendingWrite() const { return wbuf.size() - wpos; }
  std::size_t pendingRead() const { return rbuf.size() - rpos; }
};

Server::Server(ServerOptions options) : options_(std::move(options)) {}

Server::~Server() {
  stop();
  if (thread_.joinable()) thread_.join();
  // Listener/epoll fds are owned by the loop and closed on exit; if
  // start() threw partway, clean up what it opened.
  for (int* fd : {&epollFd_, &wakeFd_, &unixListenFd_, &tcpListenFd_}) {
    if (*fd >= 0) {
      ::close(*fd);
      *fd = -1;
    }
  }
}

void Server::start() {
  if (running_.load(std::memory_order_acquire) || thread_.joinable()) {
    throw std::logic_error("serve::Server::start() called twice");
  }
  epollFd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epollFd_ < 0) throwErrno("epoll_create1");
  wakeFd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wakeFd_ < 0) throwErrno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wakeFd_;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, wakeFd_, &ev) < 0) {
    throwErrno("epoll_ctl(wakefd)");
  }
  if (!setupListeners()) {
    // setupListeners throws on failure; defensive.
    throw std::runtime_error("serve::Server: listener setup failed");
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

bool Server::setupListeners() {
  if (!options_.unixPath.empty()) {
    sockaddr_un addr{};
    if (options_.unixPath.size() >= sizeof(addr.sun_path)) {
      errno = ENAMETOOLONG;
      throwErrno("unix socket path");
    }
    unixListenFd_ =
        socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (unixListenFd_ < 0) throwErrno("socket(AF_UNIX)");
    ::unlink(options_.unixPath.c_str());
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, options_.unixPath.c_str(),
                options_.unixPath.size() + 1);
    if (bind(unixListenFd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
      throwErrno("bind(unix)");
    }
    if (listen(unixListenFd_, 128) < 0) throwErrno("listen(unix)");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = unixListenFd_;
    if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, unixListenFd_, &ev) < 0) {
      throwErrno("epoll_ctl(unix listener)");
    }
  }
  if (options_.tcp) {
    tcpListenFd_ =
        socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (tcpListenFd_ < 0) throwErrno("socket(AF_INET)");
    int one = 1;
    setsockopt(tcpListenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(options_.tcpPort);
    if (bind(tcpListenFd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
      throwErrno("bind(tcp)");
    }
    if (listen(tcpListenFd_, 128) < 0) throwErrno("listen(tcp)");
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(tcpListenFd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) == 0) {
      boundTcpPort_.store(ntohs(bound.sin_port), std::memory_order_release);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = tcpListenFd_;
    if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, tcpListenFd_, &ev) < 0) {
      throwErrno("epoll_ctl(tcp listener)");
    }
  }
  return true;
}

void Server::adoptConnection(int fd) {
  {
    MutexLock lock(mu_);
    adoptQueue_.push_back(fd);
  }
  wake();
}

void Server::requestDrain() noexcept {
  drainRequested_.store(true, std::memory_order_release);
  wake();
}

void Server::stop() noexcept {
  stopRequested_.store(true, std::memory_order_release);
  wake();
}

void Server::join() {
  if (thread_.joinable()) thread_.join();
}

bool Server::running() const { return running_.load(std::memory_order_acquire); }

std::uint16_t Server::tcpPort() const {
  return boundTcpPort_.load(std::memory_order_acquire);
}

ServerStats Server::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::vector<TenantSnapshot> Server::tenants() const {
  MutexLock lock(mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [id, row] : tenants_) out.push_back(row);
  return out;
}

void Server::wake() noexcept {
  if (wakeFd_ >= 0) {
    std::uint64_t one = 1;
    // A full eventfd counter still wakes the loop; the result is
    // intentionally ignored (async-signal-safe path).
    [[maybe_unused]] ssize_t rc = ::write(wakeFd_, &one, sizeof(one));
  }
}

void Server::loop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  while (true) {
    if (stopRequested_.load(std::memory_order_acquire)) break;
    if (drainRequested_.load(std::memory_order_acquire)) {
      drainAndExit();
      break;
    }

    // Adopted fds queue from other threads.
    std::vector<int> adopted;
    {
      MutexLock lock(mu_);
      adopted.swap(adoptQueue_);
    }
    for (int fd : adopted) registerConnection(fd, /*accepted=*/false);

    int n = epoll_wait(epollFd_, events, kMaxEvents, /*timeout ms=*/200);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      std::uint32_t mask = events[i].events;
      if (fd == wakeFd_) {
        std::uint64_t drainCount;
        while (::read(wakeFd_, &drainCount, sizeof(drainCount)) > 0) {
        }
        continue;
      }
      if (fd == unixListenFd_ || fd == tcpListenFd_) {
        acceptPending(fd);
        continue;
      }
      Connection* conn = nullptr;
      {
        MutexLock lock(mu_);
        auto it = connections_.find(fd);
        if (it != connections_.end()) conn = it->second.get();
      }
      if (conn == nullptr) continue;  // already closed this iteration
      if ((mask & (EPOLLERR | EPOLLHUP)) != 0 &&
          (mask & (EPOLLIN | EPOLLOUT)) == 0) {
        closeConnection(fd);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) handleWritable(*conn);
      // handleWritable may have shed/closed the connection.
      {
        MutexLock lock(mu_);
        if (connections_.find(fd) == connections_.end()) continue;
      }
      if ((mask & EPOLLIN) != 0) handleReadable(*conn);
    }
  }

  // Loop exit: close every remaining fd.
  std::vector<int> fds;
  {
    MutexLock lock(mu_);
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  }
  for (int fd : fds) closeConnection(fd);
  closeListeners();
  if (epollFd_ >= 0) {
    ::close(epollFd_);
    epollFd_ = -1;
  }
  if (wakeFd_ >= 0) {
    ::close(wakeFd_);
    wakeFd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void Server::closeListeners() {
  for (int* fd : {&unixListenFd_, &tcpListenFd_}) {
    if (*fd >= 0) {
      epoll_ctl(epollFd_, EPOLL_CTL_DEL, *fd, nullptr);
      ::close(*fd);
      *fd = -1;
    }
  }
}

void Server::acceptPending(int listenFd) {
  while (true) {
    int fd = accept4(listenFd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: nothing to accept
    registerConnection(fd, /*accepted=*/true);
  }
}

void Server::registerConnection(int fd, bool accepted) {
  setNonBlocking(fd);
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->interest = EPOLLIN;
  epoll_event ev{};
  ev.events = conn->interest;
  ev.data.fd = fd;
  if (epoll_ctl(epollFd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    ::close(fd);
    return;
  }
  MutexLock lock(mu_);
  if (accepted) {
    ++stats_.connectionsAccepted;
  } else {
    ++stats_.connectionsAdopted;
  }
  connections_[fd] = std::move(conn);
  stats_.openConnections = connections_.size();
  CDBP_TELEM_GAUGE_SET("serve.connections", connections_.size());
}

void Server::updateInterest(Connection& conn) {
  std::uint32_t want = 0;
  if (!conn.readPaused && !conn.peerClosed && !conn.closing) want |= EPOLLIN;
  if (conn.pendingWrite() > 0) want |= EPOLLOUT;
  if (want == conn.interest) return;
  conn.interest = want;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  epoll_ctl(epollFd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Server::handleReadable(Connection& conn) {
  std::uint8_t chunk[kReadChunk];
  while (!conn.readPaused && !conn.closing) {
    ssize_t got = recv(conn.fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      conn.rbuf.insert(conn.rbuf.end(), chunk, chunk + got);
      {
        MutexLock lock(mu_);
        stats_.bytesReceived += static_cast<std::uint64_t>(got);
      }
      processBufferedFrames(conn);
      // A partial frame cannot exceed the payload cap plus framing: the
      // extractor flags oversized prefixes as soon as they are visible.
      if (got < static_cast<ssize_t>(sizeof(chunk))) break;
      continue;
    }
    if (got == 0) {
      conn.peerClosed = true;
      processBufferedFrames(conn);
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    closeConnection(conn.fd);
    return;
  }
  pumpConnection(conn);
}

void Server::handleWritable(Connection& conn) {
  pumpConnection(conn);
}

void Server::pumpConnection(Connection& conn) {
  const int fd = conn.fd;
  while (true) {
    flushWrites(conn);
    {
      MutexLock lock(mu_);
      if (connections_.find(fd) == connections_.end()) return;
    }
    // Below the resume threshold with requests still buffered: pick them
    // back up. The loop re-pauses (and re-flushes) as replies accumulate,
    // so the write buffer never exceeds the limit by more than one reply.
    if (conn.readPaused && !conn.closing &&
        conn.pendingWrite() <= options_.writeBufferLimit / 2) {
      conn.readPaused = false;
      std::size_t before = conn.pendingRead();
      processBufferedFrames(conn);
      if (conn.readPaused || conn.pendingRead() != before) continue;
    }
    break;
  }
  if ((conn.closing || conn.peerClosed) && conn.pendingWrite() == 0) {
    closeConnection(fd);
    return;
  }
  updateInterest(conn);
}

void Server::processBufferedFrames(Connection& conn) {
  bool draining = drainRequested_.load(std::memory_order_acquire);
  while (!conn.closing) {
    // Backpressure: once the write buffer crosses the limit, leave the
    // remaining (already received) requests unprocessed in rbuf. They
    // resume when the client reads. A graceful drain overrides the limit
    // so every fully-received request is answered before exit.
    if (!draining && conn.pendingWrite() > options_.writeBufferLimit) {
      if (!conn.readPaused) {
        conn.readPaused = true;
        MutexLock lock(mu_);
        ++stats_.throttleEvents;
        CDBP_TELEM_COUNT("serve.throttles", 1);
      }
      break;
    }
    if (conn.pendingWrite() >
        options_.writeBufferLimit + options_.maxFramePayload + kShedHeadroom) {
      // Unreachable with well-formed replies; shed defensively.
      conn.closing = true;
      MutexLock lock(mu_);
      ++stats_.shedConnections;
      break;
    }
    FrameView frame;
    std::size_t consumed = 0;
    ExtractStatus status =
        extractFrame(conn.rbuf.data() + conn.rpos, conn.pendingRead(),
                     options_.maxFramePayload, frame, consumed);
    if (status == ExtractStatus::kNeedMore) break;
    if (status == ExtractStatus::kOversized) {
      {
        MutexLock lock(mu_);
        ++stats_.framesReceived;
      }
      sendError(conn, ErrorCode::kOversizedFrame,
                "frame length prefix exceeds the payload cap");
      conn.closing = true;  // cannot resync past an untrusted length
      break;
    }
    conn.rpos += consumed;
    {
      MutexLock lock(mu_);
      ++stats_.framesReceived;
    }
    CDBP_TELEM_COUNT("serve.frames_rx", 1);
    handleFrame(conn, frame);
  }
  // Compact the consumed prefix so rbuf stays proportional to what is
  // actually pending.
  if (conn.rpos > 0) {
    if (conn.rpos == conn.rbuf.size()) {
      conn.rbuf.clear();
    } else {
      conn.rbuf.erase(conn.rbuf.begin(),
                      conn.rbuf.begin() +
                          static_cast<std::ptrdiff_t>(conn.rpos));
    }
    conn.rpos = 0;
  }
}

void Server::handleFrame(Connection& conn, const FrameView& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      handleHello(conn, frame);
      return;
    case FrameType::kPlace:
      handlePlace(conn, frame);
      return;
    case FrameType::kDepart:
      handleDepart(conn, frame);
      return;
    case FrameType::kStats:
      if (!decodeEmpty(frame)) {
        sendError(conn, ErrorCode::kMalformedFrame, "STATS carries no body");
        return;
      }
      handleStats(conn);
      return;
    case FrameType::kDrain:
      if (!decodeEmpty(frame)) {
        sendError(conn, ErrorCode::kMalformedFrame, "DRAIN carries no body");
        return;
      }
      handleDrainRequest(conn);
      return;
    case FrameType::kScrape:
      if (!decodeEmpty(frame)) {
        sendError(conn, ErrorCode::kMalformedFrame, "SCRAPE carries no body");
        return;
      }
      handleScrape(conn);
      return;
    case FrameType::kError:
      // The extractor's tag for a zero-length frame (no type byte).
      sendError(conn, ErrorCode::kMalformedFrame, "empty frame");
      return;
    default:
      sendError(conn, ErrorCode::kUnknownFrameType,
                "unknown frame type " +
                    std::to_string(static_cast<unsigned>(frame.type)));
      return;
  }
}

void Server::handleHello(Connection& conn, const FrameView& frame) {
  HelloFrame hello;
  if (!decodeHello(frame, hello)) {
    sendError(conn, ErrorCode::kMalformedFrame, "undecodable HELLO body");
    return;
  }
  if (hello.version != kProtocolVersion) {
    sendError(conn, ErrorCode::kProtocolVersion,
              "server speaks cdbp-serve v" +
                  std::to_string(kProtocolVersion) + ", client sent v" +
                  std::to_string(hello.version));
    return;
  }
  if (conn.session != nullptr) {
    sendError(conn, ErrorCode::kDuplicateHello,
              "connection already carries a session for tenant '" +
                  conn.session->tenant + "'");
    return;
  }
  PolicyContext context;
  context.minDuration = hello.minDuration;
  context.mu = hello.mu;
  context.seed = hello.seed;
  PolicyPtr policy;
  try {
    policy = makePolicy(hello.policySpec, context);
  } catch (const std::exception& e) {
    sendError(conn, ErrorCode::kBadPolicySpec, e.what());
    return;
  }

  auto session = std::make_unique<Connection::Session>();
  session->tenant = hello.tenant;
  session->policy = std::move(policy);
  StreamOptions streamOptions;
  streamOptions.engine = hello.engine == 1 ? PlacementEngine::kLinearScan
                                           : PlacementEngine::kIndexed;
  session->engine =
      std::make_unique<StreamEngine>(*session->policy, streamOptions);

  HelloOkFrame ok;
  ok.version = kProtocolVersion;
  ok.policyName = session->policy->name();
  {
    MutexLock lock(mu_);
    session->tenantId = nextTenantId_++;
    ok.tenantId = session->tenantId;
    TenantSnapshot row;
    row.id = session->tenantId;
    row.name = session->tenant;
    row.policyName = ok.policyName;
    tenants_[row.id] = std::move(row);
    ++stats_.sessionsOpened;
    CDBP_TELEM_GAUGE_SET("serve.tenants", tenants_.size());
  }
  conn.session = std::move(session);
  std::vector<std::uint8_t> reply;
  appendHelloOk(reply, ok);
  sendBytes(conn, reply);
}

void Server::handlePlace(Connection& conn, const FrameView& frame) {
  if (conn.session == nullptr) {
    sendError(conn, ErrorCode::kUnknownTenant, "PLACE before HELLO");
    return;
  }
  if (conn.session->finished) {
    sendError(conn, ErrorCode::kSessionFinished, "PLACE after DRAIN");
    return;
  }
  PlaceFrame place;
  if (!decodePlace(frame, place)) {
    sendError(conn, ErrorCode::kMalformedFrame, "undecodable PLACE body");
    return;
  }
  StreamEngine& engine = *conn.session->engine;
  if (place.arrival < engine.timeWatermark()) {
    sendError(conn, ErrorCode::kOutOfOrder,
              "PLACE arrival " + std::to_string(place.arrival) +
                  " behind the session watermark " +
                  std::to_string(engine.timeWatermark()));
    return;
  }
  StreamEngine::Placement placed;
  try {
    CDBP_TELEM_SCOPED_TIMER(timer, "serve.place_ns");
    placed = engine.place(StreamItem{place.size, place.arrival,
                                     place.departure});
  } catch (const std::invalid_argument& e) {
    sendError(conn, ErrorCode::kBadItem, e.what());
    return;
  } catch (const std::logic_error& e) {
    // A policy/engine contract violation is a server-side bug; the
    // session is no longer trustworthy.
    conn.session->finished = true;
    sendError(conn, ErrorCode::kInternal, e.what());
    return;
  }
  CDBP_TELEM_COUNT("serve.placements", 1);
  {
    MutexLock lock(mu_);
    ++stats_.placements;
    auto it = tenants_.find(conn.session->tenantId);
    if (it != tenants_.end()) {
      it->second.items = engine.itemsPlaced();
      it->second.openBins = engine.openBins();
    }
  }
  PlacedFrame reply;
  reply.item = placed.item;
  reply.bin = placed.bin;
  reply.openedNewBin = placed.openedNewBin ? 1 : 0;
  reply.category = placed.category;
  std::vector<std::uint8_t> bytes;
  appendPlaced(bytes, reply);
  sendBytes(conn, bytes);
}

void Server::handleDepart(Connection& conn, const FrameView& frame) {
  if (conn.session == nullptr) {
    sendError(conn, ErrorCode::kUnknownTenant, "DEPART before HELLO");
    return;
  }
  if (conn.session->finished) {
    sendError(conn, ErrorCode::kSessionFinished, "DEPART after DRAIN");
    return;
  }
  DepartFrame depart;
  if (!decodeDepart(frame, depart)) {
    sendError(conn, ErrorCode::kMalformedFrame, "undecodable DEPART body");
    return;
  }
  StreamEngine& engine = *conn.session->engine;
  if (depart.time < engine.timeWatermark()) {
    sendError(conn, ErrorCode::kOutOfOrder,
              "DEPART time " + std::to_string(depart.time) +
                  " behind the session watermark " +
                  std::to_string(engine.timeWatermark()));
    return;
  }
  DepartOkFrame ok;
  try {
    ok.drained = engine.drainUntil(depart.time);
  } catch (const std::invalid_argument& e) {
    sendError(conn, ErrorCode::kBadItem, e.what());  // non-finite time
    return;
  }
  ok.openBins = engine.openBins();
  {
    MutexLock lock(mu_);
    auto it = tenants_.find(conn.session->tenantId);
    if (it != tenants_.end()) it->second.openBins = engine.openBins();
  }
  std::vector<std::uint8_t> bytes;
  appendDepartOk(bytes, ok);
  sendBytes(conn, bytes);
}

void Server::handleStats(Connection& conn) {
  if (conn.session == nullptr) {
    sendError(conn, ErrorCode::kUnknownTenant, "STATS before HELLO");
    return;
  }
  if (conn.session->finished) {
    sendError(conn, ErrorCode::kSessionFinished, "STATS after DRAIN");
    return;
  }
  const StreamEngine& engine = *conn.session->engine;
  StatsOkFrame ok;
  ok.items = engine.itemsPlaced();
  ok.binsOpened = engine.binsOpened();
  ok.openBins = engine.openBins();
  ok.pendingDepartures = engine.pendingDepartures();
  ok.peakOpenItems = engine.peakOpenItems();
  ok.peakResidentBytes = engine.peakResidentBytes();
  std::vector<std::uint8_t> bytes;
  appendStatsOk(bytes, ok);
  sendBytes(conn, bytes);
}

void Server::handleDrainRequest(Connection& conn) {
  if (conn.session == nullptr) {
    sendError(conn, ErrorCode::kUnknownTenant, "DRAIN before HELLO");
    return;
  }
  if (conn.session->finished) {
    sendError(conn, ErrorCode::kSessionFinished, "session already drained");
    return;
  }
  StreamResult result = conn.session->engine->finish();
  conn.session->finished = true;
  DrainOkFrame ok;
  ok.items = result.items;
  ok.totalUsage = result.totalUsage;
  ok.binsOpened = result.binsOpened;
  ok.maxOpenBins = result.maxOpenBins;
  ok.categoriesUsed = result.categoriesUsed;
  ok.lb3 = result.lb3;
  ok.peakOpenItems = result.peakOpenItems;
  ok.peakResidentBytes = result.peakResidentBytes;
  {
    MutexLock lock(mu_);
    ++stats_.sessionsFinished;
    auto it = tenants_.find(conn.session->tenantId);
    if (it != tenants_.end()) {
      it->second.items = result.items;
      it->second.openBins = 0;
      it->second.finished = true;
    }
  }
  // The engine and policy are spent; release their bin state eagerly so
  // long-lived connections do not pin finished sessions in memory.
  conn.session->engine.reset();
  conn.session->policy.reset();
  std::vector<std::uint8_t> bytes;
  appendDrainOk(bytes, ok);
  sendBytes(conn, bytes);
}

void Server::handleScrape(Connection& conn) {
  CDBP_TELEM_COUNT("serve.scrapes", 1);
  ScrapeOkFrame ok;
  ok.text = telemetry::exposeTextString(telemetry::Registry::global());
  std::vector<std::uint8_t> bytes;
  appendScrapeOk(bytes, ok);
  sendBytes(conn, bytes);
}

void Server::sendError(Connection& conn, ErrorCode code,
                       const std::string& message) {
  ErrorFrame error;
  error.code = code;
  error.message = message;
  std::vector<std::uint8_t> bytes;
  appendError(bytes, error);
  sendBytes(conn, bytes);
  {
    MutexLock lock(mu_);
    ++stats_.errorsSent;
  }
  CDBP_TELEM_COUNT("serve.errors", 1);
}

void Server::sendBytes(Connection& conn, const std::vector<std::uint8_t>& bytes) {
  conn.wbuf.insert(conn.wbuf.end(), bytes.begin(), bytes.end());
  CDBP_TELEM_COUNT("serve.frames_tx", 1);
  MutexLock lock(mu_);
  ++stats_.framesSent;
  if (conn.pendingWrite() > stats_.peakWriteBuffered) {
    stats_.peakWriteBuffered = conn.pendingWrite();
    CDBP_TELEM_GAUGE_SET("serve.write_buffered_bytes", conn.pendingWrite());
  }
}

void Server::flushWrites(Connection& conn) {
  while (conn.pendingWrite() > 0) {
    ssize_t sent = send(conn.fd, conn.wbuf.data() + conn.wpos,
                        conn.pendingWrite(), MSG_NOSIGNAL);
    if (sent > 0) {
      conn.wpos += static_cast<std::size_t>(sent);
      MutexLock lock(mu_);
      stats_.bytesSent += static_cast<std::uint64_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (sent < 0 && errno == EINTR) continue;
    closeConnection(conn.fd);
    return;
  }
  if (conn.wpos == conn.wbuf.size()) {
    conn.wbuf.clear();
    conn.wpos = 0;
  } else if (conn.wpos > 64 * 1024) {
    conn.wbuf.erase(conn.wbuf.begin(),
                    conn.wbuf.begin() + static_cast<std::ptrdiff_t>(conn.wpos));
    conn.wpos = 0;
  }
}

void Server::closeConnection(int fd) {
  std::unique_ptr<Connection> conn;
  {
    MutexLock lock(mu_);
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    conn = std::move(it->second);
    connections_.erase(it);
    ++stats_.connectionsClosed;
    stats_.openConnections = connections_.size();
    if (conn->session != nullptr) {
      auto t = tenants_.find(conn->session->tenantId);
      if (t != tenants_.end()) t->second.finished = true;
    }
    CDBP_TELEM_GAUGE_SET("serve.connections", connections_.size());
  }
  epoll_ctl(epollFd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
}

void Server::drainAndExit() {
  {
    MutexLock lock(mu_);
    stats_.draining = true;
  }
  closeListeners();

  // Answer every fully-received request, then flush.
  std::vector<int> fds;
  {
    MutexLock lock(mu_);
    for (const auto& [fd, conn] : connections_) fds.push_back(fd);
  }
  for (int fd : fds) {
    Connection* conn = nullptr;
    {
      MutexLock lock(mu_);
      auto it = connections_.find(fd);
      if (it != connections_.end()) conn = it->second.get();
    }
    if (conn == nullptr) continue;
    conn->readPaused = true;  // no new requests during the drain
    processBufferedFrames(*conn);
    flushWrites(*conn);
  }

  // Flush loop, bounded by the drain timeout: wait for writability on
  // connections that still hold replies.
  std::uint64_t deadline =
      telemetry::monotonicNanos() + options_.drainTimeoutNanos;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (telemetry::monotonicNanos() < deadline) {
    bool pendingAny = false;
    std::vector<int> open;
    {
      MutexLock lock(mu_);
      for (const auto& [fd, conn] : connections_) open.push_back(fd);
    }
    for (int fd : open) {
      Connection* conn = nullptr;
      {
        MutexLock lock(mu_);
        auto it = connections_.find(fd);
        if (it != connections_.end()) conn = it->second.get();
      }
      if (conn == nullptr) continue;
      if (conn->pendingWrite() == 0) {
        closeConnection(fd);
      } else {
        pendingAny = true;
        conn->interest = EPOLLOUT;
        epoll_event ev{};
        ev.events = EPOLLOUT;
        ev.data.fd = fd;
        epoll_ctl(epollFd_, EPOLL_CTL_MOD, fd, &ev);
      }
    }
    if (!pendingAny) break;
    int n = epoll_wait(epollFd_, events, kMaxEvents, 50);
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wakeFd_) {
        std::uint64_t drainCount;
        while (::read(wakeFd_, &drainCount, sizeof(drainCount)) > 0) {
        }
        continue;
      }
      Connection* conn = nullptr;
      {
        MutexLock lock(mu_);
        auto it = connections_.find(fd);
        if (it != connections_.end()) conn = it->second.get();
      }
      if (conn != nullptr) flushWrites(*conn);
    }
    if (stopRequested_.load(std::memory_order_acquire)) break;
  }

  // Whatever could not flush in time is closed regardless.
  std::vector<int> leftover;
  {
    MutexLock lock(mu_);
    for (const auto& [fd, conn] : connections_) leftover.push_back(fd);
  }
  for (int fd : leftover) closeConnection(fd);
  {
    MutexLock lock(mu_);
    stats_.drained = true;
  }
}

}  // namespace cdbp::serve
