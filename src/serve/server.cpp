#include "serve/server.hpp"

#include <stdexcept>
#include <utility>

namespace cdbp::serve {

Server::Server(ServerOptions options) : options_(options.validated()) {}

Server::~Server() {
  stop();
  join();
  // Loops close their own fds (epoll, eventfd, listeners, sessions) in
  // their destructors, after the joins above.
}

void Server::start() {
  if (started_) {
    throw std::logic_error("serve::Server::start() called twice");
  }
  loops_.reserve(options_.loopThreads);
  for (unsigned i = 0; i < options_.loopThreads; ++i) {
    loops_.push_back(std::make_unique<Loop>(options_, tenants_));
  }
  // All listeners poll on loop 0; accepted fds are routed round-robin
  // across every shard (including loop 0 itself).
  for (const Address& address : options_.listen) {
    std::uint16_t boundPort = 0;
    int fd = listenStream(address, /*backlog=*/128, &boundPort);
    if (address.kind == Address::Kind::kTcp &&
        boundTcpPort_.load(std::memory_order_relaxed) == 0) {
      boundTcpPort_.store(boundPort, std::memory_order_release);
    }
    loops_[0]->addListener(fd, [this](int newFd) {
      nextLoop().adopt(newFd, /*accepted=*/true);
    });
  }
  started_ = true;
  for (auto& loop : loops_) loop->start();
}

Loop& Server::nextLoop() {
  std::size_t shard = nextShard_.fetch_add(1, std::memory_order_relaxed) %
                      loops_.size();
  return *loops_[shard];
}

void Server::adoptConnection(int fd) {
  if (!started_) {
    throw std::logic_error("serve::Server::adoptConnection before start()");
  }
  nextLoop().adopt(fd, /*accepted=*/false);
}

void Server::requestDrain() noexcept {
  for (auto& loop : loops_) loop->requestDrain();
}

void Server::stop() noexcept {
  for (auto& loop : loops_) loop->requestStop();
}

void Server::join() {
  for (auto& loop : loops_) loop->join();
}

bool Server::running() const {
  for (const auto& loop : loops_) {
    if (loop->running()) return true;
  }
  return false;
}

std::uint16_t Server::tcpPort() const {
  return boundTcpPort_.load(std::memory_order_acquire);
}

ServerStats Server::stats() const {
  ServerStats out;
  out.drained = !loops_.empty();  // AND identity; stays false pre-start
  for (const auto& loop : loops_) loop->counters().addTo(out);
  return out;
}

std::vector<TenantSnapshot> Server::tenants() const {
  return tenants_.snapshot();
}

std::vector<std::uint64_t> Server::shardConnectionCounts() const {
  std::vector<std::uint64_t> out;
  out.reserve(loops_.size());
  for (const auto& loop : loops_) {
    const ShardCounters& c = loop->counters();
    out.push_back(c.connectionsAccepted.load(std::memory_order_relaxed) +
                  c.connectionsAdopted.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace cdbp::serve
