#include "serve/protocol.hpp"

#include <bit>
#include <limits>

namespace cdbp::serve {

const char* errorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kOversizedFrame: return "oversized-frame";
    case ErrorCode::kUnknownFrameType: return "unknown-frame-type";
    case ErrorCode::kProtocolVersion: return "protocol-version";
    case ErrorCode::kUnknownTenant: return "unknown-tenant";
    case ErrorCode::kDuplicateHello: return "duplicate-hello";
    case ErrorCode::kBadPolicySpec: return "bad-policy-spec";
    case ErrorCode::kBadItem: return "bad-item";
    case ErrorCode::kOutOfOrder: return "out-of-order";
    case ErrorCode::kSessionFinished: return "session-finished";
    case ErrorCode::kBackpressure: return "backpressure";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
  }
  return "unknown";
}

namespace {

// --- little-endian primitive writers -------------------------------------

void putU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

void putI32(std::vector<std::uint8_t>& out, std::int32_t v) {
  putU32(out, static_cast<std::uint32_t>(v));
}

void putF64(std::vector<std::uint8_t>& out, double v) {
  putU64(out, std::bit_cast<std::uint64_t>(v));
}

void putStr16(std::vector<std::uint8_t>& out, const std::string& s) {
  std::size_t n = s.size();
  if (n > std::numeric_limits<std::uint16_t>::max()) {
    n = std::numeric_limits<std::uint16_t>::max();  // writers keep specs short
  }
  putU16(out, static_cast<std::uint16_t>(n));
  out.insert(out.end(), s.begin(), s.begin() + static_cast<std::ptrdiff_t>(n));
}

void putStr32(std::vector<std::uint8_t>& out, const std::string& s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// Reserves the 4-byte length prefix, lets `body` append the payload, then
// patches the prefix with the realized payload size.
template <typename Body>
void frame(std::vector<std::uint8_t>& out, FrameType type, Body&& body) {
  std::size_t lengthAt = out.size();
  putU32(out, 0);
  putU8(out, static_cast<std::uint8_t>(type));
  body();
  std::uint32_t payload =
      static_cast<std::uint32_t>(out.size() - lengthAt - 4);
  out[lengthAt + 0] = static_cast<std::uint8_t>(payload & 0xFF);
  out[lengthAt + 1] = static_cast<std::uint8_t>((payload >> 8) & 0xFF);
  out[lengthAt + 2] = static_cast<std::uint8_t>((payload >> 16) & 0xFF);
  out[lengthAt + 3] = static_cast<std::uint8_t>((payload >> 24) & 0xFF);
}

// --- bounded cursor reader ------------------------------------------------

class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool u8(std::uint8_t& v) {
    if (size_ - pos_ < 1) return false;
    v = data_[pos_++];
    return true;
  }

  bool u16(std::uint16_t& v) {
    if (size_ - pos_ < 2) return false;
    v = static_cast<std::uint16_t>(data_[pos_] |
                                   (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return true;
  }

  bool u32(std::uint32_t& v) {
    if (size_ - pos_ < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool u64(std::uint64_t& v) {
    if (size_ - pos_ < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{data_[pos_ + static_cast<std::size_t>(i)]} << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool i32(std::int32_t& v) {
    std::uint32_t raw;
    if (!u32(raw)) return false;
    v = static_cast<std::int32_t>(raw);
    return true;
  }

  bool f64(double& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    v = std::bit_cast<double>(raw);
    return true;
  }

  bool str16(std::string& v) {
    std::uint16_t n;
    if (!u16(n)) return false;
    if (size_ - pos_ < n) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  bool str32(std::string& v) {
    std::uint32_t n;
    if (!u32(n)) return false;
    if (size_ - pos_ < n) return false;
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return true;
  }

  /// Strict decoders require the body to be fully consumed: v1 frames
  /// carry no extension fields, so trailing bytes are malformed input.
  bool done() const { return pos_ == size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

// --- encoders -------------------------------------------------------------

void appendHello(std::vector<std::uint8_t>& out, const HelloFrame& f) {
  frame(out, FrameType::kHello, [&] {
    putU16(out, f.version);
    putU8(out, f.engine);
    putF64(out, f.minDuration);
    putF64(out, f.mu);
    putU64(out, f.seed);
    putStr16(out, f.tenant);
    putStr16(out, f.policySpec);
  });
}

void appendHelloOk(std::vector<std::uint8_t>& out, const HelloOkFrame& f) {
  frame(out, FrameType::kHelloOk, [&] {
    putU16(out, f.version);
    putU64(out, f.tenantId);
    putStr16(out, f.policyName);
  });
}

void appendPlace(std::vector<std::uint8_t>& out, const PlaceFrame& f) {
  frame(out, FrameType::kPlace, [&] {
    putF64(out, f.size);
    putF64(out, f.arrival);
    putF64(out, f.departure);
  });
}

void appendPlaced(std::vector<std::uint8_t>& out, const PlacedFrame& f) {
  frame(out, FrameType::kPlaced, [&] {
    putU32(out, f.item);
    putI32(out, f.bin);
    putU8(out, f.openedNewBin);
    putI32(out, f.category);
  });
}

void appendDepart(std::vector<std::uint8_t>& out, const DepartFrame& f) {
  frame(out, FrameType::kDepart, [&] { putF64(out, f.time); });
}

void appendDepartOk(std::vector<std::uint8_t>& out, const DepartOkFrame& f) {
  frame(out, FrameType::kDepartOk, [&] {
    putU64(out, f.drained);
    putU64(out, f.openBins);
  });
}

void appendBatch(std::vector<std::uint8_t>& out, const BatchFrame& f) {
  frame(out, FrameType::kBatch, [&] {
    putU32(out, static_cast<std::uint32_t>(f.ops.size()));
    for (const BatchOp& op : f.ops) {
      putU8(out, op.kind);
      if (op.kind == kBatchOpPlace) {
        putF64(out, op.place.size);
        putF64(out, op.place.arrival);
        putF64(out, op.place.departure);
      } else {
        putF64(out, op.depart.time);
      }
    }
  });
}

void appendBatchOk(std::vector<std::uint8_t>& out, const BatchOkFrame& f) {
  frame(out, FrameType::kBatchOk, [&] {
    putU32(out, static_cast<std::uint32_t>(f.results.size()));
    for (const BatchResultEntry& r : f.results) {
      putU8(out, r.kind);
      if (r.kind == kBatchOpPlace) {
        putU32(out, r.placed.item);
        putI32(out, r.placed.bin);
        putU8(out, r.placed.openedNewBin);
        putI32(out, r.placed.category);
      } else {
        putU64(out, r.depart.drained);
        putU64(out, r.depart.openBins);
      }
    }
    putU8(out, f.failed);
    if (f.failed != 0) {
      putU32(out, f.failedIndex);
      putU16(out, static_cast<std::uint16_t>(f.errorCode));
      putStr16(out, f.errorMessage);
    }
  });
}

void appendStats(std::vector<std::uint8_t>& out) {
  frame(out, FrameType::kStats, [] {});
}

void appendStatsOk(std::vector<std::uint8_t>& out, const StatsOkFrame& f) {
  frame(out, FrameType::kStatsOk, [&] {
    putU64(out, f.items);
    putU64(out, f.binsOpened);
    putU64(out, f.openBins);
    putU64(out, f.pendingDepartures);
    putU64(out, f.peakOpenItems);
    putU64(out, f.peakResidentBytes);
  });
}

void appendDrain(std::vector<std::uint8_t>& out) {
  frame(out, FrameType::kDrain, [] {});
}

void appendDrainOk(std::vector<std::uint8_t>& out, const DrainOkFrame& f) {
  frame(out, FrameType::kDrainOk, [&] {
    putU64(out, f.items);
    putF64(out, f.totalUsage);
    putU64(out, f.binsOpened);
    putU64(out, f.maxOpenBins);
    putU64(out, f.categoriesUsed);
    putF64(out, f.lb3);
    putU64(out, f.peakOpenItems);
    putU64(out, f.peakResidentBytes);
  });
}

void appendScrape(std::vector<std::uint8_t>& out) {
  frame(out, FrameType::kScrape, [] {});
}

void appendScrapeOk(std::vector<std::uint8_t>& out, const ScrapeOkFrame& f) {
  frame(out, FrameType::kScrapeOk, [&] { putStr32(out, f.text); });
}

void appendError(std::vector<std::uint8_t>& out, const ErrorFrame& f) {
  frame(out, FrameType::kError, [&] {
    putU16(out, static_cast<std::uint16_t>(f.code));
    putStr16(out, f.message);
  });
}

// --- extraction and decoders ----------------------------------------------

ExtractStatus extractFrame(const std::uint8_t* data, std::size_t size,
                           std::size_t maxPayload, FrameView& out,
                           std::size_t& consumed) {
  if (size < 4) return ExtractStatus::kNeedMore;
  std::uint32_t payload = 0;
  for (int i = 0; i < 4; ++i) {
    payload |= std::uint32_t{data[static_cast<std::size_t>(i)]} << (8 * i);
  }
  if (payload > maxPayload) return ExtractStatus::kOversized;
  if (size - 4 < payload) return ExtractStatus::kNeedMore;
  consumed = 4 + static_cast<std::size_t>(payload);
  if (payload == 0) {
    // No type byte: representable on the wire, decodable by nothing. The
    // server maps it to kMalformedFrame; kError is a reply type no client
    // request can legitimately carry.
    out = FrameView{FrameType::kError, data + 4, 0};
    return ExtractStatus::kFrame;
  }
  out.type = static_cast<FrameType>(data[4]);
  out.payload = data + 5;
  out.payloadSize = static_cast<std::size_t>(payload) - 1;
  return ExtractStatus::kFrame;
}

bool decodeHello(const FrameView& frame, HelloFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  HelloFrame v;
  if (!c.u16(v.version) || !c.u8(v.engine) || !c.f64(v.minDuration) ||
      !c.f64(v.mu) || !c.u64(v.seed) || !c.str16(v.tenant) ||
      !c.str16(v.policySpec) || !c.done()) {
    return false;
  }
  out = std::move(v);
  return true;
}

bool decodeHelloOk(const FrameView& frame, HelloOkFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  HelloOkFrame v;
  if (!c.u16(v.version) || !c.u64(v.tenantId) || !c.str16(v.policyName) ||
      !c.done()) {
    return false;
  }
  out = std::move(v);
  return true;
}

bool decodePlace(const FrameView& frame, PlaceFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  PlaceFrame v;
  if (!c.f64(v.size) || !c.f64(v.arrival) || !c.f64(v.departure) ||
      !c.done()) {
    return false;
  }
  out = v;
  return true;
}

bool decodePlaced(const FrameView& frame, PlacedFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  PlacedFrame v;
  if (!c.u32(v.item) || !c.i32(v.bin) || !c.u8(v.openedNewBin) ||
      !c.i32(v.category) || !c.done()) {
    return false;
  }
  out = v;
  return true;
}

bool decodeDepart(const FrameView& frame, DepartFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  DepartFrame v;
  if (!c.f64(v.time) || !c.done()) return false;
  out = v;
  return true;
}

bool decodeDepartOk(const FrameView& frame, DepartOkFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  DepartOkFrame v;
  if (!c.u64(v.drained) || !c.u64(v.openBins) || !c.done()) return false;
  out = v;
  return true;
}

bool decodeBatch(const FrameView& frame, BatchFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  std::uint32_t count;
  if (!c.u32(count)) return false;
  if (count > kMaxBatchOps) return false;
  BatchFrame v;
  v.ops.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchOp op;
    if (!c.u8(op.kind)) return false;
    if (op.kind == kBatchOpPlace) {
      if (!c.f64(op.place.size) || !c.f64(op.place.arrival) ||
          !c.f64(op.place.departure)) {
        return false;
      }
    } else if (op.kind == kBatchOpDepart) {
      if (!c.f64(op.depart.time)) return false;
    } else {
      return false;
    }
    v.ops.push_back(op);
  }
  if (!c.done()) return false;
  out = std::move(v);
  return true;
}

bool decodeBatchOk(const FrameView& frame, BatchOkFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  std::uint32_t count;
  if (!c.u32(count)) return false;
  if (count > kMaxBatchOps) return false;
  BatchOkFrame v;
  v.results.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    BatchResultEntry r;
    if (!c.u8(r.kind)) return false;
    if (r.kind == kBatchOpPlace) {
      if (!c.u32(r.placed.item) || !c.i32(r.placed.bin) ||
          !c.u8(r.placed.openedNewBin) || !c.i32(r.placed.category)) {
        return false;
      }
    } else if (r.kind == kBatchOpDepart) {
      if (!c.u64(r.depart.drained) || !c.u64(r.depart.openBins)) return false;
    } else {
      return false;
    }
    v.results.push_back(r);
  }
  if (!c.u8(v.failed)) return false;
  if (v.failed != 0) {
    std::uint16_t code;
    if (!c.u32(v.failedIndex) || !c.u16(code) || !c.str16(v.errorMessage)) {
      return false;
    }
    v.errorCode = static_cast<ErrorCode>(code);
  }
  if (!c.done()) return false;
  out = std::move(v);
  return true;
}

bool decodeStatsOk(const FrameView& frame, StatsOkFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  StatsOkFrame v;
  if (!c.u64(v.items) || !c.u64(v.binsOpened) || !c.u64(v.openBins) ||
      !c.u64(v.pendingDepartures) || !c.u64(v.peakOpenItems) ||
      !c.u64(v.peakResidentBytes) || !c.done()) {
    return false;
  }
  out = v;
  return true;
}

bool decodeDrainOk(const FrameView& frame, DrainOkFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  DrainOkFrame v;
  if (!c.u64(v.items) || !c.f64(v.totalUsage) || !c.u64(v.binsOpened) ||
      !c.u64(v.maxOpenBins) || !c.u64(v.categoriesUsed) || !c.f64(v.lb3) ||
      !c.u64(v.peakOpenItems) || !c.u64(v.peakResidentBytes) || !c.done()) {
    return false;
  }
  out = v;
  return true;
}

bool decodeScrapeOk(const FrameView& frame, ScrapeOkFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  ScrapeOkFrame v;
  if (!c.str32(v.text) || !c.done()) return false;
  out = std::move(v);
  return true;
}

bool decodeError(const FrameView& frame, ErrorFrame& out) {
  Cursor c(frame.payload, frame.payloadSize);
  std::uint16_t code;
  ErrorFrame v;
  if (!c.u16(code) || !c.str16(v.message) || !c.done()) return false;
  v.code = static_cast<ErrorCode>(code);
  out = std::move(v);
  return true;
}

bool decodeEmpty(const FrameView& frame) { return frame.payloadSize == 0; }

}  // namespace cdbp::serve
