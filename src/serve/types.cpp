#include "serve/types.hpp"

#include <stdexcept>
#include <thread>

#include "telemetry/registry.hpp"

namespace cdbp::serve {

ServerOptions ServerOptions::validated() const {
  ServerOptions v = *this;
  if (v.loopThreads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    v.loopThreads = hw == 0 ? 1 : hw;
  }
  if (v.loopThreads > 256) {
    throw std::invalid_argument("ServerOptions::loopThreads > 256");
  }
  // The smallest useful cap still has to admit every fixed-size frame;
  // DRAIN_OK is the largest at 61 payload bytes.
  if (v.maxFramePayload < 64) {
    throw std::invalid_argument("ServerOptions::maxFramePayload < 64");
  }
  if (v.writeBufferLimit == 0) {
    throw std::invalid_argument("ServerOptions::writeBufferLimit == 0");
  }
  if (v.drainTimeoutNanos == 0) {
    throw std::invalid_argument("ServerOptions::drainTimeoutNanos == 0");
  }
  for (const Address& address : v.listen) {
    if (address.kind == Address::Kind::kUnix && address.path.empty()) {
      throw std::invalid_argument("ServerOptions::listen: empty unix path");
    }
    if (address.kind == Address::Kind::kTcp && address.host.empty()) {
      throw std::invalid_argument("ServerOptions::listen: empty tcp host");
    }
  }
  return v;
}

ServerOptionsBuilder& ServerOptionsBuilder::listenOn(const std::string& spec) {
  Address address;
  std::string error;
  if (!parseAddress(spec, address, error)) {
    throw std::invalid_argument("listenOn('" + spec + "'): " + error);
  }
  options_.listen.push_back(std::move(address));
  return *this;
}

ServerOptionsBuilder& ServerOptionsBuilder::listenOn(Address address) {
  options_.listen.push_back(std::move(address));
  return *this;
}

ServerOptionsBuilder& ServerOptionsBuilder::loopThreads(unsigned n) {
  options_.loopThreads = n;
  return *this;
}

ServerOptionsBuilder& ServerOptionsBuilder::maxFramePayload(std::size_t bytes) {
  options_.maxFramePayload = bytes;
  return *this;
}

ServerOptionsBuilder& ServerOptionsBuilder::writeBufferLimit(std::size_t bytes) {
  options_.writeBufferLimit = bytes;
  return *this;
}

ServerOptionsBuilder& ServerOptionsBuilder::drainTimeout(std::uint64_t nanos) {
  options_.drainTimeoutNanos = nanos;
  return *this;
}

ServerOptions ServerOptionsBuilder::build() const {
  return options_.validated();
}

void ShardCounters::addTo(ServerStats& out) const {
  out.connectionsAccepted +=
      connectionsAccepted.load(std::memory_order_relaxed);
  out.connectionsAdopted += connectionsAdopted.load(std::memory_order_relaxed);
  out.connectionsClosed += connectionsClosed.load(std::memory_order_relaxed);
  out.openConnections += openConnections.load(std::memory_order_relaxed);
  out.framesReceived += framesReceived.load(std::memory_order_relaxed);
  out.framesSent += framesSent.load(std::memory_order_relaxed);
  out.errorsSent += errorsSent.load(std::memory_order_relaxed);
  out.placements += placements.load(std::memory_order_relaxed);
  out.batches += batches.load(std::memory_order_relaxed);
  out.sessionsOpened += sessionsOpened.load(std::memory_order_relaxed);
  out.sessionsFinished += sessionsFinished.load(std::memory_order_relaxed);
  out.throttleEvents += throttleEvents.load(std::memory_order_relaxed);
  out.shedConnections += shedConnections.load(std::memory_order_relaxed);
  out.bytesReceived += bytesReceived.load(std::memory_order_relaxed);
  out.bytesSent += bytesSent.load(std::memory_order_relaxed);
  std::size_t peak = peakWriteBuffered();
  if (peak > out.peakWriteBuffered) out.peakWriteBuffered = peak;
  out.draining = out.draining || draining.load(std::memory_order_relaxed);
  out.drained = out.drained && drained.load(std::memory_order_relaxed);
}

std::uint64_t TenantTable::open(const std::string& name,
                                const std::string& policyName) {
  std::size_t count = 0;
  std::uint64_t id = 0;
  {
    MutexLock lock(mu_);
    id = nextId_++;
    TenantSnapshot& row = tenants_[id];
    row.id = id;
    row.name = name;
    row.policyName = policyName;
    count = tenants_.size();
  }
  if (telemetry::kEnabled) {
    telemetry::Registry::global().gauge("serve.tenants").set(
        static_cast<std::int64_t>(count));
  }
  return id;
}

void TenantTable::noteProgress(std::uint64_t id, std::uint64_t items,
                               std::uint64_t openBins) {
  MutexLock lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return;
  it->second.items = items;
  it->second.openBins = openBins;
}

void TenantTable::markFinished(std::uint64_t id, std::uint64_t items,
                               std::uint64_t openBins) {
  MutexLock lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return;
  it->second.items = items;
  it->second.openBins = openBins;
  it->second.finished = true;
}

void TenantTable::markFinished(std::uint64_t id) {
  MutexLock lock(mu_);
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return;
  it->second.finished = true;
}

std::vector<TenantSnapshot> TenantTable::snapshot() const {
  MutexLock lock(mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [id, row] : tenants_) out.push_back(row);
  return out;
}

}  // namespace cdbp::serve
