#include "serve/address.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "util/parse.hpp"

namespace cdbp::serve {

namespace {

[[noreturn]] void throwErrno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

// Fills a sockaddr_un for `path`, throwing ENAMETOOLONG past the kernel
// limit — both listen and connect need the identical check.
sockaddr_un unixSockaddr(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    errno = ENAMETOOLONG;
    throwErrno("unix socket path");
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

bool parseAddress(const std::string& spec, Address& out, std::string& error) {
  out = Address{};
  if (spec.empty()) {
    error = "empty address";
    return false;
  }
  if (spec.rfind("unix:", 0) == 0) {
    out.kind = Address::Kind::kUnix;
    out.path = spec.substr(5);
    if (out.path.empty()) {
      error = "unix: address needs a socket path";
      return false;
    }
    return true;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    std::string rest = spec.substr(4);
    std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      error = "tcp: address must be tcp:<host>:<port>";
      return false;
    }
    out.kind = Address::Kind::kTcp;
    out.host = rest.substr(0, colon);
    std::uint64_t port = 0;
    if (!tryParseUint(rest.substr(colon + 1), port) || port > 65535) {
      error = "bad tcp port in '" + spec + "'";
      return false;
    }
    out.port = static_cast<std::uint16_t>(port);
    return true;
  }
  // Bare path shorthand.
  out.kind = Address::Kind::kUnix;
  out.path = spec;
  return true;
}

std::string formatAddress(const Address& address) {
  if (address.kind == Address::Kind::kUnix) return "unix:" + address.path;
  return "tcp:" + address.host + ":" + std::to_string(address.port);
}

int listenStream(const Address& address, int backlog,
                 std::uint16_t* boundPort) {
  if (address.kind == Address::Kind::kUnix) {
    sockaddr_un addr = unixSockaddr(address.path);
    int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) throwErrno("socket(AF_UNIX)");
    ::unlink(address.path.c_str());
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      throwErrno("bind(unix)");
    }
    if (listen(fd, backlog) < 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      throwErrno("listen(unix)");
    }
    return fd;
  }

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  std::string service = std::to_string(address.port);
  int rc = getaddrinfo(address.host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    throw std::runtime_error("getaddrinfo('" + address.host +
                             "'): " + gai_strerror(rc));
  }
  int fd = socket(result->ai_family,
                  result->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                  result->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(result);
    throwErrno("socket(AF_INET)");
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, result->ai_addr, result->ai_addrlen) < 0 ||
      listen(fd, backlog) < 0) {
    int saved = errno;
    freeaddrinfo(result);
    ::close(fd);
    errno = saved;
    throwErrno("bind/listen(tcp)");
  }
  freeaddrinfo(result);
  if (boundPort != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      *boundPort = ntohs(bound.sin_port);
    }
  }
  return fd;
}

int connectStream(const Address& address) {
  if (address.kind == Address::Kind::kUnix) {
    sockaddr_un addr = unixSockaddr(address.path);
    int fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throwErrno("socket(AF_UNIX)");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
      int saved = errno;
      ::close(fd);
      errno = saved;
      throwErrno("connect(unix)");
    }
    return fd;
  }

  if (address.port == 0) {
    throw std::runtime_error("cannot connect to tcp port 0 ('" +
                             formatAddress(address) + "')");
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  std::string service = std::to_string(address.port);
  int rc = getaddrinfo(address.host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0 || result == nullptr) {
    throw std::runtime_error("getaddrinfo('" + address.host +
                             "'): " + gai_strerror(rc));
  }
  int fd = socket(result->ai_family, result->ai_socktype | SOCK_CLOEXEC,
                  result->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(result);
    throwErrno("socket(AF_INET)");
  }
  if (::connect(fd, result->ai_addr, result->ai_addrlen) < 0) {
    int saved = errno;
    freeaddrinfo(result);
    ::close(fd);
    errno = saved;
    throwErrno("connect(tcp)");
  }
  freeaddrinfo(result);
  return fd;
}

}  // namespace cdbp::serve
