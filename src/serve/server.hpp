// Placement-as-a-service: the long-running daemon fronting the
// bounded-memory streaming engine (DESIGN.md §13).
//
// One epoll event loop, run on a dedicated thread, owns every connection:
// it accepts on an optional Unix socket and/or a loopback TCP socket
// (plus fds adopted via adoptConnection — socketpair tests and benches),
// parses cdbp-serve v1 frames (serve/protocol.hpp), and drives one
// per-tenant session per connection. A session is an independent
// StreamEngine + OnlinePolicy instantiated from the HELLO frame's
// makePolicy spec string, so placements served over a socket are
// bit-identical to simulateStream on the same item sequence — the serve
// differential suite pins this for every policy spec and both engines.
//
// Backpressure (§13.4): each connection carries bounded read and write
// buffers. When a client stops reading, its write buffer fills to
// writeBufferLimit, at which point the loop (a) stops reading more
// requests from that fd and (b) stops processing frames already buffered
// — so per-connection server memory is bounded by
// writeBufferLimit + one maximal reply + the read-buffer cap, no matter
// how fast the client writes. Processing resumes when the buffer drains
// below half the limit. A connection that exceeds the hard cap
// (writeBufferLimit + maxFramePayload headroom, reachable only with a
// pathologically large single reply) is shed with a kBackpressure error.
//
// Graceful drain (§13.5): requestDrain() — async-signal-safe, wired to
// SIGTERM by the cdbp_served binary — makes the loop stop accepting,
// stop reading, finish every fully-received in-flight request, flush all
// replies (bounded by drainTimeoutNanos), close, and exit. stats()
// afterwards shows drained == true; the daemon then emits a final
// telemetry snapshot and exits 0.
//
// Threading: the loop thread owns all connection I/O state. The
// connection table and tenant map are guarded by the annotated
// cdbp::Mutex (checked under the clang-tsa preset); cross-thread
// observers (stats(), tenants(), the drain/stop flags) touch only that
// guarded state and atomics, never buffer internals.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace cdbp::serve {

struct ServerOptions {
  /// Listen on this Unix-domain socket path when non-empty (an existing
  /// socket file at the path is unlinked first).
  std::string unixPath;

  /// Listen on 127.0.0.1 when true; port 0 binds an ephemeral port
  /// (readable from Server::tcpPort() after start()).
  bool tcp = false;
  std::uint16_t tcpPort = 0;

  /// Frame payload cap; length prefixes above it shed the connection
  /// with kErrOversizedFrame.
  std::size_t maxFramePayload = kDefaultMaxFramePayload;

  /// Write-buffer throttle threshold per connection (bytes). See the
  /// backpressure contract above.
  std::size_t writeBufferLimit = 256 * 1024;

  /// Wall-clock budget for flushing replies during a graceful drain;
  /// connections that cannot flush in time are closed anyway.
  std::uint64_t drainTimeoutNanos = 5'000'000'000;
};

/// Cross-thread snapshot of the server's counters.
struct ServerStats {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsAdopted = 0;
  std::uint64_t connectionsClosed = 0;
  std::size_t openConnections = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t framesSent = 0;
  std::uint64_t errorsSent = 0;
  std::uint64_t placements = 0;
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsFinished = 0;
  std::uint64_t throttleEvents = 0;   ///< read-pause transitions
  std::uint64_t shedConnections = 0;  ///< closed for exceeding the hard cap
  std::uint64_t bytesReceived = 0;
  std::uint64_t bytesSent = 0;
  /// High-water mark of any single connection's write buffer — the
  /// backpressure test's bounded-memory assertion reads this.
  std::size_t peakWriteBuffered = 0;
  bool draining = false;
  bool drained = false;
};

/// One row of the tenant map: the per-session registry entry updated by
/// the loop and readable from any thread.
struct TenantSnapshot {
  std::uint64_t id = 0;
  std::string name;
  std::string policyName;
  std::uint64_t items = 0;
  std::uint64_t openBins = 0;
  bool finished = false;
};

class Server {
 public:
  explicit Server(ServerOptions options);

  /// Stops the loop (hard) and joins if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and spawns the event-loop thread.
  /// Throws std::system_error when a socket call fails.
  void start();

  /// Hands an already-connected stream socket (e.g. one end of a
  /// socketpair) to the loop, which takes ownership of the fd.
  void adoptConnection(int fd);

  /// Graceful shutdown; async-signal-safe (atomic flag + eventfd write).
  /// The loop finishes in-flight requests, flushes, closes and exits.
  void requestDrain() noexcept;

  /// Hard stop: closes everything without flushing. Used by tests and
  /// the destructor; production shutdown is requestDrain().
  void stop() noexcept;

  /// Waits for the event-loop thread to exit.
  void join();

  bool running() const;

  /// Bound TCP port (after start(); 0 when TCP is disabled).
  std::uint16_t tcpPort() const;

  ServerStats stats() const CDBP_EXCLUDES(mu_);

  /// Copy of the tenant map, sorted by tenant id.
  std::vector<TenantSnapshot> tenants() const CDBP_EXCLUDES(mu_);

 private:
  struct Connection;

  void loop();
  void closeListeners();
  bool setupListeners();
  void acceptPending(int listenFd);
  void registerConnection(int fd, bool accepted);
  void handleReadable(Connection& conn);
  void handleWritable(Connection& conn);
  /// Alternates frame processing, flushing, and backpressure resume until
  /// the connection quiesces (no complete frames processable, or paused
  /// with the kernel unable to take more replies).
  void pumpConnection(Connection& conn);
  void processBufferedFrames(Connection& conn);
  void handleFrame(Connection& conn, const FrameView& frame);
  void handleHello(Connection& conn, const FrameView& frame);
  void handlePlace(Connection& conn, const FrameView& frame);
  void handleDepart(Connection& conn, const FrameView& frame);
  void handleStats(Connection& conn);
  void handleDrainRequest(Connection& conn);
  void handleScrape(Connection& conn);
  void sendError(Connection& conn, ErrorCode code, const std::string& message);
  void sendBytes(Connection& conn, const std::vector<std::uint8_t>& bytes);
  void flushWrites(Connection& conn);
  void updateInterest(Connection& conn);
  void closeConnection(int fd);
  void drainAndExit();
  void wake() noexcept;

  ServerOptions options_;

  int epollFd_ = -1;
  int wakeFd_ = -1;
  int unixListenFd_ = -1;
  int tcpListenFd_ = -1;
  std::atomic<std::uint16_t> boundTcpPort_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
  std::atomic<bool> drainRequested_{false};

  std::thread thread_;

  mutable Mutex mu_;
  // Loop-owned values; the map is guarded so stats()/tenants() can read
  // membership from other threads. Buffer internals inside a Connection
  // are only ever touched by the loop thread.
  std::map<int, std::unique_ptr<Connection>> connections_
      CDBP_GUARDED_BY(mu_);
  std::map<std::uint64_t, TenantSnapshot> tenants_ CDBP_GUARDED_BY(mu_);
  std::vector<int> adoptQueue_ CDBP_GUARDED_BY(mu_);
  ServerStats stats_ CDBP_GUARDED_BY(mu_);
  std::uint64_t nextTenantId_ CDBP_GUARDED_BY(mu_) = 1;
};

}  // namespace cdbp::serve
