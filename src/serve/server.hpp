// Placement-as-a-service: the sharded daemon fronting the bounded-memory
// streaming engine (DESIGN.md §13).
//
// Layering: Server (this file) owns the listeners, the shard router and
// the lifecycle; each shard is a serve::Loop (loop.hpp) — one epoll
// thread owning a disjoint set of serve::Session connection state
// machines (session.hpp). ServerOptions::loopThreads picks the shard
// count (0 = one per hardware thread); connections are accepted on loop
// 0 and handed off round-robin via each loop's eventfd wake path, then
// stay pinned to their shard for life. Sessions are independent — only
// the TenantTable and the telemetry registry are shared, both
// thread-safe — so a 4-shard server produces placements bit-identical
// to local StreamEngine runs; the serve differential suite pins this
// for every policy spec and both engines.
//
// The wire protocol is cdbp-serve v2 (serve/protocol.hpp): v1 clients
// negotiate down in HELLO and keep working; v2 clients can pack many
// PLACE/DEPART sub-ops into one BATCH frame. Per-tenant counters
// (serve.tenant.<id>.placements/.bytes/.usage) ride the global registry
// and surface through SCRAPE.
//
// Backpressure stays per-connection (session.hpp); graceful drain —
// requestDrain(), async-signal-safe, wired to SIGTERM by cdbp_served —
// fans out to every shard: each loop stops accepting, answers its
// in-flight requests, flushes (bounded by drainTimeoutNanos), closes
// and exits. stats() afterwards shows drained == true.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/loop.hpp"
#include "serve/types.hpp"

namespace cdbp::serve {

class Server {
 public:
  /// Validates the options up front (throws std::invalid_argument), so a
  /// constructed Server always carries a resolved shard count.
  explicit Server(ServerOptions options);

  /// Stops every loop (hard) and joins.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners, creates the loop threads and starts
  /// them. Throws std::system_error when a socket call fails.
  void start();

  /// Hands an already-connected stream socket (e.g. one end of a
  /// socketpair) to the next shard round-robin; the owning loop takes
  /// the fd.
  void adoptConnection(int fd);

  /// Graceful shutdown across all shards; async-signal-safe (per-loop
  /// atomic store + eventfd write, over an immutable loop vector).
  void requestDrain() noexcept;

  /// Hard stop: every loop closes everything without flushing. Used by
  /// tests and the destructor; production shutdown is requestDrain().
  void stop() noexcept;

  /// Waits for every loop thread to exit.
  void join();

  /// True while any loop thread is still running.
  bool running() const;

  /// Bound port of the first TCP listener (after start(); 0 when no TCP
  /// address was configured).
  std::uint16_t tcpPort() const;

  /// Counters aggregated across all shards: sums for the monotonic
  /// counters, max for peakWriteBuffered (the bound is per-connection),
  /// draining if any shard drains, drained only when all have.
  ServerStats stats() const;

  /// Copy of the shared tenant map, sorted by tenant id.
  std::vector<TenantSnapshot> tenants() const;

  /// Connections ever registered per shard (accepted + adopted), in
  /// shard order — the round-robin distribution tests read this.
  std::vector<std::uint64_t> shardConnectionCounts() const;

  /// Resolved options (loopThreads filled in); handy for tests.
  const ServerOptions& options() const { return options_; }

 private:
  /// Round-robin shard pick for accepted/adopted connections.
  Loop& nextLoop();

  ServerOptions options_;  // validated; immutable after construction
  TenantTable tenants_;

  // Immutable after start() — requestDrain() iterates it from signal
  // context, so it must never reallocate once the loops are live.
  std::vector<std::unique_ptr<Loop>> loops_;

  std::atomic<std::size_t> nextShard_{0};
  std::atomic<std::uint16_t> boundTcpPort_{0};
  bool started_ = false;
};

}  // namespace cdbp::serve
