// Blocking client for the cdbp-serve v1 protocol (DESIGN.md §13).
//
// One ServeClient wraps one connected stream socket and speaks
// request/reply: every call encodes a frame, sends it, and blocks for the
// matching reply. A kError reply surfaces as a thrown ServeError carrying
// the typed code, so callers distinguish "the server rejected this
// request" (recoverable — the connection keeps serving) from transport
// failure (std::runtime_error — the connection is gone).
//
// For load generation the queue/flush/readPlaced trio pipelines PLACE
// frames: queue N requests, flush once, then read N replies. This is what
// stream_replay --connect and bench_serve use to keep the socket full
// without one round trip per item.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace cdbp::serve {

/// A typed error reply from the server. The connection remains usable
/// (the server answers malformed or rejected requests without closing).
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(errorCodeName(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Endpoint spec parsed from a --connect string:
///   "unix:<path>"          Unix-domain socket
///   "tcp:<host>:<port>"    TCP (host is an IPv4 literal or name)
///   "<path>"               shorthand for unix:<path>
struct ServeAddress {
  bool tcp = false;
  std::string path;
  std::string host;
  std::uint16_t port = 0;
};

/// Parses an address spec; on failure returns false and fills `error`.
bool parseServeAddress(const std::string& spec, ServeAddress& out,
                       std::string& error);

struct ClientOptions {
  /// Reply payload cap. Larger than the server's request cap because a
  /// SCRAPE reply carries the whole telemetry exposition.
  std::size_t maxFramePayload = 4 * 1024 * 1024;
};

/// One reply frame with owned payload bytes.
struct OwnedFrame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;

  FrameView view() const {
    return FrameView{type, payload.data(), payload.size()};
  }
};

class ServeClient {
 public:
  /// Adopts a connected stream socket (e.g. one end of a socketpair).
  explicit ServeClient(int fd, ClientOptions options = {});
  ~ServeClient();

  ServeClient(ServeClient&& other) noexcept;
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects per the parsed address. Throws std::system_error on
  /// connect failure.
  static ServeClient connect(const ServeAddress& address,
                             ClientOptions options = {});
  static ServeClient connectUnix(const std::string& path,
                                 ClientOptions options = {});
  static ServeClient connectTcp(const std::string& host, std::uint16_t port,
                                ClientOptions options = {});

  /// Opens the session: sends HELLO, returns the HELLO_OK. Throws
  /// ServeError on a typed rejection (bad spec, version skew, ...).
  HelloOkFrame hello(const HelloFrame& hello);

  /// One placement round trip.
  PlacedFrame place(double size, double arrival, double departure);

  /// Advances the session clock, draining departures due at or before
  /// `time`.
  DepartOkFrame departUntil(double time);

  StatsOkFrame stats();

  /// Finishes the session and returns the final StreamResult mirror.
  DrainOkFrame drain();

  /// Fetches the server's telemetry exposition text.
  std::string scrape();

  // Pipelined PLACE: queue locally, flush in one write, read replies in
  // order. queued() reports how many replies are still owed.
  void queuePlace(double size, double arrival, double departure);
  void flushQueued();
  PlacedFrame readPlaced();
  std::size_t queued() const { return owedReplies_; }

  /// Sends raw pre-encoded bytes — robustness tests use this to deliver
  /// malformed, truncated, or oversized frames.
  void sendRaw(const std::vector<std::uint8_t>& bytes);

  /// Blocks for the next reply frame of any type. Throws
  /// std::runtime_error when the server closes the connection first.
  OwnedFrame readFrame();

  /// Blocks for the next reply and throws ServeError if it is kError;
  /// otherwise requires the expected type.
  OwnedFrame expectFrame(FrameType expected);

  int fd() const { return fd_; }

 private:
  void sendAll(const std::uint8_t* data, std::size_t size);

  int fd_ = -1;
  ClientOptions options_;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  std::vector<std::uint8_t> outQueue_;
  std::size_t owedReplies_ = 0;
};

}  // namespace cdbp::serve
