// Blocking client for the cdbp-serve protocol (DESIGN.md §13).
//
// One Client wraps one connected stream socket and speaks request/reply:
// every call encodes a frame, sends it, and blocks for the matching
// reply. A kError reply surfaces as a thrown ServeError carrying the
// typed code, so callers distinguish "the server rejected this request"
// (recoverable — the connection keeps serving) from transport failure
// (std::runtime_error — the connection is gone).
//
// Versioning: hello() offers kProtocolVersion and records what the
// server negotiated. Against a v1 server the client degrades
// transparently — every v1 call keeps working and the batch paths below
// fall back to one PLACE frame per item.
//
// Batching (v2): batch() builds one BATCH frame of PLACE/DEPART sub-ops
// and send() returns the combined BATCH_OK — including partial results
// when an op mid-batch failed. The older pipelined trio
// (queuePlace/flushQueued/readPlaced) is kept as a thin wrapper: on a
// v2 session it packs queued placements into BATCH frames (kMaxBatchOps
// per frame) and unpacks the combined replies, on a v1 session it sends
// raw PLACE frames — same call sites, same observable placements either
// way (the equivalence test pins this). This is what stream_replay
// --connect and bench_serve use to keep the socket full without one
// round trip per item.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/address.hpp"
#include "serve/protocol.hpp"

namespace cdbp::serve {

/// A typed error reply from the server. The connection remains usable
/// (the server answers malformed or rejected requests without closing).
class ServeError : public std::runtime_error {
 public:
  ServeError(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(errorCodeName(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

struct ClientOptions {
  /// Reply payload cap. Larger than the server's request cap because a
  /// SCRAPE reply carries the whole telemetry exposition.
  std::size_t maxFramePayload = 4 * 1024 * 1024;
};

/// One reply frame with owned payload bytes.
struct OwnedFrame {
  FrameType type = FrameType::kError;
  std::vector<std::uint8_t> payload;

  FrameView view() const {
    return FrameView{type, payload.data(), payload.size()};
  }
};

class Client {
 public:
  /// Builder for one BATCH frame. Obtained from Client::batch(); ops
  /// accumulate in order and send() performs the round trip:
  ///
  ///   BatchOkFrame ok = client.batch()
  ///                         .place(0.5, 0.0, 4.0)
  ///                         .place(0.25, 1.0, 3.0)
  ///                         .depart(2.0)
  ///                         .send();
  ///
  /// send() returns the BATCH_OK as-is — a mid-batch failure is data
  /// (results for the completed prefix + the failing op's index and
  /// code), not an exception; only a top-level ERROR reply throws
  /// ServeError. Building more than kMaxBatchOps ops or sending on a
  /// session that did not negotiate v2 throws std::logic_error.
  class Batch {
   public:
    Batch& place(double size, double arrival, double departure);
    Batch& depart(double time);
    std::size_t size() const { return frame_.ops.size(); }
    BatchOkFrame send();

   private:
    friend class Client;
    explicit Batch(Client& client) : client_(&client) {}

    Client* client_;
    BatchFrame frame_;
  };

  /// Adopts a connected stream socket (e.g. one end of a socketpair).
  explicit Client(int fd, ClientOptions options = {});
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the address (serve/address.hpp owns the socket
  /// conventions). Throws std::system_error on connect failure.
  static Client connect(const Address& address, ClientOptions options = {});
  static Client connectUnix(const std::string& path,
                            ClientOptions options = {});
  static Client connectTcp(const std::string& host, std::uint16_t port,
                           ClientOptions options = {});

  /// Opens the session: sends HELLO, returns the HELLO_OK and records
  /// the negotiated version. Throws ServeError on a typed rejection
  /// (bad spec, version below the server's floor, ...).
  HelloOkFrame hello(const HelloFrame& hello);

  /// Protocol version negotiated by hello(); 0 before a session opens.
  std::uint16_t negotiatedVersion() const { return negotiatedVersion_; }

  /// One placement round trip.
  PlacedFrame place(double size, double arrival, double departure);

  /// Advances the session clock, draining departures due at or before
  /// `time`.
  DepartOkFrame departUntil(double time);

  /// Starts an empty batch builder (see Batch).
  Batch batch() { return Batch(*this); }

  StatsOkFrame stats();

  /// Finishes the session and returns the final StreamResult mirror.
  DrainOkFrame drain();

  /// Fetches the server's telemetry exposition text.
  std::string scrape();

  // Pipelined PLACE: queue locally, flush in one write, read replies in
  // order. On a v2 session this is a wrapper over BATCH frames; on v1
  // (or before hello()) it sends raw PLACE frames. queued() reports how
  // many placement replies are still owed.
  void queuePlace(double size, double arrival, double departure);
  void flushQueued();
  PlacedFrame readPlaced();
  std::size_t queued() const { return owedReplies_; }

  /// Sends raw pre-encoded bytes — robustness tests use this to deliver
  /// malformed, truncated, or oversized frames.
  void sendRaw(const std::vector<std::uint8_t>& bytes);

  /// Blocks for the next reply frame of any type. Throws
  /// std::runtime_error when the server closes the connection first.
  OwnedFrame readFrame();

  /// Blocks for the next reply and throws ServeError if it is kError;
  /// otherwise requires the expected type.
  OwnedFrame expectFrame(FrameType expected);

  int fd() const { return fd_; }

 private:
  BatchOkFrame sendBatch(const BatchFrame& frame);
  void sendAll(const std::uint8_t* data, std::size_t size);

  int fd_ = -1;
  ClientOptions options_;
  std::uint16_t negotiatedVersion_ = 0;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;

  // Pipelined-path state. v1 sessions encode PLACE frames straight into
  // outQueue_; v2 sessions stage ops in pendingOps_ until flushQueued()
  // packs them into BATCH frames (inflightBatchOps_ remembers each
  // in-flight frame's op count so readPlaced can account for replies).
  std::vector<std::uint8_t> outQueue_;
  std::vector<BatchOp> pendingOps_;
  std::deque<std::size_t> inflightBatchOps_;
  std::deque<PlacedFrame> placedBacklog_;
  std::optional<ErrorFrame> pendingFailure_;
  std::size_t owedReplies_ = 0;
};

/// Back-compat alias from the pre-sharding API.
using ServeClient = Client;

}  // namespace cdbp::serve
