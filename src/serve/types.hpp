// Shared value types for the sharded serve daemon (DESIGN.md §13):
// validated ServerOptions (+ fluent builder), the cross-thread
// ServerStats snapshot, per-shard lock-free counters, and the tenant
// table shared by every loop thread.
//
// Layering (no cycles): types.hpp is the root — session.hpp builds the
// per-connection state machine on it, loop.hpp owns sessions, server.hpp
// owns loops. Everything here is either immutable after validation
// (ServerOptions), all-atomic (ShardCounters), or mutex-guarded with
// clang-tsa annotations (TenantTable).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/address.hpp"
#include "serve/protocol.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace cdbp::serve {

struct ServerOptions {
  /// Endpoints to listen on; may be empty (adoptConnection-only servers,
  /// e.g. socketpair tests and benches).
  std::vector<Address> listen;

  /// Number of epoll loop threads (shards). 0 means "one per hardware
  /// thread"; resolved by validated(). Each accepted or adopted
  /// connection is pinned to exactly one loop for its lifetime, so the
  /// per-session StreamEngine stays single-threaded.
  unsigned loopThreads = 0;

  /// Frame payload cap; length prefixes above it shed the connection
  /// with kErrOversizedFrame.
  std::size_t maxFramePayload = kDefaultMaxFramePayload;

  /// Write-buffer throttle threshold per connection (bytes). See the
  /// backpressure contract in session.hpp.
  std::size_t writeBufferLimit = 256 * 1024;

  /// Wall-clock budget for flushing replies during a graceful drain;
  /// connections that cannot flush in time are closed anyway.
  std::uint64_t drainTimeoutNanos = 5'000'000'000;

  /// Returns a copy with loopThreads resolved (0 -> hardware
  /// concurrency, floor 1) and every field range-checked. Throws
  /// std::invalid_argument naming the offending field. Server's
  /// constructor calls this, so an un-validated options struct can never
  /// reach a running loop.
  ServerOptions validated() const;
};

/// Fluent construction for ServerOptions; build() validates:
///
///   auto options = ServerOptionsBuilder()
///                      .listenOn("unix:/tmp/cdbp.sock")
///                      .loopThreads(4)
///                      .writeBufferLimit(256 * 1024)
///                      .build();
class ServerOptionsBuilder {
 public:
  /// Parses an address spec (see serve/address.hpp for the grammar) and
  /// appends it. Throws std::invalid_argument on a malformed spec.
  ServerOptionsBuilder& listenOn(const std::string& spec);
  ServerOptionsBuilder& listenOn(Address address);
  ServerOptionsBuilder& loopThreads(unsigned n);
  ServerOptionsBuilder& maxFramePayload(std::size_t bytes);
  ServerOptionsBuilder& writeBufferLimit(std::size_t bytes);
  ServerOptionsBuilder& drainTimeout(std::uint64_t nanos);

  /// Validates and returns the options (throws std::invalid_argument).
  ServerOptions build() const;

 private:
  ServerOptions options_;
};

/// Cross-thread snapshot of the server's counters, aggregated over all
/// shards by Server::stats().
struct ServerStats {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsAdopted = 0;
  std::uint64_t connectionsClosed = 0;
  std::size_t openConnections = 0;
  std::uint64_t framesReceived = 0;
  std::uint64_t framesSent = 0;
  std::uint64_t errorsSent = 0;
  std::uint64_t placements = 0;
  std::uint64_t batches = 0;  ///< BATCH frames executed (v2)
  std::uint64_t sessionsOpened = 0;
  std::uint64_t sessionsFinished = 0;
  std::uint64_t throttleEvents = 0;   ///< read-pause transitions
  std::uint64_t shedConnections = 0;  ///< closed for exceeding the hard cap
  std::uint64_t bytesReceived = 0;
  std::uint64_t bytesSent = 0;
  /// High-water mark of any single connection's write buffer — the
  /// backpressure tests' bounded-memory assertion reads this. Aggregated
  /// with max, not sum: the bound is per-connection.
  std::size_t peakWriteBuffered = 0;
  bool draining = false;  ///< any shard draining
  bool drained = false;   ///< every shard fully drained
};

/// Per-shard counters: all relaxed atomics, so sessions bump them on the
/// hot path without a lock and stats() reads them from any thread. One
/// instance per Loop; Server::stats() sums across shards.
class ShardCounters {
 public:
  std::atomic<std::uint64_t> connectionsAccepted{0};
  std::atomic<std::uint64_t> connectionsAdopted{0};
  std::atomic<std::uint64_t> connectionsClosed{0};
  std::atomic<std::size_t> openConnections{0};
  std::atomic<std::uint64_t> framesReceived{0};
  std::atomic<std::uint64_t> framesSent{0};
  std::atomic<std::uint64_t> errorsSent{0};
  std::atomic<std::uint64_t> placements{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> sessionsOpened{0};
  std::atomic<std::uint64_t> sessionsFinished{0};
  std::atomic<std::uint64_t> throttleEvents{0};
  std::atomic<std::uint64_t> shedConnections{0};
  std::atomic<std::uint64_t> bytesReceived{0};
  std::atomic<std::uint64_t> bytesSent{0};
  std::atomic<bool> draining{false};
  std::atomic<bool> drained{false};

  /// CAS-max update of the shard's write-buffer high-water mark.
  void noteWriteBuffered(std::size_t bytes) noexcept {
    std::size_t seen = peakWriteBuffered_.load(std::memory_order_relaxed);
    while (bytes > seen && !peakWriteBuffered_.compare_exchange_weak(
                               seen, bytes, std::memory_order_relaxed)) {
    }
  }

  std::size_t peakWriteBuffered() const noexcept {
    return peakWriteBuffered_.load(std::memory_order_relaxed);
  }

  /// Adds this shard's counters into a cross-shard aggregate: sums for
  /// the monotonic counters, max for peakWriteBuffered, OR for draining,
  /// AND for drained.
  void addTo(ServerStats& out) const;

 private:
  std::atomic<std::size_t> peakWriteBuffered_{0};
};

/// One row of the tenant map: the per-session registry entry updated by
/// the owning loop and readable from any thread.
struct TenantSnapshot {
  std::uint64_t id = 0;
  std::string name;
  std::string policyName;
  std::uint64_t items = 0;
  std::uint64_t openBins = 0;
  bool finished = false;
};

/// The tenant registry shared by every loop thread. Sessions on
/// different shards open/update/finish tenants concurrently, so the map
/// is guarded by an annotated Mutex (checked under the clang-tsa
/// preset). Sessions throttle noteProgress() to every 64th placement
/// plus the natural sync points (batch end, DEPART, STATS, DRAIN) to
/// keep cross-shard contention off the hot path.
class TenantTable {
 public:
  /// Registers a tenant; returns its id (dense, from 1). Updates the
  /// serve.tenants gauge.
  std::uint64_t open(const std::string& name, const std::string& policyName)
      CDBP_EXCLUDES(mu_);

  /// Refreshes the live items/openBins columns for a tenant.
  void noteProgress(std::uint64_t id, std::uint64_t items,
                    std::uint64_t openBins) CDBP_EXCLUDES(mu_);

  /// Marks a tenant's session finished (DRAIN completed), recording its
  /// final items/openBins.
  void markFinished(std::uint64_t id, std::uint64_t items,
                    std::uint64_t openBins) CDBP_EXCLUDES(mu_);

  /// Flag-only variant for connection teardown: sets finished without
  /// touching the items/openBins columns (which already hold the last
  /// reported — or DRAIN-final — values).
  void markFinished(std::uint64_t id) CDBP_EXCLUDES(mu_);

  /// Copy of the tenant map, sorted by tenant id.
  std::vector<TenantSnapshot> snapshot() const CDBP_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::uint64_t, TenantSnapshot> tenants_ CDBP_GUARDED_BY(mu_);
  std::uint64_t nextId_ CDBP_GUARDED_BY(mu_) = 1;
};

}  // namespace cdbp::serve
