// Loop: one epoll event-loop thread — a shard of the serve daemon
// (DESIGN.md §13.3). The Server spawns N of these; each owns a disjoint
// set of Sessions for its whole lifetime, so session state needs no
// locking at all: the sessions map is touched only from the loop thread.
//
// Cross-thread inputs arrive through exactly two channels:
//   - adopt(fd): enqueue a connection handoff (mutex-guarded queue) and
//     wake the loop via its eventfd. This is both how tests/benches
//     inject socketpair fds and how the Server's round-robin router
//     pins accepted connections to a shard.
//   - requestDrain()/requestStop(): an atomic flag plus an eventfd
//     write. requestDrain() is async-signal-safe — no locks, no
//     allocation — because cdbp_served calls it from a SIGTERM handler.
//
// fd lifetime: the epoll fd and wake eventfd are created in the
// constructor and closed in the destructor, after the thread has been
// joined — never inside run(). A signal handler may call requestDrain()
// concurrently with shutdown; closing the eventfd only once the object
// dies means that write can never land on a recycled descriptor.
//
// Listeners (loop 0 only, in practice): addListener() hands the Loop a
// listening fd plus an accept callback; the loop accepts in a tight
// accept4 loop and passes each new fd to the callback, which routes it
// to some shard's adopt(). Listener fds are owned (and closed) by the
// Loop that polls them.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "serve/session.hpp"
#include "serve/types.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace cdbp::serve {

class Loop {
 public:
  /// Callback invoked on the loop thread for each accepted fd. The
  /// callee takes ownership (typically Server's shard router, which
  /// forwards to some Loop's adopt()).
  using AcceptHandler = std::function<void(int fd)>;

  /// Creates the epoll instance and wake eventfd (throws
  /// std::system_error on failure). `options` must already be validated
  /// and outlive the loop.
  Loop(const ServerOptions& options, TenantTable& tenants);

  /// Joins the thread if still running (after requestStop()) and closes
  /// every fd the loop still owns.
  ~Loop();

  Loop(const Loop&) = delete;
  Loop& operator=(const Loop&) = delete;

  /// Registers a listening fd + accept callback. Must be called before
  /// start(); the Loop takes ownership of the fd.
  void addListener(int fd, AcceptHandler onAccept);

  /// Spawns the loop thread.
  void start();

  /// Hands an fd to this loop (thread-safe; callable from any thread and
  /// from other loops' accept callbacks). `accepted` selects which
  /// counter the registration bumps.
  void adopt(int fd, bool accepted);

  /// Graceful shutdown; async-signal-safe (atomic store + eventfd
  /// write). The loop answers in-flight requests, flushes (bounded by
  /// options.drainTimeoutNanos), closes and exits.
  void requestDrain() noexcept;

  /// Hard stop: the loop closes everything without flushing.
  void requestStop() noexcept;

  /// Waits for the loop thread to exit.
  void join();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// This shard's counters (atomics; readable from any thread).
  ShardCounters& counters() { return counters_; }
  const ShardCounters& counters() const { return counters_; }

 private:
  void run();
  void adoptPending() CDBP_EXCLUDES(mu_);
  void registerSession(int fd, bool accepted);
  void acceptPending(std::size_t listenerIndex);
  /// Applies desiredInterest() if it changed, then reaps the session if
  /// it died or finished. Every dispatch funnels through here.
  void settleSession(Session& session);
  void destroySession(int fd);
  void closeListeners();
  void drainAndExit();
  void wake() noexcept;

  const ServerOptions& options_;
  TenantTable& tenants_;
  ShardCounters counters_;

  int epollFd_ = -1;
  int wakeFd_ = -1;

  struct Listener {
    int fd = -1;
    AcceptHandler onAccept;
  };
  std::vector<Listener> listeners_;  // set before start(); loop-read after

  std::atomic<bool> running_{false};
  std::atomic<bool> stopRequested_{false};
  std::atomic<bool> drainRequested_{false};

  std::thread thread_;

  // Loop-thread-exclusive: every touch happens on the loop thread.
  std::map<int, std::unique_ptr<Session>> sessions_;

  mutable Mutex mu_;
  std::vector<std::pair<int, bool>> adoptQueue_ CDBP_GUARDED_BY(mu_);
};

}  // namespace cdbp::serve
