#include "interval_sched/interval_sched.hpp"

#include <memory>
#include <stdexcept>

#include "offline/ddff.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"

namespace cdbp {

IntervalSchedInstance::IntervalSchedInstance(std::vector<IntervalJob> jobs,
                                             std::size_t g)
    : jobs_(std::move(jobs)), g_(g) {
  if (g_ == 0) {
    throw std::invalid_argument("IntervalSchedInstance: capacity g must be >= 1");
  }
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].interval.empty()) {
      throw std::invalid_argument("IntervalSchedInstance: job " +
                                  std::to_string(i) + " has an empty interval");
    }
    jobs_[i].id = static_cast<ItemId>(i);
  }
}

Instance IntervalSchedInstance::toDbp() const {
  InstanceBuilder builder;
  // cdbp-lint: allow(capacity-compare): exact division defines the per-track share; no feasibility decision here
  Size share = kBinCapacity / static_cast<double>(g_);
  for (const IntervalJob& job : jobs_) {
    builder.add(share, job.interval.lo, job.interval.hi);
  }
  return builder.build();
}

IntervalScheduleResult greedyLongestFirst(const IntervalSchedInstance& instance) {
  IntervalScheduleResult result;
  result.dbpInstance = std::make_shared<Instance>(instance.toDbp());
  // At unit demands (all sizes 1/g), duration-descending First Fit is
  // exactly the longest-first greedy over g-track machines.
  result.packing = durationDescendingFirstFit(*result.dbpInstance);
  result.totalBusyTime = result.packing.totalUsage();
  result.machinesUsed = result.packing.numBins();
  return result;
}

IntervalScheduleResult bucketFirstFit(const IntervalSchedInstance& instance,
                                      double alpha) {
  IntervalScheduleResult result;
  result.dbpInstance = std::make_shared<Instance>(instance.toDbp());
  Time base = result.dbpInstance->minDuration();
  if (base <= 0) base = 1.0;  // empty instance: any base works
  ClassifyByDurationFF policy(base, alpha);
  SimResult sim = simulateOnline(*result.dbpInstance, policy);
  result.packing = std::move(sim.packing);
  result.totalBusyTime = result.packing.totalUsage();
  result.machinesUsed = result.packing.numBins();
  return result;
}

}  // namespace cdbp
