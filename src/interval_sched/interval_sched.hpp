// Interval scheduling with bounded parallelism (Flammini et al., Mertzios
// et al., Shalom et al.) — the unit-demand special case that Clairvoyant
// MinUsageTime DBP generalizes (paper §1, §2).
//
// Jobs are intervals with identical demands; a machine runs at most g jobs
// concurrently; minimize total machine busy time. The module maps the
// problem onto the DBP core (every job gets size 1/g) so the paper's
// algorithms apply directly, and exposes the two reference algorithms from
// the related work:
//   * the duration-descending greedy (Flammini et al.'s 4-approximation,
//     which is exactly DDFF at unit demands), and
//   * BucketFirstFit (Shalom et al.'s online algorithm, which is exactly
//     classify-by-duration First Fit at unit demands) — the algorithm
//     whose bound §5.3 improves from (2a+2)*ceil(log_a mu) to
//     a + ceil(log_a mu) + 4.
#pragma once

#include <memory>
#include <vector>

#include "core/instance.hpp"
#include "core/packing.hpp"

namespace cdbp {

struct IntervalJob {
  ItemId id = 0;
  Interval interval;
};

class IntervalSchedInstance {
 public:
  IntervalSchedInstance() = default;

  /// `g` is the machine capacity (max concurrent jobs per machine).
  IntervalSchedInstance(std::vector<IntervalJob> jobs, std::size_t g);

  const std::vector<IntervalJob>& jobs() const { return jobs_; }
  std::size_t capacity() const { return g_; }
  std::size_t size() const { return jobs_.size(); }

  /// The equivalent DBP instance: every job has size 1/g.
  Instance toDbp() const;

 private:
  std::vector<IntervalJob> jobs_;
  std::size_t g_ = 1;
};

struct IntervalScheduleResult {
  Packing packing;  ///< machine assignment over the converted instance
  /// The converted instance backing `packing` (stable address).
  std::shared_ptr<const Instance> dbpInstance;
  Time totalBusyTime = 0;
  std::size_t machinesUsed = 0;
};

/// Flammini et al.'s greedy: longest job first, First Fit over machines.
/// 4-approximation for total busy time.
IntervalScheduleResult greedyLongestFirst(const IntervalSchedInstance& instance);

/// Shalom et al.'s BucketFirstFit: jobs bucketed by length (ratio alpha per
/// bucket, base = shortest job length), First Fit per bucket, online in
/// arrival order.
IntervalScheduleResult bucketFirstFit(const IntervalSchedInstance& instance,
                                      double alpha);

}  // namespace cdbp
