// The epoch-pipelined sharded simulation engine (PlacementEngine::kSharded).
//
// run_many scales across experiment cells; this engine scales a SINGLE
// run. The paper's classification policies make that possible: CDT-FF's
// departure windows, CD-FF's duration classes, HybridFF's size classes and
// Combined-FF's class pairs are disjoint bin pools — two items with
// different category keys can never share a bin, and a placement decision
// reads only the open bins of the item's own key. The engine asks the
// policy for that key (OnlinePolicy::shardKey), assigns each key to one of
// a fixed set of shards, and runs every shard on its own worker thread
// with its own policy clone and its own indexed BinManager. Policies
// without a key (the global Any Fit family, the departure-fit ablations)
// run as a single shard — same machinery, one worker.
//
// The feed thread batches arrivals into fixed-size epochs, packs each
// epoch into arena-backed structure-of-arrays slices (one per shard, so a
// worker walks contiguous ids/sizes/arrivals/departures), and hands the
// slices to the workers through per-shard FIFO queues over the shared
// ThreadPool. Epochs are a pipelining unit, not a barrier: shard A may be
// epochs ahead of shard B, because nothing a shard does can affect another
// shard's decisions. A bounded pool of epoch buffers throttles the feed
// thread, keeping resident memory O(open state + epochs in flight), never
// O(total items).
//
// Bit-identity (DESIGN.md §14): each worker replays exactly the
// StreamEngine loop restricted to its key group — departures drain in
// (time, global item id) order before each arrival, levels evolve through
// the same floating-point updates, policy queries see the same per-category
// state — so per-item placements equal the single-pool engines'. Global
// bin ids, totalUsage (summed in global bin-id order), maxOpenBins and the
// per-bin usage doubles are reconstructed afterwards from per-shard
// open/close logs merged in the batch timeline's (time, kind, id) order.
// tests/integration/sharded_differential_test.cpp pins all of it against
// kIndexed and kLinearScan.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/item.hpp"
#include "core/types.hpp"
#include "online/policy.hpp"

namespace cdbp {

struct ShardedOptions {
  /// Worker threads (= shard count in partitioned mode). 0 picks the
  /// hardware concurrency. Policies without a shardKey always run as one
  /// shard on one worker, whatever this says.
  std::size_t threads = 0;

  /// Arrivals per epoch: the feed->worker handoff granularity. Larger
  /// epochs amortize queue traffic; smaller ones bound latency and memory.
  std::size_t epochArrivals = 4096;

  /// Epoch buffers in flight before the feed thread blocks — the pipeline
  /// depth and the memory bound.
  std::size_t maxEpochsInFlight = 4;

  /// Maintain the incremental Proposition 3 bound on the feed thread
  /// (bitwise identical to StreamEngine's, same accumulator code).
  bool computeLowerBound = false;

  /// Record the per-item bin assignment (global ids) in
  /// ShardedResult::binOf. Costs O(items) memory — leave off for
  /// bounded-memory throughput runs.
  bool capturePlacements = false;

  /// Same contract as SimOptions::announce: the policy (and the shard key)
  /// sees the perturbed departure, the system evolves with the true one;
  /// only the departure may change.
  std::function<Item(const Item&)> announce;
};

struct ShardedResult {
  std::size_t items = 0;
  /// Sum of per-bin usage (close - open) in global bin-id order —
  /// bit-identical to the batch Packing::totalUsage() double.
  Time totalUsage = 0;
  std::size_t binsOpened = 0;
  std::size_t maxOpenBins = 0;
  std::size_t categoriesUsed = 0;
  /// Incremental Proposition 3 bound (0 when disabled).
  double lb3 = 0;
  /// High-water mark of simultaneously pending departures. Tracked by the
  /// feed thread's lb3 heap, so only meaningful when computeLowerBound is
  /// on; 0 otherwise.
  std::size_t peakOpenItems = 0;
  /// Shards actually used (1 for non-partitionable policies).
  std::size_t shards = 0;
  /// Epochs dispatched to the workers.
  std::size_t epochs = 0;
  /// item id -> global bin id (empty unless capturePlacements).
  std::vector<BinId> binOf;
};

/// Push-based sharded engine. Feed items in nondecreasing (arrival, id)
/// order — the batch timeline order — then finish() exactly once.
///
/// `prototype` must outlive the simulator. In partitioned mode every shard
/// runs its own clone(); in single-shard mode the prototype itself runs on
/// the worker (it is reset() first), so the caller must not touch it until
/// finish() returns.
///
/// Worker-side policy errors (closed bin, overfill: std::logic_error) and
/// feed-side model violations (std::invalid_argument) surface out of
/// feed() or finish(), whichever observes them first.
class ShardedSimulator {
 public:
  explicit ShardedSimulator(OnlinePolicy& prototype,
                            const ShardedOptions& options = {});
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  /// Validates the item (finite times, departure > arrival, size in
  /// (0, 1], nondecreasing (arrival, id)) and stages it for its shard.
  void feed(const Item& item);

  /// Flushes the trailing epoch, drains every shard, joins the pipeline
  /// and reconstructs the global result. The engine is spent afterwards.
  ShardedResult finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Pull-loop convenience over ShardedSimulator, assigning dense ids in
/// yield order exactly as simulateStream does. Declared here (not in
/// streaming.hpp) to keep the engines' headers independent; simulateStream
/// with StreamOptions::engine == kSharded routes through the same core.
class ArrivalSource;
ShardedResult simulateSharded(ArrivalSource& source, OnlinePolicy& prototype,
                              const ShardedOptions& options = {});

}  // namespace cdbp
