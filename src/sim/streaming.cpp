#include "sim/streaming.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/epsilon.hpp"
#include "sim/placement_view.hpp"
#include "sim/sharded.hpp"
#include "sim/stream_internals.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

namespace {

// Shared with the sharded engine (stream_internals.hpp): the (time, id)
// departure heap ordering and the incremental Proposition 3 accumulator
// must be the *same code* in both engines for their doubles to stay
// bitwise identical.
using stream_internal::IncrementalLb3;
using stream_internal::laterDeparture;
using stream_internal::PendingDeparture;

constexpr int kTracePid = 1;

#if CDBP_TELEMETRY
// Same counter the batch simulator attributes per-placement scan cost
// from; see simulator.cpp for the concurrent-attribution caveat.
telemetry::Counter& fitCheckCounter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("sim.fit_checks");
  return c;
}
#endif

}  // namespace

InstanceArrivalSource::InstanceArrivalSource(const Instance& instance)
    : items_(instance.sortedByArrival()) {}

bool InstanceArrivalSource::next(StreamItem& out) {
  if (pos_ >= items_.size()) return false;
  const Item& r = items_[pos_++];
  out.size = r.size;
  out.arrival = r.arrival();
  out.departure = r.departure();
  return true;
}

// The incremental state simulateStream used to keep in locals, verbatim:
// the refactor moved the loop body into place()/drainUntil()/finish()
// without reordering a single BinManager or accumulator update, which is
// what keeps StreamEngine bit-identical to the pre-refactor simulator.
struct StreamEngine::Impl {
  OnlinePolicy& policy;
  StreamOptions options;
  BinManager bins;
  std::set<int> categories;
  std::vector<PendingDeparture> pending;  // min-heap via push_heap/pop_heap
  // Per-bin usage, indexed by BinId and filled when the bin closes. Kept
  // so the final sum runs in bin-id order — the exact addition order of
  // Packing::totalUsage() — making the result double bit-identical to the
  // batch path. O(bins opened), the same order BinManager already carries.
  std::vector<Time> usageByBin;
  IncrementalLb3 lb3;
  StreamResult result;
  std::size_t residentPeak = 0;
  Time lastArrival = 0;
  bool sawEvent = false;  // watermark is meaningful only after an event
  ItemId nextId = 0;
  bool done = false;

  Impl(OnlinePolicy& p, const StreamOptions& o)
      : policy(p),
        options(o),
        bins(o.engine == PlacementEngine::kIndexed) {
    if (o.engine == PlacementEngine::kSharded) {
      throw std::invalid_argument(
          "StreamEngine: the sharded engine is not a push-engine backend; "
          "route through simulateStream or ShardedSimulator");
    }
    policy.reset();
    if (options.chromeTrace) {
      options.chromeTrace->setProcessName(kTracePid,
                                          "cdbp simulation: " + policy.name());
    }
  }

  void noteResident() {
    std::size_t bytes = pending.capacity() * sizeof(PendingDeparture) +
                        usageByBin.capacity() * sizeof(Time) +
                        bins.binsOpened() * sizeof(BinManager::BinInfo) +
                        bins.openCount() * 2 * sizeof(BinId);
    if (bytes > residentPeak) {
      residentPeak = bytes;
      CDBP_TELEM_GAUGE_SET("stream.resident_bytes", bytes);
    }
  }

  void popDeparture() {
    std::pop_heap(pending.begin(), pending.end(), laterDeparture);
    PendingDeparture dep = pending.back();
    pending.pop_back();
    if (options.computeLowerBound) lb3.onEvent(dep.time, -dep.size);
    if (bins.removeItem(dep.bin, dep.size)) {
      usageByBin[static_cast<std::size_t>(dep.bin)] =
          dep.time - bins.info(dep.bin).openedAt;
    }
    CDBP_TELEM_COUNT("sim.events_processed", 1);
    CDBP_TELEM_GAUGE_SET("stream.open_items", pending.size());
    if (options.chromeTrace) {
      options.chromeTrace->addCounter("open_bins",
                                      dep.time * options.traceTimeScale,
                                      kTracePid,
                                      static_cast<double>(bins.openCount()));
    }
  }

  void requireLive(const char* what) const {
    if (done) {
      throw std::logic_error(std::string("StreamEngine: ") + what +
                             " after finish()");
    }
  }

  Placement place(const StreamItem& incoming) {
    requireLive("place()");
    if (nextId == std::numeric_limits<ItemId>::max()) {
      throw std::invalid_argument("simulateStream: item id space exhausted");
    }
    // Model validation, mirroring Instance's constructor: a streaming
    // source bypasses that gate, so the same invariants are enforced here.
    if (!std::isfinite(incoming.arrival) || !std::isfinite(incoming.departure)) {
      throw std::invalid_argument("simulateStream: item " +
                                  std::to_string(nextId) +
                                  " has a non-finite time");
    }
    if (!(incoming.departure > incoming.arrival)) {
      throw std::invalid_argument("simulateStream: item " +
                                  std::to_string(nextId) +
                                  " departs at or before its arrival");
    }
    if (!std::isfinite(incoming.size) || !(incoming.size > 0) ||
        lt(kBinCapacity, incoming.size)) {
      throw std::invalid_argument("simulateStream: item " +
                                  std::to_string(nextId) +
                                  " has size outside (0, 1]");
    }
    if (sawEvent && incoming.arrival < lastArrival) {
      throw std::invalid_argument(
          "simulateStream: ArrivalSource must yield nondecreasing arrivals "
          "(item " + std::to_string(nextId) + " arrives at " +
          std::to_string(incoming.arrival) + " after " +
          std::to_string(lastArrival) + ")");
    }

    const Item r(nextId++, incoming.size, incoming.arrival, incoming.departure);
    lastArrival = r.arrival();
    sawEvent = true;
    ++result.items;

    // Exact-time draining: every departure at or before this arrival is
    // processed first (half-open intervals), replicating the batch
    // timeline's departures-before-arrivals order at equal instants.
    while (!pending.empty() && pending.front().time <= r.arrival()) {
      popDeparture();
    }

    Item announced = r;
    if (options.announce) {
      announced = options.announce(r);
      if (announced.id != r.id || announced.size != r.size ||
          announced.arrival() != r.arrival()) {
        throw std::logic_error(
            "StreamOptions::announce may only perturb the departure time");
      }
    }

    if (options.computeLowerBound) lb3.onEvent(r.arrival(), r.size);

    PlacementView view(bins, r.arrival());
#if CDBP_TELEMETRY
    std::uint64_t fitChecksBefore = fitCheckCounter().value();
#endif
    PlacementDecision decision = policy.place(view, announced);
#if CDBP_TELEMETRY
    std::uint64_t scanned = fitCheckCounter().value() - fitChecksBefore;
    if (scanned <= bins.openCount()) {
      CDBP_TELEM_HIST("sim.bins_scanned_per_placement", scanned);
    }
#endif
    BinId target = decision.bin;
    if (target == kNewBin) {
      target = bins.openBin(decision.category, r.arrival());
      usageByBin.push_back(0);  // slot == id: one push per openBin
      CDBP_TELEM_COUNT("sim.placements_new_bin", 1);
    } else {
      CDBP_TELEM_COUNT("sim.placements_existing_bin", 1);
      if (!bins.info(target).open) {
        throw std::logic_error(policy.name() + " placed item " +
                               std::to_string(r.id) + " in closed bin " +
                               std::to_string(target));
      }
      // Validation re-check: wouldFit is the uncounted twin of fits(), so
      // sim.fit_checks stays comparable with the batch simulator's.
      if (!bins.wouldFit(target, r.size)) {
        throw std::logic_error(policy.name() + " overfilled bin " +
                               std::to_string(target) + " with item " +
                               std::to_string(r.id));
      }
    }
    bins.addItem(target, r.size);
    pending.push_back({r.departure(), r.id, target, r.size});
    std::push_heap(pending.begin(), pending.end(), laterDeparture);
    result.peakOpenItems = std::max(result.peakOpenItems, pending.size());
    CDBP_TELEM_GAUGE_SET("stream.open_items", pending.size());
    categories.insert(bins.info(target).category);
    result.maxOpenBins = std::max(result.maxOpenBins, bins.openCount());
    CDBP_TELEM_COUNT("sim.events_processed", 1);
    CDBP_TELEM_HIST("sim.item_size_permille", r.size * 1000.0);

    if (options.onPlacement) {
      options.onPlacement(r.id, target, decision.bin == kNewBin,
                          bins.info(target).category);
    }
    if (options.chromeTrace) {
      std::ostringstream name;
      name << "item " << r.id;
      options.chromeTrace->addComplete(
          name.str(), "item", r.arrival() * options.traceTimeScale,
          r.duration() * options.traceTimeScale, kTracePid,
          static_cast<int>(target),
          {{"size", r.size},
           {"category", static_cast<double>(bins.info(target).category)},
           {"bin_level_after", bins.info(target).level}});
      options.chromeTrace->addCounter("open_bins",
                                      r.arrival() * options.traceTimeScale,
                                      kTracePid,
                                      static_cast<double>(bins.openCount()));
    }
    noteResident();
    return Placement{r.id, target, decision.bin == kNewBin,
                     bins.info(target).category};
  }

  std::size_t drainUntil(Time time) {
    requireLive("drainUntil()");
    if (!std::isfinite(time)) {
      throw std::invalid_argument("StreamEngine: drainUntil time is not finite");
    }
    if (sawEvent && time < lastArrival) {
      throw std::invalid_argument(
          "StreamEngine: drainUntil(" + std::to_string(time) +
          ") regresses behind the time watermark " +
          std::to_string(lastArrival));
    }
    // Advancing the watermark keeps equivalence with the pure-streaming
    // order: a later arrival below `time` would have been placed BEFORE
    // the departures in (arrival, time] in the batch timeline, so once
    // those departures are drained such an arrival must be rejected —
    // place() does, because lastArrival is now `time`.
    lastArrival = time;
    sawEvent = true;
    std::size_t drained = 0;
    while (!pending.empty() && pending.front().time <= time) {
      popDeparture();
      ++drained;
    }
    return drained;
  }

  StreamResult finish() {
    requireLive("finish()");
    // End of stream: drain every pending departure so all bins close and
    // the usage ledger completes. (The batch simulator may skip its
    // trailing departures; here they are what produces totalUsage.)
    while (!pending.empty()) popDeparture();

    if (options.chromeTrace) {
      for (std::size_t b = 0; b < bins.binsOpened(); ++b) {
        const BinManager::BinInfo& info = bins.info(static_cast<BinId>(b));
        std::ostringstream name;
        name << "bin " << info.id << " (cat " << info.category << ")";
        options.chromeTrace->setThreadName(kTracePid,
                                           static_cast<int>(info.id),
                                           name.str());
      }
    }

    Time totalUsage = 0;
    for (Time usage : usageByBin) totalUsage += usage;
    result.totalUsage = totalUsage;
    result.binsOpened = bins.binsOpened();
    result.categoriesUsed = categories.size();
    if (options.computeLowerBound) result.lb3 = lb3.total();
    result.peakResidentBytes = residentPeak;
    done = true;
    return result;
  }
};

StreamEngine::StreamEngine(OnlinePolicy& policy, const StreamOptions& options)
    : impl_(std::make_unique<Impl>(policy, options)) {}

StreamEngine::~StreamEngine() = default;

StreamEngine::Placement StreamEngine::place(const StreamItem& item) {
  return impl_->place(item);
}

std::size_t StreamEngine::drainUntil(Time time) {
  return impl_->drainUntil(time);
}

StreamResult StreamEngine::finish() { return impl_->finish(); }

bool StreamEngine::finished() const { return impl_->done; }

Time StreamEngine::timeWatermark() const {
  return impl_->sawEvent ? impl_->lastArrival
                         : -std::numeric_limits<Time>::infinity();
}

std::size_t StreamEngine::itemsPlaced() const { return impl_->result.items; }

std::size_t StreamEngine::binsOpened() const { return impl_->bins.binsOpened(); }

std::size_t StreamEngine::openBins() const { return impl_->bins.openCount(); }

std::size_t StreamEngine::pendingDepartures() const {
  return impl_->pending.size();
}

std::size_t StreamEngine::peakOpenItems() const {
  return impl_->result.peakOpenItems;
}

std::size_t StreamEngine::peakResidentBytes() const {
  return impl_->residentPeak;
}

StreamResult simulateStream(ArrivalSource& source, OnlinePolicy& policy,
                            const StreamOptions& options) {
  if (options.engine == PlacementEngine::kSharded) {
    if (options.chromeTrace != nullptr) {
      throw std::invalid_argument(
          "simulateStream: the sharded engine does not produce chrome "
          "traces; use kIndexed for trace runs");
    }
    if (options.onPlacement) {
      throw std::invalid_argument(
          "simulateStream: the sharded engine does not support onPlacement "
          "(shard-local category ids); capture placements through "
          "simulateSharded's ShardedOptions::capturePlacements");
    }
    ShardedOptions shardedOptions;
    shardedOptions.threads = options.shardedThreads;
    shardedOptions.computeLowerBound = options.computeLowerBound;
    shardedOptions.announce = options.announce;
    ShardedResult sharded = simulateSharded(source, policy, shardedOptions);
    StreamResult result;
    result.items = sharded.items;
    result.totalUsage = sharded.totalUsage;
    result.binsOpened = sharded.binsOpened;
    result.maxOpenBins = sharded.maxOpenBins;
    result.categoriesUsed = sharded.categoriesUsed;
    result.lb3 = sharded.lb3;
    result.peakOpenItems = sharded.peakOpenItems;
    result.peakResidentBytes = 0;
    return result;
  }

  StreamEngine engine(policy, options);
  StreamItem incoming;
  while (source.next(incoming)) engine.place(incoming);
  return engine.finish();
}

}  // namespace cdbp
