#include "sim/metrics.hpp"

#include "core/lower_bounds.hpp"

namespace cdbp {

PackingMetrics computeMetrics(const Packing& packing) {
  PackingMetrics metrics;
  metrics.totalUsage = packing.totalUsage();
  metrics.binsUsed = packing.numBins();
  for (std::size_t b = 0; b < packing.numBins(); ++b) {
    const BinTimeline& bin = packing.bin(static_cast<BinId>(b));
    metrics.binUsages.add(bin.usage());
    for (const Interval& busy : bin.busyPeriods().parts()) {
      metrics.rentalLengths.add(busy.length());
    }
  }
  StepFunction openProfile = packing.openBinProfile();
  metrics.maxConcurrentBins =
      static_cast<std::size_t>(openProfile.maxValue() + 0.5);
  Time span = packing.instance().span();
  metrics.avgOpenBins = span > 0 ? openProfile.integral() / span : 0.0;
  double demand = packing.instance().demand();
  metrics.utilization =
      metrics.totalUsage > 0 ? demand / metrics.totalUsage : 0.0;
  metrics.wastedTime = metrics.totalUsage - demand;
  return metrics;
}

std::vector<std::pair<Time, double>> openBinTimeSeries(const Packing& packing,
                                                       std::size_t samples) {
  std::vector<std::pair<Time, double>> series;
  if (packing.instance().empty() || samples == 0) return series;
  IntervalSet active = packing.instance().activeUnion();
  Time lo = active.min();
  Time hi = active.max();
  StepFunction profile = packing.openBinProfile();
  series.reserve(samples + 1);
  for (std::size_t i = 0; i <= samples; ++i) {
    Time t = lo + (hi - lo) * static_cast<double>(i) /
                      static_cast<double>(samples);
    series.emplace_back(t, profile.valueAt(t));
  }
  return series;
}

}  // namespace cdbp
