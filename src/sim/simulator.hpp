// Event-driven online packing simulator.
//
// Replays an instance in arrival order against an OnlinePolicy, maintaining
// the open-bin state (bins close permanently when they empty) and
// validating every decision. Produces the final Packing plus run
// statistics.
#pragma once

#include <functional>
#include <vector>

#include "core/instance.hpp"
#include "core/packing.hpp"
#include "online/policy.hpp"
#include "sim/trace.hpp"
#include "telemetry/chrome_trace.hpp"

namespace cdbp {

// PlacementEngine moved to sim/bin_manager.hpp in PR 4 (the multidim and
// flexible simulators select engines too); it arrives here transitively
// via online/policy.hpp -> sim/placement_view.hpp -> sim/bin_manager.hpp.

struct SimOptions {
  /// Placement engine selection. Both engines produce bit-identical
  /// packings and SimResults (see DESIGN.md §9.1); kLinearScan exists for
  /// differential testing and honest before/after benchmarking.
  PlacementEngine engine = PlacementEngine::kIndexed;

  /// Optional transformation applied to each item before it is shown to the
  /// policy — used to model inaccurate duration estimates (§6 future work:
  /// the policy sees the perturbed departure, the system evolves with the
  /// true one). Sizes and arrivals must not change; the simulator enforces
  /// this.
  std::function<Item(const Item&)> announce;

  /// When set, every placement decision is appended here (see trace.hpp).
  DecisionTrace* trace = nullptr;

  /// When set, the run is recorded as a chrome://tracing timeline: one
  /// complete event per item on its bin's row plus an open-bin counter
  /// series (DESIGN.md §8.2). Always available, independent of the
  /// CDBP_TELEMETRY toggle — this is an explicitly requested artifact, not
  /// ambient instrumentation.
  telemetry::ChromeTrace* chromeTrace = nullptr;

  /// Simulated-time-unit -> trace-microsecond scale (trace timestamps are
  /// microseconds; the default renders 1 time unit as 1 second).
  double traceTimeScale = 1e6;

  /// Worker threads for engine == kSharded (0 picks the hardware
  /// concurrency); ignored by the other engines. The sharded engine
  /// rejects `trace` and `chromeTrace`: per-decision artifacts are a
  /// single-timeline notion, use kIndexed for those runs.
  std::size_t shardedThreads = 0;
};

struct SimResult {
  Packing packing;
  Time totalUsage = 0;
  std::size_t binsOpened = 0;
  std::size_t maxOpenBins = 0;
  /// Number of categories the policy ended up using.
  std::size_t categoriesUsed = 0;
};

/// Runs `policy` (reset() first) over `instance`. Throws std::logic_error
/// if the policy returns a closed or infeasible bin.
SimResult simulateOnline(const Instance& instance, OnlinePolicy& policy,
                         const SimOptions& options = {});

}  // namespace cdbp
