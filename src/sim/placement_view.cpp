#include "sim/placement_view.hpp"

#include <limits>

#include "telemetry/telemetry.hpp"

namespace cdbp {

namespace {

// One indexed query = one policy-visible capacity question. The linear
// reference path instead counts every probe inside BinManager::fits, which
// is exactly what the original scanning policies charged.
inline void countIndexedQuery() { CDBP_TELEM_COUNT("sim.fit_checks", 1); }

}  // namespace

// The linear scans below reproduce the original policy loops verbatim —
// same iteration order, same comparison operators, same counted fits()
// probes — so a linear-engine run is byte-for-byte the seed behavior the
// differential tests compare the index against.

BinId PlacementView::linearFirstFit(const std::vector<BinId>& bins,
                                    Size size) const {
  for (BinId id : bins) {
    if (bins_.fits(id, size)) return id;
  }
  return kNewBin;
}

BinId PlacementView::linearBestFit(const std::vector<BinId>& bins,
                                   Size size) const {
  BinId best = kNewBin;
  Size bestLevel = -1;
  for (BinId id : bins) {
    if (!bins_.fits(id, size)) continue;
    Size level = bins_.info(id).level;
    if (level > bestLevel) {  // strict: ties keep the earliest-opened bin
      bestLevel = level;
      best = id;
    }
  }
  return best;
}

BinId PlacementView::linearWorstFit(const std::vector<BinId>& bins,
                                    Size size) const {
  BinId best = kNewBin;
  Size bestLevel = std::numeric_limits<Size>::infinity();
  for (BinId id : bins) {
    if (!bins_.fits(id, size)) continue;
    Size level = bins_.info(id).level;
    if (level < bestLevel) {  // strict: ties keep the earliest-opened bin
      bestLevel = level;
      best = id;
    }
  }
  return best;
}

BinId PlacementView::firstFit(Size size) const {
  if (!indexed()) return linearFirstFit(bins_.openBins(), size);
  countIndexedQuery();
  return bins_.index().firstFit(size);
}

BinId PlacementView::firstFitIn(int category, Size size) const {
  if (!indexed()) return linearFirstFit(bins_.openBins(category), size);
  countIndexedQuery();
  return bins_.index().firstFitIn(category, size);
}

BinId PlacementView::bestFit(Size size) const {
  if (!indexed()) return linearBestFit(bins_.openBins(), size);
  countIndexedQuery();
  return bins_.index().bestFit(size);
}

BinId PlacementView::bestFitIn(int category, Size size) const {
  if (!indexed()) return linearBestFit(bins_.openBins(category), size);
  countIndexedQuery();
  return bins_.index().bestFitIn(category, size);
}

BinId PlacementView::worstFit(Size size) const {
  if (!indexed()) return linearWorstFit(bins_.openBins(), size);
  countIndexedQuery();
  return bins_.index().worstFit(size);
}

BinId PlacementView::worstFitIn(int category, Size size) const {
  if (!indexed()) return linearWorstFit(bins_.openBins(category), size);
  countIndexedQuery();
  return bins_.index().worstFitIn(category, size);
}

}  // namespace cdbp
