// Explicit instantiation of the scalar placement view (declared extern in
// the header); other resource models instantiate lazily where used.
#include "sim/placement_view.hpp"

namespace cdbp {

template class BasicPlacementView<ScalarResource>;

}  // namespace cdbp
