#include "sim/trace.hpp"

#include <ostream>

namespace cdbp {

double DecisionTrace::newBinRate() const {
  if (records_.empty()) return 0.0;
  std::size_t opened = 0;
  for (const PlacementRecord& r : records_) {
    if (r.openedNewBin) ++opened;
  }
  return static_cast<double>(opened) / static_cast<double>(records_.size());
}

double DecisionTrace::meanOpenBins() const {
  if (records_.empty()) return 0.0;
  double total = 0;
  for (const PlacementRecord& r : records_) {
    total += static_cast<double>(r.openBins);
  }
  return total / static_cast<double>(records_.size());
}

void DecisionTrace::writeCsv(std::ostream& out) const {
  out << "item,time,bin,new,category,openBins,levelBefore\n";
  out.precision(17);
  for (const PlacementRecord& r : records_) {
    out << r.item << ',' << r.time << ',' << r.bin << ','
        << (r.openedNewBin ? 1 : 0) << ',' << r.category << ',' << r.openBins
        << ',' << r.binLevelBefore << '\n';
  }
}

}  // namespace cdbp
