// Building blocks shared by the streaming engine (streaming.cpp) and the
// sharded engine (sharded.cpp). Both replay the batch timeline order —
// departures in (time, id) order before each arrival — and both maintain
// the incremental Proposition 3 bound the same way; sharing the exact code
// is what makes their lb3 doubles and drain orders bitwise identical
// rather than merely equivalent.
//
// This header is an implementation detail of the two engines, not public
// API: nothing outside src/sim should include it.
#pragma once

#include <cmath>

#include "core/epsilon.hpp"
#include "core/types.hpp"

namespace cdbp::stream_internal {

/// One pending departure per arrived-but-not-departed item. Popped in
/// (time, id) order — the batch timeline's sort key, under which departures
/// precede arrivals at the same instant and simultaneous departures drain
/// in item-id order — so bin levels evolve through the identical sequence
/// of floating-point updates as in simulateOnline.
struct PendingDeparture {
  Time time;
  ItemId item;
  BinId bin;
  Size size;
};

/// std::push_heap/pop_heap maintain a max-heap w.r.t. the comparator;
/// "later departure wins" turns that into a min-heap on (time, id).
inline bool laterDeparture(const PendingDeparture& a,
                           const PendingDeparture& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.item > b.item;
}

/// Incremental mirror of StepFunction::ceilIntegral(kSizeEps) over the
/// running total-size profile S(t): each event first settles the segment
/// since the previous event — skipping near-empty segments and snapping
/// near-integer levels, exactly as the batch bound does — then applies the
/// item's size delta. O(1) state; the price is that the running level is a
/// long alternating FP sum, so the result matches the batch bound to
/// accumulation order, not bitwise.
class IncrementalLb3 {
 public:
  void onEvent(Time t, double delta) {
    if (level_ > kSizeEps && t > last_) {
      double nearest = std::round(level_);
      double value =
          (std::fabs(level_ - nearest) <= kSizeEps) ? nearest : level_;
      total_ += std::ceil(value) * (t - last_);
    }
    last_ = t;
    level_ += delta;
  }

  double total() const { return total_; }

 private:
  double level_ = 0;
  double total_ = 0;
  Time last_ = 0;
};

}  // namespace cdbp::stream_internal
