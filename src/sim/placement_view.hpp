// BasicPlacementView: the narrow, read-only surface a packing policy sees,
// generic over a Resource model (sim/resource.hpp documents the concept).
//
// Policies used to take `const BinManager&` directly, which (a) exposed
// the whole mutation-adjacent interface and (b) hard-wired every policy to
// linear open-list scans. The view exposes exactly what placement logic
// needs — the indexed placement queries, the per-category open lists for
// bespoke scans, per-bin metadata, and the simulation clock — and routes
// each query to the engine the simulation selected:
//
//  * indexed (default): O(log B) answers from the BinSearchIndexT. Each
//    query counts once toward `sim.fit_checks` (one policy-visible
//    capacity question was asked, however it was answered).
//  * linear-scan reference: the exact open-list scans the policies
//    shipped with, probe by counted probe — retained so differential
//    tests can pin the indexed engine against it bit for bit. The only
//    engine for non-indexable models (IntervalResource).
//
// Queries return the chosen bin id or kNewBin when no open bin fits.
// Best/Worst Fit exist only for ordered (scalar) levels; unordered models
// use minScoreFitIn (Dominant-Resource Fit) or the open-list surface.
#pragma once

#include <limits>

#include "core/types.hpp"
#include "sim/bin_manager.hpp"

namespace cdbp {

template <typename R>
class BasicPlacementView {
 public:
  using Demand = typename R::Demand;
  using BinInfo = typename BasicBinManager<R>::BinInfo;

  /// `now` is the arrival instant of the item being placed (departures up
  /// to and including `now` have already been drained).
  BasicPlacementView(const BasicBinManager<R>& bins, Time now)
      : bins_(bins), now_(now) {}

  /// The simulation clock: the current item's arrival time.
  Time now() const { return now_; }

  /// True when queries are answered by the sublinear index.
  bool indexed() const { return bins_.indexed(); }

  // --- Indexed placement queries (engine-routed) ---

  /// Earliest-opened open bin that fits `demand`, or kNewBin.
  BinId firstFit(const Demand& demand) const {
    if constexpr (R::kIndexable) {
      if (indexed()) {
        countIndexedQuery();
        return bins_.index().firstFit(demand);
      }
    }
    return linearFirstFit(bins_.openBins(), demand);
  }

  /// Earliest-opened open bin of `category` that fits `demand`, or kNewBin.
  BinId firstFitIn(int category, const Demand& demand) const {
    if constexpr (R::kIndexable) {
      if (indexed()) {
        countIndexedQuery();
        return bins_.index().firstFitIn(category, demand);
      }
    }
    return linearFirstFit(bins_.openBins(category), demand);
  }

  /// Fullest fitting open bin (ties to earliest-opened), or kNewBin.
  /// Ordered (scalar) levels only.
  BinId bestFit(const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    if (!indexed()) return linearBestFit(bins_.openBins(), demand);
    countIndexedQuery();
    return bins_.index().bestFit(demand);
  }
  BinId bestFitIn(int category, const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    if (!indexed()) return linearBestFit(bins_.openBins(category), demand);
    countIndexedQuery();
    return bins_.index().bestFitIn(category, demand);
  }

  /// Emptiest fitting open bin (ties to earliest-opened), or kNewBin.
  /// Ordered (scalar) levels only.
  BinId worstFit(const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    if (!indexed()) return linearWorstFit(bins_.openBins(), demand);
    countIndexedQuery();
    return bins_.index().worstFit(demand);
  }
  BinId worstFitIn(int category, const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    if (!indexed()) return linearWorstFit(bins_.openBins(category), demand);
    countIndexedQuery();
    return bins_.index().worstFitIn(category, demand);
  }

  /// Fitting bin of `category` minimizing score(level) — eps-strict
  /// improvement, ties to the earliest-opened bin (the Dominant-Resource
  /// Fit query: score the hypothetical post-placement level inside the
  /// callback). Both engines enumerate candidates in opening order and
  /// apply the same comparison on the same doubles, so they agree bin for
  /// bin.
  template <typename ScoreFn>
  BinId minScoreFitIn(int category, const Demand& demand,
                      ScoreFn&& score) const {
    if constexpr (R::kIndexable) {
      if (indexed()) {
        countIndexedQuery();
        return bins_.index().minScoreFitIn(category, demand, score);
      }
    }
    BinId best = kNewBin;
    double bestScore = std::numeric_limits<double>::infinity();
    for (BinId id : bins_.openBins(category)) {
      if (!bins_.fits(id, demand)) continue;
      double s = score(bins_.info(id).level);
      if (s < bestScore - kSizeEps) {
        bestScore = s;
        best = id;
      }
    }
    return best;
  }

  // --- Open-list surface for policies with bespoke selection rules ---

  /// All open bins in opening order.
  const std::vector<BinId>& openBins() const { return bins_.openBins(); }

  /// Open bins of one category in opening order (empty list if none).
  const std::vector<BinId>& openBins(int category) const {
    return bins_.openBins(category);
  }

  /// Metadata of a bin (open or closed).
  const BinInfo& info(BinId id) const { return bins_.info(id); }

  /// Counted capacity probe: whether `demand` fits bin `id` now. This is
  /// the per-bin question bespoke scans ask; every call counts toward
  /// `sim.fit_checks`.
  bool fits(BinId id, const Demand& demand) const {
    return bins_.fits(id, demand);
  }

  /// Total bins ever opened (the id the next fresh bin will receive).
  std::size_t binsOpened() const { return bins_.binsOpened(); }

  /// Currently open bin count.
  std::size_t openCount() const { return bins_.openCount(); }

 private:
  // One indexed query = one policy-visible capacity question. The linear
  // reference path instead counts every probe inside fits(), which is
  // exactly what the original scanning policies charged.
  static void countIndexedQuery() { CDBP_TELEM_COUNT("sim.fit_checks", 1); }

  // The linear scans below reproduce the original policy loops verbatim —
  // same iteration order, same comparison operators, same counted fits()
  // probes — so a linear-engine run is byte-for-byte the seed behavior the
  // differential tests compare the index against.

  BinId linearFirstFit(const std::vector<BinId>& bins,
                       const Demand& demand) const {
    for (BinId id : bins) {
      if (bins_.fits(id, demand)) return id;
    }
    return kNewBin;
  }

  BinId linearBestFit(const std::vector<BinId>& bins,
                      const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    BinId best = kNewBin;
    Size bestLevel = -1;
    for (BinId id : bins) {
      if (!bins_.fits(id, demand)) continue;
      Size level = bins_.info(id).level;
      if (level > bestLevel) {  // strict: ties keep the earliest-opened bin
        bestLevel = level;
        best = id;
      }
    }
    return best;
  }

  BinId linearWorstFit(const std::vector<BinId>& bins,
                       const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    BinId best = kNewBin;
    Size bestLevel = std::numeric_limits<Size>::infinity();
    for (BinId id : bins) {
      if (!bins_.fits(id, demand)) continue;
      Size level = bins_.info(id).level;
      if (level < bestLevel) {  // strict: ties keep the earliest-opened bin
        bestLevel = level;
        best = id;
      }
    }
    return best;
  }

  const BasicBinManager<R>& bins_;
  Time now_;
};

/// The scalar instantiation keeps its PR 3 name; it is explicitly
/// instantiated in placement_view.cpp.
using PlacementView = BasicPlacementView<ScalarResource>;

extern template class BasicPlacementView<ScalarResource>;

}  // namespace cdbp
