// PlacementView: the narrow, read-only surface an online policy sees.
//
// Policies used to take `const BinManager&` directly, which (a) exposed
// the whole mutation-adjacent interface and (b) hard-wired every policy to
// linear open-list scans. The view exposes exactly what placement logic
// needs — the indexed first/best/worst-fit queries, the per-category open
// lists for bespoke scans, per-bin metadata, and the simulation clock —
// and routes each query to the engine the simulation selected:
//
//  * indexed (default): O(log B) answers from the BinSearchIndex. Each
//    query counts once toward `sim.fit_checks` (one policy-visible
//    capacity question was asked, however it was answered).
//  * linear-scan reference: the exact open-list scans the policies
//    shipped with, probe by counted probe — retained so differential
//    tests can pin the indexed engine against it bit for bit.
//
// Queries return the chosen bin id or kNewBin when no open bin fits.
#pragma once

#include "core/types.hpp"
#include "sim/bin_manager.hpp"

namespace cdbp {

class PlacementView {
 public:
  /// `now` is the arrival instant of the item being placed (departures up
  /// to and including `now` have already been drained).
  PlacementView(const BinManager& bins, Time now) : bins_(bins), now_(now) {}

  /// The simulation clock: the current item's arrival time.
  Time now() const { return now_; }

  /// True when queries are answered by the sublinear index.
  bool indexed() const { return bins_.indexed(); }

  // --- Indexed placement queries (engine-routed) ---

  /// Earliest-opened open bin that fits `size`, or kNewBin.
  BinId firstFit(Size size) const;

  /// Earliest-opened open bin of `category` that fits `size`, or kNewBin.
  BinId firstFitIn(int category, Size size) const;

  /// Fullest fitting open bin (ties to earliest-opened), or kNewBin.
  BinId bestFit(Size size) const;
  BinId bestFitIn(int category, Size size) const;

  /// Emptiest fitting open bin (ties to earliest-opened), or kNewBin.
  BinId worstFit(Size size) const;
  BinId worstFitIn(int category, Size size) const;

  // --- Open-list surface for policies with bespoke selection rules ---

  /// All open bins in opening order.
  const std::vector<BinId>& openBins() const { return bins_.openBins(); }

  /// Open bins of one category in opening order (empty list if none).
  const std::vector<BinId>& openBins(int category) const {
    return bins_.openBins(category);
  }

  /// Metadata of a bin (open or closed).
  const BinManager::BinInfo& info(BinId id) const { return bins_.info(id); }

  /// Counted capacity probe: whether `size` fits bin `id` now. This is the
  /// per-bin question bespoke scans ask; every call counts toward
  /// `sim.fit_checks`.
  bool fits(BinId id, Size size) const { return bins_.fits(id, size); }

  /// Total bins ever opened (the id the next fresh bin will receive).
  std::size_t binsOpened() const { return bins_.binsOpened(); }

  /// Currently open bin count.
  std::size_t openCount() const { return bins_.openCount(); }

 private:
  BinId linearFirstFit(const std::vector<BinId>& bins, Size size) const;
  BinId linearBestFit(const std::vector<BinId>& bins, Size size) const;
  BinId linearWorstFit(const std::vector<BinId>& bins, Size size) const;

  const BinManager& bins_;
  Time now_;
};

}  // namespace cdbp
