#include "sim/run_many.hpp"

#include <stdexcept>

#include "core/lower_bounds.hpp"
#include "util/thread_pool.hpp"
#include "workload/trace_io.hpp"

namespace cdbp {

std::vector<RunResult> runMany(const RunManySpec& spec) {
  const std::size_t numInstances = spec.instances.size();
  const std::size_t numPolicies = spec.policies.size();
  const std::size_t numSeeds = spec.seeds.size();
  const std::size_t numCells = numInstances * numPolicies * numSeeds;

  for (const RunPolicy& policy : spec.policies) {
    if (policy.spec.empty() && !policy.factory) {
      throw std::invalid_argument("runMany: policy entry with neither spec nor factory");
    }
  }

  struct BuiltInstance {
    std::shared_ptr<const Instance> instance;
    double lb3 = 0;
  };
  // Pool tasks write these at disjoint indices (one owner per slot), so
  // neither vector needs a mutex — the lock-free counterpart of the
  // annotated discipline inside ThreadPool, checked by tsan instead of
  // clang's thread-safety analysis.
  std::vector<BuiltInstance> built(numInstances * numSeeds);
  std::vector<RunResult> results(numCells);
  if (numCells == 0) return results;

  ThreadPool pool(spec.threads);

  // Phase 1: each (instance, seed) pair is generated once — and its lower
  // bound computed once — then shared read-only across the policy axis.
  parallelFor(pool, built.size(), [&](std::size_t task) {
    std::size_t i = task / numSeeds;
    std::size_t s = task % numSeeds;
    auto instance = std::make_shared<const Instance>(
        spec.instances[i](spec.seeds[s]));
    BuiltInstance& slot = built[task];
    if (spec.computeLowerBound) {
      slot.lb3 = lowerBounds(*instance).ceilIntegral;
    }
    slot.instance = std::move(instance);
  });

  // Phase 2: one task per grid cell. Policies are constructed inside the
  // cell (fresh state, cell-local context), so cells are independent and
  // the grid is deterministic under any thread count.
  parallelFor(pool, numCells, [&](std::size_t cell) {
    std::size_t i = cell / (numPolicies * numSeeds);
    std::size_t p = (cell / numSeeds) % numPolicies;
    std::size_t s = cell % numSeeds;
    const BuiltInstance& input = built[i * numSeeds + s];
    const RunPolicy& entry = spec.policies[p];

    PolicyContext context =
        spec.context.has_value()
            ? *spec.context
            : PolicyContext::forInstance(*input.instance, spec.seeds[s]);
    PolicyPtr policy = entry.factory ? entry.factory(context)
                                     : makePolicy(entry.spec, context);

    RunResult& result = results[cell];
    result.instanceIndex = i;
    result.policyIndex = p;
    result.seedIndex = s;
    result.seed = spec.seeds[s];
    result.instance = input.instance;
    result.lb3 = input.lb3;

    SimOptions options;
    options.engine = spec.engine;
    options.shardedThreads = spec.shardedThreads;
    if (spec.captureTrace) {
      result.trace = std::make_shared<DecisionTrace>();
      options.trace = result.trace.get();
    }
    result.sim = simulateOnline(*input.instance, *policy, options);
    result.policyName = policy->name();
    result.ratio = result.lb3 > 0 ? result.sim.totalUsage / result.lb3 : 1.0;
  });

  return results;
}

std::function<Instance(std::uint64_t)> traceFileInstanceAxis(
    std::string path) {
  return [path = std::move(path)](std::uint64_t /*seed*/) {
    return loadTraceInstance(path);
  };
}

void runCells(unsigned threads, std::size_t count,
              const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  ThreadPool pool(threads);
  parallelFor(pool, count, fn);
}

}  // namespace cdbp
