// Capacity-indexed bin search: the sublinear placement engine core.
//
// A BinSearchIndex answers the placement queries every AnyFit/classify
// policy issues — "leftmost open bin with remaining capacity >= s" (First
// Fit), "fullest fitting bin" (Best Fit), "emptiest fitting bin" (Worst
// Fit) — in O(log B) instead of the O(B) open-list scan, for the global
// open set and for each policy category independently.
//
// First/Worst Fit ride on a min-level tournament tree (MinLevelTree): each
// internal node stores the minimum level of its leaf range, closed slots
// hold +infinity. The descent uses the *same* fitsCapacity(level, size)
// predicate as the linear scan, on the same doubles; because fl(level +
// size) is monotone non-decreasing in level, a subtree contains a fitting
// bin iff its minimum level fits, so the indexed answers are bit-identical
// to the linear reference (DESIGN.md §9.1 gives the argument).
//
// Best Fit needs the *maximum* fitting level, which a min/max tree cannot
// localize in O(log B) worst case; it uses a level-ordered set instead,
// materialized lazily so runs that never ask Best Fit queries (First Fit
// and every classify policy) pay zero set maintenance.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/epsilon.hpp"
#include "core/types.hpp"

namespace cdbp {

/// Array-backed tournament (segment) tree over bin slots keyed by level.
/// Slots are append-only (bins are never re-opened); a closed slot is
/// parked at +infinity, which no query can fit into.
class MinLevelTree {
 public:
  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  /// Sentinel level for closed / not-yet-opened slots. fitsCapacity(+inf,
  /// s) is false for every s, so closed slots are invisible to queries.
  static constexpr Size kClosed = std::numeric_limits<Size>::infinity();

  /// Appends a slot at the given level; returns its index (dense, in
  /// append order). Amortized O(log B): the backing array doubles.
  std::size_t append(Size level);

  /// Sets a slot's level and re-sifts the path to the root. O(log B).
  void update(std::size_t slot, Size level);

  /// Parks a slot at +infinity (the bin closed). O(log B).
  void close(std::size_t slot) { update(slot, kClosed); }

  /// Leftmost slot whose level fits `size` (the First Fit answer), or npos
  /// when no open slot fits. O(log B).
  std::size_t firstFit(Size size) const;

  /// Leftmost slot attaining the minimum level (the Worst Fit candidate —
  /// by monotonicity of fitsCapacity it fits iff any slot does), or npos
  /// when every slot is closed. O(log B).
  std::size_t minSlot() const;

  /// Current level of a slot (kClosed when closed).
  Size levelAt(std::size_t slot) const { return tree_[cap_ + slot]; }

  /// Slots ever appended (open + closed).
  std::size_t size() const { return size_; }

 private:
  void grow(std::size_t minCap);

  // tree_[1] is the root, leaves live at [cap_, cap_ + size_); unassigned
  // leaves are kClosed so they never win a descent.
  std::vector<Size> tree_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

/// The placement index proper: one MinLevelTree + lazy Best Fit set per
/// scope, where a scope is either the global open set or one policy
/// category. BinManager drives it via onOpen / onLevelChange / onClose;
/// queries return the bin id, or kNewBin when no open bin fits.
class BinSearchIndex {
 public:
  void onOpen(BinId id, int category);
  void onLevelChange(BinId id, Size newLevel);
  void onClose(BinId id);

  BinId firstFit(Size size) const { return firstFitIn(global_, size); }
  BinId firstFitIn(int category, Size size) const;
  BinId bestFit(Size size) const { return bestFitIn(global_, size); }
  BinId bestFitIn(int category, Size size) const;
  BinId worstFit(Size size) const { return worstFitIn(global_, size); }
  BinId worstFitIn(int category, Size size) const;

 private:
  struct Scope {
    MinLevelTree tree;
    std::vector<BinId> slotToBin;  ///< slot (scope-local) -> global bin id
    /// Open bins ordered by (level, id): Best Fit walks down from the
    /// fitting threshold. Built on the first bestFit query against this
    /// scope and maintained incrementally afterwards; mutable because
    /// materialization happens inside logically-const queries (the index
    /// is owned by one single-threaded simulation).
    mutable std::set<std::pair<Size, BinId>> byLevel;
    mutable bool byLevelBuilt = false;
  };

  void apply(Scope& scope, std::size_t slot, BinId id, Size newLevel);
  static void materialize(const Scope& scope);
  static BinId firstFitIn(const Scope& scope, Size size);
  static BinId bestFitIn(const Scope& scope, Size size);
  static BinId worstFitIn(const Scope& scope, Size size);

  Scope global_;
  std::map<int, Scope> byCategory_;
  // Per-bin bookkeeping, indexed by the dense BinId. The global slot of bin
  // b is b itself (bins open in id order); the category slot is recorded.
  std::vector<std::size_t> categorySlot_;
  std::vector<int> category_;
};

}  // namespace cdbp
