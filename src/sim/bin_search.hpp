// Capacity-indexed bin search: the sublinear placement engine core,
// generic over a Resource model (sim/resource.hpp documents the concept).
//
// A BinSearchIndexT<R> answers the placement queries packing policies
// issue — "leftmost open bin that fits" (First Fit), and for ordered
// (scalar) levels "fullest fitting bin" (Best Fit) and "emptiest fitting
// bin" (Worst Fit) — in O(log B) instead of the O(B) open-list scan, for
// the global open set and for each policy category independently.
//
// First/Worst Fit ride on a min-level tournament tree (MinLevelTreeT):
// each internal node stores the R::assignMin-combination of its leaf
// range, closed slots hold R::closedLevel, which no demand fits. The
// descent uses the *same* R::fits predicate as the linear scan, on the
// same doubles:
//
//  * Ordered levels (scalar): fits is monotone in the level and the
//    subtree minimum is attained by a leaf, so "min fits" is exact — the
//    descent never backtracks and costs O(log B), exactly as in PR 3.
//  * Vector levels (multidim): the componentwise minimum need not be
//    attained by any single bin, so "min fits" is only a sound prune
//    ("false" proves no leaf fits). The descent backtracks left-first,
//    still returning the leftmost bin that *actually* fits — bit-identical
//    to the linear reference, with worst-case O(B) on adversarial level
//    mixes and O(log B) when the prune bites (DESIGN.md §10.2).
//
// Best Fit needs the *maximum* fitting level, which a min tree cannot
// localize; for ordered levels it uses a level-ordered set instead,
// materialized lazily so runs that never ask Best Fit queries pay zero set
// maintenance. Unordered models get the scored traversal minScoreFitIn
// (Dominant-Resource Fit) over the pruned fitting set in opening order.
#pragma once

#include <cstddef>
#include <limits>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "core/epsilon.hpp"
#include "core/types.hpp"
#include "sim/resource.hpp"
#include "util/check.hpp"

namespace cdbp {

/// Array-backed tournament (segment) tree over bin slots keyed by level.
/// Slots are append-only (bins are never re-opened); a closed slot is
/// parked at R::closedLevel, which no query can fit into.
template <typename R>
class MinLevelTreeT {
 public:
  using Level = typename R::Level;
  using Demand = typename R::Demand;
  using Shape = typename R::Shape;

  static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

  explicit MinLevelTreeT(Shape shape = {}) : shape_(shape) {}

  /// Appends a slot at the given level; returns its index (dense, in
  /// append order). Amortized O(log B): the backing array doubles.
  std::size_t append(const Level& level);

  /// Sets a slot's level and re-sifts the path to the root. O(log B).
  void update(std::size_t slot, const Level& level);

  /// Parks a slot at the closed sentinel (the bin closed). O(log B).
  void close(std::size_t slot) { update(slot, R::closedLevel(shape_)); }

  /// Leftmost slot whose level fits `demand` (the First Fit answer), or
  /// npos when no open slot fits. O(log B) for ordered levels; pruned DFS
  /// with backtracking otherwise (see the header comment).
  std::size_t firstFit(const Demand& demand) const;

  /// Leftmost slot attaining the minimum level (the Worst Fit candidate —
  /// by monotonicity of fitsCapacity it fits iff any slot does), or npos
  /// when every slot is closed. O(log B). Ordered (scalar) levels only.
  std::size_t minSlot() const
    requires(R::kOrderedLevels);

  /// Visits every open slot that fits `demand`, in slot (opening) order,
  /// as fn(slot, level). Internal nodes failing the sound prune are
  /// skipped wholesale; leaves are tested exactly, so the visit sequence
  /// equals the linear scan's sequence of fitting bins.
  template <typename Fn>
  void forEachFitting(const Demand& demand, Fn&& fn) const {
    if (size_ > 0) visitFitting(1, demand, fn);
  }

  /// Current level of a slot (the closed sentinel when closed).
  const Level& levelAt(std::size_t slot) const { return tree_[cap_ + slot]; }

  /// Slots ever appended (open + closed).
  std::size_t size() const { return size_; }

 private:
  std::size_t searchLeftmost(std::size_t pos, const Demand& demand) const;
  template <typename Fn>
  void visitFitting(std::size_t pos, const Demand& demand, Fn&& fn) const;
  void grow(std::size_t minCap);

  // tree_[1] is the root, leaves live at [cap_, cap_ + size_); unassigned
  // leaves are closedLevel so they never win a descent.
  std::vector<Level> tree_;
  Shape shape_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;
};

/// The placement index proper: one MinLevelTreeT + (for ordered levels) a
/// lazy Best Fit set per scope, where a scope is either the global open
/// set or one policy category. BasicBinManager drives it via onOpen /
/// onLevelChange / onClose; queries return the bin id, or kNewBin when no
/// open bin fits.
template <typename R>
class BinSearchIndexT {
 public:
  using Level = typename R::Level;
  using Demand = typename R::Demand;
  using Shape = typename R::Shape;

  explicit BinSearchIndexT(Shape shape = {}) : shape_(shape), global_(shape) {}

  void onOpen(BinId id, int category);
  void onLevelChange(BinId id, const Level& newLevel);
  void onClose(BinId id);

  BinId firstFit(const Demand& demand) const {
    return firstFitIn(global_, demand);
  }
  BinId firstFitIn(int category, const Demand& demand) const;
  BinId bestFit(const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    return bestFitIn(global_, demand);
  }
  BinId bestFitIn(int category, const Demand& demand) const
    requires(R::kOrderedLevels);
  BinId worstFit(const Demand& demand) const
    requires(R::kOrderedLevels)
  {
    return worstFitIn(global_, demand);
  }
  BinId worstFitIn(int category, const Demand& demand) const
    requires(R::kOrderedLevels);

  /// Fitting bin of `category` minimizing score(level), eps-strict
  /// improvement, ties to the earliest-opened bin — the query behind
  /// Dominant-Resource Fit. Candidates are enumerated through the pruned
  /// tree traversal in opening order, so the winner (and every comparison
  /// deciding it) is identical to the linear scan's.
  template <typename ScoreFn>
  BinId minScoreFitIn(int category, const Demand& demand,
                      ScoreFn&& score) const {
    auto it = byCategory_.find(category);
    if (it == byCategory_.end()) return kNewBin;
    const Scope& scope = it->second;
    BinId best = kNewBin;
    double bestScore = std::numeric_limits<double>::infinity();
    scope.tree.forEachFitting(
        demand, [&](std::size_t slot, const Level& level) {
          double s = score(level);
          if (s < bestScore - kSizeEps) {
            bestScore = s;
            best = scope.slotToBin[slot];
          }
        });
    return best;
  }

 private:
  struct Scope {
    explicit Scope(Shape shape) : tree(shape) {}

    MinLevelTreeT<R> tree;
    std::vector<BinId> slotToBin;  ///< slot (scope-local) -> global bin id
    /// Open bins ordered by (level, id): Best Fit walks down from the
    /// fitting threshold. Built on the first bestFit query against this
    /// scope and maintained incrementally afterwards; mutable because
    /// materialization happens inside logically-const queries (the index
    /// is owned by one single-threaded simulation). Only touched for
    /// ordered (scalar) levels.
    mutable std::set<std::pair<Level, BinId>> byLevel;
    mutable bool byLevelBuilt = false;
  };

  void apply(Scope& scope, std::size_t slot, BinId id, const Level* newLevel);
  static void materialize(const Scope& scope)
    requires(R::kOrderedLevels);
  static BinId firstFitIn(const Scope& scope, const Demand& demand);
  static BinId bestFitIn(const Scope& scope, const Demand& demand)
    requires(R::kOrderedLevels);
  static BinId worstFitIn(const Scope& scope, const Demand& demand)
    requires(R::kOrderedLevels);

  Shape shape_;
  Scope global_;
  std::map<int, Scope> byCategory_;
  // Per-bin bookkeeping, indexed by the dense BinId. The global slot of bin
  // b is b itself (bins open in id order); the category slot is recorded.
  std::vector<std::size_t> categorySlot_;
  std::vector<int> category_;
};

// The scalar instantiations keep their PR 3 names (and, for the tree, the
// kClosed sentinel tests poke at); they are explicitly instantiated in
// bin_search.cpp.
class MinLevelTree : public MinLevelTreeT<ScalarResource> {
 public:
  using MinLevelTreeT<ScalarResource>::MinLevelTreeT;

  /// Sentinel level for closed / not-yet-opened slots. fitsCapacity(+inf,
  /// s) is false for every s, so closed slots are invisible to queries.
  static constexpr Size kClosed = std::numeric_limits<Size>::infinity();
};
using BinSearchIndex = BinSearchIndexT<ScalarResource>;

// --- template definitions ---

template <typename R>
void MinLevelTreeT<R>::grow(std::size_t minCap) {
  std::size_t newCap = cap_ == 0 ? 1 : cap_;
  while (newCap < minCap) newCap *= 2;
  std::vector<Level> fresh(2 * newCap, R::closedLevel(shape_));
  for (std::size_t i = 0; i < size_; ++i) {
    fresh[newCap + i] = std::move(tree_[cap_ + i]);
  }
  for (std::size_t i = newCap - 1; i >= 1; --i) {
    Level combined = fresh[2 * i];
    R::assignMin(combined, fresh[2 * i + 1]);
    fresh[i] = std::move(combined);
  }
  tree_ = std::move(fresh);
  cap_ = newCap;
}

template <typename R>
std::size_t MinLevelTreeT<R>::append(const Level& level) {
  if (size_ == cap_) grow(size_ + 1);
  std::size_t slot = size_++;
  update(slot, level);
  return slot;
}

template <typename R>
void MinLevelTreeT<R>::update(std::size_t slot, const Level& level) {
  CDBP_DCHECK(slot < size_, "MinLevelTree::update: slot ", slot,
              " out of range (size ", size_, ")");
  std::size_t pos = cap_ + slot;
  tree_[pos] = level;
  for (pos /= 2; pos >= 1; pos /= 2) {
    Level combined = tree_[2 * pos];
    R::assignMin(combined, tree_[2 * pos + 1]);
    tree_[pos] = std::move(combined);
  }
}

template <typename R>
std::size_t MinLevelTreeT<R>::firstFit(const Demand& demand) const {
  if (size_ == 0 || !R::fits(tree_[1], demand)) return npos;
  if constexpr (R::kOrderedLevels) {
    // Exact prune: the subtree minimum is a leaf value and fits is
    // monotone, so whenever a node's min fits, some leaf below fits —
    // prefer the left child for the leftmost (earliest-opened) slot,
    // exactly like the linear scan's break-on-first-hit. Never backtracks.
    std::size_t pos = 1;
    while (pos < cap_) {
      pos = R::fits(tree_[2 * pos], demand) ? 2 * pos : 2 * pos + 1;
    }
    return pos - cap_;
  } else {
    return searchLeftmost(1, demand);
  }
}

template <typename R>
std::size_t MinLevelTreeT<R>::searchLeftmost(std::size_t pos,
                                             const Demand& demand) const {
  // Sound prune: a node whose min-combined level fails R::fits has no
  // fitting leaf. A passing internal node is only a *maybe* for unordered
  // levels, so descend left-first and fall back to the right subtree.
  // Leaves hold actual bin levels, so the leaf test is exact and the first
  // accepted leaf is the leftmost genuinely fitting bin.
  if (!R::fits(tree_[pos], demand)) return npos;
  if (pos >= cap_) return pos - cap_;
  std::size_t left = searchLeftmost(2 * pos, demand);
  if (left != npos) return left;
  return searchLeftmost(2 * pos + 1, demand);
}

template <typename R>
template <typename Fn>
void MinLevelTreeT<R>::visitFitting(std::size_t pos, const Demand& demand,
                                    Fn&& fn) const {
  if (!R::fits(tree_[pos], demand)) return;
  if (pos >= cap_) {
    fn(pos - cap_, tree_[pos]);
    return;
  }
  visitFitting(2 * pos, demand, fn);
  visitFitting(2 * pos + 1, demand, fn);
}

template <typename R>
std::size_t MinLevelTreeT<R>::minSlot() const
  requires(R::kOrderedLevels)
{
  if (size_ == 0 || R::isClosed(tree_[1])) return npos;
  std::size_t pos = 1;
  while (pos < cap_) {
    // Ties go left: the leftmost slot attaining the global minimum, which
    // is the earliest-opened bin the linear Worst Fit scan would keep.
    pos = tree_[2 * pos] <= tree_[2 * pos + 1] ? 2 * pos : 2 * pos + 1;
  }
  return pos - cap_;
}

template <typename R>
void BinSearchIndexT<R>::onOpen(BinId id, int category) {
  CDBP_DCHECK(static_cast<std::size_t>(id) == category_.size(),
              "BinSearchIndex::onOpen: ids must arrive densely, got ", id,
              " expected ", category_.size());
  Level zero = R::zeroLevel(shape_);
  std::size_t globalSlot = global_.tree.append(zero);
  CDBP_DCHECK(globalSlot == static_cast<std::size_t>(id),
              "BinSearchIndex: global slot ", globalSlot,
              " diverged from bin id ", id);
  global_.slotToBin.push_back(id);
  Scope& cat = byCategory_.try_emplace(category, shape_).first->second;
  std::size_t catSlot = cat.tree.append(zero);
  cat.slotToBin.push_back(id);
  categorySlot_.push_back(catSlot);
  category_.push_back(category);
  if constexpr (R::kOrderedLevels) {
    if (global_.byLevelBuilt) global_.byLevel.insert({zero, id});
    if (cat.byLevelBuilt) cat.byLevel.insert({zero, id});
  }
}

template <typename R>
void BinSearchIndexT<R>::apply(Scope& scope, std::size_t slot, BinId id,
                               const Level* newLevel) {
  if constexpr (R::kOrderedLevels) {
    if (scope.byLevelBuilt) {
      const Level& oldLevel = scope.tree.levelAt(slot);
      if (!R::isClosed(oldLevel)) scope.byLevel.erase({oldLevel, id});
      if (newLevel != nullptr) scope.byLevel.insert({*newLevel, id});
    }
  }
  if (newLevel != nullptr) {
    scope.tree.update(slot, *newLevel);
  } else {
    scope.tree.close(slot);
  }
}

template <typename R>
void BinSearchIndexT<R>::onLevelChange(BinId id, const Level& newLevel) {
  std::size_t b = static_cast<std::size_t>(id);
  CDBP_DCHECK(b < category_.size(),
              "BinSearchIndex::onLevelChange: unknown bin ", id);
  apply(global_, b, id, &newLevel);
  apply(byCategory_.at(category_[b]), categorySlot_[b], id, &newLevel);
}

template <typename R>
void BinSearchIndexT<R>::onClose(BinId id) {
  std::size_t b = static_cast<std::size_t>(id);
  CDBP_DCHECK(b < category_.size(), "BinSearchIndex::onClose: unknown bin ",
              id);
  apply(global_, b, id, nullptr);
  apply(byCategory_.at(category_[b]), categorySlot_[b], id, nullptr);
}

template <typename R>
void BinSearchIndexT<R>::materialize(const Scope& scope)
  requires(R::kOrderedLevels)
{
  for (std::size_t slot = 0; slot < scope.tree.size(); ++slot) {
    const Level& level = scope.tree.levelAt(slot);
    if (!R::isClosed(level)) {
      scope.byLevel.insert({level, scope.slotToBin[slot]});
    }
  }
  scope.byLevelBuilt = true;
}

template <typename R>
BinId BinSearchIndexT<R>::firstFitIn(const Scope& scope,
                                     const Demand& demand) {
  std::size_t slot = scope.tree.firstFit(demand);
  return slot == MinLevelTreeT<R>::npos ? kNewBin : scope.slotToBin[slot];
}

template <typename R>
BinId BinSearchIndexT<R>::bestFitIn(const Scope& scope, const Demand& demand)
  requires(R::kOrderedLevels)
{
  if (!scope.byLevelBuilt) materialize(scope);
  const auto& byLevel = scope.byLevel;
  auto it = byLevel.upper_bound(
      {fittingLevelUpperBound(demand), std::numeric_limits<BinId>::max()});
  while (it != byLevel.begin()) {
    --it;
    if (fitsCapacity(it->first, demand)) {
      // it->first is the maximum fitting level (fitsCapacity is monotone
      // decreasing in level); take the earliest-opened bin at that level.
      auto first = byLevel.lower_bound(
          {it->first, std::numeric_limits<BinId>::min()});
      return first->second;
    }
    // This level sits in the sub-tolerance window between the true cutoff
    // and the conservative bound; skip its whole run of bins and keep
    // seeking down. The window is ~1e-12 wide, so this loop effectively
    // never repeats in practice.
    it = byLevel.lower_bound({it->first, std::numeric_limits<BinId>::min()});
  }
  return kNewBin;
}

template <typename R>
BinId BinSearchIndexT<R>::worstFitIn(const Scope& scope, const Demand& demand)
  requires(R::kOrderedLevels)
{
  std::size_t slot = scope.tree.minSlot();
  if (slot == MinLevelTreeT<R>::npos) return kNewBin;
  // The minimum-level bin fits iff any bin does (monotone fitsCapacity),
  // and it is exactly the bin the linear Worst Fit scan selects.
  if (!fitsCapacity(scope.tree.levelAt(slot), demand)) return kNewBin;
  return scope.slotToBin[slot];
}

template <typename R>
BinId BinSearchIndexT<R>::firstFitIn(int category, const Demand& demand) const {
  auto it = byCategory_.find(category);
  return it == byCategory_.end() ? kNewBin : firstFitIn(it->second, demand);
}

template <typename R>
BinId BinSearchIndexT<R>::bestFitIn(int category, const Demand& demand) const
  requires(R::kOrderedLevels)
{
  auto it = byCategory_.find(category);
  return it == byCategory_.end() ? kNewBin : bestFitIn(it->second, demand);
}

template <typename R>
BinId BinSearchIndexT<R>::worstFitIn(int category, const Demand& demand) const
  requires(R::kOrderedLevels)
{
  auto it = byCategory_.find(category);
  return it == byCategory_.end() ? kNewBin : worstFitIn(it->second, demand);
}

// The hot scalar path is compiled once in bin_search.cpp; other resource
// models (VectorResource, IntervalResource) instantiate lazily in the TUs
// that use them.
extern template class MinLevelTreeT<ScalarResource>;
extern template class BinSearchIndexT<ScalarResource>;

}  // namespace cdbp
