#include "sim/bin_manager.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdbp {

const std::vector<BinId>& BinManager::openBins(int category) const {
  static const std::vector<BinId> kEmpty;
  auto it = openByCategory_.find(category);
  return it == openByCategory_.end() ? kEmpty : it->second;
}

BinId BinManager::openBin(int category, Time now) {
  BinId id = static_cast<BinId>(bins_.size());
  bins_.push_back({id, category, 0.0, 0, now, true});
  open_.push_back(id);
  openByCategory_[category].push_back(id);
  return id;
}

void BinManager::addItem(BinId id, Size size) {
  BinInfo& bin = bins_[static_cast<std::size_t>(id)];
  if (!bin.open) throw std::logic_error("BinManager::addItem: bin is closed");
  bin.level += size;
  ++bin.itemCount;
}

bool BinManager::removeItem(BinId id, Size size) {
  BinInfo& bin = bins_[static_cast<std::size_t>(id)];
  if (!bin.open || bin.itemCount == 0) {
    throw std::logic_error("BinManager::removeItem: bin is not holding items");
  }
  bin.level -= size;
  --bin.itemCount;
  if (bin.itemCount > 0) return false;
  bin.level = 0;  // flush accumulated floating-point residue
  bin.open = false;
  open_.erase(std::find(open_.begin(), open_.end(), id));
  auto& cat = openByCategory_[bin.category];
  cat.erase(std::find(cat.begin(), cat.end(), id));
  return true;
}

}  // namespace cdbp
