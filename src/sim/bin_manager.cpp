// Explicit instantiation of the scalar bin manager (declared extern in the
// header) so the hot scalar path is compiled exactly once. Other resource
// models instantiate lazily from the header in the TUs that use them.
#include "sim/bin_manager.hpp"

namespace cdbp {

template class BasicBinManager<ScalarResource>;

}  // namespace cdbp
