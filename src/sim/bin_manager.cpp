#include "sim/bin_manager.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/check.hpp"

namespace cdbp {

const std::vector<BinId>& BinManager::openBins(int category) const {
  static const std::vector<BinId> kEmpty;
  auto it = openByCategory_.find(category);
  return it == openByCategory_.end() ? kEmpty : it->second;
}

BinId BinManager::openBin(int category, Time now) {
  BinId id = static_cast<BinId>(bins_.size());
  bins_.push_back({id, category, 0.0, 0, now, true});
  open_.push_back(id);
  openByCategory_[category].push_back(id);
  if (indexed_) index_.onOpen(id, category);
  CDBP_TELEM_COUNT("sim.bins_opened", 1);
  CDBP_TELEM_GAUGE_SET("sim.open_bins", open_.size());
  return id;
}

void BinManager::addItem(BinId id, Size size) {
  CDBP_DCHECK(id >= 0 && static_cast<std::size_t>(id) < bins_.size(),
              "addItem: bin id ", id, " out of range");
  BinInfo& bin = bins_[static_cast<std::size_t>(id)];
  if (!bin.open) throw std::logic_error("BinManager::addItem: bin is closed");
  CDBP_DCHECK(fitsCapacity(bin.level, size), "addItem: bin ", id,
              " at level ", bin.level, " cannot hold size ", size);
  bin.level += size;
  ++bin.itemCount;
  if (indexed_) index_.onLevelChange(id, bin.level);
}

bool BinManager::removeItem(BinId id, Size size) {
  CDBP_DCHECK(id >= 0 && static_cast<std::size_t>(id) < bins_.size(),
              "removeItem: bin id ", id, " out of range");
  BinInfo& bin = bins_[static_cast<std::size_t>(id)];
  if (!bin.open || bin.itemCount == 0) {
    throw std::logic_error("BinManager::removeItem: bin is not holding items");
  }
  CDBP_DCHECK(leq(size, bin.level), "removeItem: bin ", id, " at level ",
              bin.level, " cannot release size ", size,
              " (level would go negative)");
  bin.level -= size;
  --bin.itemCount;
  if (bin.itemCount > 0) {
    if (indexed_) index_.onLevelChange(id, bin.level);
    return false;
  }
  bin.level = 0;  // flush accumulated floating-point residue
  bin.open = false;
  if (indexed_) index_.onClose(id);
  auto openIt = std::find(open_.begin(), open_.end(), id);
  CDBP_DCHECK(openIt != open_.end(), "removeItem: bin ", id,
              " missing from the open list");
  open_.erase(openIt);
  auto& cat = openByCategory_[bin.category];
  auto catIt = std::find(cat.begin(), cat.end(), id);
  CDBP_DCHECK(catIt != cat.end(), "removeItem: bin ", id,
              " missing from category ", bin.category, "'s open list");
  cat.erase(catIt);
  CDBP_TELEM_COUNT("sim.bins_closed", 1);
  CDBP_TELEM_GAUGE_SET("sim.open_bins", open_.size());
  return true;
}

}  // namespace cdbp
