// BinManager: the open-bin state an online packing policy sees.
//
// Bins are opened when they receive their first item and closed — forever —
// when their last active item departs (paper §5). Every open bin carries a
// policy-defined integer category: classification policies (classify-by-
// departure-time, classify-by-duration, Hybrid First Fit) only co-locate
// items of the same category, so the manager maintains per-category open
// lists in opening order.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "core/epsilon.hpp"
#include "core/item.hpp"
#include "core/types.hpp"
#include "sim/bin_search.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

class BinManager {
 public:
  /// `indexed` selects the placement engine: when true (the default) the
  /// manager maintains a BinSearchIndex answering first/best/worst-fit
  /// queries in O(log B); when false it skips all index maintenance and
  /// PlacementView falls back to the linear open-list scans — the retained
  /// reference path differential tests pin the index against.
  explicit BinManager(bool indexed = true) : indexed_(indexed) {}

  struct BinInfo {
    BinId id = 0;
    int category = 0;
    Size level = 0;           ///< total size of items currently in the bin
    std::size_t itemCount = 0;  ///< number of items currently in the bin
    Time openedAt = 0;
    bool open = false;
  };

  /// All open bins in opening order.
  const std::vector<BinId>& openBins() const { return open_; }

  /// Open bins of one category in opening order (empty list if none).
  const std::vector<BinId>& openBins(int category) const;

  /// Metadata of a bin (open or closed).
  const BinInfo& info(BinId id) const { return bins_[static_cast<std::size_t>(id)]; }

  /// Whether adding `size` keeps the bin within the unit capacity. Because
  /// all already-placed items arrived no later than now, the current level
  /// is the maximum future level, so this single check certifies
  /// feasibility over the incoming item's whole stay.
  ///
  /// Counts toward `sim.fit_checks`: this is the policy-visible probe (via
  /// PlacementView::fits). Infrastructure re-checks must use wouldFit so
  /// the counter measures policy work only.
  bool fits(BinId id, Size size) const {
    CDBP_TELEM_COUNT("sim.fit_checks", 1);
    return wouldFit(id, size);
  }

  /// Uncounted feasibility check for infrastructure use (the simulator's
  /// post-decision validation). Identical predicate to fits().
  bool wouldFit(BinId id, Size size) const {
    return info(id).open && fitsCapacity(info(id).level, size);
  }

  /// True when the sublinear placement index is maintained.
  bool indexed() const { return indexed_; }

  /// The placement index; only valid when indexed() is true.
  const BinSearchIndex& index() const { return index_; }

  /// Total bins ever opened.
  std::size_t binsOpened() const { return bins_.size(); }

  /// Currently open bin count.
  std::size_t openCount() const { return open_.size(); }

  // --- Mutation interface (driven by the Simulator) ---

  /// Opens a new bin with the given category; returns its global id.
  BinId openBin(int category, Time now);

  /// Adds an item's size to a bin.
  void addItem(BinId id, Size size);

  /// Removes an item's size; closes the bin when it empties. Returns true
  /// when the bin closed.
  bool removeItem(BinId id, Size size);

 private:
  std::vector<BinInfo> bins_;
  std::vector<BinId> open_;
  std::map<int, std::vector<BinId>> openByCategory_;
  bool indexed_ = true;
  BinSearchIndex index_;
};

}  // namespace cdbp
