// BasicBinManager: the open-bin state a packing policy sees, generic over
// a Resource model (sim/resource.hpp documents the concept).
//
// Bins are opened when they receive their first item and closed — forever —
// when their last active item departs (paper §5). Every open bin carries a
// policy-defined integer category: classification policies (classify-by-
// departure-time, classify-by-duration, Hybrid First Fit) only co-locate
// items of the same category, so the manager maintains per-category open
// lists in opening order.
//
// One manager serves every packing variant:
//   BasicBinManager<ScalarResource>   (alias BinManager) — the scalar
//       simulator and the 7 online policies, unchanged from PR 3.
//   BasicBinManager<VectorResource>   — the multidim module.
//   BasicBinManager<IntervalResource> — the offline First Fit passes
//       (append-only: bins never close, linear engine only).
//
// Contract violations (mutating a closed bin, releasing from an empty
// bin) are programming errors, not recoverable conditions: they abort via
// CDBP_CHECK in every build mode.
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <vector>

#include "core/epsilon.hpp"
#include "core/types.hpp"
#include "sim/bin_search.hpp"
#include "sim/resource.hpp"
#include "telemetry/telemetry.hpp"
#include "util/check.hpp"

namespace cdbp {

/// Which placement machinery backs the PlacementView queries.
enum class PlacementEngine {
  /// Sublinear capacity-indexed search (bin_search.hpp); the default.
  kIndexed,
  /// The original linear open-list scans, retained as the reference the
  /// differential tests pin kIndexed against. Skips all index maintenance.
  kLinearScan,
  /// The epoch-pipelined multi-worker engine (sim/sharded.hpp): the bin
  /// pool partitions by the policy's category key and each partition runs
  /// on its own worker over an indexed BinManager. Scalar simulateOnline /
  /// simulateStream only; the multidim and flexible simulators reject it.
  kSharded,
};

template <typename R>
class BasicBinManager {
 public:
  using Resource = R;
  using Level = typename R::Level;
  using Demand = typename R::Demand;
  using Shape = typename R::Shape;

  /// `indexed` selects the placement engine: when true (the default) the
  /// manager maintains a BinSearchIndexT answering placement queries in
  /// O(log B); when false it skips all index maintenance and
  /// BasicPlacementView falls back to the linear open-list scans — the
  /// retained reference path differential tests pin the index against.
  /// Non-indexable resource models (IntervalResource) must pass false.
  /// `shape` carries the model's per-manager configuration (the dimension
  /// count for VectorResource; empty for the scalar model).
  explicit BasicBinManager(bool indexed = true, Shape shape = {})
      : shape_(shape), indexed_(indexed), index_(shape) {
    if constexpr (!R::kIndexable) {
      CDBP_CHECK(!indexed,
                 "BinManager: this resource model supports only the linear "
                 "engine (pass indexed = false)");
    }
  }

  struct BinInfo {
    BinId id = 0;
    int category = 0;
    Level level{};              ///< total demand currently in the bin
    std::size_t itemCount = 0;  ///< number of items currently in the bin
    Time openedAt = 0;
    bool open = false;
  };

  /// All open bins in opening order.
  const std::vector<BinId>& openBins() const { return open_; }

  /// Open bins of one category in opening order (empty list if none).
  const std::vector<BinId>& openBins(int category) const {
    static const std::vector<BinId> kEmpty;
    auto it = openByCategory_.find(category);
    return it == openByCategory_.end() ? kEmpty : it->second;
  }

  /// Metadata of a bin (open or closed).
  const BinInfo& info(BinId id) const {
    return bins_[static_cast<std::size_t>(id)];
  }

  /// Whether adding `demand` keeps the bin within capacity (R::fits).
  /// Under the scalar/vector online model, all already-placed items
  /// arrived no later than now, so the current level is the maximum future
  /// level and this single check certifies feasibility over the incoming
  /// item's whole stay; the interval model folds the stay into the
  /// predicate itself.
  ///
  /// Counts toward `sim.fit_checks`: this is the policy-visible probe (via
  /// BasicPlacementView::fits). Infrastructure re-checks must use wouldFit
  /// so the counter measures policy work only.
  bool fits(BinId id, const Demand& demand) const {
    CDBP_TELEM_COUNT("sim.fit_checks", 1);
    return wouldFit(id, demand);
  }

  /// Uncounted feasibility check for infrastructure use (the simulator's
  /// post-decision validation). Identical predicate to fits().
  bool wouldFit(BinId id, const Demand& demand) const {
    return info(id).open && R::fits(info(id).level, demand);
  }

  /// True when the sublinear placement index is maintained.
  bool indexed() const { return indexed_; }

  /// The placement index; only valid when indexed() is true.
  const BinSearchIndexT<R>& index() const { return index_; }

  /// The resource model's per-manager configuration.
  const Shape& shape() const { return shape_; }

  /// Total bins ever opened.
  std::size_t binsOpened() const { return bins_.size(); }

  /// Currently open bin count.
  std::size_t openCount() const { return open_.size(); }

  // --- Mutation interface (driven by the simulators) ---

  /// Opens a new bin with the given category; returns its global id.
  BinId openBin(int category, Time now) {
    BinId id = static_cast<BinId>(bins_.size());
    bins_.push_back(BinInfo{id, category, R::zeroLevel(shape_), 0, now, true});
    open_.push_back(id);
    openByCategory_[category].push_back(id);
    if constexpr (R::kIndexable) {
      if (indexed_) index_.onOpen(id, category);
    }
    CDBP_TELEM_COUNT("sim.bins_opened", 1);
    CDBP_TELEM_GAUGE_SET("sim.open_bins", open_.size());
    return id;
  }

  /// Adds an item's demand to a bin. The bin must be open (CDBP_CHECK)
  /// and the demand must fit (CDBP_DCHECK — the simulators validate
  /// placements with wouldFit before committing).
  void addItem(BinId id, const Demand& demand) {
    CDBP_DCHECK(id >= 0 && static_cast<std::size_t>(id) < bins_.size(),
                "addItem: bin id ", id, " out of range");
    BinInfo& bin = bins_[static_cast<std::size_t>(id)];
    CDBP_CHECK(bin.open, "BinManager::addItem: bin ", id, " is closed");
    CDBP_DCHECK(R::fits(bin.level, demand), "addItem: bin ", id,
                " cannot hold the demand within capacity");
    R::add(bin.level, demand);
    ++bin.itemCount;
    if constexpr (R::kIndexable) {
      if (indexed_) index_.onLevelChange(id, bin.level);
    }
  }

  /// Removes an item's demand; closes the bin when it empties. Returns
  /// true when the bin closed. The bin must be open and non-empty
  /// (CDBP_CHECK). Unavailable for append-only resource models.
  bool removeItem(BinId id, const Demand& demand) {
    CDBP_DCHECK(id >= 0 && static_cast<std::size_t>(id) < bins_.size(),
                "removeItem: bin id ", id, " out of range");
    BinInfo& bin = bins_[static_cast<std::size_t>(id)];
    CDBP_CHECK(bin.open && bin.itemCount > 0, "BinManager::removeItem: bin ",
               id, " is not holding items");
    CDBP_DCHECK(R::canRelease(bin.level, demand), "removeItem: bin ", id,
                " cannot release the demand (level would go negative)");
    R::subtract(bin.level, demand);
    --bin.itemCount;
    if (bin.itemCount > 0) {
      if constexpr (R::kIndexable) {
        if (indexed_) index_.onLevelChange(id, bin.level);
      }
      return false;
    }
    bin.level = R::zeroLevel(shape_);  // flush floating-point residue
    bin.open = false;
    if constexpr (R::kIndexable) {
      if (indexed_) index_.onClose(id);
    }
    auto openIt = std::find(open_.begin(), open_.end(), id);
    CDBP_DCHECK(openIt != open_.end(), "removeItem: bin ", id,
                " missing from the open list");
    open_.erase(openIt);
    auto& cat = openByCategory_[bin.category];
    auto catIt = std::find(cat.begin(), cat.end(), id);
    CDBP_DCHECK(catIt != cat.end(), "removeItem: bin ", id,
                " missing from category ", bin.category, "'s open list");
    cat.erase(catIt);
    CDBP_TELEM_COUNT("sim.bins_closed", 1);
    CDBP_TELEM_GAUGE_SET("sim.open_bins", open_.size());
    return true;
  }

 private:
  Shape shape_;
  std::vector<BinInfo> bins_;
  std::vector<BinId> open_;
  std::map<int, std::vector<BinId>> openByCategory_;
  bool indexed_ = true;
  BinSearchIndexT<R> index_;
};

/// The scalar instantiation keeps its PR 3 name and constructor shape; it
/// is explicitly instantiated in bin_manager.cpp.
using BinManager = BasicBinManager<ScalarResource>;

extern template class BasicBinManager<ScalarResource>;

}  // namespace cdbp
