#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <stdexcept>

#include "core/epsilon.hpp"

namespace cdbp {

SimResult simulateOnline(const Instance& instance, OnlinePolicy& policy,
                         const SimOptions& options) {
  policy.reset();
  BinManager bins;
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  std::set<int> categories;
  std::size_t maxOpen = 0;

  // Departure queue: (time, item id, bin) ordered by time.
  using Departure = std::pair<Time, ItemId>;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>> departures;

  std::vector<Item> order = instance.sortedByArrival();
  for (const Item& r : order) {
    // Release capacity from every item departing up to (and including) the
    // arrival instant: intervals are half-open, so an item leaving at t
    // does not overlap one arriving at t.
    while (!departures.empty() && departures.top().first <= r.arrival()) {
      ItemId gone = departures.top().second;
      departures.pop();
      bins.removeItem(binOf[gone], instance[gone].size);
    }

    Item announced = r;
    if (options.announce) {
      announced = options.announce(r);
      if (announced.id != r.id || announced.size != r.size ||
          announced.arrival() != r.arrival()) {
        throw std::logic_error(
            "SimOptions::announce may only perturb the departure time");
      }
    }

    PlacementDecision decision = policy.place(bins, announced);
    BinId target = decision.bin;
    if (target == kNewBin) {
      target = bins.openBin(decision.category, r.arrival());
    } else {
      if (!bins.info(target).open) {
        throw std::logic_error(policy.name() + " placed item " +
                               std::to_string(r.id) + " in closed bin " +
                               std::to_string(target));
      }
      if (!bins.fits(target, r.size)) {
        throw std::logic_error(policy.name() + " overfilled bin " +
                               std::to_string(target) + " with item " +
                               std::to_string(r.id));
      }
    }
    if (options.trace) {
      PlacementRecord record;
      record.item = r.id;
      record.time = r.arrival();
      record.bin = target;
      record.openedNewBin = decision.bin == kNewBin;
      record.category = bins.info(target).category;
      // Count excludes the bin just opened for this item, so the field
      // reflects the state the policy decided against.
      record.openBins = bins.openCount() - (decision.bin == kNewBin ? 1 : 0);
      record.binLevelBefore = bins.info(target).level;
      options.trace->record(record);
    }
    bins.addItem(target, r.size);
    binOf[r.id] = target;
    categories.insert(bins.info(target).category);
    departures.emplace(r.departure(), r.id);
    maxOpen = std::max(maxOpen, bins.openCount());
  }

  SimResult result;
  result.packing = Packing(instance, std::move(binOf));
  result.totalUsage = result.packing.totalUsage();
  result.binsOpened = bins.binsOpened();
  result.maxOpenBins = maxOpen;
  result.categoriesUsed = categories.size();
  return result;
}

}  // namespace cdbp
