#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/epsilon.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

namespace {

// Trace rows: items land on their bin's row inside the "placements"
// process.
constexpr int kTracePid = 1;

#if CDBP_TELEMETRY
// Scan cost of one placement = fit() probes the policy issued for it,
// measured as the delta of the global fit-check counter around place().
// The counter is process-wide, so concurrent simulations (the parallel
// sweep harness) would attribute each other's probes; the per-placement
// histogram is therefore only recorded when the delta is plausible for a
// single placement — the aggregate counter stays exact either way.
telemetry::Counter& fitCheckCounter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("sim.fit_checks");
  return c;
}
#endif

}  // namespace

SimResult simulateOnline(const Instance& instance, OnlinePolicy& policy,
                         const SimOptions& options) {
  policy.reset();
  BinManager bins;
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  std::set<int> categories;
  std::size_t maxOpen = 0;

  if (options.chromeTrace) {
    options.chromeTrace->setProcessName(kTracePid,
                                        "cdbp simulation: " + policy.name());
  }

  // Departure queue: (time, item id, bin) ordered by time.
  using Departure = std::pair<Time, ItemId>;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>> departures;

  std::vector<Item> order = instance.sortedByArrival();
  for (const Item& r : order) {
    // Release capacity from every item departing up to (and including) the
    // arrival instant: intervals are half-open, so an item leaving at t
    // does not overlap one arriving at t.
    while (!departures.empty() && departures.top().first <= r.arrival()) {
      Time when = departures.top().first;
      ItemId gone = departures.top().second;
      departures.pop();
      bins.removeItem(binOf[gone], instance[gone].size);
      CDBP_TELEM_COUNT("sim.events_processed", 1);
      if (options.chromeTrace) {
        options.chromeTrace->addCounter(
            "open_bins", when * options.traceTimeScale, kTracePid,
            static_cast<double>(bins.openCount()));
      }
    }

    Item announced = r;
    if (options.announce) {
      announced = options.announce(r);
      if (announced.id != r.id || announced.size != r.size ||
          announced.arrival() != r.arrival()) {
        throw std::logic_error(
            "SimOptions::announce may only perturb the departure time");
      }
    }

#if CDBP_TELEMETRY
    std::uint64_t fitChecksBefore = fitCheckCounter().value();
#endif
    PlacementDecision decision = policy.place(bins, announced);
#if CDBP_TELEMETRY
    std::uint64_t scanned = fitCheckCounter().value() - fitChecksBefore;
    if (scanned <= bins.openCount()) {
      CDBP_TELEM_HIST("sim.bins_scanned_per_placement", scanned);
    }
#endif
    BinId target = decision.bin;
    if (target == kNewBin) {
      target = bins.openBin(decision.category, r.arrival());
      CDBP_TELEM_COUNT("sim.placements_new_bin", 1);
    } else {
      CDBP_TELEM_COUNT("sim.placements_existing_bin", 1);
      if (!bins.info(target).open) {
        throw std::logic_error(policy.name() + " placed item " +
                               std::to_string(r.id) + " in closed bin " +
                               std::to_string(target));
      }
      if (!bins.fits(target, r.size)) {
        throw std::logic_error(policy.name() + " overfilled bin " +
                               std::to_string(target) + " with item " +
                               std::to_string(r.id));
      }
    }
    if (options.trace) {
      PlacementRecord record;
      record.item = r.id;
      record.time = r.arrival();
      record.bin = target;
      record.openedNewBin = decision.bin == kNewBin;
      record.category = bins.info(target).category;
      // Count excludes the bin just opened for this item, so the field
      // reflects the state the policy decided against.
      record.openBins = bins.openCount() - (decision.bin == kNewBin ? 1 : 0);
      record.binLevelBefore = bins.info(target).level;
      options.trace->record(record);
    }
    bins.addItem(target, r.size);
    binOf[r.id] = target;
    categories.insert(bins.info(target).category);
    departures.emplace(r.departure(), r.id);
    maxOpen = std::max(maxOpen, bins.openCount());
    CDBP_TELEM_COUNT("sim.events_processed", 1);
    CDBP_TELEM_HIST("sim.item_size_permille", r.size * 1000.0);

    if (options.chromeTrace) {
      std::ostringstream name;
      name << "item " << r.id;
      options.chromeTrace->addComplete(
          name.str(), "item", r.arrival() * options.traceTimeScale,
          r.duration() * options.traceTimeScale, kTracePid,
          static_cast<int>(target),
          {{"size", r.size},
           {"category", static_cast<double>(bins.info(target).category)},
           {"bin_level_after", bins.info(target).level}});
      options.chromeTrace->addCounter("open_bins",
                                      r.arrival() * options.traceTimeScale,
                                      kTracePid,
                                      static_cast<double>(bins.openCount()));
    }
  }

  if (options.chromeTrace) {
    // Drain the queue so the counter series closes at zero and every bin
    // row carries a readable name.
    while (!departures.empty()) {
      Time when = departures.top().first;
      ItemId gone = departures.top().second;
      departures.pop();
      bins.removeItem(binOf[gone], instance[gone].size);
      CDBP_TELEM_COUNT("sim.events_processed", 1);
      options.chromeTrace->addCounter(
          "open_bins", when * options.traceTimeScale, kTracePid,
          static_cast<double>(bins.openCount()));
    }
    for (std::size_t b = 0; b < bins.binsOpened(); ++b) {
      const BinManager::BinInfo& info = bins.info(static_cast<BinId>(b));
      std::ostringstream name;
      name << "bin " << info.id << " (cat " << info.category << ")";
      options.chromeTrace->setThreadName(kTracePid, static_cast<int>(info.id),
                                         name.str());
    }
  }

  SimResult result;
  result.packing = Packing(instance, std::move(binOf));
  result.totalUsage = result.packing.totalUsage();
  result.binsOpened = bins.binsOpened();
  result.maxOpenBins = maxOpen;
  result.categoriesUsed = categories.size();
  return result;
}

}  // namespace cdbp
