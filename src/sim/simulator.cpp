#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/epsilon.hpp"
#include "sim/placement_view.hpp"
#include "sim/sharded.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

namespace {

// Trace rows: items land on their bin's row inside the "placements"
// process.
constexpr int kTracePid = 1;

// One flat, pre-sorted timeline replaces the departure priority queue: all
// 2n arrival/departure records live in one contiguous array, sorted once
// by (time, kind, item). Departures order before arrivals at the same
// instant (half-open intervals: an item leaving at t does not overlap one
// arriving at t), and simultaneous departures drain in item-id order —
// exactly the (time, id) pop order of the old heap, so bin levels evolve
// through the identical sequence of floating-point updates.
enum : std::uint8_t { kDeparture = 0, kArrival = 1 };

struct TimelineEvent {
  Time time;
  ItemId item;
  std::uint8_t kind;
};

bool timelineBefore(const TimelineEvent& a, const TimelineEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.item < b.item;
}

#if CDBP_TELEMETRY
// Scan cost of one placement = fit() probes the policy issued for it,
// measured as the delta of the global fit-check counter around place().
// The counter is process-wide, so concurrent simulations (the parallel
// sweep harness) would attribute each other's probes; the per-placement
// histogram is therefore only recorded when the delta is plausible for a
// single placement — the aggregate counter stays exact either way.
telemetry::Counter& fitCheckCounter() {
  static telemetry::Counter& c =
      telemetry::Registry::global().counter("sim.fit_checks");
  return c;
}
#endif

}  // namespace

SimResult simulateOnline(const Instance& instance, OnlinePolicy& policy,
                         const SimOptions& options) {
  if (options.engine == PlacementEngine::kSharded) {
    if (options.trace != nullptr || options.chromeTrace != nullptr) {
      throw std::invalid_argument(
          "simulateOnline: the sharded engine does not produce decision or "
          "chrome traces; use kIndexed for trace runs");
    }
    ShardedOptions shardedOptions;
    shardedOptions.threads = options.shardedThreads;
    shardedOptions.announce = options.announce;
    shardedOptions.capturePlacements = true;
    ShardedSimulator sim(policy, shardedOptions);
    // sortedByArrival() orders by (arrival, id) — the batch timeline's
    // arrival order — with the instance's own (dense) item ids, so the
    // reconstructed binOf indexes straight into the Packing.
    for (const Item& r : instance.sortedByArrival()) sim.feed(r);
    ShardedResult sharded = sim.finish();
    if (sharded.binOf.size() < instance.size()) {
      sharded.binOf.resize(instance.size(), kUnassigned);
    }
    SimResult result;
    result.packing = Packing(instance, std::move(sharded.binOf));
    result.totalUsage = sharded.totalUsage;
    result.binsOpened = sharded.binsOpened;
    result.maxOpenBins = sharded.maxOpenBins;
    result.categoriesUsed = sharded.categoriesUsed;
    return result;
  }

  policy.reset();
  BinManager bins(options.engine == PlacementEngine::kIndexed);
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  std::set<int> categories;
  std::size_t maxOpen = 0;

  if (options.chromeTrace) {
    options.chromeTrace->setProcessName(kTracePid,
                                        "cdbp simulation: " + policy.name());
  }

  // Build the timeline. An item's departure sorts strictly after its
  // arrival (durations are positive), so a departure record is always
  // scanned after its item was placed.
  std::vector<TimelineEvent> events;
  events.reserve(2 * instance.size());
  for (const Item& r : instance.items()) {
    events.push_back({r.arrival(), r.id, kArrival});
    events.push_back({r.departure(), r.id, kDeparture});
  }
  std::sort(events.begin(), events.end(), timelineBefore);

  auto processDeparture = [&](const TimelineEvent& e) {
    bins.removeItem(binOf[e.item], instance[e.item].size);
    CDBP_TELEM_COUNT("sim.events_processed", 1);
    if (options.chromeTrace) {
      options.chromeTrace->addCounter("open_bins",
                                      e.time * options.traceTimeScale,
                                      kTracePid,
                                      static_cast<double>(bins.openCount()));
    }
  };

  std::size_t arrivalsLeft = instance.size();
  std::size_t cursor = 0;
  for (; cursor < events.size() && arrivalsLeft > 0; ++cursor) {
    const TimelineEvent& e = events[cursor];
    if (e.kind == kDeparture) {
      // Batched draining: consecutive departure records release capacity
      // back to back with no per-item heap traffic.
      processDeparture(e);
      continue;
    }
    const Item& r = instance[e.item];
    --arrivalsLeft;

    Item announced = r;
    if (options.announce) {
      announced = options.announce(r);
      if (announced.id != r.id || announced.size != r.size ||
          announced.arrival() != r.arrival()) {
        throw std::logic_error(
            "SimOptions::announce may only perturb the departure time");
      }
    }

    PlacementView view(bins, r.arrival());
#if CDBP_TELEMETRY
    std::uint64_t fitChecksBefore = fitCheckCounter().value();
#endif
    PlacementDecision decision = policy.place(view, announced);
#if CDBP_TELEMETRY
    std::uint64_t scanned = fitCheckCounter().value() - fitChecksBefore;
    if (scanned <= bins.openCount()) {
      CDBP_TELEM_HIST("sim.bins_scanned_per_placement", scanned);
    }
#endif
    BinId target = decision.bin;
    if (target == kNewBin) {
      target = bins.openBin(decision.category, r.arrival());
      CDBP_TELEM_COUNT("sim.placements_new_bin", 1);
    } else {
      CDBP_TELEM_COUNT("sim.placements_existing_bin", 1);
      if (!bins.info(target).open) {
        throw std::logic_error(policy.name() + " placed item " +
                               std::to_string(r.id) + " in closed bin " +
                               std::to_string(target));
      }
      // Validation re-check: wouldFit is the uncounted twin of fits(), so
      // sim.fit_checks measures policy-issued queries only.
      if (!bins.wouldFit(target, r.size)) {
        throw std::logic_error(policy.name() + " overfilled bin " +
                               std::to_string(target) + " with item " +
                               std::to_string(r.id));
      }
    }
    if (options.trace) {
      PlacementRecord record;
      record.item = r.id;
      record.time = r.arrival();
      record.bin = target;
      record.openedNewBin = decision.bin == kNewBin;
      record.category = bins.info(target).category;
      // Count excludes the bin just opened for this item, so the field
      // reflects the state the policy decided against.
      record.openBins = bins.openCount() - (decision.bin == kNewBin ? 1 : 0);
      record.binLevelBefore = bins.info(target).level;
      options.trace->record(record);
    }
    bins.addItem(target, r.size);
    binOf[r.id] = target;
    categories.insert(bins.info(target).category);
    maxOpen = std::max(maxOpen, bins.openCount());
    CDBP_TELEM_COUNT("sim.events_processed", 1);
    CDBP_TELEM_HIST("sim.item_size_permille", r.size * 1000.0);

    if (options.chromeTrace) {
      std::ostringstream name;
      name << "item " << r.id;
      options.chromeTrace->addComplete(
          name.str(), "item", r.arrival() * options.traceTimeScale,
          r.duration() * options.traceTimeScale, kTracePid,
          static_cast<int>(target),
          {{"size", r.size},
           {"category", static_cast<double>(bins.info(target).category)},
           {"bin_level_after", bins.info(target).level}});
      options.chromeTrace->addCounter("open_bins",
                                      r.arrival() * options.traceTimeScale,
                                      kTracePid,
                                      static_cast<double>(bins.openCount()));
    }
  }
  // Departure records after the last arrival cannot influence any
  // placement; they are drained only when a timeline artifact wants the
  // open-bin counter series to close at zero.
  if (options.chromeTrace) {
    for (; cursor < events.size(); ++cursor) {
      processDeparture(events[cursor]);
    }
    for (std::size_t b = 0; b < bins.binsOpened(); ++b) {
      const BinManager::BinInfo& info = bins.info(static_cast<BinId>(b));
      std::ostringstream name;
      name << "bin " << info.id << " (cat " << info.category << ")";
      options.chromeTrace->setThreadName(kTracePid, static_cast<int>(info.id),
                                         name.str());
    }
  }

  SimResult result;
  result.packing = Packing(instance, std::move(binOf));
  result.totalUsage = result.packing.totalUsage();
  result.binsOpened = bins.binsOpened();
  result.maxOpenBins = maxOpen;
  result.categoriesUsed = categories.size();
  return result;
}

}  // namespace cdbp
