// The Resource concept: what the placement substrate is generic over.
//
// One substrate — BasicBinManager / BinSearchIndexT / BasicPlacementView —
// serves every packing variant in this repo. Each variant supplies a
// resource model, a stateless trait struct describing how bin "levels"
// combine with item "demands":
//
//   ScalarResource    Level = Size (double), Demand = Size. The paper's
//                     MinUsageTime DBP model; backs the 7 online policies
//                     and the simulator (sim/resource.hpp, this file).
//   VectorResource    Level = Resources, Demand = Resources. Vector bin
//                     packing for the multidim module; fits iff every
//                     dimension fits (multidim/resources.hpp).
//   IntervalResource  Level = BinTimeline, Demand = Item. Whole-interval
//                     feasibility for the offline algorithms, which place
//                     items with full knowledge of their active intervals
//                     (offline/interval_resource.hpp).
//
// Required members of a resource model R:
//
//   using Level;   // a bin's occupancy state
//   using Demand;  // what an item asks of a bin
//   struct Shape;  // per-manager static configuration (e.g. dimension
//                  // count); default-constructible, copyable
//
//   static constexpr bool kIndexable;      // MinLevelTreeT<R> supported:
//                                          // levels admit a componentwise
//                                          // min that soundly under-
//                                          // approximates every leaf
//   static constexpr bool kOrderedLevels;  // levels are totally ordered
//                                          // Sizes: Best/Worst Fit exist
//
//   static Level zeroLevel(const Shape&);    // freshly opened bin
//   static Level closedLevel(const Shape&);  // sentinel no demand fits
//   static bool isClosed(const Level&);      // recognizes the sentinel
//   static bool fits(const Level&, const Demand&);  // THE predicate: same
//       // doubles, same tolerance as the linear reference scan. On an
//       // internal tree node (a componentwise min of leaf levels) it is a
//       // sound prune — "no leaf below can fit" when false; at a leaf it
//       // is exact.
//   static void assignMin(Level&, const Level&);  // componentwise min,
//       // used to re-sift tournament tree nodes (kIndexable only)
//   static void add(Level&, const Demand&);       // place an item
//   static void subtract(Level&, const Demand&);  // remove an item
//       // (models whose bins never shrink mark it unavailable)
//   static bool canRelease(const Level&, const Demand&);  // DCHECK guard
//       // for subtract: the level stays non-negative up to tolerance
//
// Bit-identicality contract: every indexed query answers with the exact
// bin the linear open-list scan would pick, because both use R::fits on
// the same Level doubles and the tree descent only prunes subtrees whose
// min-combined level already fails the predicate (DESIGN.md §9.1, §10.2).
#pragma once

#include <limits>

#include "core/epsilon.hpp"
#include "core/types.hpp"

namespace cdbp {

/// The paper's model: one scalar size per item, unit-capacity bins.
struct ScalarResource {
  using Level = Size;
  using Demand = Size;
  struct Shape {};  // no per-manager configuration

  static constexpr bool kIndexable = true;
  static constexpr bool kOrderedLevels = true;

  static Level zeroLevel(const Shape&) { return 0.0; }
  static Level closedLevel(const Shape&) {
    return std::numeric_limits<Size>::infinity();
  }
  static bool isClosed(const Level& level) {
    return level == std::numeric_limits<Size>::infinity();
  }
  /// The scalar predicate is exact on tree minima, not merely sound:
  /// fitsCapacity is monotone in the level, so a subtree's min fits iff
  /// some leaf fits — scalar descents never backtrack.
  static bool fits(const Level& level, const Demand& demand) {
    return fitsCapacity(level, demand);
  }
  static void assignMin(Level& into, const Level& other) {
    if (other < into) into = other;
  }
  static void add(Level& level, const Demand& demand) { level += demand; }
  static void subtract(Level& level, const Demand& demand) { level -= demand; }
  static bool canRelease(const Level& level, const Demand& demand) {
    return leq(demand, level);
  }
};

}  // namespace cdbp
