// Decision tracing for the online simulator: an optional per-item record
// of what the policy saw and chose, exportable as CSV for debugging and
// offline analysis of policy behavior.
#pragma once

#include <iosfwd>
#include <vector>

#include "core/types.hpp"

namespace cdbp {

struct PlacementRecord {
  ItemId item = 0;
  Time time = 0;            ///< arrival instant of the decision
  BinId bin = 0;            ///< chosen bin (global id)
  bool openedNewBin = false;
  int category = 0;         ///< category of the chosen bin
  std::size_t openBins = 0;   ///< open bins at decision time (before placing)
  double binLevelBefore = 0;  ///< level of the chosen bin before placing
};

class DecisionTrace {
 public:
  void record(PlacementRecord record) { records_.push_back(record); }

  const std::vector<PlacementRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Fraction of decisions that opened a new bin.
  double newBinRate() const;

  /// Mean open-bin count observed across decisions (the scan-cost proxy
  /// for First Fit style policies).
  double meanOpenBins() const;

  /// CSV export: item,time,bin,new,category,openBins,levelBefore.
  void writeCsv(std::ostream& out) const;

  void clear() { records_.clear(); }

 private:
  std::vector<PlacementRecord> records_;
};

}  // namespace cdbp
