// Packing diagnostics beyond the headline usage-time figure: utilization,
// open-bin statistics, busy-period (server rental) distributions and
// fragmentation measures. Used by the examples and benches for reporting.
#pragma once

#include <vector>

#include "core/packing.hpp"
#include "util/stats.hpp"

namespace cdbp {

struct PackingMetrics {
  Time totalUsage = 0;
  std::size_t binsUsed = 0;
  std::size_t maxConcurrentBins = 0;

  /// Time-averaged number of open bins over the instance span.
  double avgOpenBins = 0;

  /// demand / usage: fraction of paid bin-time actually holding items.
  double utilization = 0;

  /// usage - demand: paid-for but idle capacity-time ("fragmentation").
  double wastedTime = 0;

  /// Length distribution of individual busy periods (= server rentals).
  SummaryStats rentalLengths;

  /// Per-bin usage distribution.
  SummaryStats binUsages;
};

PackingMetrics computeMetrics(const Packing& packing);

/// Samples the open-bin count on a uniform grid over the instance span
/// (for plotting). Returns (time, openBins) pairs; empty for empty
/// instances.
std::vector<std::pair<Time, double>> openBinTimeSeries(const Packing& packing,
                                                       std::size_t samples);

}  // namespace cdbp
