// runMany: the parallel experiment runner.
//
// Every sweep-style evaluation in this repo is the same shape — a grid of
// (instance generator × policy spec × seed) cells, each an independent
// simulateOnline call. runMany fans that grid over the shared ThreadPool
// and returns one RunResult per cell with the guarantees the bench mains
// rely on:
//
//  * Determinism: results arrive in grid order (instance-major, then
//    policy, then seed) regardless of thread count or scheduling, and each
//    cell's outcome depends only on (generator, spec, seed) — policies are
//    constructed fresh inside the cell from their spec string, so no state
//    leaks between cells. The same grid run with --threads 1 and
//    --threads N is element-wise identical.
//
//  * Telemetry isolation: everything attributable to a run — the policy
//    instance, its DecisionTrace, the SimOptions — is private to the cell.
//    The global metrics Registry is process-wide by design (relaxed-atomic
//    counters are cheap precisely because they are shared), so registry
//    counters aggregate across concurrent cells; read them as fleet
//    totals, not per-run numbers (DESIGN.md §9.3).
//
//  * Shared inputs: each (instance, seed) pair is generated once and
//    shared read-only by all policy cells, as is its Proposition 3 lower
//    bound — the expensive parts of a sweep are not recomputed per policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace cdbp {

/// One policy axis entry: a spec string, optionally overridden by an
/// explicit factory for policies the spec grammar cannot express (custom
/// test policies, preconfigured instances). The factory, when set, must be
/// callable concurrently — it is invoked once per cell.
struct RunPolicy {
  std::string spec;
  std::function<PolicyPtr(const PolicyContext&)> factory;

  RunPolicy() = default;
  RunPolicy(std::string s) : spec(std::move(s)) {}  // NOLINT(google-explicit-constructor)
  RunPolicy(const char* s) : spec(s) {}  // NOLINT(google-explicit-constructor)
  RunPolicy(std::string label,
            std::function<PolicyPtr(const PolicyContext&)> make)
      : spec(std::move(label)), factory(std::move(make)) {}
};

struct RunManySpec {
  /// Instance axis: generators mapping a seed to an Instance.
  std::vector<std::function<Instance(std::uint64_t)>> instances;
  /// Policy axis: spec strings (or labeled factories).
  std::vector<RunPolicy> policies;
  /// Seed axis.
  std::vector<std::uint64_t> seeds;

  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
  /// Placement engine for every cell.
  PlacementEngine engine = PlacementEngine::kIndexed;
  /// Worker threads per cell when engine == kSharded (SimOptions::
  /// shardedThreads). Keep threads * shardedThreads near the core count:
  /// the grid fan-out and the per-cell shard fan-out multiply.
  std::size_t shardedThreads = 1;
  /// Compute the Proposition 3 lower bound (and ratio) per instance.
  bool computeLowerBound = true;
  /// Attach a per-cell DecisionTrace to each result.
  bool captureTrace = false;
  /// Fixed PolicyContext for spec instantiation. When unset, each cell
  /// derives PolicyContext::forInstance(instance, seed) — specs with
  /// context defaults then self-tune to the instance they run on.
  std::optional<PolicyContext> context;
};

/// One grid cell's outcome. The shared instance pointer keeps
/// `sim.packing` (which references the instance) valid for the result's
/// lifetime.
struct RunResult {
  std::size_t instanceIndex = 0;
  std::size_t policyIndex = 0;
  std::size_t seedIndex = 0;
  std::uint64_t seed = 0;
  std::string policyName;
  std::shared_ptr<const Instance> instance;
  SimResult sim;
  /// Proposition 3 lower bound (0 when computeLowerBound is false).
  double lb3 = 0;
  /// sim.totalUsage / lb3 (1 when the bound is 0 or disabled).
  double ratio = 1;
  /// Per-cell decision trace (null unless captureTrace).
  std::shared_ptr<DecisionTrace> trace;
};

/// Runs the full grid; returns instances.size() * policies.size() *
/// seeds.size() results in grid order (instance-major, then policy, then
/// seed). Exceptions thrown by generators, specs, or simulations propagate
/// out of runMany (first one wins, per ThreadPool::wait).
std::vector<RunResult> runMany(const RunManySpec& spec);

/// Instance-axis entry replaying a trace file (workload/trace_io.hpp):
/// the seed is ignored — every seed-axis cell sees the same recorded
/// workload, so seeds only vary the policy side (e.g. rf's RNG). The file
/// is re-read per generator call; runMany's phase-1 sharing means that is
/// once per (instance, seed) pair, not once per policy. Errors surface as
/// TraceError out of runMany.
std::function<Instance(std::uint64_t)> traceFileInstanceAxis(std::string path);

/// The bare fan-out underneath runMany, for sweeps whose cells are not
/// scalar simulateOnline calls (the multidim and flexible benches): runs
/// fn(0..count-1) over a ThreadPool with `threads` workers (0 = hardware
/// concurrency). fn must be safe to call concurrently; write results into
/// pre-sized slots indexed by the cell id to keep the sweep deterministic
/// under any thread count. Exceptions propagate (first one wins).
void runCells(unsigned threads, std::size_t count,
              const std::function<void(std::size_t)>& fn);

}  // namespace cdbp
