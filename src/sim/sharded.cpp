#include "sim/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "core/epsilon.hpp"
#include "sim/bin_manager.hpp"
#include "sim/placement_view.hpp"
#include "sim/stream_internals.hpp"
#include "sim/streaming.hpp"
#include "telemetry/telemetry.hpp"
#include "util/arena.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"
#include "util/thread_pool.hpp"

namespace cdbp {

namespace {

using stream_internal::IncrementalLb3;
using stream_internal::laterDeparture;
using stream_internal::PendingDeparture;

// Workers are per-shard FIFO loops, so more shards than this only adds
// queue bookkeeping; a backstop against absurd --threads values.
constexpr std::size_t kMaxShards = 64;

// One epoch's worth of arrivals, packed by the feed thread into per-shard
// structure-of-arrays slices backed by the buffer's arena. Workers read
// their slice only; the buffer returns to the free pool when the last
// shard releases it (publication ordered by the shard queue mutexes on the
// way in and releaseMutex on the way out).
struct Slice {
  ItemId* ids = nullptr;
  Size* sizes = nullptr;
  Time* arrivals = nullptr;
  Time* departures = nullptr;          // true departures (drive the system)
  Time* announcedDepartures = nullptr; // what the policy is shown
  std::size_t count = 0;
};

struct EpochBuffer {
  MonotonicArena arena;
  std::vector<Slice> slices;  // indexed by shard
  std::atomic<std::size_t> shardsLeft{0};
};

// What a shard's open/close log remembers per bin event; merged across
// shards at finish() in the batch timeline's (time, kind, id) order to
// reconstruct global bin ids, the global-order usage sum and maxOpenBins.
struct OpenRec {
  Time time;     // opening arrival instant
  ItemId opener; // the item whose placement opened the bin
};
struct CloseRec {
  Time time;    // closing departure instant
  ItemId closer;
};

}  // namespace

struct ShardedSimulator::Impl {
  // One shard: one key group's bins, policy and pending departures, driven
  // by exactly one worker task at a time (the running flag below), so the
  // hot-path state needs no locking of its own.
  struct Shard {
    explicit Shard(std::size_t indexIn) : index(indexIn) {}

    const std::size_t index;
    BinManager bins{/*indexed=*/true};
    PolicyPtr owned;           // clone (null in single-shard fallback)
    OnlinePolicy* policy = nullptr;
    std::vector<PendingDeparture> pending;  // min-heap on (time, global id)
    std::vector<Time> usageByBin;           // local bin id -> usage at close
    std::vector<OpenRec> opens;             // local bin id -> open record
    std::vector<CloseRec> closes;
    std::set<int> categories;
    std::vector<std::pair<ItemId, BinId>> placements;  // capture mode

    // FIFO work queue: epoch buffers plus one trailing drain marker
    // (buffer == nullptr). `running` keeps at most one worker task alive
    // per shard; successive tasks hand the (unlocked) hot-path state over
    // through this mutex.
    Mutex mutex;
    std::deque<EpochBuffer*> queue CDBP_GUARDED_BY(mutex);
    bool running CDBP_GUARDED_BY(mutex) = false;
  };

  // Staged arrival, accumulated by feed() until the epoch is full.
  struct Staged {
    ItemId id;
    Size size;
    Time arrival;
    Time departure;
    Time announcedDeparture;
    std::uint32_t shard;
  };

  OnlinePolicy& prototype;
  ShardedOptions options;
  ShardedResult result;

  bool modeDecided = false;
  bool partitioned = false;
  std::vector<std::unique_ptr<Shard>> shards;
  std::unordered_map<long long, std::uint32_t> keyToShard;
  std::uint32_t nextShardRoundRobin = 0;

  std::unique_ptr<ThreadPool> pool;

  std::vector<Staged> staged;
  Time lastArrival = 0;
  ItemId lastId = 0;
  bool sawItem = false;
  ItemId maxId = 0;
  bool finished = false;

  // Feed-side Proposition 3 bound: the same heap discipline and the same
  // accumulator code as StreamEngine, so the double is bitwise identical.
  IncrementalLb3 lb3;
  std::vector<PendingDeparture> lb3Pending;

  // Epoch buffer pool: owned here, cycled feed -> shards -> free list.
  Mutex bufMutex;
  std::condition_variable_any bufAvailable;
  std::vector<std::unique_ptr<EpochBuffer>> allBuffers CDBP_GUARDED_BY(bufMutex);
  std::vector<EpochBuffer*> freeBuffers CDBP_GUARDED_BY(bufMutex);
  std::size_t buffersHandedOut CDBP_GUARDED_BY(bufMutex) = 0;

  // First worker error wins; later slices become cheap no-ops but still
  // release their buffers so the feed thread can never block forever.
  Mutex errMutex;
  std::exception_ptr firstError CDBP_GUARDED_BY(errMutex);
  std::atomic<bool> failed{false};

  Impl(OnlinePolicy& p, const ShardedOptions& o) : prototype(p), options(o) {
    if (options.epochArrivals == 0) options.epochArrivals = 1;
    if (options.maxEpochsInFlight == 0) options.maxEpochsInFlight = 1;
    staged.reserve(options.epochArrivals);
  }

  ~Impl() {
    // Joining the pool first is what makes destruction safe: workers may
    // still reference shards and buffers. Mark failed so queued slices
    // fall through fast.
    failed.store(true, std::memory_order_relaxed);
    pool.reset();
  }

  std::size_t configuredShardCount() const {
    std::size_t n = options.threads != 0
                        ? options.threads
                        : static_cast<std::size_t>(
                              std::thread::hardware_concurrency());
    if (n == 0) n = 1;
    return std::min(n, kMaxShards);
  }

  void recordError(std::exception_ptr error) {
    MutexLock lock(errMutex);
    if (!firstError) firstError = std::move(error);
    failed.store(true, std::memory_order_relaxed);
  }

  void rethrowIfFailed() {
    if (!failed.load(std::memory_order_relaxed)) return;
    MutexLock lock(errMutex);
    if (firstError) std::rethrow_exception(firstError);
  }

  // --- Mode decision (first item) -----------------------------------

  void decideMode(const Item& announced) {
    modeDecided = true;
    std::size_t count = 1;
    if (prototype.shardKey(announced).has_value()) {
      if (PolicyPtr probe = prototype.clone()) {
        partitioned = true;
        count = configuredShardCount();
      }
      // A key without clone() support cannot be replicated per shard;
      // fall back to the single-shard path silently — it is always
      // correct, just not parallel.
    }
    shards.reserve(count);
    for (std::size_t s = 0; s < count; ++s) {
      shards.push_back(std::make_unique<Shard>(s));
      Shard& shard = *shards.back();
      if (partitioned) {
        shard.owned = prototype.clone();
        shard.policy = shard.owned.get();
      } else {
        shard.policy = &prototype;
      }
      shard.policy->reset();
    }
    pool = std::make_unique<ThreadPool>(count);
    result.shards = count;
  }

  std::uint32_t shardOf(const Item& announced) {
    if (!partitioned) return 0;
    std::optional<long long> key = prototype.shardKey(announced);
    if (!key.has_value()) {
      throw std::logic_error(
          prototype.name() +
          ": shardKey must be engaged for all items or for none");
    }
    auto [it, inserted] = keyToShard.try_emplace(
        *key, static_cast<std::uint32_t>(nextShardRoundRobin));
    if (inserted) {
      nextShardRoundRobin = static_cast<std::uint32_t>(
          (nextShardRoundRobin + 1) % shards.size());
    }
    return it->second;
  }

  // --- Feed side ------------------------------------------------------

  void feed(const Item& item) {
    if (finished) {
      throw std::logic_error("ShardedSimulator: feed() after finish()");
    }
    validate(item);
    rethrowIfFailed();

    Item announced = item;
    if (options.announce) {
      announced = options.announce(item);
      if (announced.id != item.id || announced.size != item.size ||
          announced.arrival() != item.arrival()) {
        throw std::logic_error(
            "ShardedOptions::announce may only perturb the departure time");
      }
    }
    if (!modeDecided) decideMode(announced);

    std::uint32_t shard = shardOf(announced);
    staged.push_back({item.id, item.size, item.arrival(), item.departure(),
                      announced.departure(), shard});
    ++result.items;
    maxId = std::max(maxId, item.id);

    if (options.computeLowerBound) {
      // Identical event order to StreamEngine: departures due at or
      // before this arrival first, then the arrival's size delta.
      while (!lb3Pending.empty() && lb3Pending.front().time <= item.arrival()) {
        std::pop_heap(lb3Pending.begin(), lb3Pending.end(), laterDeparture);
        lb3.onEvent(lb3Pending.back().time, -lb3Pending.back().size);
        lb3Pending.pop_back();
      }
      lb3.onEvent(item.arrival(), item.size);
      lb3Pending.push_back({item.departure(), item.id, 0, item.size});
      std::push_heap(lb3Pending.begin(), lb3Pending.end(), laterDeparture);
      result.peakOpenItems =
          std::max(result.peakOpenItems, lb3Pending.size());
    }

    if (staged.size() >= options.epochArrivals) dispatchEpoch();
  }

  void validate(const Item& item) {
    if (!std::isfinite(item.arrival()) || !std::isfinite(item.departure())) {
      throw std::invalid_argument("simulateSharded: item " +
                                  std::to_string(item.id) +
                                  " has a non-finite time");
    }
    if (!(item.departure() > item.arrival())) {
      throw std::invalid_argument("simulateSharded: item " +
                                  std::to_string(item.id) +
                                  " departs at or before its arrival");
    }
    if (!std::isfinite(item.size) || !(item.size > 0) ||
        lt(kBinCapacity, item.size)) {
      throw std::invalid_argument("simulateSharded: item " +
                                  std::to_string(item.id) +
                                  " has size outside (0, 1]");
    }
    if (sawItem && (item.arrival() < lastArrival ||
                    (item.arrival() == lastArrival && item.id <= lastId))) {
      throw std::invalid_argument(
          "simulateSharded: items must be fed in increasing (arrival, id) "
          "order (item " + std::to_string(item.id) + " at " +
          std::to_string(item.arrival()) + " after item " +
          std::to_string(lastId) + " at " + std::to_string(lastArrival) +
          ")");
    }
    lastArrival = item.arrival();
    lastId = item.id;
    sawItem = true;
  }

  EpochBuffer* acquireBuffer() {
    MutexLock lock(bufMutex);
    while (freeBuffers.empty() &&
           buffersHandedOut >= options.maxEpochsInFlight) {
      bufAvailable.wait(bufMutex);
    }
    EpochBuffer* buf;
    if (!freeBuffers.empty()) {
      buf = freeBuffers.back();
      freeBuffers.pop_back();
    } else {
      allBuffers.push_back(std::make_unique<EpochBuffer>());
      buf = allBuffers.back().get();
    }
    ++buffersHandedOut;
    return buf;
  }

  void releaseBuffer(EpochBuffer* buf) {
    MutexLock lock(bufMutex);
    freeBuffers.push_back(buf);
    --buffersHandedOut;
    bufAvailable.notify_one();
  }

  void dispatchEpoch() {
    if (staged.empty()) return;
    ++result.epochs;
    EpochBuffer* buf = acquireBuffer();
    buf->arena.reset();
    buf->slices.assign(shards.size(), Slice{});

    for (const Staged& st : staged) ++buf->slices[st.shard].count;
    std::size_t nonEmpty = 0;
    for (Slice& slice : buf->slices) {
      if (slice.count == 0) continue;
      ++nonEmpty;
      slice.ids = buf->arena.allocate<ItemId>(slice.count);
      slice.sizes = buf->arena.allocate<Size>(slice.count);
      slice.arrivals = buf->arena.allocate<Time>(slice.count);
      slice.departures = buf->arena.allocate<Time>(slice.count);
      slice.announcedDepartures = buf->arena.allocate<Time>(slice.count);
      slice.count = 0;  // becomes the fill cursor below
    }
    for (const Staged& st : staged) {
      Slice& slice = buf->slices[st.shard];
      slice.ids[slice.count] = st.id;
      slice.sizes[slice.count] = st.size;
      slice.arrivals[slice.count] = st.arrival;
      slice.departures[slice.count] = st.departure;
      slice.announcedDepartures[slice.count] = st.announcedDeparture;
      ++slice.count;
    }
    staged.clear();

    buf->shardsLeft.store(nonEmpty, std::memory_order_relaxed);
    for (std::size_t s = 0; s < shards.size(); ++s) {
      if (buf->slices[s].count > 0) enqueue(*shards[s], buf);
    }
  }

  // Queues work for a shard and wakes its worker loop if idle. `buf` is
  // an epoch buffer, or nullptr for the trailing full drain.
  void enqueue(Shard& shard, EpochBuffer* buf) {
    bool start = false;
    {
      MutexLock lock(shard.mutex);
      shard.queue.push_back(buf);
      if (!shard.running) {
        shard.running = true;
        start = true;
      }
    }
    if (start) {
      pool->submit([this, &shard] { runShard(shard); });
    }
  }

  // --- Worker side ----------------------------------------------------

  void runShard(Shard& shard) {
    for (;;) {
      EpochBuffer* buf;
      {
        MutexLock lock(shard.mutex);
        if (shard.queue.empty()) {
          shard.running = false;
          return;
        }
        buf = shard.queue.front();
        shard.queue.pop_front();
      }
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          if (buf != nullptr) {
            processSlice(shard, buf->slices[shard.index]);
          } else {
            drainShard(shard);
          }
        } catch (...) {
          recordError(std::current_exception());
        }
      }
      if (buf != nullptr &&
          buf->shardsLeft.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        releaseBuffer(buf);
      }
    }
  }

  // The StreamEngine::place loop restricted to one key group: identical
  // drain order, identical validation, identical counted policy queries —
  // the per-item bit-identity argument lives here (DESIGN.md §14). The
  // per-placement scan histogram is skipped: with concurrent shards the
  // global fit-check counter cannot be attributed to one placement (the
  // run_many caveat); the aggregate counter stays exact.
  void processSlice(Shard& shard, const Slice& slice) {
    const bool capture = options.capturePlacements;
    for (std::size_t i = 0; i < slice.count; ++i) {
      const Time arrival = slice.arrivals[i];
      while (!shard.pending.empty() &&
             shard.pending.front().time <= arrival) {
        popDeparture(shard);
      }

      const Item announced(slice.ids[i], slice.sizes[i], arrival,
                           slice.announcedDepartures[i]);
      PlacementView view(shard.bins, arrival);
      PlacementDecision decision = shard.policy->place(view, announced);
      BinId target = decision.bin;
      if (target == kNewBin) {
        target = shard.bins.openBin(decision.category, arrival);
        shard.usageByBin.push_back(0);
        shard.opens.push_back({arrival, slice.ids[i]});
        CDBP_TELEM_COUNT("sim.placements_new_bin", 1);
      } else {
        CDBP_TELEM_COUNT("sim.placements_existing_bin", 1);
        if (!shard.bins.info(target).open) {
          throw std::logic_error(shard.policy->name() + " placed item " +
                                 std::to_string(slice.ids[i]) +
                                 " in closed bin " + std::to_string(target));
        }
        // Validation re-check: wouldFit is the uncounted twin of fits(),
        // so sim.fit_checks stays comparable with the other engines.
        if (!shard.bins.wouldFit(target, slice.sizes[i])) {
          throw std::logic_error(shard.policy->name() + " overfilled bin " +
                                 std::to_string(target) + " with item " +
                                 std::to_string(slice.ids[i]));
        }
      }
      shard.bins.addItem(target, slice.sizes[i]);
      shard.pending.push_back(
          {slice.departures[i], slice.ids[i], target, slice.sizes[i]});
      std::push_heap(shard.pending.begin(), shard.pending.end(),
                     laterDeparture);
      shard.categories.insert(shard.bins.info(target).category);
      if (capture) shard.placements.emplace_back(slice.ids[i], target);
      CDBP_TELEM_COUNT("sim.events_processed", 1);
      CDBP_TELEM_HIST("sim.item_size_permille", slice.sizes[i] * 1000.0);
    }
  }

  void popDeparture(Shard& shard) {
    std::pop_heap(shard.pending.begin(), shard.pending.end(), laterDeparture);
    PendingDeparture dep = shard.pending.back();
    shard.pending.pop_back();
    if (shard.bins.removeItem(dep.bin, dep.size)) {
      shard.usageByBin[static_cast<std::size_t>(dep.bin)] =
          dep.time - shard.bins.info(dep.bin).openedAt;
      shard.closes.push_back({dep.time, dep.item});
    }
    CDBP_TELEM_COUNT("sim.events_processed", 1);
  }

  void drainShard(Shard& shard) {
    while (!shard.pending.empty()) popDeparture(shard);
  }

  // --- Finish & global reconstruction ---------------------------------

  ShardedResult finish() {
    if (finished) {
      throw std::logic_error("ShardedSimulator: finish() called twice");
    }
    finished = true;

    if (!modeDecided) {
      // Zero items: an empty result with one (unused) shard.
      result.shards = 0;
      return std::move(result);
    }

    dispatchEpoch();
    for (auto& shard : shards) enqueue(*shard, nullptr);
    pool->wait();
    rethrowIfFailed();

    if (options.computeLowerBound) {
      while (!lb3Pending.empty()) {
        std::pop_heap(lb3Pending.begin(), lb3Pending.end(), laterDeparture);
        lb3.onEvent(lb3Pending.back().time, -lb3Pending.back().size);
        lb3Pending.pop_back();
      }
      result.lb3 = lb3.total();
    }

    mergeShards();
    return std::move(result);
  }

  // Reconstructs the single-pool run's global view from the per-shard
  // logs. Bin open/close events merge in the batch timeline's
  // (time, kind, id) order — closes (departures) before opens (arrivals)
  // at equal instants — which is exactly the order the single-pool
  // engines open and close bins in. Walking opens in that order yields:
  //   * global bin ids (BinManager assigns ids in opening order),
  //   * totalUsage accumulated in global bin-id order — the addition
  //     order of Packing::totalUsage(), hence the identical double,
  //   * maxOpenBins as the running open count sampled after each open
  //     (the single-pool count only grows at opens, and every open is
  //     sampled by its own arrival there too).
  void mergeShards() {
    struct BinEvent {
      Time time;
      ItemId item;
      std::uint32_t shard;
      BinId localBin;
      std::uint8_t kind;  // 0 = close, 1 = open: departures drain first
    };
    std::size_t totalOpens = 0;
    for (const auto& shard : shards) totalOpens += shard->opens.size();

    std::vector<BinEvent> events;
    events.reserve(2 * totalOpens);
    for (const auto& shard : shards) {
      auto s = static_cast<std::uint32_t>(shard->index);
      for (std::size_t b = 0; b < shard->opens.size(); ++b) {
        events.push_back({shard->opens[b].time, shard->opens[b].opener, s,
                          static_cast<BinId>(b), 1});
      }
      for (const CloseRec& close : shard->closes) {
        events.push_back({close.time, close.closer, s, kNewBin, 0});
      }
    }
    std::sort(events.begin(), events.end(),
              [](const BinEvent& a, const BinEvent& b) {
                if (a.time != b.time) return a.time < b.time;
                if (a.kind != b.kind) return a.kind < b.kind;
                return a.item < b.item;
              });

    std::vector<std::vector<BinId>> localToGlobal;
    if (options.capturePlacements) {
      localToGlobal.resize(shards.size());
      for (const auto& shard : shards) {
        localToGlobal[shard->index].assign(shard->opens.size(), kUnassigned);
      }
    }

    Time totalUsage = 0;
    std::size_t running = 0;
    std::size_t maxOpen = 0;
    BinId nextGlobal = 0;
    for (const BinEvent& e : events) {
      if (e.kind == 1) {
        totalUsage +=
            shards[e.shard]->usageByBin[static_cast<std::size_t>(e.localBin)];
        if (options.capturePlacements) {
          localToGlobal[e.shard][static_cast<std::size_t>(e.localBin)] =
              nextGlobal;
        }
        ++nextGlobal;
        ++running;
        maxOpen = std::max(maxOpen, running);
      } else {
        --running;
      }
    }

    result.totalUsage = totalUsage;
    result.binsOpened = static_cast<std::size_t>(nextGlobal);
    result.maxOpenBins = maxOpen;
    result.categoriesUsed = 0;
    for (const auto& shard : shards) {
      result.categoriesUsed += shard->categories.size();
    }
    if (options.capturePlacements) {
      result.binOf.assign(static_cast<std::size_t>(maxId) + 1, kUnassigned);
      for (const auto& shard : shards) {
        const auto& map = localToGlobal[shard->index];
        for (const auto& [item, localBin] : shard->placements) {
          result.binOf[item] = map[static_cast<std::size_t>(localBin)];
        }
      }
    }
  }
};

ShardedSimulator::ShardedSimulator(OnlinePolicy& prototype,
                                   const ShardedOptions& options)
    : impl_(std::make_unique<Impl>(prototype, options)) {}

ShardedSimulator::~ShardedSimulator() = default;

void ShardedSimulator::feed(const Item& item) { impl_->feed(item); }

ShardedResult ShardedSimulator::finish() { return impl_->finish(); }

ShardedResult simulateSharded(ArrivalSource& source, OnlinePolicy& prototype,
                              const ShardedOptions& options) {
  ShardedSimulator sim(prototype, options);
  StreamItem incoming;
  ItemId nextId = 0;
  while (source.next(incoming)) {
    if (nextId == std::numeric_limits<ItemId>::max()) {
      throw std::invalid_argument("simulateSharded: item id space exhausted");
    }
    sim.feed(Item(nextId++, incoming.size, incoming.arrival,
                  incoming.departure));
  }
  return sim.finish();
}

}  // namespace cdbp
