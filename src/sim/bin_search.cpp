#include "sim/bin_search.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cdbp {

// --- MinLevelTree ---

void MinLevelTree::grow(std::size_t minCap) {
  std::size_t newCap = cap_ == 0 ? 1 : cap_;
  while (newCap < minCap) newCap *= 2;
  std::vector<Size> fresh(2 * newCap, kClosed);
  for (std::size_t i = 0; i < size_; ++i) fresh[newCap + i] = tree_[cap_ + i];
  for (std::size_t i = newCap - 1; i >= 1; --i) {
    fresh[i] = std::min(fresh[2 * i], fresh[2 * i + 1]);
  }
  tree_ = std::move(fresh);
  cap_ = newCap;
}

std::size_t MinLevelTree::append(Size level) {
  if (size_ == cap_) grow(size_ + 1);
  std::size_t slot = size_++;
  update(slot, level);
  return slot;
}

void MinLevelTree::update(std::size_t slot, Size level) {
  CDBP_DCHECK(slot < size_, "MinLevelTree::update: slot ", slot,
              " out of range (size ", size_, ")");
  std::size_t pos = cap_ + slot;
  tree_[pos] = level;
  for (pos /= 2; pos >= 1; pos /= 2) {
    tree_[pos] = std::min(tree_[2 * pos], tree_[2 * pos + 1]);
  }
}

std::size_t MinLevelTree::firstFit(Size size) const {
  if (size_ == 0 || !fitsCapacity(tree_[1], size)) return npos;
  std::size_t pos = 1;
  while (pos < cap_) {
    // The subtree minimum fits, so at least one child's minimum does;
    // preferring the left child yields the leftmost (earliest-opened)
    // fitting slot, exactly like the linear scan's break-on-first-hit.
    pos = fitsCapacity(tree_[2 * pos], size) ? 2 * pos : 2 * pos + 1;
  }
  return pos - cap_;
}

std::size_t MinLevelTree::minSlot() const {
  if (size_ == 0 || tree_[1] == kClosed) return npos;
  std::size_t pos = 1;
  while (pos < cap_) {
    // Ties go left: the leftmost slot attaining the global minimum, which
    // is the earliest-opened bin the linear Worst Fit scan would keep.
    pos = tree_[2 * pos] <= tree_[2 * pos + 1] ? 2 * pos : 2 * pos + 1;
  }
  return pos - cap_;
}

// --- BinSearchIndex ---

void BinSearchIndex::onOpen(BinId id, int category) {
  CDBP_DCHECK(static_cast<std::size_t>(id) == category_.size(),
              "BinSearchIndex::onOpen: ids must arrive densely, got ", id,
              " expected ", category_.size());
  std::size_t globalSlot = global_.tree.append(0.0);
  CDBP_DCHECK(globalSlot == static_cast<std::size_t>(id),
              "BinSearchIndex: global slot ", globalSlot,
              " diverged from bin id ", id);
  global_.slotToBin.push_back(id);
  Scope& cat = byCategory_[category];
  std::size_t catSlot = cat.tree.append(0.0);
  cat.slotToBin.push_back(id);
  categorySlot_.push_back(catSlot);
  category_.push_back(category);
  if (global_.byLevelBuilt) global_.byLevel.insert({0.0, id});
  if (cat.byLevelBuilt) cat.byLevel.insert({0.0, id});
}

void BinSearchIndex::apply(Scope& scope, std::size_t slot, BinId id,
                           Size newLevel) {
  Size oldLevel = scope.tree.levelAt(slot);
  if (newLevel == MinLevelTree::kClosed) {
    scope.tree.close(slot);
  } else {
    scope.tree.update(slot, newLevel);
  }
  if (scope.byLevelBuilt) {
    if (oldLevel != MinLevelTree::kClosed) scope.byLevel.erase({oldLevel, id});
    if (newLevel != MinLevelTree::kClosed) scope.byLevel.insert({newLevel, id});
  }
}

void BinSearchIndex::onLevelChange(BinId id, Size newLevel) {
  std::size_t b = static_cast<std::size_t>(id);
  CDBP_DCHECK(b < category_.size(),
              "BinSearchIndex::onLevelChange: unknown bin ", id);
  apply(global_, b, id, newLevel);
  apply(byCategory_[category_[b]], categorySlot_[b], id, newLevel);
}

void BinSearchIndex::onClose(BinId id) {
  std::size_t b = static_cast<std::size_t>(id);
  CDBP_DCHECK(b < category_.size(), "BinSearchIndex::onClose: unknown bin ",
              id);
  apply(global_, b, id, MinLevelTree::kClosed);
  apply(byCategory_[category_[b]], categorySlot_[b], id, MinLevelTree::kClosed);
}

void BinSearchIndex::materialize(const Scope& scope) {
  for (std::size_t slot = 0; slot < scope.tree.size(); ++slot) {
    Size level = scope.tree.levelAt(slot);
    if (level != MinLevelTree::kClosed) {
      scope.byLevel.insert({level, scope.slotToBin[slot]});
    }
  }
  scope.byLevelBuilt = true;
}

BinId BinSearchIndex::firstFitIn(const Scope& scope, Size size) {
  std::size_t slot = scope.tree.firstFit(size);
  return slot == MinLevelTree::npos ? kNewBin : scope.slotToBin[slot];
}

BinId BinSearchIndex::bestFitIn(const Scope& scope, Size size) {
  if (!scope.byLevelBuilt) materialize(scope);
  const auto& byLevel = scope.byLevel;
  auto it = byLevel.upper_bound(
      {fittingLevelUpperBound(size), std::numeric_limits<BinId>::max()});
  while (it != byLevel.begin()) {
    --it;
    if (fitsCapacity(it->first, size)) {
      // it->first is the maximum fitting level (fitsCapacity is monotone
      // decreasing in level); take the earliest-opened bin at that level.
      auto first = byLevel.lower_bound(
          {it->first, std::numeric_limits<BinId>::min()});
      return first->second;
    }
    // This level sits in the sub-tolerance window between the true cutoff
    // and the conservative bound; skip its whole run of bins and keep
    // seeking down. The window is ~1e-12 wide, so this loop effectively
    // never repeats in practice.
    it = byLevel.lower_bound({it->first, std::numeric_limits<BinId>::min()});
  }
  return kNewBin;
}

BinId BinSearchIndex::worstFitIn(const Scope& scope, Size size) {
  std::size_t slot = scope.tree.minSlot();
  if (slot == MinLevelTree::npos) return kNewBin;
  // The minimum-level bin fits iff any bin does (monotone fitsCapacity),
  // and it is exactly the bin the linear Worst Fit scan selects.
  if (!fitsCapacity(scope.tree.levelAt(slot), size)) return kNewBin;
  return scope.slotToBin[slot];
}

BinId BinSearchIndex::firstFitIn(int category, Size size) const {
  auto it = byCategory_.find(category);
  return it == byCategory_.end() ? kNewBin : firstFitIn(it->second, size);
}

BinId BinSearchIndex::bestFitIn(int category, Size size) const {
  auto it = byCategory_.find(category);
  return it == byCategory_.end() ? kNewBin : bestFitIn(it->second, size);
}

BinId BinSearchIndex::worstFitIn(int category, Size size) const {
  auto it = byCategory_.find(category);
  return it == byCategory_.end() ? kNewBin : worstFitIn(it->second, size);
}

}  // namespace cdbp
