// Explicit instantiation of the scalar placement index — the hot path
// every online policy and the simulator ride on. Keeping the one
// instantiation here (declared extern in the header) means the scalar
// tree/index code is compiled exactly once; other resource models
// instantiate lazily from the header in the TUs that use them.
#include "sim/bin_search.hpp"

namespace cdbp {

template class MinLevelTreeT<ScalarResource>;
template class BinSearchIndexT<ScalarResource>;

}  // namespace cdbp
