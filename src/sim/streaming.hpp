// Bounded-memory streaming simulator.
//
// simulateOnline materializes the whole Instance plus a flat 2n-event
// timeline before the first placement — O(n) memory by construction.
// simulateStream consumes arrivals incrementally from an ArrivalSource and
// keeps only the live state: the open-bin set, a min-heap of pending
// departures (one entry per arrived-but-not-departed item), and O(1)
// accumulators. Resident memory is O(open bins + pending departures +
// bins ever opened), never O(total items) — the term that caps batch
// replay at RAM. (The per-opened-bin term is inherent to BinManager's
// BinInfo bookkeeping and is bytes per bin, not per item.)
//
// Equivalence contract (DESIGN.md §11, enforced by
// tests/integration/streaming_differential_test.cpp): for any arrival-
// sorted source, simulateStream is BIT-IDENTICAL to simulateOnline on the
// same items — same bins for every item, same totalUsage double, same
// sim.fit_checks count. This holds because the stream replays the batch
// timeline order exactly: departures with time <= the incoming arrival
// drain first (in (time, id) order — the batch sort key), so every bin
// level evolves through the same sequence of floating-point updates and
// every policy query sees the same state.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/instance.hpp"
#include "core/types.hpp"
#include "online/policy.hpp"
#include "telemetry/chrome_trace.hpp"

namespace cdbp {

/// One arriving job as a source yields it. Sources carry no ids:
/// simulateStream assigns dense ids in yield order, matching the dense
/// (arrival, id) numbering a trace-file round trip produces.
struct StreamItem {
  Size size = 0;
  Time arrival = 0;
  Time departure = 0;
};

/// Pull-based arrival feed. Implementations must yield items in
/// nondecreasing arrival order (simulateStream validates and throws
/// std::invalid_argument on a violation) and may be single-pass.
class ArrivalSource {
 public:
  virtual ~ArrivalSource() = default;

  /// Fills `out` with the next item; returns false at end of stream.
  virtual bool next(StreamItem& out) = 0;
};

/// Adapter streaming an in-memory Instance in (arrival, id) order — the
/// oracle-side source of the streaming ≡ batch differential battery. It
/// holds a sorted copy of the items, so it deliberately does NOT have the
/// bounded-memory property; file-backed sources (TraceArrivalSource in
/// workload/trace_io.hpp) do.
class InstanceArrivalSource final : public ArrivalSource {
 public:
  explicit InstanceArrivalSource(const Instance& instance);

  bool next(StreamItem& out) override;

  /// Rewinds to the first item (the instance copy is reusable).
  void reset() { pos_ = 0; }

 private:
  std::vector<Item> items_;  // (arrival, id) order
  std::size_t pos_ = 0;
};

struct StreamOptions {
  /// Placement engine, as in SimOptions. Both engines remain bit-identical
  /// to their batch counterparts.
  PlacementEngine engine = PlacementEngine::kIndexed;

  /// Same contract as SimOptions::announce: the policy sees the perturbed
  /// departure, the system evolves with the true one; only the departure
  /// may change.
  std::function<Item(const Item&)> announce;

  /// Per-placement callback, invoked after each item is committed:
  /// (item id, bin, opened-new-bin, bin category). Tests capture full
  /// assignments through this without the simulator storing O(n) state.
  std::function<void(ItemId, BinId, bool, int)> onPlacement;

  /// Maintain the incremental Proposition 3 lower bound (ceil-integral of
  /// the running total-size profile) in StreamResult::lb3. O(1) per event;
  /// disable to shave the accumulator work off pure throughput runs.
  bool computeLowerBound = true;

  /// Timeline artifact, as in SimOptions (always available, independent of
  /// the CDBP_TELEMETRY toggle).
  telemetry::ChromeTrace* chromeTrace = nullptr;
  double traceTimeScale = 1e6;

  /// Worker threads for engine == kSharded (0 picks the hardware
  /// concurrency); ignored by the other engines. The sharded engine
  /// rejects `chromeTrace` (single-timeline artifact) and `onPlacement`
  /// (per-placement callbacks would expose shard-local category ids;
  /// capture placements through simulateSharded's ShardedOptions instead).
  std::size_t shardedThreads = 0;
};

struct StreamResult {
  /// Items consumed from the source.
  std::size_t items = 0;
  /// Sum of per-bin usage (close - open), accumulated in bin-id order —
  /// bit-identical to the batch Packing::totalUsage() double.
  Time totalUsage = 0;
  std::size_t binsOpened = 0;
  std::size_t maxOpenBins = 0;
  std::size_t categoriesUsed = 0;
  /// Incremental Proposition 3 lower bound (0 when disabled). Agrees with
  /// lowerBounds().ceilIntegral to floating-point accumulation order, not
  /// bitwise (DESIGN.md §11.4).
  double lb3 = 0;
  /// High-water mark of simultaneously pending departures — the "open
  /// items" the stream had to remember at once. Bounded-memory runs show
  /// peakOpenItems << items.
  std::size_t peakOpenItems = 0;
  /// Estimated peak bytes of simulator-owned state (departure heap +
  /// usage ledger + bin metadata). An estimate from container capacities,
  /// not an allocator measurement. The sharded engine reports 0 here (its
  /// state is spread across workers), and reports peakOpenItems only when
  /// computeLowerBound is on (the feed thread's lb3 heap tracks it).
  std::size_t peakResidentBytes = 0;
};

/// The incremental heart of the streaming simulator, exposed so callers
/// that do not own a pull loop — the placement daemon's per-tenant
/// sessions (serve/server.hpp) — can feed items one at a time. Every
/// code path that streams goes through this class: simulateStream is a
/// thin loop over place(), so an engine fed the same items in the same
/// order is bit-identical to simulateStream (and hence to the batch
/// simulator) by construction, not by parallel maintenance.
///
/// Lifecycle: construct (resets the policy), then any sequence of
/// place() / drainUntil() with nondecreasing times, then finish() once.
/// After finish() the engine is spent; further calls throw
/// std::logic_error.
///
/// Not thread-safe: one engine belongs to one thread (the daemon gives
/// each tenant session its own engine and serializes on the event loop).
class StreamEngine {
 public:
  /// One committed placement, as StreamOptions::onPlacement reports it.
  struct Placement {
    ItemId item = 0;
    BinId bin = 0;
    bool openedNewBin = false;
    int category = 0;
  };

  /// `policy` must outlive the engine; it is reset() here.
  explicit StreamEngine(OnlinePolicy& policy, const StreamOptions& options = {});
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Validates `item` (finite times, departure > arrival, size in (0, 1],
  /// arrival >= timeWatermark()), drains departures due at or before the
  /// arrival, places through the policy, and commits. Throws
  /// std::invalid_argument on model-invalid or time-regressing items and
  /// std::logic_error on invalid policy decisions.
  Placement place(const StreamItem& item);

  /// Advances the simulation clock to `time`, processing every pending
  /// departure due at or before it — the explicit-time form of the drain
  /// place() performs implicitly. Subsequent items must arrive at or
  /// after `time`. Returns the number of departures processed; throws
  /// std::invalid_argument when `time` is non-finite or regresses behind
  /// timeWatermark().
  std::size_t drainUntil(Time time);

  /// Drains all remaining departures, closes every bin and returns the
  /// final StreamResult (bit-identical to simulateStream on the same item
  /// sequence). The engine is finished afterwards.
  StreamResult finish();

  bool finished() const;

  /// Latest time the engine has committed to (last arrival or explicit
  /// drainUntil), or -infinity before the first event.
  Time timeWatermark() const;

  // Live observers, valid before finish() — the daemon's STATS frame.
  std::size_t itemsPlaced() const;
  std::size_t binsOpened() const;
  std::size_t openBins() const;
  std::size_t pendingDepartures() const;
  std::size_t peakOpenItems() const;
  std::size_t peakResidentBytes() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Streams `source` through `policy` (reset() first). Throws
/// std::logic_error on invalid policy decisions (closed/overfilled bin) and
/// std::invalid_argument on out-of-order or model-invalid source items.
StreamResult simulateStream(ArrivalSource& source, OnlinePolicy& policy,
                            const StreamOptions& options = {});

}  // namespace cdbp
