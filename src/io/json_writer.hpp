// Minimal streaming JSON writer (no third-party dependencies).
//
// Produces RFC 8259 JSON: strings are escaped (quotes, backslash, control
// characters as \u00XX; UTF-8 payload bytes pass through untouched) and
// doubles are rendered with the shortest representation that round-trips
// exactly (std::to_chars). Non-finite doubles have no JSON spelling and
// are written as null.
//
//   JsonWriter w(os, 2);
//   w.beginObject();
//   w.key("items").value(std::int64_t{2000});
//   w.key("ratios").beginArray().value(1.25).value(0.1).endArray();
//   w.endObject();
//
// Structural misuse (a value where a key is required, unbalanced end...)
// throws std::logic_error — writer bugs must not produce silently invalid
// reports.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace cdbp {

/// Escapes `s` for embedding in a JSON string literal (without the
/// surrounding quotes).
std::string jsonEscape(std::string_view s);

/// Shortest decimal form of `v` that parses back to exactly `v`
/// ("null" for NaN/Inf). Integral values keep a trailing ".0" marker so
/// the JSON type of the field is stable across runs.
std::string jsonDouble(double v);

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 renders compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2);

  /// The destructor does not validate balance (destructors must not
  /// throw); call done() to assert the document is complete.
  ~JsonWriter() = default;

  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Object member key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& nullValue();

  /// Throws std::logic_error unless exactly one complete top-level value
  /// has been written.
  void done() const;

 private:
  enum class Scope { kObject, kArray };

  void beforeValue();
  void writeNewlineIndent();
  void raw(std::string_view s) { os_ << s; }

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  bool needComma_ = false;   ///< a sibling precedes the next element
  bool keyPending_ = false;  ///< key() written, its value not yet
  bool topDone_ = false;     ///< one complete top-level value emitted
};

}  // namespace cdbp
