#include "io/csv_io.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "util/parse.hpp"

namespace cdbp {

namespace {

std::vector<std::string> splitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string cell;
  std::istringstream ss(line);
  while (std::getline(ss, cell, ',')) cells.push_back(cell);
  return cells;
}

std::string trim(const std::string& s) {
  std::size_t first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  std::size_t last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

double parseNumber(const std::string& cell, std::size_t lineNo) {
  double value = 0;
  if (!tryParseDouble(trim(cell), value)) {
    throw CsvError("line " + std::to_string(lineNo) + ": not a number: '" +
                   cell + "'");
  }
  return value;
}

}  // namespace

Instance readInstanceCsv(std::istream& in) {
  std::string line;
  std::size_t lineNo = 0;
  if (!std::getline(in, line)) throw CsvError("empty input");
  ++lineNo;
  if (trim(line) != "size,arrival,departure") {
    throw CsvError("line 1: expected header 'size,arrival,departure', got '" +
                   trim(line) + "'");
  }
  InstanceBuilder builder;
  while (std::getline(in, line)) {
    ++lineNo;
    if (trim(line).empty()) continue;
    std::vector<std::string> cells = splitCsvLine(line);
    if (cells.size() != 3) {
      throw CsvError("line " + std::to_string(lineNo) + ": expected 3 cells, got " +
                     std::to_string(cells.size()));
    }
    builder.add(parseNumber(cells[0], lineNo), parseNumber(cells[1], lineNo),
                parseNumber(cells[2], lineNo));
  }
  return builder.build();
}

Instance loadInstanceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw CsvError("cannot open '" + path + "'");
  return readInstanceCsv(in);
}

void writeInstanceCsv(const Instance& instance, std::ostream& out) {
  out << "size,arrival,departure\n";
  out.precision(17);
  for (const Item& r : instance.items()) {
    out << r.size << ',' << r.arrival() << ',' << r.departure() << '\n';
  }
}

void saveInstanceCsv(const Instance& instance, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw CsvError("cannot open '" + path + "' for writing");
  writeInstanceCsv(instance, out);
}

void writePackingCsv(const Packing& packing, std::ostream& out) {
  out << "item,bin,size,arrival,departure\n";
  out.precision(17);
  for (const Item& r : packing.instance().items()) {
    out << r.id << ',' << packing.binOf(r.id) << ',' << r.size << ','
        << r.arrival() << ',' << r.departure() << '\n';
  }
}

void savePackingCsv(const Packing& packing, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw CsvError("cannot open '" + path + "' for writing");
  writePackingCsv(packing, out);
}

void writeStepFunctionCsv(const StepFunction& f, std::ostream& out) {
  out << "start,end,value\n";
  out.precision(17);
  for (const StepFunction::Segment& seg : f.segments()) {
    out << seg.interval.lo << ',' << seg.interval.hi << ',' << seg.value << '\n';
  }
}

}  // namespace cdbp
