// CSV persistence: load/save instances (so real traces can be replayed
// through the simulator) and export packings and time profiles for
// external plotting.
//
// Instance format (header required):
//   size,arrival,departure
//   0.5,0.0,4.0
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "core/instance.hpp"
#include "core/packing.hpp"
#include "core/step_function.hpp"

namespace cdbp {

/// Thrown on malformed CSV input (bad header, non-numeric cell, wrong
/// arity). The message pinpoints the offending line.
class CsvError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parses an instance from a stream. Validation is delegated to Instance,
/// so model violations (size > 1, inverted interval) surface as
/// InstanceError with the item index.
Instance readInstanceCsv(std::istream& in);

/// Loads an instance from a file; CsvError if the file cannot be opened.
Instance loadInstanceCsv(const std::string& path);

/// Writes `size,arrival,departure` rows.
void writeInstanceCsv(const Instance& instance, std::ostream& out);
void saveInstanceCsv(const Instance& instance, const std::string& path);

/// Writes `item,bin,size,arrival,departure` rows for a packing.
void writePackingCsv(const Packing& packing, std::ostream& out);
void savePackingCsv(const Packing& packing, const std::string& path);

/// Writes `start,end,value` rows for each segment of a step function
/// (e.g. an open-bin profile or S(t)).
void writeStepFunctionCsv(const StepFunction& f, std::ostream& out);

}  // namespace cdbp
