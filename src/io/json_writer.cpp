#include "io/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <system_error>

namespace cdbp {

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string jsonDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc()) {
    throw std::logic_error("jsonDouble: to_chars failed");
  }
  std::string out(buf, ptr);
  // to_chars renders integral doubles bare ("3"); keep the floating type
  // visible so downstream schema readers see a stable type per field.
  if (out.find_first_of(".eE") == std::string::npos &&
      out.find("inf") == std::string::npos) {
    out += ".0";
  }
  return out;
}

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::writeNewlineIndent() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    os_ << ' ';
  }
}

void JsonWriter::beforeValue() {
  if (topDone_) {
    throw std::logic_error("JsonWriter: document already complete");
  }
  if (stack_.empty()) {
    return;  // top-level value
  }
  if (stack_.back() == Scope::kObject) {
    if (!keyPending_) {
      throw std::logic_error("JsonWriter: value inside object requires key()");
    }
    keyPending_ = false;
    return;  // key() already emitted the separator and indentation
  }
  if (needComma_) raw(",");
  writeNewlineIndent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (topDone_ || stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (keyPending_) {
    throw std::logic_error("JsonWriter: key() while a key awaits its value");
  }
  if (needComma_) raw(",");
  writeNewlineIndent();
  os_ << '"' << jsonEscape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  keyPending_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginObject() {
  beforeValue();
  stack_.push_back(Scope::kObject);
  needComma_ = false;
  raw("{");
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  if (stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: endObject() without beginObject()");
  }
  if (keyPending_) {
    throw std::logic_error("JsonWriter: endObject() with a dangling key");
  }
  bool hadMembers = needComma_;
  stack_.pop_back();
  if (hadMembers) writeNewlineIndent();
  raw("}");
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  beforeValue();
  stack_.push_back(Scope::kArray);
  needComma_ = false;
  raw("[");
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: endArray() without beginArray()");
  }
  bool hadElements = needComma_;
  stack_.pop_back();
  if (hadElements) writeNewlineIndent();
  raw("]");
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  beforeValue();
  os_ << '"' << jsonEscape(v) << '"';
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  beforeValue();
  raw(v ? "true" : "false");
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  beforeValue();
  os_ << v;
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  beforeValue();
  os_ << v;
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  beforeValue();
  raw(jsonDouble(v));
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

JsonWriter& JsonWriter::nullValue() {
  beforeValue();
  raw("null");
  needComma_ = true;
  if (stack_.empty()) topDone_ = true;
  return *this;
}

void JsonWriter::done() const {
  if (!topDone_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
}

}  // namespace cdbp
