// Cloud billing models (paper §1: "the cost of renting a cloud server is
// normally proportional to its running hours by pay-as-you-go billing").
//
// MinUsageTime DBP minimizes raw usage time, which equals cost under
// perfectly granular billing. Real providers bill in increments (per
// second, minute or hour) with a minimum charge per acquisition, so the
// monetary objective is a rounded, per-busy-period function of the
// packing. This module evaluates packings under such models, letting the
// benches show when usage-time optimization and cost optimization diverge.
#pragma once

#include <string>

#include "core/packing.hpp"

namespace cdbp {

struct BillingModel {
  /// Billing increment: a busy period is rounded up to a multiple of this
  /// (0 = continuous billing).
  Time granularity = 0;
  /// Minimum billed duration per server acquisition (AWS-style "minimum of
  /// 60 seconds" clauses). Applied per busy period, before rounding.
  Time minimumCharge = 0;
  /// Price per unit time.
  double unitPrice = 1.0;

  /// Continuous per-unit-time billing (cost == usage * price).
  static BillingModel continuous(double unitPrice = 1.0) {
    return {0, 0, unitPrice};
  }

  /// Increment-based billing.
  static BillingModel metered(Time granularity, double unitPrice = 1.0,
                              Time minimumCharge = 0) {
    return {granularity, minimumCharge, unitPrice};
  }

  /// Billed duration of one busy period.
  Time billedDuration(Time busy) const;
};

struct CostBreakdown {
  double total = 0;          ///< money
  Time rawUsage = 0;         ///< sum of busy-period lengths
  Time billedUsage = 0;      ///< sum of billed durations
  std::size_t acquisitions = 0;  ///< number of busy periods (server rentals)

  /// billedUsage / rawUsage — how much the billing model inflates usage.
  double roundingOverhead() const {
    return rawUsage > 0 ? billedUsage / rawUsage : 1.0;
  }
};

/// Evaluates a packing under a billing model. Every maximal busy period of
/// every bin is one server acquisition: the online model closes a bin when
/// it empties, and an offline bin with a usage gap releases the server in
/// between (it is not billed for idle gaps — consistent with usage-time
/// accounting).
CostBreakdown evaluateCost(const Packing& packing, const BillingModel& model);

}  // namespace cdbp
