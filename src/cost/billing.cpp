#include "cost/billing.hpp"

#include <algorithm>
#include <cmath>

#include "core/epsilon.hpp"

namespace cdbp {

Time BillingModel::billedDuration(Time busy) const {
  Time charged = std::max(busy, minimumCharge);
  if (granularity > 0) {
    double units = charged / granularity;
    double nearest = std::round(units);
    if (std::fabs(units - nearest) <= kTimeEps) units = nearest;
    charged = std::ceil(units - kTimeEps) * granularity;
  }
  return charged;
}

CostBreakdown evaluateCost(const Packing& packing, const BillingModel& model) {
  CostBreakdown breakdown;
  for (std::size_t b = 0; b < packing.numBins(); ++b) {
    for (const Interval& busy :
         packing.bin(static_cast<BinId>(b)).busyPeriods().parts()) {
      Time raw = busy.length();
      Time billed = model.billedDuration(raw);
      breakdown.rawUsage += raw;
      breakdown.billedUsage += billed;
      breakdown.total += billed * model.unitPrice;
      ++breakdown.acquisitions;
    }
  }
  return breakdown;
}

}  // namespace cdbp
