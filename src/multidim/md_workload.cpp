#include "multidim/md_workload.hpp"

#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace cdbp {

MdInstance generateMdWorkload(const MdWorkloadSpec& spec, std::uint64_t seed) {
  if (spec.dims == 0 || !(spec.mu >= 1) || !(spec.minDuration > 0) ||
      !(spec.arrivalRate > 0) || spec.correlation < 0 || spec.correlation > 1 ||
      !(spec.minCoordinate > 0) || spec.minCoordinate > spec.maxCoordinate ||
      spec.maxCoordinate > 1) {
    throw std::invalid_argument("generateMdWorkload: invalid spec");
  }
  Rng rng(seed);
  MdInstanceBuilder builder;
  Time t = 0;
  for (std::size_t i = 0; i < spec.numItems; ++i) {
    t += rng.exponential(1.0 / spec.arrivalRate);
    Time duration = rng.uniform(spec.minDuration, spec.mu * spec.minDuration);
    // Correlated coordinates: blend a shared draw with per-dimension draws.
    double shared = rng.uniform(spec.minCoordinate, spec.maxCoordinate);
    std::vector<double> coords(spec.dims);
    for (std::size_t d = 0; d < spec.dims; ++d) {
      double independent = rng.uniform(spec.minCoordinate, spec.maxCoordinate);
      coords[d] = spec.correlation * shared + (1.0 - spec.correlation) * independent;
    }
    builder.add(Resources(std::move(coords)), t, t + duration);
  }
  return builder.build();
}

}  // namespace cdbp
