// Online policies and the simulator for multi-dimensional MinUsageTime DBP.
//
// The classification ideas of §5 transfer verbatim: categories depend only
// on durations/departure times, not on sizes, so classify-by-departure-time
// and classify-by-duration wrap any vector fit rule. The fit rules
// implemented: First Fit (earliest-opened bin that fits in every
// dimension) and Dominant-Resource Best Fit (fitting bin minimizing the
// post-placement dominant coordinate — a vector-bin-packing heuristic).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "multidim/md_instance.hpp"
#include "multidim/md_packing.hpp"

namespace cdbp {

/// Open-bin state for the MD simulator.
class MdBinManager {
 public:
  struct BinInfo {
    BinId id = 0;
    int category = 0;
    Resources level;
    std::size_t itemCount = 0;
    bool open = false;
  };

  const std::vector<BinId>& openBins(int category) const;
  const BinInfo& info(BinId id) const { return bins_[static_cast<std::size_t>(id)]; }
  bool fits(BinId id, const Resources& demand) const {
    return info(id).open && info(id).level.fitsWith(demand);
  }
  std::size_t binsOpened() const { return bins_.size(); }
  std::size_t openCount() const { return open_; }

  BinId openBin(int category, std::size_t dims);
  void addItem(BinId id, const Resources& demand);
  bool removeItem(BinId id, const Resources& demand);

 private:
  std::vector<BinInfo> bins_;
  std::map<int, std::vector<BinId>> openByCategory_;
  std::size_t open_ = 0;
};

class MdOnlinePolicy {
 public:
  virtual ~MdOnlinePolicy() = default;
  virtual std::string name() const = 0;
  /// Returns the bin to place into, or kNewBin; `category` (out) tags a
  /// fresh bin.
  virtual BinId place(const MdBinManager& bins, const MdItem& item,
                      int* category) = 0;
  virtual void reset() {}
};

using MdPolicyPtr = std::unique_ptr<MdOnlinePolicy>;

/// Which fit rule a policy uses within its categories.
enum class MdFitRule {
  kFirstFit,       ///< earliest-opened fitting bin
  kDominantFit,    ///< fitting bin minimizing the post-placement max coordinate
};

/// The category rules of §5 lifted to MD items.
enum class MdCategoryRule {
  kNone,        ///< single category (plain fit rule)
  kDeparture,   ///< windows of length rho over departure times (§5.2)
  kDuration,    ///< geometric duration classes, base/alpha (§5.3)
};

/// A configurable MD policy combining a category rule with a fit rule.
class MdClassifyPolicy : public MdOnlinePolicy {
 public:
  struct Config {
    MdFitRule fit = MdFitRule::kFirstFit;
    MdCategoryRule categories = MdCategoryRule::kNone;
    Time rho = 1.0;     ///< departure-window length (kDeparture)
    Time base = 1.0;    ///< duration base (kDuration)
    double alpha = 2.0; ///< duration ratio per class (kDuration)
  };

  explicit MdClassifyPolicy(Config config);

  std::string name() const override;
  BinId place(const MdBinManager& bins, const MdItem& item, int* category) override;

  int categoryOf(const MdItem& item) const;

 private:
  Config config_;
};

struct MdSimResult {
  MdPacking packing;
  Time totalUsage = 0;
  std::size_t binsOpened = 0;
  std::size_t maxOpenBins = 0;
};

/// Arrival-order simulation with close-on-empty bins, as in the scalar
/// simulator. Throws std::logic_error on infeasible policy decisions.
MdSimResult mdSimulateOnline(const MdInstance& instance, MdOnlinePolicy& policy);

}  // namespace cdbp
