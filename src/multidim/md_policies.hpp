// Online policies and the simulator for multi-dimensional MinUsageTime DBP.
//
// The classification ideas of §5 transfer verbatim: categories depend only
// on durations/departure times, not on sizes, so classify-by-departure-time
// and classify-by-duration wrap any vector fit rule. The fit rules
// implemented: First Fit (earliest-opened bin that fits in every
// dimension) and Dominant-Resource Best Fit (fitting bin minimizing the
// post-placement dominant coordinate — a vector-bin-packing heuristic).
//
// PR 4: the bespoke MdBinManager is gone. Multidim packing runs on the
// generic substrate — BasicBinManager<VectorResource> holds the open-bin
// state and policies query a BasicPlacementView<VectorResource>, so both
// placement engines (sublinear indexed and linear-scan reference), the
// CDBP_CHECK contracts, and the sim.* telemetry counters are shared with
// the scalar simulator.
#pragma once

#include <memory>
#include <string>

#include "multidim/md_instance.hpp"
#include "multidim/md_packing.hpp"
#include "sim/placement_view.hpp"

namespace cdbp {

/// What a multidim policy sees: the vector instantiation of the generic
/// placement view (per-category first-fit / min-score queries plus the
/// open-list surface). Instantiated lazily from the headers.
using MdPlacementView = BasicPlacementView<VectorResource>;

class MdOnlinePolicy {
 public:
  virtual ~MdOnlinePolicy() = default;
  virtual std::string name() const = 0;
  /// Returns the bin to place into, or kNewBin; `category` (out) tags a
  /// fresh bin.
  virtual BinId place(const MdPlacementView& view, const MdItem& item,
                      int* category) = 0;
  virtual void reset() {}
};

using MdPolicyPtr = std::unique_ptr<MdOnlinePolicy>;

/// Which fit rule a policy uses within its categories.
enum class MdFitRule {
  kFirstFit,       ///< earliest-opened fitting bin
  kDominantFit,    ///< fitting bin minimizing the post-placement max coordinate
};

/// The category rules of §5 lifted to MD items.
enum class MdCategoryRule {
  kNone,        ///< single category (plain fit rule)
  kDeparture,   ///< windows of length rho over departure times (§5.2)
  kDuration,    ///< geometric duration classes, base/alpha (§5.3)
};

/// A configurable MD policy combining a category rule with a fit rule.
class MdClassifyPolicy : public MdOnlinePolicy {
 public:
  struct Config {
    MdFitRule fit = MdFitRule::kFirstFit;
    MdCategoryRule categories = MdCategoryRule::kNone;
    Time rho = 1.0;     ///< departure-window length (kDeparture)
    Time base = 1.0;    ///< duration base (kDuration)
    double alpha = 2.0; ///< duration ratio per class (kDuration)
  };

  explicit MdClassifyPolicy(Config config);

  std::string name() const override;
  BinId place(const MdPlacementView& view, const MdItem& item,
              int* category) override;

  int categoryOf(const MdItem& item) const;

 private:
  Config config_;
};

struct MdSimOptions {
  /// Placement engine selection; both engines produce bit-identical
  /// packings (tests/integration/placement_differential_test.cpp pins the
  /// multidim suites).
  PlacementEngine engine = PlacementEngine::kIndexed;
};

struct MdSimResult {
  MdPacking packing;
  Time totalUsage = 0;
  std::size_t binsOpened = 0;
  std::size_t maxOpenBins = 0;
};

/// Arrival-order simulation with close-on-empty bins, as in the scalar
/// simulator. Throws std::logic_error on infeasible policy decisions.
MdSimResult mdSimulateOnline(const MdInstance& instance, MdOnlinePolicy& policy,
                             const MdSimOptions& options = {});

}  // namespace cdbp
