#include "multidim/md_policies.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>
#include <stdexcept>

#include "core/epsilon.hpp"
#include "util/check.hpp"

namespace cdbp {

const std::vector<BinId>& MdBinManager::openBins(int category) const {
  static const std::vector<BinId> kEmpty;
  auto it = openByCategory_.find(category);
  return it == openByCategory_.end() ? kEmpty : it->second;
}

BinId MdBinManager::openBin(int category, std::size_t dims) {
  BinId id = static_cast<BinId>(bins_.size());
  bins_.push_back({id, category, Resources::zero(dims), 0, true});
  openByCategory_[category].push_back(id);
  ++open_;
  return id;
}

void MdBinManager::addItem(BinId id, const Resources& demand) {
  CDBP_DCHECK(id >= 0 && static_cast<std::size_t>(id) < bins_.size(),
              "addItem: bin id ", id, " out of range");
  BinInfo& bin = bins_[static_cast<std::size_t>(id)];
  if (!bin.open) throw std::logic_error("MdBinManager::addItem: bin closed");
  CDBP_DCHECK(bin.level.dims() == demand.dims(), "addItem: bin ", id,
              " has ", bin.level.dims(), " dims, demand has ", demand.dims());
  CDBP_DCHECK(bin.level.fitsWith(demand), "addItem: bin ", id,
              " cannot hold the demand in every dimension");
  bin.level += demand;
  ++bin.itemCount;
}

bool MdBinManager::removeItem(BinId id, const Resources& demand) {
  CDBP_DCHECK(id >= 0 && static_cast<std::size_t>(id) < bins_.size(),
              "removeItem: bin id ", id, " out of range");
  BinInfo& bin = bins_[static_cast<std::size_t>(id)];
  if (!bin.open || bin.itemCount == 0) {
    throw std::logic_error("MdBinManager::removeItem: bin not holding items");
  }
  CDBP_DCHECK(bin.level.dims() == demand.dims(), "removeItem: bin ", id,
              " has ", bin.level.dims(), " dims, demand has ", demand.dims());
  bin.level -= demand;
  --bin.itemCount;
  if (bin.itemCount > 0) return false;
  bin.level = Resources::zero(bin.level.dims());
  bin.open = false;
  auto& cat = openByCategory_[bin.category];
  auto catIt = std::find(cat.begin(), cat.end(), id);
  CDBP_DCHECK(catIt != cat.end(), "removeItem: bin ", id,
              " missing from category ", bin.category, "'s open list");
  cat.erase(catIt);
  --open_;
  return true;
}

MdClassifyPolicy::MdClassifyPolicy(Config config) : config_(config) {
  if (config_.categories == MdCategoryRule::kDeparture && !(config_.rho > 0)) {
    throw std::invalid_argument("MdClassifyPolicy: rho must be positive");
  }
  if (config_.categories == MdCategoryRule::kDuration &&
      (!(config_.base > 0) || !(config_.alpha > 1))) {
    throw std::invalid_argument("MdClassifyPolicy: need base > 0, alpha > 1");
  }
}

std::string MdClassifyPolicy::name() const {
  std::ostringstream os;
  switch (config_.categories) {
    case MdCategoryRule::kNone:
      os << "MD-";
      break;
    case MdCategoryRule::kDeparture:
      os << "MD-CDT(rho=" << config_.rho << ")-";
      break;
    case MdCategoryRule::kDuration:
      os << "MD-CD(alpha=" << config_.alpha << ")-";
      break;
  }
  os << (config_.fit == MdFitRule::kFirstFit ? "FirstFit" : "DominantFit");
  return os.str();
}

int MdClassifyPolicy::categoryOf(const MdItem& item) const {
  switch (config_.categories) {
    case MdCategoryRule::kNone:
      return 0;
    case MdCategoryRule::kDeparture: {
      double q = item.departure() / config_.rho;
      double nearest = std::round(q);
      if (std::fabs(q - nearest) <= kTimeEps) q = nearest;
      return static_cast<int>(std::ceil(q)) - 1;
    }
    case MdCategoryRule::kDuration: {
      double q = std::log(item.duration() / config_.base) / std::log(config_.alpha);
      double nearest = std::round(q);
      if (std::fabs(q - nearest) <= 1e-9) q = nearest;
      return static_cast<int>(std::floor(q));
    }
  }
  return 0;
}

BinId MdClassifyPolicy::place(const MdBinManager& bins, const MdItem& item,
                              int* category) {
  *category = categoryOf(item);
  const std::vector<BinId>& candidates = bins.openBins(*category);
  if (config_.fit == MdFitRule::kFirstFit) {
    for (BinId id : candidates) {
      if (bins.fits(id, item.demand)) return id;
    }
    return kNewBin;
  }
  // Dominant-resource fit: pick the fitting bin whose post-placement
  // dominant coordinate is smallest (keeps dimensions balanced); ties to
  // the earliest-opened bin.
  BinId best = kNewBin;
  double bestScore = 2.0;
  for (BinId id : candidates) {
    if (!bins.fits(id, item.demand)) continue;
    Resources after = bins.info(id).level + item.demand;
    double score = after.maxCoordinate();
    if (score < bestScore - kSizeEps) {
      bestScore = score;
      best = id;
    }
  }
  return best;
}

MdSimResult mdSimulateOnline(const MdInstance& instance, MdOnlinePolicy& policy) {
  policy.reset();
  MdBinManager bins;
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  std::size_t maxOpen = 0;

  using Departure = std::pair<Time, ItemId>;
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>> departures;

  for (const MdItem& r : instance.sortedByArrival()) {
    while (!departures.empty() && departures.top().first <= r.arrival()) {
      ItemId gone = departures.top().second;
      departures.pop();
      bins.removeItem(binOf[gone], instance[gone].demand);
    }
    int category = 0;
    BinId target = policy.place(bins, r, &category);
    if (target == kNewBin) {
      target = bins.openBin(category, instance.dims());
    } else if (!bins.fits(target, r.demand)) {
      throw std::logic_error(policy.name() + " made an infeasible placement");
    }
    bins.addItem(target, r.demand);
    binOf[r.id] = target;
    departures.emplace(r.departure(), r.id);
    maxOpen = std::max(maxOpen, bins.openCount());
  }

  MdSimResult result;
  result.packing = MdPacking(instance, std::move(binOf));
  result.totalUsage = result.packing.totalUsage();
  result.binsOpened = bins.binsOpened();
  result.maxOpenBins = maxOpen;
  return result;
}

}  // namespace cdbp
