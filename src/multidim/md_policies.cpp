#include "multidim/md_policies.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "core/epsilon.hpp"
#include "sim/bin_manager.hpp"

namespace cdbp {

namespace {

// Same flat, pre-sorted timeline as the scalar simulator: departures order
// before arrivals at the same instant (the old departure heap drained
// everything with time <= the arrival), and simultaneous departures drain
// in item-id order — the heap's (time, id) pop order — so bin levels
// evolve through the identical sequence of floating-point updates.
enum : std::uint8_t { kDeparture = 0, kArrival = 1 };

struct TimelineEvent {
  Time time;
  ItemId item;
  std::uint8_t kind;
};

bool timelineBefore(const TimelineEvent& a, const TimelineEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.kind != b.kind) return a.kind < b.kind;
  return a.item < b.item;
}

}  // namespace

MdClassifyPolicy::MdClassifyPolicy(Config config) : config_(config) {
  if (config_.categories == MdCategoryRule::kDeparture && !(config_.rho > 0)) {
    throw std::invalid_argument("MdClassifyPolicy: rho must be positive");
  }
  if (config_.categories == MdCategoryRule::kDuration &&
      (!(config_.base > 0) || !(config_.alpha > 1))) {
    throw std::invalid_argument("MdClassifyPolicy: need base > 0, alpha > 1");
  }
}

std::string MdClassifyPolicy::name() const {
  std::ostringstream os;
  switch (config_.categories) {
    case MdCategoryRule::kNone:
      os << "MD-";
      break;
    case MdCategoryRule::kDeparture:
      os << "MD-CDT(rho=" << config_.rho << ")-";
      break;
    case MdCategoryRule::kDuration:
      os << "MD-CD(alpha=" << config_.alpha << ")-";
      break;
  }
  os << (config_.fit == MdFitRule::kFirstFit ? "FirstFit" : "DominantFit");
  return os.str();
}

int MdClassifyPolicy::categoryOf(const MdItem& item) const {
  switch (config_.categories) {
    case MdCategoryRule::kNone:
      return 0;
    case MdCategoryRule::kDeparture: {
      double q = item.departure() / config_.rho;
      double nearest = std::round(q);
      if (std::fabs(q - nearest) <= kTimeEps) q = nearest;
      return static_cast<int>(std::ceil(q)) - 1;
    }
    case MdCategoryRule::kDuration: {
      double q = std::log(item.duration() / config_.base) / std::log(config_.alpha);
      double nearest = std::round(q);
      if (std::fabs(q - nearest) <= 1e-9) q = nearest;
      return static_cast<int>(std::floor(q));
    }
  }
  return 0;
}

BinId MdClassifyPolicy::place(const MdPlacementView& view, const MdItem& item,
                              int* category) {
  *category = categoryOf(item);
  if (config_.fit == MdFitRule::kFirstFit) {
    return view.firstFitIn(*category, item.demand);
  }
  // Dominant-resource fit: pick the fitting bin whose post-placement
  // dominant coordinate is smallest (keeps dimensions balanced); ties to
  // the earliest-opened bin.
  return view.minScoreFitIn(*category, item.demand,
                            [&item](const Resources& level) {
                              return (level + item.demand).maxCoordinate();
                            });
}

MdSimResult mdSimulateOnline(const MdInstance& instance, MdOnlinePolicy& policy,
                             const MdSimOptions& options) {
  if (options.engine == PlacementEngine::kSharded) {
    throw std::invalid_argument(
        "mdSimulateOnline: the sharded engine is scalar-only; "
        "use kIndexed or kLinearScan");
  }
  policy.reset();
  BasicBinManager<VectorResource> bins(
      options.engine == PlacementEngine::kIndexed,
      VectorResource::Shape{instance.dims()});
  std::vector<BinId> binOf(instance.size(), kUnassigned);
  std::size_t maxOpen = 0;

  std::vector<TimelineEvent> events;
  events.reserve(2 * instance.size());
  for (const MdItem& r : instance.items()) {
    events.push_back({r.arrival(), r.id, kArrival});
    events.push_back({r.departure(), r.id, kDeparture});
  }
  std::sort(events.begin(), events.end(), timelineBefore);

  std::size_t arrivalsLeft = instance.size();
  for (std::size_t cursor = 0; cursor < events.size() && arrivalsLeft > 0;
       ++cursor) {
    const TimelineEvent& e = events[cursor];
    if (e.kind == kDeparture) {
      bins.removeItem(binOf[e.item], instance[e.item].demand);
      continue;
    }
    const MdItem& r = instance[e.item];
    --arrivalsLeft;

    MdPlacementView view(bins, r.arrival());
    int category = 0;
    BinId target = policy.place(view, r, &category);
    if (target == kNewBin) {
      target = bins.openBin(category, r.arrival());
      // cdbp-analyze: allow(engine-bypass): simulator-side validation re-check of the policy's answer, not a policy query
    } else if (!bins.wouldFit(target, r.demand)) {
      // Validation re-check: wouldFit is the uncounted twin of fits(), so
      // sim.fit_checks measures policy-issued queries only.
      throw std::logic_error(policy.name() + " made an infeasible placement");
    }
    bins.addItem(target, r.demand);
    binOf[r.id] = target;
    maxOpen = std::max(maxOpen, bins.openCount());
  }

  MdSimResult result;
  result.packing = MdPacking(instance, std::move(binOf));
  result.totalUsage = result.packing.totalUsage();
  result.binsOpened = bins.binsOpened();
  result.maxOpenBins = maxOpen;
  return result;
}

}  // namespace cdbp
