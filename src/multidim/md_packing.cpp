#include "multidim/md_packing.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/epsilon.hpp"

namespace cdbp {

MdPacking::MdPacking(const MdInstance& instance, std::vector<BinId> binOf)
    : instance_(&instance), binOf_(std::move(binOf)) {
  if (binOf_.size() != instance.size()) {
    throw std::invalid_argument("MdPacking: assignment size mismatch");
  }
  BinId maxBin = -1;
  for (BinId b : binOf_) maxBin = std::max(maxBin, b);
  numBins_ = static_cast<std::size_t>(maxBin + 1);
  busy_.resize(numBins_);
  level_.assign(numBins_,
                std::vector<StepFunction>(instance.dims()));
  for (const MdItem& r : instance.items()) {
    BinId b = binOf_[r.id];
    if (b < 0) continue;
    busy_[static_cast<std::size_t>(b)].add(r.interval);
    for (std::size_t d = 0; d < instance.dims(); ++d) {
      level_[static_cast<std::size_t>(b)][d].add(r.interval, r.demand[d]);
    }
  }
}

Time MdPacking::totalUsage() const {
  Time total = 0;
  for (const IntervalSet& busy : busy_) total += busy.measure();
  return total;
}

std::size_t MdPacking::openBinsAt(Time t) const {
  std::size_t open = 0;
  for (const IntervalSet& busy : busy_) {
    if (busy.contains(t)) ++open;
  }
  return open;
}

std::optional<std::string> MdPacking::validate() const {
  std::vector<bool> used(numBins_, false);
  for (const MdItem& r : instance_->items()) {
    BinId b = binOf_[r.id];
    if (b < 0) return "md item " + std::to_string(r.id) + " is unassigned";
    used[static_cast<std::size_t>(b)] = true;
  }
  for (std::size_t b = 0; b < numBins_; ++b) {
    if (!used[b]) return "bin ids are not dense: bin " + std::to_string(b);
    for (std::size_t d = 0; d < instance_->dims(); ++d) {
      double peak = level_[b][d].maxValue();
      if (!leq(peak, kBinCapacity)) {
        return "bin " + std::to_string(b) + " dimension " + std::to_string(d) +
               " exceeds capacity: peak " + std::to_string(peak);
      }
    }
  }
  return std::nullopt;
}

}  // namespace cdbp
