// Multi-dimensional items and instances.
#pragma once

#include <vector>

#include "core/interval.hpp"
#include "core/step_function.hpp"
#include "core/types.hpp"
#include "multidim/resources.hpp"

namespace cdbp {

/// An item with a vector demand. Mirrors core Item; dimensions must agree
/// across an instance.
struct MdItem {
  ItemId id = 0;
  Resources demand;
  Interval interval;

  MdItem() = default;
  MdItem(ItemId id_, Resources demand_, Time arrival, Time departure)
      : id(id_), demand(std::move(demand_)), interval(arrival, departure) {}

  Time arrival() const { return interval.lo; }
  Time departure() const { return interval.hi; }
  Time duration() const { return interval.length(); }
  bool activeAt(Time t) const { return interval.contains(t); }
};

class MdInstance {
 public:
  MdInstance() = default;

  /// Validates: consistent dimensionality, every coordinate in [0, 1], at
  /// least one coordinate positive, departure > arrival. Throws
  /// InstanceError (reused from core) on violation.
  explicit MdInstance(std::vector<MdItem> items);

  const std::vector<MdItem>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const MdItem& operator[](ItemId id) const { return items_[id]; }
  std::size_t dims() const { return dims_; }

  std::vector<MdItem> sortedByArrival() const;

  /// The aggregate demand curve of one dimension.
  StepFunction dimensionProfile(std::size_t d) const;

  /// Span of the instance (union measure of active intervals).
  Time span() const;

  Time minDuration() const;
  Time maxDuration() const;
  double durationRatio() const;

  /// The projection onto one dimension as a scalar core-model demand list
  /// (sizes = coordinate d). Items with a zero coordinate are kept with a
  /// tiny positive epsilon size... no: they are dropped, since they demand
  /// nothing in that dimension.
  std::vector<double> coordinateSizes(std::size_t d) const;

 private:
  std::vector<MdItem> items_;
  std::size_t dims_ = 0;
};

class MdInstanceBuilder {
 public:
  MdInstanceBuilder& add(Resources demand, Time arrival, Time departure) {
    items_.emplace_back(static_cast<ItemId>(items_.size()), std::move(demand),
                        arrival, departure);
    return *this;
  }

  MdInstance build() { return MdInstance(std::move(items_)); }

 private:
  std::vector<MdItem> items_;
};

}  // namespace cdbp
