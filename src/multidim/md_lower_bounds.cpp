#include "multidim/md_lower_bounds.hpp"

#include <algorithm>

#include "core/epsilon.hpp"

namespace cdbp {

double MdLowerBounds::best() const { return std::max({demand, span, ceilIntegral}); }

MdLowerBounds mdLowerBounds(const MdInstance& instance) {
  MdLowerBounds lb;
  lb.span = instance.span();
  for (std::size_t d = 0; d < instance.dims(); ++d) {
    StepFunction profile = instance.dimensionProfile(d);
    lb.ceilIntegral = std::max(lb.ceilIntegral, profile.ceilIntegral(kSizeEps));
    lb.demand = std::max(lb.demand, profile.integral());
  }
  return lb;
}

}  // namespace cdbp
