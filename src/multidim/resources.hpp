// Multi-dimensional resource vectors (paper §6 future work: "extending
// MinUsageTime DBP to multiple resource dimensions").
//
// A Resources value is a demand (or level) across d dimensions — CPU,
// memory, bandwidth, ... — each normalized to the bin's capacity in that
// dimension, so capacity is the all-ones vector.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "core/epsilon.hpp"
#include "core/types.hpp"

namespace cdbp {

class Resources {
 public:
  Resources() = default;

  explicit Resources(std::vector<double> values) : values_(std::move(values)) {}

  Resources(std::initializer_list<double> values) : values_(values) {}

  /// A zero vector with `dims` dimensions (an empty bin's level).
  static Resources zero(std::size_t dims) {
    return Resources(std::vector<double>(dims, 0.0));
  }

  std::size_t dims() const { return values_.size(); }
  double operator[](std::size_t d) const { return values_[d]; }
  const std::vector<double>& values() const { return values_; }

  Resources& operator+=(const Resources& other) {
    requireSameDims(other);
    for (std::size_t d = 0; d < values_.size(); ++d) values_[d] += other.values_[d];
    return *this;
  }

  Resources& operator-=(const Resources& other) {
    requireSameDims(other);
    for (std::size_t d = 0; d < values_.size(); ++d) values_[d] -= other.values_[d];
    return *this;
  }

  friend Resources operator+(Resources lhs, const Resources& rhs) {
    lhs += rhs;
    return lhs;
  }

  friend Resources operator-(Resources lhs, const Resources& rhs) {
    lhs -= rhs;
    return lhs;
  }

  /// Whether every coordinate of level + demand stays within the unit
  /// capacity (the multi-dimensional fit test).
  bool fitsWith(const Resources& demand) const {
    requireSameDims(demand);
    for (std::size_t d = 0; d < values_.size(); ++d) {
      if (!leq(values_[d] + demand.values_[d], kBinCapacity)) return false;
    }
    return true;
  }

  /// Componentwise minimum with another vector (tournament tree re-sift).
  void assignMin(const Resources& other) {
    requireSameDims(other);
    for (std::size_t d = 0; d < values_.size(); ++d) {
      values_[d] = std::min(values_[d], other.values_[d]);
    }
  }

  /// Largest coordinate — the "dominant resource" share.
  double maxCoordinate() const {
    double best = 0;
    for (double v : values_) best = std::max(best, v);
    return best;
  }

  /// Sum of coordinates (used by size-based tie-breaks).
  double sum() const {
    double total = 0;
    for (double v : values_) total += v;
    return total;
  }

  /// Index of the largest coordinate.
  std::size_t dominantDimension() const {
    std::size_t best = 0;
    for (std::size_t d = 1; d < values_.size(); ++d) {
      if (values_[d] > values_[best]) best = d;
    }
    return best;
  }

  friend bool operator==(const Resources&, const Resources&) = default;

 private:
  void requireSameDims(const Resources& other) const {
    if (values_.size() != other.values_.size()) {
      throw std::invalid_argument("Resources: dimension mismatch (" +
                                  std::to_string(values_.size()) + " vs " +
                                  std::to_string(other.values_.size()) + ")");
    }
  }

  std::vector<double> values_;
};

inline std::ostream& operator<<(std::ostream& os, const Resources& r) {
  os << "(";
  for (std::size_t d = 0; d < r.dims(); ++d) {
    os << (d == 0 ? "" : ", ") << r[d];
  }
  return os << ")";
}

/// Resource model plugging vector bin packing into the generic placement
/// substrate (sim/resource.hpp documents the concept). Levels and demands
/// are Resources vectors; a bin fits when every dimension fits.
///
/// kIndexable: an internal tree node holds the componentwise minimum of its
/// leaf levels. fits() on that minimum is a *sound* prune — if even the
/// pointwise-best combination over the subtree cannot host the demand, no
/// single leaf can — but not exact (the minimum need not be attained by one
/// bin), so vector descents may backtrack where scalar ones never do.
/// kOrderedLevels is false: vectors have no total order, so Best/Worst Fit
/// queries do not exist for this model (DominantFit uses the scored
/// traversal instead).
struct VectorResource {
  using Level = Resources;
  using Demand = Resources;
  struct Shape {
    std::size_t dims = 0;
  };

  static constexpr bool kIndexable = true;
  static constexpr bool kOrderedLevels = false;

  static Level zeroLevel(const Shape& shape) {
    return Resources::zero(shape.dims);
  }
  static Level closedLevel(const Shape& shape) {
    return Resources(std::vector<double>(
        shape.dims, std::numeric_limits<double>::infinity()));
  }
  static bool isClosed(const Level& level) {
    return level.dims() > 0 &&
           level[0] == std::numeric_limits<double>::infinity();
  }
  static bool fits(const Level& level, const Demand& demand) {
    return level.fitsWith(demand);
  }
  static void assignMin(Level& into, const Level& other) {
    into.assignMin(other);
  }
  static void add(Level& level, const Demand& demand) { level += demand; }
  static void subtract(Level& level, const Demand& demand) { level -= demand; }
  static bool canRelease(const Level& level, const Demand& demand) {
    if (level.dims() != demand.dims()) return false;
    for (std::size_t d = 0; d < level.dims(); ++d) {
      if (!leq(demand[d], level[d])) return false;
    }
    return true;
  }
};

}  // namespace cdbp
