// Lower bounds for multi-dimensional MinUsageTime DBP.
//
// Each of the paper's Propositions 1-3 generalizes per dimension: any
// feasible packing is in particular feasible in every single dimension, so
// the strongest single-dimension bound is a valid bound for the vector
// problem.
#pragma once

#include "multidim/md_instance.hpp"

namespace cdbp {

struct MdLowerBounds {
  /// max over dimensions of the total time-space demand in that dimension.
  double demand = 0;
  /// span of the instance.
  double span = 0;
  /// max over dimensions of integral of ceil(S_d(t)) dt — the
  /// per-dimension Proposition 3 bound.
  double ceilIntegral = 0;

  double best() const;
};

MdLowerBounds mdLowerBounds(const MdInstance& instance);

}  // namespace cdbp
