#include "multidim/md_instance.hpp"

#include <algorithm>
#include <cmath>

#include "core/epsilon.hpp"
#include "core/instance.hpp"

namespace cdbp {

MdInstance::MdInstance(std::vector<MdItem> items) : items_(std::move(items)) {
  if (!items_.empty()) dims_ = items_.front().demand.dims();
  for (std::size_t i = 0; i < items_.size(); ++i) {
    MdItem& r = items_[i];
    if (r.demand.dims() != dims_ || dims_ == 0) {
      throw InstanceError("md item " + std::to_string(i) +
                          ": inconsistent or zero dimensionality");
    }
    bool anyPositive = false;
    for (double v : r.demand.values()) {
      if (!std::isfinite(v) || v < 0 || lt(kBinCapacity, v)) {
        throw InstanceError("md item " + std::to_string(i) +
                            ": coordinate out of [0, 1]: " + std::to_string(v));
      }
      anyPositive |= v > 0;
    }
    if (!anyPositive) {
      throw InstanceError("md item " + std::to_string(i) +
                          ": demand vector is all zero");
    }
    if (!std::isfinite(r.interval.lo) || !std::isfinite(r.interval.hi) ||
        !(r.interval.hi > r.interval.lo)) {
      throw InstanceError("md item " + std::to_string(i) + ": invalid interval");
    }
    r.id = static_cast<ItemId>(i);
  }
}

std::vector<MdItem> MdInstance::sortedByArrival() const {
  std::vector<MdItem> order = items_;
  std::stable_sort(order.begin(), order.end(),
                   [](const MdItem& a, const MdItem& b) {
                     if (a.arrival() != b.arrival()) return a.arrival() < b.arrival();
                     return a.id < b.id;
                   });
  return order;
}

StepFunction MdInstance::dimensionProfile(std::size_t d) const {
  StepFunction profile;
  for (const MdItem& r : items_) profile.add(r.interval, r.demand[d]);
  return profile;
}

Time MdInstance::span() const {
  IntervalSet set;
  for (const MdItem& r : items_) set.add(r.interval);
  return set.measure();
}

Time MdInstance::minDuration() const {
  Time best = kTimeInfinity;
  for (const MdItem& r : items_) best = std::min(best, r.duration());
  return items_.empty() ? 0 : best;
}

Time MdInstance::maxDuration() const {
  Time best = 0;
  for (const MdItem& r : items_) best = std::max(best, r.duration());
  return best;
}

double MdInstance::durationRatio() const {
  if (items_.empty()) return 1.0;
  return maxDuration() / minDuration();
}

std::vector<double> MdInstance::coordinateSizes(std::size_t d) const {
  std::vector<double> sizes;
  for (const MdItem& r : items_) {
    if (r.demand[d] > 0) sizes.push_back(r.demand[d]);
  }
  return sizes;
}

}  // namespace cdbp
