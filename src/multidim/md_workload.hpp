// Multi-dimensional workload generation with a correlation knob: real VM
// demand vectors are positively correlated across dimensions (big VMs are
// big in both CPU and memory); correlation 0 draws dimensions
// independently, correlation 1 makes all coordinates equal.
#pragma once

#include <cstdint>

#include "multidim/md_instance.hpp"

namespace cdbp {

struct MdWorkloadSpec {
  std::size_t numItems = 1000;
  std::size_t dims = 2;
  double arrivalRate = 4.0;   ///< Poisson arrivals per unit time
  Time minDuration = 1.0;
  double mu = 16.0;           ///< durations uniform in [Delta, mu*Delta]
  double minCoordinate = 0.02;
  double maxCoordinate = 0.8;
  double correlation = 0.5;   ///< in [0, 1]
};

MdInstance generateMdWorkload(const MdWorkloadSpec& spec, std::uint64_t seed);

}  // namespace cdbp
