// Assignment, validation and usage accounting for multi-dimensional
// packings.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/step_function.hpp"
#include "multidim/md_instance.hpp"

namespace cdbp {

class MdPacking {
 public:
  MdPacking() = default;
  MdPacking(const MdInstance& instance, std::vector<BinId> binOf);

  const MdInstance& instance() const { return *instance_; }
  BinId binOf(ItemId id) const { return binOf_[id]; }
  const std::vector<BinId>& binOf() const { return binOf_; }
  std::size_t numBins() const { return numBins_; }

  /// Usage time of one bin (span of the items placed in it).
  Time binUsage(BinId b) const { return busy_[static_cast<std::size_t>(b)].measure(); }

  /// The MinUsageTime objective.
  Time totalUsage() const;

  /// Bins that are non-empty at time t.
  std::size_t openBinsAt(Time t) const;

  /// Error description if infeasible (any dimension of any bin exceeds the
  /// unit capacity somewhere), or nullopt when valid.
  std::optional<std::string> validate() const;

 private:
  const MdInstance* instance_ = nullptr;
  std::vector<BinId> binOf_;
  std::size_t numBins_ = 0;
  std::vector<IntervalSet> busy_;                 // per bin
  std::vector<std::vector<StepFunction>> level_;  // per bin, per dimension
};

}  // namespace cdbp
