#include "online/classify_duration.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analysis/ratios.hpp"
#include "core/epsilon.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

ClassifyByDurationFF::ClassifyByDurationFF(Time base, double alpha)
    : base_(base), alpha_(alpha) {
  if (!(base > 0) || !std::isfinite(base)) {
    throw std::invalid_argument("ClassifyByDurationFF: base must be positive");
  }
  if (!(alpha > 1) || !std::isfinite(alpha)) {
    throw std::invalid_argument("ClassifyByDurationFF: alpha must exceed 1");
  }
}

ClassifyByDurationFF ClassifyByDurationFF::withKnownDurations(Time minDuration,
                                                              double mu) {
  if (!(minDuration > 0) || !(mu >= 1)) {
    throw std::invalid_argument(
        "ClassifyByDurationFF: need minDuration > 0 and mu >= 1");
  }
  std::size_t n = ratios::optimalDurationCategories(mu);
  // alpha = mu^(1/n) splits [Delta, mu*Delta] into exactly n categories.
  // Guard mu == 1 (alpha would be 1): a single category with any alpha > 1
  // behaves identically.
  double alpha = std::max(std::pow(mu, 1.0 / static_cast<double>(n)), 1.0 + 1e-9);
  return ClassifyByDurationFF(minDuration, alpha);
}

std::string ClassifyByDurationFF::name() const {
  std::ostringstream os;
  os << "CD-FF(b=" << base_ << ",alpha=" << alpha_ << ")";
  return os.str();
}

int ClassifyByDurationFF::categoryOf(Time duration) const {
  if (!(duration > 0)) {
    throw std::invalid_argument("ClassifyByDurationFF: non-positive duration");
  }
  double q = std::log(duration / base_) / std::log(alpha_);
  double nearest = std::round(q);
  if (std::fabs(q - nearest) <= 1e-9) q = nearest;
  return static_cast<int>(std::floor(q));
}

PlacementDecision ClassifyByDurationFF::place(const PlacementView& view,
                                              const Item& item) {
  int category = categoryOf(item.duration());
  CDBP_TELEM_COUNT("policy.cd_ff.fit_attempts", 1);
  BinId chosen = view.firstFitIn(category, item.size);
  if (chosen != kNewBin) return PlacementDecision::existing(chosen);
  CDBP_TELEM_COUNT("policy.cd_ff.opens", 1);
  CDBP_TELEM_HIST("policy.cd_ff.open_category", category < 0 ? 0 : category);
  return PlacementDecision::fresh(category);
}

}  // namespace cdbp
