// Policy construction: one spec-string API plus the standard rosters.
//
// Every bench main, example, and test builds policies through
// makePolicy("cdt-ff(rho=2)") instead of bespoke construction switches;
// the spec grammar is the single place policy names, parameters, and
// defaults live, and the parallel experiment runner (sim/run_many.hpp)
// fans specs across its grid because a string — unlike a PolicyPtr — can
// be instantiated freshly and independently in every worker.
#pragma once

#include <string>
#include <vector>

#include "core/instance.hpp"
#include "online/policy.hpp"

namespace cdbp {

/// Instance-derived defaults for specs that omit tuning parameters: the
/// clairvoyant classify policies fall back to their known-durations
/// optimal settings (rho = sqrt(mu)*Delta, alpha = mu^(1/n)) computed from
/// this context, and `rf` draws its seed from here.
struct PolicyContext {
  /// Minimum item duration Delta; 0 means "unknown" and makes parameter-
  /// free clairvoyant specs an error.
  Time minDuration = 0;
  /// Duration ratio mu = max/min duration.
  double mu = 1;
  /// Seed for randomized policies.
  std::uint64_t seed = 1;

  static PolicyContext forInstance(const Instance& instance,
                                   std::uint64_t seed = 1);
};

/// Builds a policy from a spec string. The grammar is
///
///   name | name(key=value, key=value, ...)
///
/// with these specs (aliases in brackets):
///
///   ff                                      First Fit
///   bf                                      Best Fit
///   wf                                      Worst Fit
///   nf                                      Next Fit
///   rf(seed=N)                              Random Fit; seed defaults to
///                                           the context seed
///   hybrid-ff(classes=N)                    Hybrid First Fit; 8 classes
///   cdt-ff(rho=X)            [cdt]          classify-by-departure-time FF;
///                                           rho defaults to sqrt(mu)*Delta
///                                           from the context
///   cd-ff(base=X, alpha=Y)   [cd]           classify-by-duration FF;
///                                           defaults to the known-durations
///                                           optimum from the context
///   combined-ff(base=X, alpha=Y,
///               rho-factor=Z)               combined classify FF; same
///                                           context defaults
///   min-ext                  [minext]       minimum rental extension
///   dep-bf                                  departure-aligned Best Fit
///
/// Throws std::invalid_argument on an unknown spec or malformed/missing
/// parameters; the message enumerates all valid specs (policySpecHelp()).
PolicyPtr makePolicy(const std::string& spec, const PolicyContext& context = {});

/// Human-readable enumeration of every valid spec, embedded in makePolicy
/// error messages and surfaced by CLI --policy error paths.
std::string policySpecHelp();

/// The non-clairvoyant baselines: FirstFit, BestFit, WorstFit, NextFit,
/// HybridFF, RandomFit(seed).
std::vector<PolicyPtr> nonClairvoyantRoster(std::uint64_t seed = 1);

/// The clairvoyant strategies of the paper at their known-durations optimal
/// parameters, plus the future-work combined strategy: CDT-FF, CD-FF,
/// Combined-FF.
std::vector<PolicyPtr> clairvoyantRoster(Time minDuration, double mu);

/// Both rosters concatenated (baselines first).
std::vector<PolicyPtr> fullRoster(Time minDuration, double mu,
                                  std::uint64_t seed = 1);

}  // namespace cdbp
