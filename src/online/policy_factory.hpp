// Convenience constructors for the standard policy roster used by the
// bench harness and the examples.
#pragma once

#include <vector>

#include "online/policy.hpp"

namespace cdbp {

/// The non-clairvoyant baselines: FirstFit, BestFit, WorstFit, NextFit,
/// HybridFF, RandomFit(seed).
std::vector<PolicyPtr> nonClairvoyantRoster(std::uint64_t seed = 1);

/// The clairvoyant strategies of the paper at their known-durations optimal
/// parameters, plus the future-work combined strategy: CDT-FF, CD-FF,
/// Combined-FF.
std::vector<PolicyPtr> clairvoyantRoster(Time minDuration, double mu);

/// Both rosters concatenated (baselines first).
std::vector<PolicyPtr> fullRoster(Time minDuration, double mu,
                                  std::uint64_t seed = 1);

}  // namespace cdbp
