// The Any Fit family of non-clairvoyant baselines (paper §1 previous work):
// First Fit, Best Fit, Worst Fit, Next Fit and a randomized Any Fit. None
// of them reads departure times; they are the yardsticks the clairvoyant
// classification strategies are measured against.
#pragma once

#include <optional>

#include "online/policy.hpp"
#include "util/rng.hpp"

namespace cdbp {

/// First Fit: the earliest-opened bin that can accommodate the item;
/// otherwise a new bin. Competitive ratio mu + 4 (Tang et al. 2016).
class FirstFitPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "FirstFit"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  // No shardKey: the global first-fit scan reads every category's bins.
  PolicyPtr clone() const override { return std::make_unique<FirstFitPolicy>(); }
};

/// Best Fit: the fitting bin with the highest level (smallest residual
/// capacity); ties to the earliest-opened. Unbounded competitive ratio for
/// MinUsageTime DBP (Li et al.), included as a cautionary baseline.
class BestFitPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "BestFit"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  PolicyPtr clone() const override { return std::make_unique<BestFitPolicy>(); }
};

/// Worst Fit: the fitting bin with the lowest level; ties to the
/// earliest-opened.
class WorstFitPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "WorstFit"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  PolicyPtr clone() const override { return std::make_unique<WorstFitPolicy>(); }
};

/// Next Fit: keeps a single current bin; items that do not fit it open a
/// new current bin (previous bins stay open until they empty but receive no
/// further items). Competitive ratio <= 2*mu + 1 (Kamali & Lopez-Ortiz).
class NextFitPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "NextFit"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  void reset() override { current_.reset(); }
  // No shardKey: current_ tracks global bin ids via view.binsOpened().
  PolicyPtr clone() const override { return std::make_unique<NextFitPolicy>(); }

 private:
  std::optional<BinId> current_;
};

/// Random Fit: a uniformly random fitting bin (a valid Any Fit algorithm —
/// it never opens a bin while some open bin fits). Deterministic under a
/// fixed seed.
class RandomFitPolicy : public OnlinePolicy {
 public:
  explicit RandomFitPolicy(std::uint64_t seed) : seed_(seed), rng_(seed) {}
  std::string name() const override { return "RandomFit"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  void reset() override { rng_ = Rng(seed_); }
  PolicyPtr clone() const override {
    return std::make_unique<RandomFitPolicy>(seed_);
  }

 private:
  std::uint64_t seed_;
  Rng rng_;
};

}  // namespace cdbp
