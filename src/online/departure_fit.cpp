#include "online/departure_fit.hpp"

#include <cmath>

namespace cdbp {

PlacementDecision MinExtensionPolicy::place(const PlacementView& view,
                                            const Item& item) {
  BinId best = kNewBin;
  double bestCost = item.duration();  // cost of a fresh bin
  double bestLevel = -1;
  // cdbp-lint: allow(raw-bin-loop): extension cost keys on policy-private departure tracking, not the bin level
  for (BinId id : view.openBins()) {
    if (!view.fits(id, item.size)) continue;
    double binEnd = tracker_.latestDeparture(id);
    double cost = std::max(0.0, item.departure() - binEnd);
    // Strictly cheaper wins; equal cost prefers the fuller bin (leaves
    // more aggregate headroom elsewhere).
    double level = view.info(id).level;
    if (cost < bestCost - 1e-12 ||
        (std::fabs(cost - bestCost) <= 1e-12 && level > bestLevel)) {
      bestCost = cost;
      bestLevel = level;
      best = id;
    }
  }
  if (best == kNewBin) {
    tracker_.record(static_cast<BinId>(view.binsOpened()), item.departure());
    return PlacementDecision::fresh(0);
  }
  tracker_.record(best, item.departure());
  return PlacementDecision::existing(best);
}

PlacementDecision DepartureAlignedBestFit::place(const PlacementView& view,
                                                 const Item& item) {
  BinId best = kNewBin;
  double bestDistance = kTimeInfinity;
  // cdbp-lint: allow(raw-bin-loop): alignment distance keys on policy-private departure tracking, not the bin level
  for (BinId id : view.openBins()) {
    if (!view.fits(id, item.size)) continue;
    double distance =
        std::fabs(tracker_.latestDeparture(id) - item.departure());
    if (distance < bestDistance) {
      bestDistance = distance;
      best = id;
    }
  }
  if (best == kNewBin) {
    tracker_.record(static_cast<BinId>(view.binsOpened()), item.departure());
    return PlacementDecision::fresh(0);
  }
  tracker_.record(best, item.departure());
  return PlacementDecision::existing(best);
}

}  // namespace cdbp
