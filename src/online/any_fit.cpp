#include "online/any_fit.hpp"

#include "telemetry/telemetry.hpp"

namespace cdbp {

PlacementDecision FirstFitPolicy::place(const PlacementView& view,
                                        const Item& item) {
  // One indexed query per placement; the per-bin probe cost (linear
  // engine) or O(log B) query cost (indexed engine) shows up under
  // sim.fit_checks.
  CDBP_TELEM_COUNT("policy.any_fit.fit_attempts", 1);
  BinId chosen = view.firstFit(item.size);
  if (chosen != kNewBin) return PlacementDecision::existing(chosen);
  CDBP_TELEM_COUNT("policy.any_fit.opens", 1);
  return PlacementDecision::fresh(0);
}

PlacementDecision BestFitPolicy::place(const PlacementView& view,
                                       const Item& item) {
  BinId best = view.bestFit(item.size);
  if (best == kNewBin) return PlacementDecision::fresh(0);
  return PlacementDecision::existing(best);
}

PlacementDecision WorstFitPolicy::place(const PlacementView& view,
                                        const Item& item) {
  BinId best = view.worstFit(item.size);
  if (best == kNewBin) return PlacementDecision::fresh(0);
  return PlacementDecision::existing(best);
}

PlacementDecision NextFitPolicy::place(const PlacementView& view,
                                       const Item& item) {
  if (current_.has_value() && view.info(*current_).open &&
      view.fits(*current_, item.size)) {
    return PlacementDecision::existing(*current_);
  }
  // The simulator assigns the fresh bin the next global id.
  current_ = static_cast<BinId>(view.binsOpened());
  return PlacementDecision::fresh(0);
}

PlacementDecision RandomFitPolicy::place(const PlacementView& view,
                                         const Item& item) {
  std::vector<BinId> feasible;
  // cdbp-lint: allow(raw-bin-loop): uniform sampling needs the full feasible set, not one query answer
  for (BinId id : view.openBins()) {
    if (view.fits(id, item.size)) feasible.push_back(id);
  }
  if (feasible.empty()) return PlacementDecision::fresh(0);
  std::size_t pick = static_cast<std::size_t>(
      rng_.uniformInt(0, feasible.size() - 1));
  return PlacementDecision::existing(feasible[pick]);
}

}  // namespace cdbp
