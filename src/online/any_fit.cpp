#include "online/any_fit.hpp"

#include "telemetry/telemetry.hpp"

namespace cdbp {

PlacementDecision FirstFitPolicy::place(const BinManager& bins, const Item& item) {
  std::uint64_t attempts = 0;
  BinId chosen = kNewBin;
  for (BinId id : bins.openBins()) {
    ++attempts;
    if (bins.fits(id, item.size)) {
      chosen = id;
      break;
    }
  }
  CDBP_TELEM_COUNT("policy.any_fit.fit_attempts", attempts);
  if (chosen != kNewBin) return PlacementDecision::existing(chosen);
  CDBP_TELEM_COUNT("policy.any_fit.opens", 1);
  return PlacementDecision::fresh(0);
}

PlacementDecision BestFitPolicy::place(const BinManager& bins, const Item& item) {
  BinId best = kNewBin;
  Size bestLevel = -1;
  for (BinId id : bins.openBins()) {
    if (!bins.fits(id, item.size)) continue;
    Size level = bins.info(id).level;
    if (level > bestLevel) {  // strict: ties keep the earliest-opened bin
      bestLevel = level;
      best = id;
    }
  }
  if (best == kNewBin) return PlacementDecision::fresh(0);
  return PlacementDecision::existing(best);
}

PlacementDecision WorstFitPolicy::place(const BinManager& bins, const Item& item) {
  BinId best = kNewBin;
  // cdbp-lint: allow(capacity-compare): sentinel above any feasible level, not a capacity decision
  Size bestLevel = 2 * kBinCapacity;
  for (BinId id : bins.openBins()) {
    if (!bins.fits(id, item.size)) continue;
    Size level = bins.info(id).level;
    if (level < bestLevel) {
      bestLevel = level;
      best = id;
    }
  }
  if (best == kNewBin) return PlacementDecision::fresh(0);
  return PlacementDecision::existing(best);
}

PlacementDecision NextFitPolicy::place(const BinManager& bins, const Item& item) {
  if (current_.has_value() && bins.info(*current_).open &&
      bins.fits(*current_, item.size)) {
    return PlacementDecision::existing(*current_);
  }
  // The simulator assigns the fresh bin the next global id.
  current_ = static_cast<BinId>(bins.binsOpened());
  return PlacementDecision::fresh(0);
}

PlacementDecision RandomFitPolicy::place(const BinManager& bins, const Item& item) {
  std::vector<BinId> feasible;
  for (BinId id : bins.openBins()) {
    if (bins.fits(id, item.size)) feasible.push_back(id);
  }
  if (feasible.empty()) return PlacementDecision::fresh(0);
  std::size_t pick = static_cast<std::size_t>(
      rng_.uniformInt(0, feasible.size() - 1));
  return PlacementDecision::existing(feasible[pick]);
}

}  // namespace cdbp
