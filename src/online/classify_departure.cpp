#include "online/classify_departure.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/epsilon.hpp"
#include "telemetry/telemetry.hpp"

namespace cdbp {

ClassifyByDepartureFF::ClassifyByDepartureFF(Time rho) : rho_(rho) {
  if (!(rho > 0) || !std::isfinite(rho)) {
    throw std::invalid_argument("ClassifyByDepartureFF: rho must be positive");
  }
}

ClassifyByDepartureFF ClassifyByDepartureFF::withKnownDurations(Time minDuration,
                                                                double mu) {
  if (!(minDuration > 0) || !(mu >= 1)) {
    throw std::invalid_argument(
        "ClassifyByDepartureFF: need minDuration > 0 and mu >= 1");
  }
  return ClassifyByDepartureFF(std::sqrt(mu) * minDuration);
}

std::string ClassifyByDepartureFF::name() const {
  std::ostringstream os;
  os << "CDT-FF(rho=" << rho_ << ")";
  return os.str();
}

long long ClassifyByDepartureFF::windowOf(Time departure) const {
  double q = departure / rho_;
  double nearest = std::round(q);
  if (std::fabs(q - nearest) <= kTimeEps) q = nearest;
  // Window k holds departures in (k*rho, (k+1)*rho].
  return static_cast<long long>(std::ceil(q)) - 1;
}

PlacementDecision ClassifyByDepartureFF::place(const PlacementView& view,
                                               const Item& item) {
  // Window indices are bounded by span/rho, comfortably within int for any
  // instance a simulation run produces; assert instead of silently
  // truncating.
  long long window = windowOf(item.departure());
  if (window > INT32_MAX || window < INT32_MIN) {
    throw std::invalid_argument("ClassifyByDepartureFF: window index overflow");
  }
  int category = static_cast<int>(window);
  CDBP_TELEM_COUNT("policy.cdt_ff.fit_attempts", 1);
  BinId chosen = view.firstFitIn(category, item.size);
  if (chosen != kNewBin) return PlacementDecision::existing(chosen);
  CDBP_TELEM_COUNT("policy.cdt_ff.opens", 1);
  CDBP_TELEM_HIST("policy.cdt_ff.open_category",
                  category < 0 ? 0 : category);
  return PlacementDecision::fresh(category);
}

}  // namespace cdbp
