// Combined classification First Fit — the algorithm the paper sketches as
// future work in §5.4/§6: classify items first by duration (to cap the
// per-class duration ratio at alpha), then sub-classify each duration class
// by departure time.
//
// Within duration class i the durations lie in [b*alpha^i, b*alpha^(i+1)),
// i.e. a class-local ratio of alpha with class-local minimum duration
// Delta_i = b*alpha^i, so the Theorem 4 optimum suggests a class-local
// window length rho_i = sqrt(alpha) * Delta_i. Heuristically this combines
// the small-mu strength of classify-by-departure-time with the large-mu
// strength of classify-by-duration.
#pragma once

#include <map>
#include <utility>

#include "online/policy.hpp"

namespace cdbp {

class CombinedClassifyFF : public OnlinePolicy {
 public:
  /// `base` and `alpha` define the duration classes as in
  /// ClassifyByDurationFF; `rhoFactor` scales each class's departure window
  /// rho_i = rhoFactor * sqrt(alpha) * base * alpha^i (rhoFactor = 1 is the
  /// Theorem 4 optimum applied per class).
  CombinedClassifyFF(Time base, double alpha, double rhoFactor = 1.0);

  /// Known-durations parameterization: base = Delta, alpha chosen as in
  /// ClassifyByDurationFF::withKnownDurations.
  static CombinedClassifyFF withKnownDurations(Time minDuration, double mu);

  std::string name() const override;
  bool clairvoyant() const override { return true; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  void reset() override { denseCategory_.clear(); }

  /// The (duration class, departure window) pair mixed into one key. A
  /// mixing collision is harmless: it only co-locates two classes in the
  /// same shard, whose clone still keeps their bin pools apart through its
  /// own dense numbering — it never merges pools. The dense category *ids*
  /// are shard-local first-seen order, so they differ from a single-pool
  /// run; the bins behind them are identical.
  std::optional<long long> shardKey(const Item& item) const override {
    auto [durClass, window] = classOf(item);
    auto mixed = static_cast<unsigned long long>(window) +
                 0x9E3779B97F4A7C15ULL *
                     (static_cast<unsigned long long>(
                          static_cast<unsigned>(durClass)) +
                      1);
    return static_cast<long long>(mixed);
  }
  PolicyPtr clone() const override {
    return std::make_unique<CombinedClassifyFF>(base_, alpha_, rhoFactor_);
  }

  /// (duration class, departure window) of an item; exposed for tests.
  std::pair<int, long long> classOf(const Item& item) const;

 private:
  Time base_;
  double alpha_;
  double rhoFactor_;
  std::map<std::pair<int, long long>, int> denseCategory_;
};

}  // namespace cdbp
