// The online packing policy interface.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/item.hpp"
#include "sim/placement_view.hpp"

namespace cdbp {

/// A placement decision: an existing open bin (`bin >= 0`, category
/// ignored) or a request for a new bin (`bin == kNewBin`) tagged with the
/// policy's category for the item.
struct PlacementDecision {
  BinId bin = kNewBin;
  int category = 0;

  static PlacementDecision existing(BinId id) { return {id, 0}; }
  static PlacementDecision fresh(int category) { return {kNewBin, category}; }
};

/// Base class for online packing policies.
///
/// The simulator calls place() once per item, in arrival order, after
/// processing all departures up to the arrival instant. The decision is
/// irrevocable (no migration). A policy must return a feasible bin — the
/// simulator validates and throws on violations, since an infeasible
/// decision is a policy bug, not an input condition.
///
/// Policies see the open-bin state through a PlacementView, not the
/// BinManager itself: the view exposes the indexed first/best/worst-fit
/// queries (O(log B) under the default engine), the per-category open
/// lists for bespoke selection rules, per-bin metadata, and the arrival
/// clock `now()` — nothing mutation-adjacent. Prefer the indexed queries;
/// they answer in O(log B) and stay bit-identical to the linear scans
/// (DESIGN.md §9.1).
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  /// Human-readable name used in reports ("FirstFit", "CDT-FF(rho=2)", ...).
  virtual std::string name() const = 0;

  /// True when the policy reads item departure times (clairvoyant setting).
  virtual bool clairvoyant() const = 0;

  virtual PlacementDecision place(const PlacementView& view,
                                  const Item& item) = 0;

  /// Clears internal state so the policy can be reused on a new instance.
  virtual void reset() {}

  /// Category-partition key for the sharded engine (sim/sharded.hpp).
  ///
  /// A policy whose bins partition by a pure function of the item — the
  /// classification strategies, where two items with different keys can
  /// never share a bin and a placement decision depends only on the open
  /// bins of the item's own key — returns that key here; the sharded
  /// engine then runs each key group on its own worker with its own bin
  /// pool, bit-identical to the single-pool run. The default (nullopt)
  /// declares the policy non-partitionable (its decisions may read global
  /// state: cross-category scans, binsOpened() arithmetic) and the sharded
  /// engine falls back to a single shard.
  ///
  /// Contract: the result must be the same for every call on the same item
  /// and must be engaged either for all items or for none. When engaged,
  /// place() must depend only on `item` plus the open-bin state of bins
  /// whose items share `item`'s key (it must not read openBins(),
  /// binsOpened(), openCount() or another key's category lists).
  virtual std::optional<long long> shardKey(const Item& item) const {
    (void)item;
    return std::nullopt;
  }

  /// A fresh policy instance with identical configuration and pristine
  /// state, for the sharded engine's per-shard workers. The default
  /// (nullptr) declares the policy non-cloneable; a partitioned sharded
  /// run requires it, the single-shard fallback does not.
  virtual std::unique_ptr<OnlinePolicy> clone() const { return nullptr; }
};

using PolicyPtr = std::unique_ptr<OnlinePolicy>;

}  // namespace cdbp
