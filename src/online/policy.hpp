// The online packing policy interface.
#pragma once

#include <memory>
#include <string>

#include "core/item.hpp"
#include "sim/placement_view.hpp"

namespace cdbp {

/// A placement decision: an existing open bin (`bin >= 0`, category
/// ignored) or a request for a new bin (`bin == kNewBin`) tagged with the
/// policy's category for the item.
struct PlacementDecision {
  BinId bin = kNewBin;
  int category = 0;

  static PlacementDecision existing(BinId id) { return {id, 0}; }
  static PlacementDecision fresh(int category) { return {kNewBin, category}; }
};

/// Base class for online packing policies.
///
/// The simulator calls place() once per item, in arrival order, after
/// processing all departures up to the arrival instant. The decision is
/// irrevocable (no migration). A policy must return a feasible bin — the
/// simulator validates and throws on violations, since an infeasible
/// decision is a policy bug, not an input condition.
///
/// Policies see the open-bin state through a PlacementView, not the
/// BinManager itself: the view exposes the indexed first/best/worst-fit
/// queries (O(log B) under the default engine), the per-category open
/// lists for bespoke selection rules, per-bin metadata, and the arrival
/// clock `now()` — nothing mutation-adjacent. Prefer the indexed queries;
/// they answer in O(log B) and stay bit-identical to the linear scans
/// (DESIGN.md §9.1).
class OnlinePolicy {
 public:
  virtual ~OnlinePolicy() = default;

  /// Human-readable name used in reports ("FirstFit", "CDT-FF(rho=2)", ...).
  virtual std::string name() const = 0;

  /// True when the policy reads item departure times (clairvoyant setting).
  virtual bool clairvoyant() const = 0;

  virtual PlacementDecision place(const PlacementView& view,
                                  const Item& item) = 0;

  /// Clears internal state so the policy can be reused on a new instance.
  virtual void reset() {}
};

using PolicyPtr = std::unique_ptr<OnlinePolicy>;

}  // namespace cdbp
