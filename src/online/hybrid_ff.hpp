// Hybrid First Fit (Li et al.): the strongest non-clairvoyant baseline
// mentioned by the paper. Items are classified by size into geometric
// classes — class i holds sizes in (2^-(i+1), 2^-i] — and First Fit packs
// each class into its own bins. Co-locating similar sizes keeps bins well
// filled; Li et al. prove a (8/7)mu + 55/7 competitive ratio (mu + 5 when
// mu is known).
#pragma once

#include "online/policy.hpp"

namespace cdbp {

class HybridFirstFitPolicy : public OnlinePolicy {
 public:
  /// `maxClasses` caps the number of size classes; everything smaller than
  /// 2^-maxClasses falls into the last class.
  explicit HybridFirstFitPolicy(int maxClasses = 8) : maxClasses_(maxClasses) {}

  std::string name() const override { return "HybridFF"; }
  bool clairvoyant() const override { return false; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;

  /// The size class is the category, a pure function of the item —
  /// partitionable under the sharded engine.
  std::optional<long long> shardKey(const Item& item) const override {
    return sizeClass(item.size);
  }
  PolicyPtr clone() const override {
    return std::make_unique<HybridFirstFitPolicy>(maxClasses_);
  }

  /// The size class assigned to `size`; exposed for tests.
  int sizeClass(Size size) const;

 private:
  int maxClasses_;
};

}  // namespace cdbp
