// Clairvoyant fit heuristics beyond the paper's classification strategies,
// included as ablation baselines: both exploit known departure times
// per-decision instead of per-category.
//
// MinExtension: place the item where it adds the least *known* usage time —
// an open bin whose latest known departure already covers the item extends
// by zero; a fresh bin costs the full item duration.
//
// DepartureAlignedBestFit: among fitting bins choose the one whose latest
// known departure is closest to the item's departure (the per-bin analogue
// of classify-by-departure-time, without fixed windows).
#pragma once

#include <unordered_map>

#include "online/policy.hpp"

namespace cdbp {

/// Tracks the latest known departure per open bin (policies cannot get
/// this from BinManager, which stores only levels).
class DepartureTracker {
 public:
  void record(BinId bin, Time departure) {
    Time& end = latest_[bin];
    end = std::max(end, departure);
  }

  /// Latest departure recorded for the bin (0 if never seen — callers only
  /// query bins they have placed into).
  Time latestDeparture(BinId bin) const {
    auto it = latest_.find(bin);
    return it == latest_.end() ? 0 : it->second;
  }

  void clear() { latest_.clear(); }

 private:
  std::unordered_map<BinId, Time> latest_;
};

class MinExtensionPolicy : public OnlinePolicy {
 public:
  std::string name() const override { return "MinExtension"; }
  bool clairvoyant() const override { return true; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  void reset() override { tracker_.clear(); }
  // No shardKey: scans every open bin regardless of category.
  PolicyPtr clone() const override {
    return std::make_unique<MinExtensionPolicy>();
  }

 private:
  DepartureTracker tracker_;
};

class DepartureAlignedBestFit : public OnlinePolicy {
 public:
  std::string name() const override { return "DepartureAlignedBF"; }
  bool clairvoyant() const override { return true; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;
  void reset() override { tracker_.clear(); }
  PolicyPtr clone() const override {
    return std::make_unique<DepartureAlignedBestFit>();
  }

 private:
  DepartureTracker tracker_;
};

}  // namespace cdbp
