// Classify-by-departure-time First Fit (paper §5.2, Theorem 4).
//
// Time is cut into windows of length rho; an item's category is the window
// its (known) departure time falls into: category k holds departures in
// (k*rho, (k+1)*rho]. First Fit packs each category into its own bins, so
// all items sharing a bin depart within rho of each other and the bin
// closes promptly.
//
// Competitive ratio rho/Delta + mu*Delta/rho + 3; choosing rho =
// sqrt(mu)*Delta (durations known) gives 2*sqrt(mu) + 3.
#pragma once

#include "online/policy.hpp"

namespace cdbp {

class ClassifyByDepartureFF : public OnlinePolicy {
 public:
  /// `rho` is the departure-window length; must be positive.
  explicit ClassifyByDepartureFF(Time rho);

  /// The optimal parameterization when the minimum duration Delta and the
  /// duration ratio mu are known in advance: rho = sqrt(mu) * Delta.
  static ClassifyByDepartureFF withKnownDurations(Time minDuration, double mu);

  std::string name() const override;
  bool clairvoyant() const override { return true; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;

  /// The departure window is the category, and the category is a pure
  /// function of the item — the precondition the sharded engine's
  /// partitioned mode rests on.
  std::optional<long long> shardKey(const Item& item) const override {
    return windowOf(item.departure());
  }
  PolicyPtr clone() const override {
    return std::make_unique<ClassifyByDepartureFF>(rho_);
  }

  /// Window index of a departure time; exposed for tests. Windows follow
  /// the paper's convention of half-open-from-below buckets
  /// (k*rho, (k+1)*rho].
  long long windowOf(Time departure) const;

  Time rho() const { return rho_; }

 private:
  Time rho_;
};

}  // namespace cdbp
