#include "online/hybrid_ff.hpp"

#include "core/epsilon.hpp"

namespace cdbp {

int HybridFirstFitPolicy::sizeClass(Size size) const {
  double bound = 0.5;  // class 0: (1/2, 1]
  for (int cls = 0; cls < maxClasses_ - 1; ++cls) {
    if (lt(bound, size)) return cls;
    bound /= 2;
  }
  return maxClasses_ - 1;
}

PlacementDecision HybridFirstFitPolicy::place(const PlacementView& view,
                                              const Item& item) {
  int category = sizeClass(item.size);
  BinId chosen = view.firstFitIn(category, item.size);
  if (chosen != kNewBin) return PlacementDecision::existing(chosen);
  return PlacementDecision::fresh(category);
}

}  // namespace cdbp
