#include "online/policy_factory.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "online/combined.hpp"
#include "online/departure_fit.hpp"
#include "online/hybrid_ff.hpp"
#include "util/parse.hpp"

namespace cdbp {

namespace {

std::string trim(const std::string& s) {
  std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

/// A parsed `name(key=value, ...)` spec with consumption tracking, so
/// unknown or misspelled parameter names are errors, not silent defaults.
struct ParsedSpec {
  std::string name;
  std::map<std::string, std::string> params;
  std::string original;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("makePolicy: " + why + " in spec '" +
                               original + "'\n" + policySpecHelp());
  }

  bool has(const std::string& key) const { return params.count(key) > 0; }

  double getDouble(const std::string& key) {
    auto it = params.find(key);
    if (it == params.end()) fail("missing parameter '" + key + "'");
    double value = 0;
    if (!tryParseDouble(it->second, value)) {
      fail("parameter '" + key + "' is not a number (got '" + it->second +
           "')");
    }
    params.erase(it);
    return value;
  }

  std::uint64_t getUint(const std::string& key) {
    auto it = params.find(key);
    if (it == params.end()) fail("missing parameter '" + key + "'");
    std::uint64_t value = 0;
    if (!tryParseUint(it->second, value)) {
      fail("parameter '" + key + "' is not a non-negative integer (got '" +
           it->second + "')");
    }
    params.erase(it);
    return value;
  }

  void finish() const {
    if (!params.empty()) {
      fail("unknown parameter '" + params.begin()->first + "'");
    }
  }
};

ParsedSpec parseSpec(const std::string& spec) {
  ParsedSpec parsed;
  parsed.original = spec;
  std::string s = trim(spec);
  if (s.empty()) parsed.fail("empty spec");
  std::size_t open = s.find('(');
  if (open == std::string::npos) {
    parsed.name = s;
    return parsed;
  }
  if (s.back() != ')') parsed.fail("missing ')'");
  parsed.name = trim(s.substr(0, open));
  std::string args = s.substr(open + 1, s.size() - open - 2);
  std::stringstream stream(args);
  std::string piece;
  while (std::getline(stream, piece, ',')) {
    piece = trim(piece);
    if (piece.empty()) continue;
    std::size_t eq = piece.find('=');
    if (eq == std::string::npos) {
      parsed.fail("parameter '" + piece + "' is not key=value");
    }
    std::string key = trim(piece.substr(0, eq));
    std::string value = trim(piece.substr(eq + 1));
    if (key.empty() || value.empty()) {
      parsed.fail("parameter '" + piece + "' is not key=value");
    }
    if (!parsed.params.emplace(key, value).second) {
      parsed.fail("duplicate parameter '" + key + "'");
    }
  }
  return parsed;
}

/// Context with known durations, or an error pointing at the spec that
/// needed it.
void requireDurations(const ParsedSpec& spec, const PolicyContext& context) {
  if (!(context.minDuration > 0) || !(context.mu >= 1)) {
    spec.fail(
        "no explicit parameters and no known-durations context "
        "(pass the parameters or a PolicyContext with minDuration/mu)");
  }
}

}  // namespace

PolicyContext PolicyContext::forInstance(const Instance& instance,
                                         std::uint64_t seed) {
  PolicyContext context;
  context.minDuration = instance.minDuration();
  context.mu = instance.durationRatio();
  context.seed = seed;
  return context;
}

std::string policySpecHelp() {
  return
      "valid policy specs (defaults from the PolicyContext in [brackets]):\n"
      "  ff                    First Fit\n"
      "  bf                    Best Fit\n"
      "  wf                    Worst Fit\n"
      "  nf                    Next Fit\n"
      "  rf(seed=N)            Random Fit [seed=context seed]\n"
      "  hybrid-ff(classes=N)  Hybrid First Fit [classes=8]\n"
      "  cdt-ff(rho=X)         classify-by-departure-time FF "
      "[rho=sqrt(mu)*Delta]  (alias: cdt)\n"
      "  cd-ff(base=X,alpha=Y) classify-by-duration FF "
      "[known-durations optimum]  (alias: cd)\n"
      "  combined-ff(base=X,alpha=Y,rho-factor=Z) combined classify FF "
      "[known-durations optimum]\n"
      "  min-ext               minimum rental extension  (alias: minext)\n"
      "  dep-bf                departure-aligned Best Fit\n";
}

PolicyPtr makePolicy(const std::string& spec, const PolicyContext& context) {
  ParsedSpec parsed = parseSpec(spec);
  const std::string& name = parsed.name;

  if (name == "ff") {
    parsed.finish();
    return std::make_unique<FirstFitPolicy>();
  }
  if (name == "bf") {
    parsed.finish();
    return std::make_unique<BestFitPolicy>();
  }
  if (name == "wf") {
    parsed.finish();
    return std::make_unique<WorstFitPolicy>();
  }
  if (name == "nf") {
    parsed.finish();
    return std::make_unique<NextFitPolicy>();
  }
  if (name == "rf") {
    std::uint64_t seed = parsed.has("seed") ? parsed.getUint("seed")
                                            : context.seed;
    parsed.finish();
    return std::make_unique<RandomFitPolicy>(seed);
  }
  if (name == "hybrid-ff") {
    int classes = parsed.has("classes")
                      ? static_cast<int>(parsed.getUint("classes"))
                      : 8;
    parsed.finish();
    if (classes < 1) parsed.fail("'classes' must be at least 1");
    return std::make_unique<HybridFirstFitPolicy>(classes);
  }
  if (name == "cdt-ff" || name == "cdt") {
    if (parsed.has("rho")) {
      double rho = parsed.getDouble("rho");
      parsed.finish();
      return std::make_unique<ClassifyByDepartureFF>(rho);
    }
    parsed.finish();
    requireDurations(parsed, context);
    return std::make_unique<ClassifyByDepartureFF>(
        ClassifyByDepartureFF::withKnownDurations(context.minDuration,
                                                  context.mu));
  }
  if (name == "cd-ff" || name == "cd") {
    if (parsed.has("base") || parsed.has("alpha")) {
      double base = parsed.getDouble("base");
      double alpha = parsed.getDouble("alpha");
      parsed.finish();
      return std::make_unique<ClassifyByDurationFF>(base, alpha);
    }
    parsed.finish();
    requireDurations(parsed, context);
    return std::make_unique<ClassifyByDurationFF>(
        ClassifyByDurationFF::withKnownDurations(context.minDuration,
                                                 context.mu));
  }
  if (name == "combined-ff") {
    if (parsed.has("base") || parsed.has("alpha")) {
      double base = parsed.getDouble("base");
      double alpha = parsed.getDouble("alpha");
      double rhoFactor =
          parsed.has("rho-factor") ? parsed.getDouble("rho-factor") : 1.0;
      parsed.finish();
      return std::make_unique<CombinedClassifyFF>(base, alpha, rhoFactor);
    }
    parsed.finish();
    requireDurations(parsed, context);
    return std::make_unique<CombinedClassifyFF>(
        CombinedClassifyFF::withKnownDurations(context.minDuration,
                                               context.mu));
  }
  if (name == "min-ext" || name == "minext") {
    parsed.finish();
    return std::make_unique<MinExtensionPolicy>();
  }
  if (name == "dep-bf") {
    parsed.finish();
    return std::make_unique<DepartureAlignedBestFit>();
  }
  parsed.fail("unknown policy '" + name + "'");
}

std::vector<PolicyPtr> nonClairvoyantRoster(std::uint64_t seed) {
  PolicyContext context;
  context.seed = seed;
  std::vector<PolicyPtr> roster;
  for (const char* spec : {"ff", "bf", "wf", "nf", "hybrid-ff", "rf"}) {
    roster.push_back(makePolicy(spec, context));
  }
  return roster;
}

std::vector<PolicyPtr> clairvoyantRoster(Time minDuration, double mu) {
  PolicyContext context;
  context.minDuration = minDuration;
  context.mu = mu;
  std::vector<PolicyPtr> roster;
  for (const char* spec : {"cdt-ff", "cd-ff", "combined-ff"}) {
    roster.push_back(makePolicy(spec, context));
  }
  return roster;
}

std::vector<PolicyPtr> fullRoster(Time minDuration, double mu,
                                  std::uint64_t seed) {
  std::vector<PolicyPtr> roster = nonClairvoyantRoster(seed);
  for (PolicyPtr& p : clairvoyantRoster(minDuration, mu)) {
    roster.push_back(std::move(p));
  }
  return roster;
}

}  // namespace cdbp
