#include "online/policy_factory.hpp"

#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "online/combined.hpp"
#include "online/hybrid_ff.hpp"

namespace cdbp {

std::vector<PolicyPtr> nonClairvoyantRoster(std::uint64_t seed) {
  std::vector<PolicyPtr> roster;
  roster.push_back(std::make_unique<FirstFitPolicy>());
  roster.push_back(std::make_unique<BestFitPolicy>());
  roster.push_back(std::make_unique<WorstFitPolicy>());
  roster.push_back(std::make_unique<NextFitPolicy>());
  roster.push_back(std::make_unique<HybridFirstFitPolicy>());
  roster.push_back(std::make_unique<RandomFitPolicy>(seed));
  return roster;
}

std::vector<PolicyPtr> clairvoyantRoster(Time minDuration, double mu) {
  std::vector<PolicyPtr> roster;
  roster.push_back(std::make_unique<ClassifyByDepartureFF>(
      ClassifyByDepartureFF::withKnownDurations(minDuration, mu)));
  roster.push_back(std::make_unique<ClassifyByDurationFF>(
      ClassifyByDurationFF::withKnownDurations(minDuration, mu)));
  roster.push_back(std::make_unique<CombinedClassifyFF>(
      CombinedClassifyFF::withKnownDurations(minDuration, mu)));
  return roster;
}

std::vector<PolicyPtr> fullRoster(Time minDuration, double mu,
                                  std::uint64_t seed) {
  std::vector<PolicyPtr> roster = nonClairvoyantRoster(seed);
  for (PolicyPtr& p : clairvoyantRoster(minDuration, mu)) {
    roster.push_back(std::move(p));
  }
  return roster;
}

}  // namespace cdbp
