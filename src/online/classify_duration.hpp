// Classify-by-duration First Fit (paper §5.3, Theorem 5).
//
// Items are classified into geometric duration categories: with base b and
// ratio alpha, category i holds durations in [b*alpha^(i-1), b*alpha^i).
// First Fit packs each category separately, bounding the per-category
// duration ratio by alpha; by the (mu+3)d + span First Fit inequality this
// yields a competitive ratio of alpha + ceil(log_alpha(mu)) + 4, and with
// known durations (b = Delta, alpha = mu^(1/n)) min_n mu^(1/n) + n + 3.
#pragma once

#include "online/policy.hpp"

namespace cdbp {

class ClassifyByDurationFF : public OnlinePolicy {
 public:
  /// Geometric classification with the given base duration and ratio
  /// alpha > 1.
  ClassifyByDurationFF(Time base, double alpha);

  /// The optimal parameterization when Delta and mu are known: base =
  /// Delta and alpha = mu^(1/n) with n = argmin_n mu^(1/n) + n + 3, giving
  /// exactly n categories.
  static ClassifyByDurationFF withKnownDurations(Time minDuration, double mu);

  std::string name() const override;
  bool clairvoyant() const override { return true; }
  PlacementDecision place(const PlacementView& view, const Item& item) override;

  /// The geometric duration class is the category, a pure function of the
  /// item — partitionable under the sharded engine.
  std::optional<long long> shardKey(const Item& item) const override {
    return categoryOf(item.duration());
  }
  PolicyPtr clone() const override {
    return std::make_unique<ClassifyByDurationFF>(base_, alpha_);
  }

  /// Category index of a duration (0-based: category i holds durations in
  /// [base*alpha^i, base*alpha^(i+1))). Exposed for tests.
  int categoryOf(Time duration) const;

  Time base() const { return base_; }
  double alpha() const { return alpha_; }

 private:
  Time base_;
  double alpha_;
};

}  // namespace cdbp
