#include "online/combined.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "analysis/ratios.hpp"

namespace cdbp {

CombinedClassifyFF::CombinedClassifyFF(Time base, double alpha, double rhoFactor)
    : base_(base), alpha_(alpha), rhoFactor_(rhoFactor) {
  if (!(base > 0) || !(alpha > 1) || !(rhoFactor > 0)) {
    throw std::invalid_argument(
        "CombinedClassifyFF: need base > 0, alpha > 1, rhoFactor > 0");
  }
}

CombinedClassifyFF CombinedClassifyFF::withKnownDurations(Time minDuration,
                                                          double mu) {
  if (!(minDuration > 0) || !(mu >= 1)) {
    throw std::invalid_argument(
        "CombinedClassifyFF: need minDuration > 0 and mu >= 1");
  }
  std::size_t n = ratios::optimalDurationCategories(mu);
  double alpha = std::max(std::pow(mu, 1.0 / static_cast<double>(n)), 1.0 + 1e-9);
  return CombinedClassifyFF(minDuration, alpha);
}

std::string CombinedClassifyFF::name() const {
  std::ostringstream os;
  os << "Combined-FF(b=" << base_ << ",alpha=" << alpha_ << ")";
  return os.str();
}

std::pair<int, long long> CombinedClassifyFF::classOf(const Item& item) const {
  double q = std::log(item.duration() / base_) / std::log(alpha_);
  double nearest = std::round(q);
  if (std::fabs(q - nearest) <= 1e-9) q = nearest;
  int durClass = static_cast<int>(std::floor(q));

  double classMinDuration = base_ * std::pow(alpha_, durClass);
  double rho = rhoFactor_ * std::sqrt(alpha_) * classMinDuration;
  double w = item.departure() / rho;
  double nearestW = std::round(w);
  if (std::fabs(w - nearestW) <= 1e-9) w = nearestW;
  long long window = static_cast<long long>(std::ceil(w)) - 1;
  return {durClass, window};
}

PlacementDecision CombinedClassifyFF::place(const PlacementView& view,
                                            const Item& item) {
  auto key = classOf(item);
  auto [it, inserted] =
      denseCategory_.emplace(key, static_cast<int>(denseCategory_.size()));
  int category = it->second;
  BinId chosen = view.firstFitIn(category, item.size);
  if (chosen != kNewBin) return PlacementDecision::existing(chosen);
  return PlacementDecision::fresh(category);
}

}  // namespace cdbp
