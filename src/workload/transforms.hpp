// Instance transformations: time scaling/shifting, size perturbation,
// merging and filtering. Besides trace preparation, these power the
// metamorphic property tests — e.g. every algorithm's usage must scale
// linearly under time dilation, and packing decisions must be invariant
// under time shifts.
#pragma once

#include <cstdint>
#include <functional>

#include "core/instance.hpp"

namespace cdbp {

/// New instance with every time multiplied by `factor` (> 0). Usage of any
/// reasonable algorithm scales by the same factor.
Instance scaleTime(const Instance& instance, double factor);

/// New instance with every time shifted by `offset`. Shift-invariant
/// algorithms (everything in this repo except the fixed-origin
/// classify-by-departure windows) produce identical assignments.
Instance shiftTime(const Instance& instance, Time offset);

/// Multiplies every size by `factor`, clamping into (0, 1].
Instance scaleSizes(const Instance& instance, double factor);

/// Concatenates two instances (ids are renumbered).
Instance mergeInstances(const Instance& a, const Instance& b);

/// Keeps the items matching the predicate; ids are renumbered.
Instance filterItems(const Instance& instance,
                     const std::function<bool(const Item&)>& keep);

/// Splits the instance at time `t`: items active strictly before t in the
/// first part, the rest in the second. Items straddling t go to the first.
std::pair<Instance, Instance> splitAt(const Instance& instance, Time t);

}  // namespace cdbp
