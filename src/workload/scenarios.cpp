#include "workload/scenarios.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace cdbp {

Instance cloudGamingSessions(const CloudGamingSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder builder;
  Time t = 0;
  constexpr double kMinutesPerDay = 24.0 * 60.0;
  for (std::size_t i = 0; i < spec.numSessions; ++i) {
    // Thinned Poisson process: the instantaneous rate follows a diurnal
    // sine with peak at spec.peakArrivalsPerMinute and trough at 10% of it.
    for (;;) {
      t += rng.exponential(1.0 / spec.peakArrivalsPerMinute);
      double phase = 2.0 * 3.141592653589793 * (t / kMinutesPerDay);
      double relativeRate = 0.55 + 0.45 * std::sin(phase);  // in [0.1, 1]
      if (rng.chance(relativeRate)) break;
    }
    double length = spec.medianSessionMinutes *
                    rng.logNormal(0.0, spec.sessionSigma);
    length = std::clamp(length, spec.minSessionMinutes, spec.maxSessionMinutes);
    Size share = spec.instanceShares[static_cast<std::size_t>(
        rng.uniformInt(0, spec.instanceShares.size() - 1))];
    builder.add(share, t, t + length);
  }
  return builder.build();
}

Instance batchAnalyticsJobs(const BatchAnalyticsSpec& spec, std::uint64_t seed) {
  Rng rng(seed);
  InstanceBuilder builder;
  for (std::size_t tmpl = 0; tmpl < spec.numTemplates; ++tmpl) {
    // Template-stable characteristics: recurring jobs look the same run
    // after run, which is what makes their departure times predictable.
    double offset = rng.uniform(0, spec.periodMinutes * (1.0 - spec.maxRunFraction));
    double duration = spec.periodMinutes *
                      rng.uniform(spec.minRunFraction, spec.maxRunFraction);
    Size share = rng.uniform(0.05, 0.6);
    for (std::size_t period = 0; period < spec.numPeriods; ++period) {
      double jitter = spec.periodMinutes * spec.jitterFraction *
                      (rng.uniform01() - 0.5);
      Time start = static_cast<double>(period) * spec.periodMinutes + offset +
                   jitter;
      start = std::max(start, 0.0);
      builder.add(share, start, start + duration);
    }
  }
  return builder.build();
}

}  // namespace cdbp
