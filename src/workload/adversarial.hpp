// Adversarial instances: the Theorem 3 lower-bound gadget and stress
// constructions that separate the clairvoyant strategies from the
// non-clairvoyant baselines.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace cdbp {

/// Theorem 3, case A: two items of size 1/2 - eps arriving at time 0 with
/// durations x and 1 (x > 1). The optimum packs them together (usage x).
Instance theorem3CaseA(double x, double eps);

/// Theorem 3, case B: case A plus two items of size 1/2 + eps arriving at
/// time tau with durations x and 1. The optimum pairs items 1&3 and 2&4
/// (usage x + 1 + 2*tau).
Instance theorem3CaseB(double x, double eps, double tau);

/// The "sliver cascade" that drives plain First Fit to Theta(mu) times the
/// optimum while duration-aware strategies stay O(1):
///
/// k phases; phase j brings a filler of size 1 - sliver (departing after
/// one unit) immediately followed by a sliver of size `sliver` that lives
/// for `mu` units. Under First Fit every earlier bin sits at level exactly
/// 1, so each sliver tops off its own phase's filler bin; after the
/// fillers depart, k bins each idle at a tiny level for mu units. The
/// optimum consolidates all slivers into one bin. Requires k * sliver <= 1;
/// sliver defaults to 1/(k+1).
Instance firstFitSliverTrap(std::size_t k, double mu, double sliver = 0);

/// Saw-tooth stress for Any Fit algorithms: waves of alternating big
/// (1/2 + eps, short) and small (1/2 - eps, long) items; pairing bigs with
/// smalls is the Any Fit move and the wrong one.
Instance sawtoothWaves(std::size_t waves, std::size_t pairsPerWave, double mu,
                       double eps = 0.05);

}  // namespace cdbp
