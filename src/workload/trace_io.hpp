// Versioned job-trace file format (CSV and JSONL flavors) + strict reader.
//
// A trace is the on-disk form of a workload: one record per job, ordered
// by arrival, carrying `arrival, departure, size[, size2..sizeK]`. The
// format exists so any generator output (or a real cluster trace massaged
// into this shape) can be replayed through the batch simulator, the
// bounded-memory streaming simulator (sim/streaming.hpp), or the runMany
// grid — without the producer and consumer sharing a process.
//
// v1, CSV flavor (extension .csv):
//
//     # cdbp-trace v1
//     arrival,departure,size
//     0.0,4.0,0.5
//     1.0,3.0,0.25
//
//   Line 1 is the magic/version line, line 2 the column header (extra
//   dimensions append `,size2,...,sizeK`). After the header, blank lines
//   and `#`-prefixed comment lines are skipped — writers use comments for
//   provenance notes.
//
// v1, JSONL flavor (extension .jsonl):
//
//     {"format":"cdbp-trace","version":1,"dims":1}
//     [0.0,4.0,0.5]
//     [1.0,3.0,0.25]
//
//   Line 1 is a flat JSON header object; unknown string/number keys are
//   ignored (writers park provenance there as `"note"`). Each record is a
//   JSON array of exactly dims+2 numbers.
//
// Both flavors share the semantics of core/instance.hpp: times finite,
// departure strictly after arrival, every size in (0, kBinCapacity] under
// the epsilon discipline, and records in nondecreasing arrival order (the
// streaming simulator depends on it; the reader enforces it). Numbers are
// written in shortest-round-trip form (io/json_writer.hpp jsonDouble), so
// write -> read reproduces every double bitwise.
//
// The reader is strict: any malformed line raises TraceError naming the
// source and 1-based line number. Parsing never crashes and never guesses.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/instance.hpp"
#include "sim/streaming.hpp"

namespace cdbp {

/// Malformed trace input (or an unwritable/unreadable path). The message
/// names the source and the offending 1-based line where applicable.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class TraceFormat {
  kCsv,    ///< `# cdbp-trace v1` + column header + comma rows
  kJsonl,  ///< JSON header object + one JSON number-array per record
};

/// The format version this build reads and writes.
inline constexpr int kTraceFormatVersion = 1;

/// "csv" / "jsonl".
std::string traceFormatName(TraceFormat format);

/// Format selection by file extension (".csv" / ".jsonl", case-sensitive);
/// throws TraceError for anything else.
TraceFormat traceFormatForPath(const std::string& path);

/// One trace record. `sizes` has one entry per dimension; scalar consumers
/// use sizes[0]. Reusing the same TraceRecord across TraceReader::next
/// calls avoids per-record allocation.
struct TraceRecord {
  Time arrival = 0;
  Time departure = 0;
  std::vector<Size> sizes;
};

/// Streaming reader: header is parsed (and validated) on construction,
/// records are pulled one at a time — O(1) memory in the trace length.
class TraceReader {
 public:
  /// `source` labels error messages (a path, "<stdin>", ...). Throws
  /// TraceError when the header is malformed or the version unsupported.
  TraceReader(std::istream& in, TraceFormat format,
              std::string source = "<trace>");

  /// Parses the next record into `out`. Returns false at a clean end of
  /// input; throws TraceError (with the line number) on malformed input,
  /// a model-invalid record, or an arrival-order violation.
  bool next(TraceRecord& out);

  /// Dimension count declared by the header (1 for scalar traces).
  std::size_t dims() const { return dims_; }

  std::size_t recordsRead() const { return records_; }
  const std::string& source() const { return source_; }

 private:
  [[noreturn]] void fail(const std::string& why) const;
  void parseCsvHeader();
  void parseJsonlHeader();
  bool nextDataLine(std::string& line);
  void parseCsvRecord(const std::string& line, TraceRecord& out);
  void parseJsonlRecord(const std::string& line, TraceRecord& out);
  void validateRecord(const TraceRecord& record);

  std::istream& in_;
  TraceFormat format_;
  std::string source_;
  std::size_t line_ = 0;
  std::size_t records_ = 0;
  std::size_t dims_ = 1;
  Time lastArrival_ = 0;
};

/// Streaming writer: header on construction, one record per write() —
/// O(1) memory, so exporters can emit traces far larger than RAM. Records
/// are validated like the reader validates them (fail fast at the
/// producer) and must arrive in nondecreasing arrival order.
class TraceWriter {
 public:
  /// `note` is a provenance string embedded in the header (CSV comment
  /// line / JSONL "note" key); empty emits nothing.
  TraceWriter(std::ostream& out, TraceFormat format, std::size_t dims = 1,
              const std::string& note = "");

  void write(const TraceRecord& record);
  /// Scalar shorthand (dims must be 1).
  void write(Time arrival, Time departure, Size size);

  std::size_t recordsWritten() const { return records_; }

 private:
  std::ostream& out_;
  TraceFormat format_;
  std::size_t dims_;
  std::size_t records_ = 0;
  Time lastArrival_ = 0;
};

/// Writes `instance` as a v1 scalar trace in (arrival, id) order — the
/// order Instance::sortedByArrival() defines and readers require.
void writeTrace(const Instance& instance, std::ostream& out,
                TraceFormat format, const std::string& note = "");

/// writeTrace to a path; format from the extension.
void saveTrace(const Instance& instance, const std::string& path,
               const std::string& note = "");

/// Materializes a scalar (dims == 1) trace as an Instance; ids are
/// assigned in record order. Throws TraceError on multi-dimensional input.
Instance readTraceInstance(std::istream& in, TraceFormat format,
                           const std::string& source = "<trace>");

/// readTraceInstance from a path; format from the extension.
Instance loadTraceInstance(const std::string& path);

/// One-pass O(1)-memory summary of a trace — enough to build a
/// PolicyContext (minDuration, mu) for clairvoyant specs without
/// materializing the trace.
struct TraceStats {
  std::size_t count = 0;
  std::size_t dims = 1;
  Time minArrival = 0;
  Time maxArrival = 0;
  Time maxDeparture = 0;
  Time minDuration = 0;
  Time maxDuration = 0;
  /// maxDuration / minDuration; 1 for an empty trace.
  double mu = 1;
  /// Scalar time-space demand: sum of size * duration (Proposition 1).
  double demand = 0;
  Size maxSize = 0;
};

TraceStats scanTrace(std::istream& in, TraceFormat format,
                     const std::string& source = "<trace>");
TraceStats scanTrace(const std::string& path);

/// ArrivalSource over a scalar trace file: simulateStream pulls records
/// straight off the reader, so whole-trace memory is never allocated.
/// Construction rejects multi-dimensional traces with TraceError.
class TraceArrivalSource final : public ArrivalSource {
 public:
  explicit TraceArrivalSource(const std::string& path);
  TraceArrivalSource(std::istream& in, TraceFormat format,
                     std::string source = "<trace>");
  ~TraceArrivalSource() override;  // out-of-line: std::ifstream is incomplete here

  bool next(StreamItem& out) override;

  const TraceReader& reader() const { return reader_; }

 private:
  std::unique_ptr<std::ifstream> file_;  // owned when constructed from a path
  TraceReader reader_;
  TraceRecord record_;
};

}  // namespace cdbp
