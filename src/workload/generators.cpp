#include "workload/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace cdbp {

namespace {

std::vector<Time> drawArrivals(const WorkloadSpec& spec, Rng& rng) {
  std::vector<Time> arrivals;
  arrivals.reserve(spec.numItems);
  double gapMean = 1.0 / spec.arrivalRate;
  switch (spec.arrivals) {
    case ArrivalProcess::kPoisson: {
      Time t = 0;
      for (std::size_t i = 0; i < spec.numItems; ++i) {
        t += rng.exponential(gapMean);
        arrivals.push_back(t);
      }
      break;
    }
    case ArrivalProcess::kUniform: {
      Time horizon = static_cast<Time>(spec.numItems) * gapMean;
      for (std::size_t i = 0; i < spec.numItems; ++i) {
        arrivals.push_back(rng.uniform(0, horizon));
      }
      std::sort(arrivals.begin(), arrivals.end());
      break;
    }
    case ArrivalProcess::kBursty: {
      Time t = 0;
      while (arrivals.size() < spec.numItems) {
        t += rng.exponential(gapMean * static_cast<double>(spec.burstSize));
        for (std::size_t b = 0; b < spec.burstSize && arrivals.size() < spec.numItems;
             ++b) {
          arrivals.push_back(t);
        }
      }
      break;
    }
  }
  return arrivals;
}

Time drawDuration(const WorkloadSpec& spec, Rng& rng) {
  Time lo = spec.minDuration;
  Time hi = spec.mu * spec.minDuration;
  Time d = lo;
  switch (spec.durations) {
    case DurationDist::kUniform:
      d = rng.uniform(lo, hi);
      break;
    case DurationDist::kExponential:
      d = rng.exponential((lo + hi) / 4.0);
      break;
    case DurationDist::kPareto:
      d = rng.pareto(lo, spec.paretoShape);
      break;
    case DurationDist::kLogNormal:
      d = lo * rng.logNormal(std::log(std::sqrt(spec.mu)) , spec.logNormalSigma);
      break;
    case DurationDist::kBimodal:
      if (rng.chance(spec.bimodalShortFraction)) {
        d = rng.uniform(lo, std::min(hi, 2 * lo));
      } else {
        d = rng.uniform(std::max(lo, hi / 2), hi);
      }
      break;
  }
  return std::clamp(d, lo, hi);
}

Size drawSize(const WorkloadSpec& spec, Rng& rng) {
  switch (spec.sizes) {
    case SizeDist::kUniform:
      return rng.uniform(spec.minSize, spec.maxSize);
    case SizeDist::kSmallOnly:
      return rng.uniform(spec.minSize, std::min<Size>(0.5, spec.maxSize));
    case SizeDist::kFlavors:
      return spec.flavors[static_cast<std::size_t>(
          rng.uniformInt(0, spec.flavors.size() - 1))];
  }
  return spec.minSize;
}

}  // namespace

Instance generateWorkload(const WorkloadSpec& spec, std::uint64_t seed) {
  if (!(spec.mu >= 1) || !(spec.minDuration > 0) || !(spec.arrivalRate > 0)) {
    throw std::invalid_argument(
        "generateWorkload: need mu >= 1, minDuration > 0, arrivalRate > 0");
  }
  if (!(spec.minSize > 0) || !(spec.maxSize <= 1) || spec.minSize > spec.maxSize) {
    throw std::invalid_argument(
        "generateWorkload: sizes must satisfy 0 < minSize <= maxSize <= 1");
  }
  Rng rng(seed);
  std::vector<Time> arrivals = drawArrivals(spec, rng);
  std::vector<Item> items;
  items.reserve(spec.numItems);
  for (std::size_t i = 0; i < spec.numItems; ++i) {
    Time arrival = arrivals[i];
    Time duration = drawDuration(spec, rng);
    Size size = drawSize(spec, rng);
    items.emplace_back(static_cast<ItemId>(i), size, arrival, arrival + duration);
  }
  return Instance(std::move(items));
}

}  // namespace cdbp
