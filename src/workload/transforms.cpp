#include "workload/transforms.hpp"

#include <algorithm>
#include <stdexcept>

namespace cdbp {

Instance scaleTime(const Instance& instance, double factor) {
  if (!(factor > 0)) throw std::invalid_argument("scaleTime: factor must be > 0");
  std::vector<Item> items;
  items.reserve(instance.size());
  for (const Item& r : instance.items()) {
    items.emplace_back(r.id, r.size, r.arrival() * factor,
                       r.departure() * factor);
  }
  return Instance(std::move(items));
}

Instance shiftTime(const Instance& instance, Time offset) {
  std::vector<Item> items;
  items.reserve(instance.size());
  for (const Item& r : instance.items()) {
    items.emplace_back(r.id, r.size, r.arrival() + offset,
                       r.departure() + offset);
  }
  return Instance(std::move(items));
}

Instance scaleSizes(const Instance& instance, double factor) {
  if (!(factor > 0)) {
    throw std::invalid_argument("scaleSizes: factor must be > 0");
  }
  std::vector<Item> items;
  items.reserve(instance.size());
  for (const Item& r : instance.items()) {
    Size scaled = std::clamp(r.size * factor, 1e-12, 1.0);
    items.emplace_back(r.id, scaled, r.arrival(), r.departure());
  }
  return Instance(std::move(items));
}

Instance mergeInstances(const Instance& a, const Instance& b) {
  std::vector<Item> items;
  items.reserve(a.size() + b.size());
  for (const Item& r : a.items()) items.push_back(r);
  for (const Item& r : b.items()) items.push_back(r);
  return Instance(std::move(items));
}

Instance filterItems(const Instance& instance,
                     const std::function<bool(const Item&)>& keep) {
  std::vector<Item> items;
  for (const Item& r : instance.items()) {
    if (keep(r)) items.push_back(r);
  }
  return Instance(std::move(items));
}

std::pair<Instance, Instance> splitAt(const Instance& instance, Time t) {
  std::vector<Item> early;
  std::vector<Item> late;
  for (const Item& r : instance.items()) {
    if (r.arrival() < t) {
      early.push_back(r);
    } else {
      late.push_back(r);
    }
  }
  return {Instance(std::move(early)), Instance(std::move(late))};
}

}  // namespace cdbp
