#include "workload/trace_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

#include "core/epsilon.hpp"
#include "io/json_writer.hpp"
#include "util/parse.hpp"

namespace cdbp {

namespace {

const char kCsvMagicPrefix[] = "# cdbp-trace v";

std::string stripCr(std::string line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return line;
}

std::string trimWs(const std::string& s) {
  std::size_t first = s.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  std::size_t last = s.find_last_not_of(" \t");
  return s.substr(first, last - first + 1);
}

std::string formatValue(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

/// "size" for the first dimension, "size2".. beyond — matching the CSV
/// column names.
std::string sizeFieldName(std::size_t dim) {
  return dim == 0 ? "size" : "size" + std::to_string(dim + 1);
}

/// First model violation in `record`, or "" when it is valid. Shared by
/// the reader (line-numbered errors) and the writer (record-numbered
/// errors) so both ends enforce the same instance model.
std::string recordViolation(const TraceRecord& record) {
  if (!std::isfinite(record.arrival) || !std::isfinite(record.departure)) {
    return "times must be finite";
  }
  if (!(record.departure > record.arrival)) {
    return "departure (" + formatValue(record.departure) +
           ") must be strictly after arrival (" + formatValue(record.arrival) +
           ")";
  }
  for (std::size_t d = 0; d < record.sizes.size(); ++d) {
    Size s = record.sizes[d];
    if (!std::isfinite(s) || !(s > 0) || lt(kBinCapacity, s)) {
      return sizeFieldName(d) + " must be in (0, 1], got " + formatValue(s);
    }
  }
  return "";
}

std::unique_ptr<std::ifstream> openTraceFile(const std::string& path) {
  auto file = std::make_unique<std::ifstream>(path);
  if (!*file) throw TraceError("cannot open '" + path + "'");
  return file;
}

void requireScalar(const TraceReader& reader) {
  if (reader.dims() != 1) {
    throw TraceError(reader.source() + ": scalar consumer, but the trace "
                     "declares " + std::to_string(reader.dims()) +
                     " dimensions");
  }
}

}  // namespace

std::string traceFormatName(TraceFormat format) {
  return format == TraceFormat::kCsv ? "csv" : "jsonl";
}

TraceFormat traceFormatForPath(const std::string& path) {
  auto endsWith = [&path](const char* suffix) {
    std::string_view sv(suffix);
    return path.size() >= sv.size() &&
           path.compare(path.size() - sv.size(), sv.size(), sv) == 0;
  };
  if (endsWith(".csv")) return TraceFormat::kCsv;
  if (endsWith(".jsonl")) return TraceFormat::kJsonl;
  throw TraceError("cannot infer trace format from '" + path +
                   "' (expected a .csv or .jsonl extension)");
}

// --- TraceReader ---

TraceReader::TraceReader(std::istream& in, TraceFormat format,
                         std::string source)
    : in_(in), format_(format), source_(std::move(source)) {
  if (format_ == TraceFormat::kCsv) {
    parseCsvHeader();
  } else {
    parseJsonlHeader();
  }
}

void TraceReader::fail(const std::string& why) const {
  throw TraceError(source_ + ", line " + std::to_string(line_) + ": " + why);
}

void TraceReader::parseCsvHeader() {
  std::string line;
  line_ = 1;
  if (!std::getline(in_, line)) {
    fail("empty input (expected magic line '# cdbp-trace v1')");
  }
  line = trimWs(stripCr(line));
  if (line.rfind(kCsvMagicPrefix, 0) != 0) {
    fail("expected magic line '# cdbp-trace v1', got '" + line + "'");
  }
  std::uint64_t version = 0;
  if (!tryParseUint(line.substr(sizeof(kCsvMagicPrefix) - 1), version)) {
    fail("malformed version in magic line '" + line + "'");
  }
  if (version != static_cast<std::uint64_t>(kTraceFormatVersion)) {
    fail("unsupported trace version " + std::to_string(version) +
         " (this build reads v" + std::to_string(kTraceFormatVersion) + ")");
  }
  ++line_;
  if (!std::getline(in_, line)) {
    fail("missing column header 'arrival,departure,size'");
  }
  line = stripCr(line);
  std::vector<std::string> columns;
  std::size_t start = 0;
  while (true) {
    std::size_t comma = line.find(',', start);
    columns.push_back(trimWs(
        comma == std::string::npos ? line.substr(start)
                                   : line.substr(start, comma - start)));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (columns.size() < 3 || columns[0] != "arrival" ||
      columns[1] != "departure") {
    fail("expected column header 'arrival,departure,size[,size2...]', got '" +
         line + "'");
  }
  for (std::size_t c = 2; c < columns.size(); ++c) {
    if (columns[c] != sizeFieldName(c - 2)) {
      fail("expected size column '" + sizeFieldName(c - 2) + "', got '" +
           columns[c] + "'");
    }
  }
  dims_ = columns.size() - 2;
}

void TraceReader::parseJsonlHeader() {
  std::string line;
  line_ = 1;
  if (!std::getline(in_, line)) {
    fail("empty input (expected a JSON header object)");
  }
  line = stripCr(line);

  std::size_t i = 0;
  auto ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
  };
  auto expect = [&](char c) {
    ws();
    if (i >= line.size() || line[i] != c) {
      fail(std::string("malformed header: expected '") + c + "'");
    }
    ++i;
  };
  auto parseString = [&]() -> std::string {
    expect('"');
    std::string out;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        if (i >= line.size()) fail("malformed header: unterminated escape");
        char c = line[i];
        // Enough for the provenance strings this library writes; anything
        // fancier is rejected rather than mis-read.
        if (c == '"' || c == '\\' || c == '/') {
          out.push_back(c);
        } else {
          fail("malformed header: unsupported string escape");
        }
      } else {
        out.push_back(line[i]);
      }
      ++i;
    }
    if (i >= line.size()) fail("malformed header: unterminated string");
    ++i;  // closing quote
    return out;
  };
  auto parseScalarToken = [&]() -> std::string {
    ws();
    std::size_t start = i;
    while (i < line.size() && line[i] != ',' && line[i] != '}' &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i == start) fail("malformed header: missing value");
    return line.substr(start, i - start);
  };

  expect('{');
  bool sawFormat = false;
  bool sawVersion = false;
  ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      std::string key = parseString();
      expect(':');
      ws();
      bool isString = i < line.size() && line[i] == '"';
      std::string value = isString ? parseString() : parseScalarToken();
      if (key == "format") {
        if (!isString || value != "cdbp-trace") {
          fail("header 'format' must be the string \"cdbp-trace\"");
        }
        sawFormat = true;
      } else if (key == "version") {
        std::uint64_t v = 0;
        if (isString || !tryParseUint(value, v)) {
          fail("header 'version' must be an integer");
        }
        if (v != static_cast<std::uint64_t>(kTraceFormatVersion)) {
          fail("unsupported trace version " + value + " (this build reads v" +
               std::to_string(kTraceFormatVersion) + ")");
        }
        sawVersion = true;
      } else if (key == "dims") {
        std::uint64_t d = 0;
        if (isString || !tryParseUint(value, d) || d == 0) {
          fail("header 'dims' must be a positive integer");
        }
        dims_ = static_cast<std::size_t>(d);
      }
      // Unknown keys (writer provenance like "note") are ignored.
      ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    expect('}');
  }
  ws();
  if (i != line.size()) fail("malformed header: trailing characters");
  if (!sawFormat) fail("header is missing \"format\":\"cdbp-trace\"");
  if (!sawVersion) fail("header is missing \"version\"");
}

bool TraceReader::nextDataLine(std::string& line) {
  while (std::getline(in_, line)) {
    ++line_;
    std::string trimmed = trimWs(stripCr(line));
    if (trimmed.empty()) continue;
    if (format_ == TraceFormat::kCsv && trimmed[0] == '#') continue;
    line = std::move(trimmed);
    return true;
  }
  if (in_.bad()) fail("read error");
  return false;
}

void TraceReader::parseCsvRecord(const std::string& line, TraceRecord& out) {
  const std::size_t expected = dims_ + 2;
  std::size_t start = 0;
  std::size_t cellIndex = 0;
  while (true) {
    std::size_t comma = line.find(',', start);
    std::string cell = trimWs(
        comma == std::string::npos ? line.substr(start)
                                   : line.substr(start, comma - start));
    if (cellIndex >= expected) {
      fail("expected " + std::to_string(expected) + " cells, got more");
    }
    double value = 0;
    if (!tryParseDouble(cell, value)) {
      fail("cell " + std::to_string(cellIndex + 1) + " ('" + cell +
           "') is not a number");
    }
    if (cellIndex == 0) {
      out.arrival = value;
    } else if (cellIndex == 1) {
      out.departure = value;
    } else {
      out.sizes.push_back(value);
    }
    ++cellIndex;
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  if (cellIndex != expected) {
    fail("expected " + std::to_string(expected) + " cells, got " +
         std::to_string(cellIndex));
  }
}

void TraceReader::parseJsonlRecord(const std::string& line, TraceRecord& out) {
  const std::size_t expected = dims_ + 2;
  std::size_t i = 0;
  auto ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
  };
  ws();
  if (i >= line.size() || line[i] != '[') {
    fail("expected a JSON array record '[arrival,departure,size...]', got '" +
         line + "'");
  }
  ++i;
  std::size_t count = 0;
  ws();
  if (i < line.size() && line[i] == ']') {
    ++i;
  } else {
    while (true) {
      ws();
      std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != ']' &&
             !std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      std::string token = line.substr(start, i - start);
      double value = 0;
      if (!tryParseDouble(token, value)) {
        fail("element " + std::to_string(count + 1) + " ('" + token +
             "') is not a number");
      }
      if (count >= expected) {
        fail("expected " + std::to_string(expected) + " elements, got more");
      }
      if (count == 0) {
        out.arrival = value;
      } else if (count == 1) {
        out.departure = value;
      } else {
        out.sizes.push_back(value);
      }
      ++count;
      ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      break;
    }
    if (i >= line.size() || line[i] != ']') {
      fail("unterminated array record");
    }
    ++i;
  }
  ws();
  if (i != line.size()) fail("trailing characters after array record");
  if (count != expected) {
    fail("expected " + std::to_string(expected) + " elements, got " +
         std::to_string(count));
  }
}

void TraceReader::validateRecord(const TraceRecord& record) {
  std::string violation = recordViolation(record);
  if (!violation.empty()) fail(violation);
  if (records_ > 0 && record.arrival < lastArrival_) {
    fail("arrivals must be nondecreasing (got " + formatValue(record.arrival) +
         " after " + formatValue(lastArrival_) + ")");
  }
}

bool TraceReader::next(TraceRecord& out) {
  std::string line;
  if (!nextDataLine(line)) return false;
  out.sizes.clear();
  if (format_ == TraceFormat::kCsv) {
    parseCsvRecord(line, out);
  } else {
    parseJsonlRecord(line, out);
  }
  validateRecord(out);
  lastArrival_ = out.arrival;
  ++records_;
  return true;
}

// --- TraceWriter ---

TraceWriter::TraceWriter(std::ostream& out, TraceFormat format,
                         std::size_t dims, const std::string& note)
    : out_(out), format_(format), dims_(dims) {
  if (dims_ == 0) throw TraceError("TraceWriter: dims must be >= 1");
  if (note.find('\n') != std::string::npos ||
      note.find('\r') != std::string::npos) {
    throw TraceError("TraceWriter: note must be a single line");
  }
  if (format_ == TraceFormat::kCsv) {
    out_ << kCsvMagicPrefix << kTraceFormatVersion << '\n';
    out_ << "arrival,departure,size";
    for (std::size_t d = 1; d < dims_; ++d) out_ << ',' << sizeFieldName(d);
    out_ << '\n';
    if (!note.empty()) out_ << "# " << note << '\n';
  } else {
    out_ << "{\"format\":\"cdbp-trace\",\"version\":" << kTraceFormatVersion
         << ",\"dims\":" << dims_;
    if (!note.empty()) out_ << ",\"note\":\"" << jsonEscape(note) << '"';
    out_ << "}\n";
  }
}

void TraceWriter::write(const TraceRecord& record) {
  if (record.sizes.size() != dims_) {
    throw TraceError("TraceWriter: record " + std::to_string(records_) +
                     " carries " + std::to_string(record.sizes.size()) +
                     " sizes, the header declares " + std::to_string(dims_));
  }
  std::string violation = recordViolation(record);
  if (!violation.empty()) {
    throw TraceError("TraceWriter: record " + std::to_string(records_) + ": " +
                     violation);
  }
  if (records_ > 0 && record.arrival < lastArrival_) {
    throw TraceError("TraceWriter: record " + std::to_string(records_) +
                     " breaks nondecreasing arrival order (" +
                     formatValue(record.arrival) + " after " +
                     formatValue(lastArrival_) + ")");
  }
  if (format_ == TraceFormat::kCsv) {
    out_ << jsonDouble(record.arrival) << ',' << jsonDouble(record.departure);
    for (Size s : record.sizes) out_ << ',' << jsonDouble(s);
    out_ << '\n';
  } else {
    out_ << '[' << jsonDouble(record.arrival) << ','
         << jsonDouble(record.departure);
    for (Size s : record.sizes) out_ << ',' << jsonDouble(s);
    out_ << "]\n";
  }
  lastArrival_ = record.arrival;
  ++records_;
}

void TraceWriter::write(Time arrival, Time departure, Size size) {
  if (dims_ != 1) {
    throw TraceError("TraceWriter: scalar write() on a " +
                     std::to_string(dims_) + "-dimensional trace");
  }
  TraceRecord record;
  record.arrival = arrival;
  record.departure = departure;
  record.sizes.push_back(size);
  write(record);
}

// --- Whole-instance and whole-file helpers ---

void writeTrace(const Instance& instance, std::ostream& out,
                TraceFormat format, const std::string& note) {
  TraceWriter writer(out, format, 1, note);
  TraceRecord record;
  record.sizes.resize(1);
  for (const Item& r : instance.sortedByArrival()) {
    record.arrival = r.arrival();
    record.departure = r.departure();
    record.sizes[0] = r.size;
    writer.write(record);
  }
}

void saveTrace(const Instance& instance, const std::string& path,
               const std::string& note) {
  TraceFormat format = traceFormatForPath(path);
  std::ofstream out(path);
  if (!out) throw TraceError("cannot open '" + path + "' for writing");
  writeTrace(instance, out, format, note);
  out.flush();
  if (!out) throw TraceError("write error on '" + path + "'");
}

Instance readTraceInstance(std::istream& in, TraceFormat format,
                           const std::string& source) {
  TraceReader reader(in, format, source);
  requireScalar(reader);
  InstanceBuilder builder;
  TraceRecord record;
  while (reader.next(record)) {
    builder.add(record.sizes[0], record.arrival, record.departure);
  }
  return builder.build();
}

Instance loadTraceInstance(const std::string& path) {
  TraceFormat format = traceFormatForPath(path);
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open '" + path + "'");
  return readTraceInstance(in, format, path);
}

TraceStats scanTrace(std::istream& in, TraceFormat format,
                     const std::string& source) {
  TraceReader reader(in, format, source);
  TraceStats stats;
  stats.dims = reader.dims();
  TraceRecord record;
  while (reader.next(record)) {
    Time duration = record.departure - record.arrival;
    if (stats.count == 0) {
      stats.minArrival = record.arrival;
      stats.minDuration = duration;
      stats.maxDuration = duration;
      stats.maxDeparture = record.departure;
    } else {
      stats.minDuration = std::min(stats.minDuration, duration);
      stats.maxDuration = std::max(stats.maxDuration, duration);
      stats.maxDeparture = std::max(stats.maxDeparture, record.departure);
    }
    stats.maxArrival = record.arrival;  // reader enforces nondecreasing order
    stats.maxSize = std::max(stats.maxSize, record.sizes[0]);
    stats.demand += record.sizes[0] * duration;
    ++stats.count;
  }
  if (stats.count > 0 && stats.minDuration > 0) {
    stats.mu = stats.maxDuration / stats.minDuration;
  }
  return stats;
}

TraceStats scanTrace(const std::string& path) {
  TraceFormat format = traceFormatForPath(path);
  std::ifstream in(path);
  if (!in) throw TraceError("cannot open '" + path + "'");
  return scanTrace(in, format, path);
}

// --- TraceArrivalSource ---

TraceArrivalSource::TraceArrivalSource(const std::string& path)
    : file_(openTraceFile(path)),
      reader_(*file_, traceFormatForPath(path), path) {
  requireScalar(reader_);
}

TraceArrivalSource::TraceArrivalSource(std::istream& in, TraceFormat format,
                                       std::string source)
    : reader_(in, format, std::move(source)) {
  requireScalar(reader_);
}

TraceArrivalSource::~TraceArrivalSource() = default;

bool TraceArrivalSource::next(StreamItem& out) {
  if (!reader_.next(record_)) return false;
  out.size = record_.sizes[0];
  out.arrival = record_.arrival;
  out.departure = record_.departure;
  return true;
}

}  // namespace cdbp
