// Domain scenario generators modeled on the applications that motivate the
// paper (§1): cloud gaming sessions with predictable ending times, and
// recurring data-analytics jobs.
#pragma once

#include <cstdint>

#include "core/instance.hpp"

namespace cdbp {

struct CloudGamingSpec {
  std::size_t numSessions = 2000;
  /// Peak session arrival rate (sessions per minute); the realized rate is
  /// modulated by a diurnal profile with this peak.
  double peakArrivalsPerMinute = 2.0;
  /// Median session length in minutes; lengths are log-normal around it.
  double medianSessionMinutes = 30.0;
  double sessionSigma = 0.6;
  /// Per-title resource shares of a server (game instances per flavor).
  std::vector<Size> instanceShares = {0.25, 0.25, 0.5, 1.0};
  /// Hard caps on session length (platform policy), in minutes.
  double minSessionMinutes = 5.0;
  double maxSessionMinutes = 240.0;
};

/// Game sessions over a multi-day horizon with a sinusoidal diurnal arrival
/// pattern. Times are in minutes.
Instance cloudGamingSessions(const CloudGamingSpec& spec, std::uint64_t seed);

struct BatchAnalyticsSpec {
  /// Number of distinct recurring job templates.
  std::size_t numTemplates = 40;
  /// Number of scheduling periods to materialize (e.g. hours).
  std::size_t numPeriods = 24;
  /// Length of one period in time units (minutes).
  double periodMinutes = 60.0;
  /// Per-run duration range as a fraction of the period.
  double minRunFraction = 0.05;
  double maxRunFraction = 0.8;
  /// Start-time jitter within the period, as a fraction of the period.
  double jitterFraction = 0.1;
};

/// Recurring analytics jobs: each template fires once per period at a fixed
/// offset (plus jitter) with a stable duration and resource share —
/// the "jobs are mostly recurring" setting of [21, 12] where departure
/// times are predictable.
Instance batchAnalyticsJobs(const BatchAnalyticsSpec& spec, std::uint64_t seed);

}  // namespace cdbp
