#include "workload/adversarial.hpp"

#include <stdexcept>

#include "core/epsilon.hpp"

namespace cdbp {

Instance theorem3CaseA(double x, double eps) {
  if (!(x > 1) || !(eps > 0) || !(eps < 0.5)) {
    throw std::invalid_argument("theorem3CaseA: need x > 1 and 0 < eps < 1/2");
  }
  return InstanceBuilder()
      .add(0.5 - eps, 0, x)  // first item: duration x
      .add(0.5 - eps, 0, 1)  // second item: duration 1
      .build();
}

Instance theorem3CaseB(double x, double eps, double tau) {
  if (!(x > 1) || !(eps > 0) || !(eps < 0.5) || !(tau > 0)) {
    throw std::invalid_argument(
        "theorem3CaseB: need x > 1, 0 < eps < 1/2, tau > 0");
  }
  return InstanceBuilder()
      .add(0.5 - eps, 0, x)
      .add(0.5 - eps, 0, 1)
      .add(0.5 + eps, tau, tau + x)  // third item: duration x
      .add(0.5 + eps, tau, tau + 1)  // fourth item: duration 1
      .build();
}

Instance firstFitSliverTrap(std::size_t k, double mu, double sliver) {
  if (k == 0 || !(mu > 1)) {
    throw std::invalid_argument("firstFitSliverTrap: need k >= 1 and mu > 1");
  }
  if (sliver == 0) sliver = 1.0 / static_cast<double>(k + 1);
  if (!(sliver > 0) || lt(kBinCapacity, static_cast<double>(k) * sliver)) {
    throw std::invalid_argument("firstFitSliverTrap: need k * sliver <= 1");
  }
  // Phase gap small enough that all fillers coexist: every filler lives one
  // unit, phases are delta apart with k*delta << 1.
  double delta = 0.5 / static_cast<double>(k + 1);
  InstanceBuilder builder;
  for (std::size_t j = 1; j <= k; ++j) {
    double t = static_cast<double>(j - 1) * delta;
    builder.add(1.0 - sliver, t, t + 1.0);  // filler, short
    builder.add(sliver, t, t + mu);         // sliver, long
  }
  return builder.build();
}

Instance sawtoothWaves(std::size_t waves, std::size_t pairsPerWave, double mu,
                       double eps) {
  if (waves == 0 || pairsPerWave == 0 || !(mu > 1) || !(eps > 0) || !(eps < 0.5)) {
    throw std::invalid_argument("sawtoothWaves: invalid parameters");
  }
  InstanceBuilder builder;
  // Waves are spaced so that a wave's long items outlive the next wave's
  // short items, sustaining the fragmentation.
  double waveGap = mu / 2.0;
  for (std::size_t w = 0; w < waves; ++w) {
    double t0 = static_cast<double>(w) * waveGap;
    for (std::size_t p = 0; p < pairsPerWave; ++p) {
      double t = t0 + static_cast<double>(p) * 1e-4;
      builder.add(0.5 + eps, t, t + 1.0);   // big, short
      builder.add(0.5 - eps, t, t + mu);    // small, long
    }
  }
  return builder.build();
}

}  // namespace cdbp
