// Seeded synthetic workload generation.
//
// The paper's evaluation is analytic, so the simulation benches need
// workloads whose key knobs — the duration ratio mu, the arrival process,
// the size law — can be dialed directly. All generators are deterministic
// under a fixed seed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/instance.hpp"

namespace cdbp {

enum class ArrivalProcess {
  kPoisson,   ///< exponential inter-arrival gaps with the given rate
  kUniform,   ///< arrivals uniform over [0, numItems/rate)
  kBursty,    ///< Poisson-gapped bursts of `burstSize` simultaneous arrivals
};

enum class DurationDist {
  kUniform,      ///< uniform over [minDuration, mu*minDuration]
  kExponential,  ///< exponential, clamped into [minDuration, mu*minDuration]
  kPareto,       ///< Pareto(shape), clamped — heavy-tailed job lengths
  kLogNormal,    ///< log-normal, clamped
  kBimodal,      ///< mixture of short [Delta, 2*Delta] and long [mu*Delta/2, mu*Delta]
};

enum class SizeDist {
  kUniform,      ///< uniform over [minSize, maxSize]
  kSmallOnly,    ///< uniform over [minSize, 1/2] (feeds the demand chart path)
  kFlavors,      ///< uniform choice among `flavors` (VM-flavor style)
};

struct WorkloadSpec {
  std::size_t numItems = 1000;

  ArrivalProcess arrivals = ArrivalProcess::kPoisson;
  double arrivalRate = 4.0;  ///< expected arrivals per unit time
  std::size_t burstSize = 8;

  DurationDist durations = DurationDist::kUniform;
  Time minDuration = 1.0;
  double mu = 16.0;          ///< duration ratio knob (>= 1)
  double paretoShape = 1.5;
  double logNormalSigma = 1.0;
  double bimodalShortFraction = 0.7;

  SizeDist sizes = SizeDist::kUniform;
  Size minSize = 0.05;
  Size maxSize = 1.0;
  std::vector<Size> flavors = {0.125, 0.25, 0.375, 0.5, 0.75, 1.0};
};

/// Generates an instance following `spec`. Durations are clamped into
/// [minDuration, mu*minDuration], so the realized duration ratio never
/// exceeds spec.mu (compute Instance::durationRatio() for the exact value).
Instance generateWorkload(const WorkloadSpec& spec, std::uint64_t seed);

}  // namespace cdbp
