#include "telemetry/bench_report.hpp"

#include <fstream>
#include <stdexcept>

#include "io/json_writer.hpp"
#include "telemetry/clock.hpp"

namespace cdbp::telemetry {

namespace {

// Configure-time sha injected by the top-level CMakeLists; "unknown" when
// the tree was built outside git.
#ifndef CDBP_GIT_SHA
#define CDBP_GIT_SHA "unknown"
#endif

void writeHistogram(const HistogramSnapshot& hs, JsonWriter& w) {
  w.beginObject();
  w.key("count").value(hs.count);
  w.key("sum").value(hs.sum);
  w.key("min").value(hs.min);
  w.key("max").value(hs.max);
  w.key("mean").value(hs.mean());
  // [bucket floor, count] pairs; floor 0 is the exact-zero bucket.
  w.key("buckets").beginArray();
  for (const auto& [bucket, count] : hs.buckets) {
    w.beginArray()
        .value(Histogram::bucketFloor(bucket))
        .value(count)
        .endArray();
  }
  w.endArray();
  w.endObject();
}

}  // namespace

void writeRegistrySnapshot(const RegistrySnapshot& snap, JsonWriter& w) {
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, value] : snap.counters) w.key(name).value(value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, g] : snap.gauges) {
    w.key(name).beginObject();
    w.key("value").value(g.value);
    w.key("max").value(g.max);
    w.endObject();
  }
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name);
    writeHistogram(h, w);
  }
  w.endObject();
  w.endObject();
}

double BenchTimingSeries::itemsPerSecond() const {
  double mean = seconds_.mean();
  if (!(mean > 0)) return 0.0;
  return static_cast<double>(itemsPerRep_) / mean;
}

BenchReport::BenchReport(std::string benchName)
    : benchName_(std::move(benchName)),
      timestampUnixMicros_(wallclockUnixMicros()) {}

void BenchReport::setParam(const std::string& key, std::string_view value) {
  Param p;
  p.kind = Param::Kind::kString;
  p.s = std::string(value);
  params_.emplace_back(key, std::move(p));
}

void BenchReport::setParam(const std::string& key, bool value) {
  Param p;
  p.kind = Param::Kind::kBool;
  p.b = value;
  params_.emplace_back(key, std::move(p));
}

void BenchReport::setParam(const std::string& key, long value) {
  Param p;
  p.kind = Param::Kind::kInt;
  p.i = value;
  params_.emplace_back(key, std::move(p));
}

void BenchReport::setParam(const std::string& key, double value) {
  Param p;
  p.kind = Param::Kind::kDouble;
  p.d = value;
  params_.emplace_back(key, std::move(p));
}

BenchTimingSeries& BenchReport::addTiming(std::string name,
                                          std::uint64_t itemsPerRep) {
  timings_.emplace_back(std::move(name), itemsPerRep);
  return timings_.back();
}

void BenchReport::addTable(std::string name, const Table& table) {
  NamedTable t;
  t.name = std::move(name);
  t.columns = table.header();
  t.rows = table.rows();
  tables_.push_back(std::move(t));
}

void BenchReport::write(std::ostream& os) const {
  JsonWriter w(os, 2);
  w.beginObject();
  w.key("schema").value("cdbp-bench-report");
  w.key("schema_version").value(kBenchReportSchemaVersion);
  w.key("bench").value(benchName_);
  w.key("git_sha").value(CDBP_GIT_SHA);
  w.key("telemetry_enabled").value(kEnabled);
  w.key("timestamp_unix_us").value(timestampUnixMicros_);

  w.key("params").beginObject();
  for (const auto& [key, p] : params_) {
    w.key(key);
    switch (p.kind) {
      case Param::Kind::kString:
        w.value(p.s);
        break;
      case Param::Kind::kBool:
        w.value(p.b);
        break;
      case Param::Kind::kInt:
        w.value(p.i);
        break;
      case Param::Kind::kDouble:
        w.value(p.d);
        break;
    }
  }
  w.endObject();

  w.key("timings").beginArray();
  for (const BenchTimingSeries& t : timings_) {
    const SummaryStats& s = t.seconds();
    w.beginObject();
    w.key("name").value(t.name());
    w.key("items_per_rep").value(t.itemsPerRep());
    w.key("reps").value(static_cast<std::uint64_t>(s.count()));
    w.key("seconds").beginObject();
    w.key("mean").value(s.mean());
    w.key("stddev").value(s.stddev());
    w.key("min").value(s.min());
    w.key("max").value(s.max());
    w.key("p50").value(s.percentile(50.0));
    w.key("p90").value(s.percentile(90.0));
    w.endObject();
    w.key("items_per_second").value(t.itemsPerSecond());
    w.key("counters").beginObject();
    for (const auto& [name, delta] : t.counterDeltas()) {
      w.key(name).value(delta);
    }
    w.endObject();
    w.endObject();
  }
  w.endArray();

  w.key("tables").beginArray();
  for (const NamedTable& t : tables_) {
    w.beginObject();
    w.key("name").value(t.name);
    w.key("columns").beginArray();
    for (const std::string& c : t.columns) w.value(c);
    w.endArray();
    w.key("rows").beginArray();
    for (const auto& row : t.rows) {
      w.beginArray();
      for (const std::string& cell : row) w.value(cell);
      w.endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endArray();

  w.key("registry");
  writeRegistrySnapshot(Registry::global().snapshot(), w);

  w.endObject();
  w.done();
  os << '\n';
}

std::string BenchReport::defaultPath() const {
  return "BENCH_" + benchName_ + ".json";
}

bool BenchReport::writeIfRequested(const Flags& flags,
                                   std::ostream& log) const {
  if (!flags.has("json")) return false;
  std::string path = flags.getString("json", "");
  if (path.empty()) path = defaultPath();
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("BenchReport: cannot open " + path +
                             " for writing");
  }
  write(out);
  log << "\n[bench-report] wrote " << path << '\n';
  return true;
}

}  // namespace cdbp::telemetry
