#include "telemetry/clock.hpp"

#include <chrono>

namespace cdbp::telemetry {

std::uint64_t monotonicNanos() noexcept {
  // cdbp-lint: allow(wallclock-in-lib): this is the sanctioned clock wrapper
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

std::int64_t wallclockUnixMicros() noexcept {
  // cdbp-lint: allow(wallclock-in-lib): this is the sanctioned clock wrapper
  auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
}

}  // namespace cdbp::telemetry
