// Instrumentation site macros (DESIGN.md §8).
//
// Library code never talks to the Registry directly on hot paths; it drops
// one of these macros at the site:
//
//   CDBP_TELEM_COUNT(name, delta)        counter += delta
//   CDBP_TELEM_GAUGE_SET(name, value)    gauge = value (tracks max)
//   CDBP_TELEM_HIST(name, value)         histogram.record(value)
//   CDBP_TELEM_SCOPED_TIMER(var, name)   RAII wall-clock timer -> histogram
//
// Each macro resolves the metric once per call site (function-local static
// reference into the global registry) and then updates a relaxed atomic.
// With CDBP_TELEMETRY=0 every macro expands to nothing: no statics, no
// atomics, no clock reads — the zero-cost guarantee the bench_throughput
// telemetry-off comparison checks.
#pragma once

#include "telemetry/registry.hpp"

#if CDBP_TELEMETRY

#define CDBP_TELEM_COUNT(name, delta)                            \
  do {                                                           \
    static ::cdbp::telemetry::Counter& cdbpTelemC =              \
        ::cdbp::telemetry::Registry::global().counter(name);     \
    cdbpTelemC.add(static_cast<std::uint64_t>(delta));           \
  } while (0)

#define CDBP_TELEM_GAUGE_SET(name, value)                        \
  do {                                                           \
    static ::cdbp::telemetry::Gauge& cdbpTelemG =                \
        ::cdbp::telemetry::Registry::global().gauge(name);       \
    cdbpTelemG.set(static_cast<std::int64_t>(value));            \
  } while (0)

#define CDBP_TELEM_HIST(name, value)                             \
  do {                                                           \
    static ::cdbp::telemetry::Histogram& cdbpTelemH =            \
        ::cdbp::telemetry::Registry::global().histogram(name);   \
    cdbpTelemH.record(static_cast<std::uint64_t>(value));        \
  } while (0)

#define CDBP_TELEM_SCOPED_TIMER(var, name)                       \
  ::cdbp::telemetry::ScopedTimer var(                            \
      ::cdbp::telemetry::Registry::global().histogram(name))

#else  // !CDBP_TELEMETRY

// The (void) casts keep locals that only feed instrumentation from
// tripping -Wunused-but-set-variable under -Werror; the expressions are
// side-effect-free and fold away entirely.
#define CDBP_TELEM_COUNT(name, delta) \
  do {                                \
    (void)(delta);                    \
  } while (0)
#define CDBP_TELEM_GAUGE_SET(name, value) \
  do {                                    \
    (void)(value);                        \
  } while (0)
#define CDBP_TELEM_HIST(name, value) \
  do {                               \
    (void)(value);                   \
  } while (0)
#define CDBP_TELEM_SCOPED_TIMER(var, name) \
  do {                                     \
  } while (0)

#endif  // CDBP_TELEMETRY
