#include "telemetry/chrome_trace.hpp"

#include "io/json_writer.hpp"

namespace cdbp::telemetry {

void ChromeTrace::addComplete(std::string name, std::string category,
                              double tsMicros, double durMicros, int pid,
                              int tid,
                              std::vector<std::pair<std::string, double>> args) {
  Event e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'X';
  e.tsMicros = tsMicros;
  e.durMicros = durMicros;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  events_.push_back(std::move(e));
}

void ChromeTrace::addInstant(std::string name, std::string category,
                             double tsMicros, int pid, int tid) {
  Event e;
  e.name = std::move(name);
  e.category = std::move(category);
  e.phase = 'i';
  e.tsMicros = tsMicros;
  e.pid = pid;
  e.tid = tid;
  events_.push_back(std::move(e));
}

void ChromeTrace::addCounter(std::string series, double tsMicros, int pid,
                             double value) {
  Event e;
  e.name = std::move(series);
  e.category = "counter";
  e.phase = 'C';
  e.tsMicros = tsMicros;
  e.pid = pid;
  e.args.emplace_back("value", value);
  events_.push_back(std::move(e));
}

void ChromeTrace::setProcessName(int pid, std::string name) {
  processNames_[pid] = std::move(name);
}

void ChromeTrace::setThreadName(int pid, int tid, std::string name) {
  threadNames_[{pid, tid}] = std::move(name);
}

void ChromeTrace::write(std::ostream& os) const {
  // Compact: traces routinely hold one event per item, pretty-printing
  // would triple the file size for no reader benefit.
  JsonWriter w(os, /*indent=*/0);
  w.beginArray();
  for (const auto& [pid, name] : processNames_) {
    w.beginObject();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(0);
    w.key("args").beginObject().key("name").value(name).endObject();
    w.endObject();
  }
  for (const auto& [key, name] : threadNames_) {
    w.beginObject();
    w.key("name").value("thread_name");
    w.key("ph").value("M");
    w.key("pid").value(key.first);
    w.key("tid").value(key.second);
    w.key("args").beginObject().key("name").value(name).endObject();
    w.endObject();
  }
  for (const Event& e : events_) {
    w.beginObject();
    w.key("name").value(e.name);
    if (!e.category.empty()) w.key("cat").value(e.category);
    w.key("ph").value(std::string_view(&e.phase, 1));
    w.key("ts").value(e.tsMicros);
    if (e.phase == 'X') w.key("dur").value(e.durMicros);
    w.key("pid").value(e.pid);
    w.key("tid").value(e.tid);
    if (!e.args.empty()) {
      w.key("args").beginObject();
      for (const auto& [k, v] : e.args) w.key(k).value(v);
      w.endObject();
    }
    w.endObject();
  }
  w.endArray();
  w.done();
  os << '\n';
}

}  // namespace cdbp::telemetry
