// Machine-readable bench reports (the BENCH_*.json perf trajectory).
//
// Every bench/bench_*.cpp main builds one BenchReport: run parameters,
// result tables, optional repetition timing series, and a snapshot of the
// telemetry registry. `--json=PATH` (or bare `--json` for the default
// BENCH_<name>.json) writes the versioned document; without the flag the
// report costs nothing beyond its in-memory bookkeeping.
//
// Schema (DESIGN.md §8.3), version 1:
//   {
//     "schema": "cdbp-bench-report", "schema_version": 1,
//     "bench": "<name>", "git_sha": "<configure-time sha|unknown>",
//     "telemetry_enabled": bool, "timestamp_unix_us": int,
//     "params": { "<flag>": string|number|bool, ... },
//     "timings": [ { "name", "items_per_rep", "reps",
//                    "seconds": {mean,stddev,min,max,p50,p90},
//                    "items_per_second", "counters": {name: delta} } ],
//     "tables": [ { "name", "columns": [..], "rows": [[cell,..],..] } ],
//     "registry": { "counters": {..}, "gauges": {..}, "histograms": {..} }
//   }
// Table cells are the pre-formatted strings the human tables print, so the
// JSON mirrors exactly what EXPERIMENTS.md quotes.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "telemetry/registry.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cdbp {
class JsonWriter;
}

namespace cdbp::telemetry {

inline constexpr int kBenchReportSchemaVersion = 1;

/// Repetition timings of one named benchmark within a report.
class BenchTimingSeries {
 public:
  BenchTimingSeries(std::string name, std::uint64_t itemsPerRep)
      : name_(std::move(name)), itemsPerRep_(itemsPerRep) {}

  void addRepSeconds(double seconds) { seconds_.add(seconds); }

  /// Registry counter increments attributed to this benchmark
  /// (diffCounters of snapshots taken around the timed reps).
  void setCounterDeltas(
      std::vector<std::pair<std::string, std::uint64_t>> deltas) {
    counterDeltas_ = std::move(deltas);
  }

  const std::string& name() const { return name_; }
  std::uint64_t itemsPerRep() const { return itemsPerRep_; }
  const SummaryStats& seconds() const { return seconds_; }
  const std::vector<std::pair<std::string, std::uint64_t>>& counterDeltas()
      const {
    return counterDeltas_;
  }

  /// Mean throughput over the recorded reps; 0 when nothing was recorded.
  double itemsPerSecond() const;

 private:
  std::string name_;
  std::uint64_t itemsPerRep_;
  SummaryStats seconds_;
  std::vector<std::pair<std::string, std::uint64_t>> counterDeltas_;
};

class BenchReport {
 public:
  /// `benchName` is the "<name>" in BENCH_<name>.json — by convention the
  /// binary name without the bench_ prefix ("throughput", "fig8", ...).
  explicit BenchReport(std::string benchName);

  void setParam(const std::string& key, std::string_view value);
  void setParam(const std::string& key, const char* value) {
    setParam(key, std::string_view(value));
  }
  void setParam(const std::string& key, bool value);
  void setParam(const std::string& key, int value) {
    setParam(key, static_cast<long>(value));
  }
  void setParam(const std::string& key, long value);
  void setParam(const std::string& key, unsigned long value) {
    setParam(key, static_cast<long>(value));
  }
  void setParam(const std::string& key, double value);

  /// Adds a repetition-timing series; the reference stays valid for the
  /// report's lifetime.
  BenchTimingSeries& addTiming(std::string name, std::uint64_t itemsPerRep);

  /// Embeds a rendered result table (columns + stringly-typed rows).
  void addTable(std::string name, const Table& table);

  /// Writes the full JSON document (pretty-printed, trailing newline).
  /// Takes the registry snapshot at call time.
  void write(std::ostream& os) const;

  /// Handles the `--json[=PATH]` flag: writes the report (default path
  /// BENCH_<name>.json) and notes the destination on `log`. Returns false
  /// without touching the filesystem when the flag is absent.
  bool writeIfRequested(const Flags& flags, std::ostream& log) const;

  /// The default output path, BENCH_<name>.json.
  std::string defaultPath() const;

 private:
  struct Param {
    enum class Kind { kString, kBool, kInt, kDouble };
    Kind kind = Kind::kString;
    std::string s;
    bool b = false;
    long i = 0;
    double d = 0;
  };

  std::string benchName_;
  std::int64_t timestampUnixMicros_;
  std::vector<std::pair<std::string, Param>> params_;
  std::vector<BenchTimingSeries> timings_;
  struct NamedTable {
    std::string name;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<NamedTable> tables_;
};

/// Serializes a registry snapshot under the current writer position (the
/// caller has emitted the surrounding key). Shared by BenchReport and the
/// registry tests.
void writeRegistrySnapshot(const RegistrySnapshot& snap, JsonWriter& w);

}  // namespace cdbp::telemetry
