// Chrome trace-event emitter (the chrome://tracing / Perfetto "Trace Event
// Format", JSON array flavor).
//
// The simulator uses this to dump a placement timeline: every item is a
// complete ("X") event on its bin's row, the open-bin count is a counter
// ("C") series, and bins get named rows via metadata events. Load the
// resulting file in chrome://tracing or https://ui.perfetto.dev.
//
// Timestamps are microseconds. Simulated time is dimensionless, so callers
// scale it (SimOptions::traceTimeScale, default 1 time unit -> 1s) before
// recording.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace cdbp::telemetry {

class ChromeTrace {
 public:
  /// A complete event: a bar from `tsMicros` lasting `durMicros` on row
  /// (pid, tid). `args` show up in the selection panel.
  void addComplete(std::string name, std::string category, double tsMicros,
                   double durMicros, int pid, int tid,
                   std::vector<std::pair<std::string, double>> args = {});

  /// An instant event (a vertical tick) on row (pid, tid).
  void addInstant(std::string name, std::string category, double tsMicros,
                  int pid, int tid);

  /// One sample of a counter series; chrome://tracing plots it as an area
  /// chart per pid.
  void addCounter(std::string series, double tsMicros, int pid, double value);

  /// Names the process/thread rows in the viewer.
  void setProcessName(int pid, std::string name);
  void setThreadName(int pid, int tid, std::string name);

  std::size_t eventCount() const { return events_.size(); }

  /// Writes the whole trace as a JSON array (the format chrome://tracing
  /// accepts directly).
  void write(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase = 'X';
    double tsMicros = 0;
    double durMicros = 0;
    int pid = 0;
    int tid = 0;
    std::vector<std::pair<std::string, double>> args;
  };

  std::vector<Event> events_;
  std::map<int, std::string> processNames_;
  std::map<std::pair<int, int>, std::string> threadNames_;
};

}  // namespace cdbp::telemetry
