// Metrics registry: the repo-wide home for counters, gauges, log-bucketed
// histograms and scoped wall-clock timers (DESIGN.md §8).
//
// Design constraints, in order:
//   1. Zero cost when compiled out. `CDBP_TELEMETRY=0` turns every update
//      into an empty inline function and the CDBP_TELEM_* site macros into
//      nothing, so the hot placement paths carry no atomics, no clock
//      reads, and no registry lookups.
//   2. Thread-safe without locks on the update path. Metric objects are
//      plain relaxed atomics (TSan-clean under the `tsan` preset); the
//      registry mutex is touched only on first lookup of a name and when
//      taking a snapshot.
//   3. Dependency-free. Standard library only.
//
// Instrumentation sites use the macros from telemetry.hpp; they resolve
// the name to a metric reference once (function-local static) and then hit
// the atomic directly. Metric references stay valid for the program's
// lifetime — the registry never deletes a metric.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

#ifndef CDBP_TELEMETRY
#define CDBP_TELEMETRY 1
#endif

namespace cdbp::telemetry {

/// Compile-time master switch (set via the CDBP_TELEMETRY CMake option).
inline constexpr bool kEnabled = CDBP_TELEMETRY != 0;

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
#if CDBP_TELEMETRY
    value_.fetch_add(delta, std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }

  std::uint64_t value() const noexcept {
#if CDBP_TELEMETRY
    return value_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  void reset() noexcept {
#if CDBP_TELEMETRY
    value_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (open-bin count, queue depth, ...). Tracks the
/// current value and the high-water mark since the last reset.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
#if CDBP_TELEMETRY
    value_.store(v, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  std::int64_t value() const noexcept {
#if CDBP_TELEMETRY
    return value_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  std::int64_t max() const noexcept {
#if CDBP_TELEMETRY
    return max_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  void reset() noexcept {
#if CDBP_TELEMETRY
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Power-of-two (log2) bucketed histogram of non-negative integer samples
/// (durations in nanoseconds, scan counts, category indices, ...).
/// Bucket b holds samples v with std::bit_width(v) == b, i.e. bucket 0 is
/// exactly {0} and bucket b >= 1 covers [2^(b-1), 2^b - 1].
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  static std::size_t bucketIndex(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }

  /// Inclusive lower bound of a bucket (0 for bucket 0).
  static std::uint64_t bucketFloor(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }

  void record(std::uint64_t v) noexcept {
#if CDBP_TELEMETRY
    buckets_[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t seenMin = min_.load(std::memory_order_relaxed);
    while (v < seenMin && !min_.compare_exchange_weak(
                              seenMin, v, std::memory_order_relaxed)) {
    }
    std::uint64_t seenMax = max_.load(std::memory_order_relaxed);
    while (v > seenMax && !max_.compare_exchange_weak(
                              seenMax, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }

  std::uint64_t count() const noexcept {
#if CDBP_TELEMETRY
    return count_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  std::uint64_t sum() const noexcept {
#if CDBP_TELEMETRY
    return sum_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  std::uint64_t bucketCount(std::size_t b) const noexcept {
#if CDBP_TELEMETRY
    return buckets_[b].load(std::memory_order_relaxed);
#else
    (void)b;
    return 0;
#endif
  }

  /// Minimum recorded sample; 0 when empty.
  std::uint64_t min() const noexcept {
#if CDBP_TELEMETRY
    std::uint64_t v = min_.load(std::memory_order_relaxed);
    return v == kEmptyMin ? 0 : v;
#else
    return 0;
#endif
  }

  std::uint64_t max() const noexcept {
#if CDBP_TELEMETRY
    return max_.load(std::memory_order_relaxed);
#else
    return 0;
#endif
  }

  void reset() noexcept {
#if CDBP_TELEMETRY
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(kEmptyMin, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
#endif
  }

 private:
  static constexpr std::uint64_t kEmptyMin = ~std::uint64_t{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{kEmptyMin};
  std::atomic<std::uint64_t> max_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  /// (bucket index, count) for non-empty buckets only.
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

/// A consistent-enough point-in-time copy of every registered metric.
/// Names are sorted; concurrent updates during the copy may tear across
/// metrics but never within one atomic.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, GaugeSnapshot>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by name; 0 when absent.
  std::uint64_t counter(std::string_view name) const;
};

/// Counter increments between two snapshots (after - before), dropping
/// zero deltas. Counters present only in `after` count from zero.
std::vector<std::pair<std::string, std::uint64_t>> diffCounters(
    const RegistrySnapshot& before, const RegistrySnapshot& after);

class Registry {
 public:
  /// The process-wide registry every CDBP_TELEM_* site records into.
  static Registry& global();

  /// Finds or creates a metric. The returned reference is stable forever.
  Counter& counter(std::string_view name) CDBP_EXCLUDES(mu_);
  Gauge& gauge(std::string_view name) CDBP_EXCLUDES(mu_);
  Histogram& histogram(std::string_view name) CDBP_EXCLUDES(mu_);

  RegistrySnapshot snapshot() const CDBP_EXCLUDES(mu_);

  /// Zeroes every registered metric (names stay registered). Intended for
  /// test and bench isolation, not for concurrent production use.
  void reset() CDBP_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  // node-based maps: element addresses survive insertion. The mutex guards
  // the map structure only; the metric objects behind the unique_ptrs are
  // lock-free and updated outside mu_ (relaxed atomics).
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CDBP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CDBP_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CDBP_GUARDED_BY(mu_);
};

/// Measures the wall-clock span of a scope and records it, in nanoseconds,
/// into a histogram (typically named "*_ns"). Compiled out together with
/// the rest of the instrumentation via CDBP_TELEM_SCOPED_TIMER.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& sink);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* sink_;
  std::uint64_t startNanos_;
};

}  // namespace cdbp::telemetry
