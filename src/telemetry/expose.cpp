#include "telemetry/expose.hpp"

#include <cctype>
#include <ostream>
#include <sstream>

namespace cdbp::telemetry {

std::string expositionName(std::string_view name) {
  std::string out = "cdbp_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void exposeText(const RegistrySnapshot& snapshot, std::ostream& out) {
  for (const auto& [name, value] : snapshot.counters) {
    std::string n = expositionName(name);
    out << "# TYPE " << n << " counter\n";
    out << n << ' ' << value << '\n';
  }
  for (const auto& [name, gauge] : snapshot.gauges) {
    std::string n = expositionName(name);
    out << "# TYPE " << n << " gauge\n";
    out << n << ' ' << gauge.value << '\n';
    out << n << "_max " << gauge.max << '\n';
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    std::string n = expositionName(name);
    out << "# TYPE " << n << " histogram\n";
    // Buckets arrive sparse (non-empty only) and sorted by index; the
    // exposition emits every bucket up to the highest non-empty one so
    // `le` bounds are contiguous, with cumulative counts as Prometheus
    // defines them.
    std::size_t top = hist.buckets.empty() ? 0 : hist.buckets.back().first;
    std::uint64_t cumulative = 0;
    std::size_t sparse = 0;
    for (std::size_t b = 0; b <= top; ++b) {
      if (sparse < hist.buckets.size() && hist.buckets[sparse].first == b) {
        cumulative += hist.buckets[sparse].second;
        ++sparse;
      }
      // Bucket b covers [2^(b-1), 2^b - 1] (bucket 0 is exactly {0}), so
      // its inclusive upper bound is 2^b - 1 — saturating at the top
      // bucket, whose bound 2^64 - 1 cannot be formed by a 64-bit shift.
      std::uint64_t upper = b == 0 ? 0
                            : b >= 64
                                ? ~std::uint64_t{0}
                                : (std::uint64_t{1} << b) - 1;
      out << n << "_bucket{le=\"" << upper << "\"} " << cumulative << '\n';
    }
    out << n << "_bucket{le=\"+Inf\"} " << hist.count << '\n';
    out << n << "_sum " << hist.sum << '\n';
    out << n << "_count " << hist.count << '\n';
  }
}

void exposeText(Registry& registry, std::ostream& out) {
  exposeText(registry.snapshot(), out);
}

std::string exposeTextString(Registry& registry) {
  std::ostringstream out;
  exposeText(registry, out);
  return out.str();
}

}  // namespace cdbp::telemetry
