#include "telemetry/registry.hpp"

#include <algorithm>

#include "telemetry/clock.hpp"

namespace cdbp::telemetry {

namespace {

// Callers hold the registry mutex; the map reference arrives pre-guarded
// (taking the lock in here would hide the caller's lock requirement from
// the thread-safety analysis).
template <typename Map>
auto& findOrCreate(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name),
                     std::make_unique<typename Map::mapped_type::element_type>())
             .first;
  }
  return *it->second;
}

}  // namespace

std::uint64_t RegistrySnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> diffCounters(
    const RegistrySnapshot& before, const RegistrySnapshot& after) {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [name, value] : after.counters) {
    std::uint64_t prior = before.counter(name);
    if (value > prior) out.emplace_back(name, value - prior);
  }
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked: outlives all users
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  MutexLock lock(mu_);
  return findOrCreate(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  return findOrCreate(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  return findOrCreate(histograms_, name);
}

RegistrySnapshot Registry::snapshot() const {
  MutexLock lock(mu_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, GaugeSnapshot{g->value(), g->max()});
  }
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      std::uint64_t n = h->bucketCount(b);
      if (n > 0) hs.buckets.emplace_back(b, n);
    }
    snap.histograms.emplace_back(name, std::move(hs));
  }
  return snap;
}

void Registry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

ScopedTimer::ScopedTimer(Histogram& sink)
    : sink_(&sink), startNanos_(monotonicNanos()) {}

ScopedTimer::~ScopedTimer() {
  std::uint64_t end = monotonicNanos();
  sink_->record(end >= startNanos_ ? end - startNanos_ : 0);
}

}  // namespace cdbp::telemetry
