// The project's only sanctioned wall-clock call site.
//
// Every other module (including the bench harnesses) obtains time through
// these two functions or through the registry's scoped timers, never by
// calling std::chrono::*_clock::now() directly — the `wallclock-in-lib`
// lint rule enforces this. Centralizing the clock keeps timing compilable
// out (CDBP_TELEMETRY=0 removes every instrumentation read) and gives the
// harness one place to stub time if a deterministic replay ever needs it.
#pragma once

#include <cstdint>

namespace cdbp::telemetry {

/// Monotonic nanoseconds since an arbitrary epoch (std::chrono::steady_clock).
/// Always available, independent of the CDBP_TELEMETRY toggle — the bench
/// harness measures with it even in telemetry-off builds.
std::uint64_t monotonicNanos() noexcept;

/// Wall-clock microseconds since the Unix epoch (std::chrono::system_clock).
/// Used only for report metadata (run timestamps), never for measurement.
std::int64_t wallclockUnixMicros() noexcept;

}  // namespace cdbp::telemetry
