// Text exposition of the metrics registry — the Prometheus-style
// `name value` format the placement daemon's SCRAPE endpoint serves
// (serve/server.hpp) and any standalone tool can emit.
//
// Formatting rules:
//   * Metric names are mapped to exposition names by replacing every
//     character outside [a-zA-Z0-9_] with '_' and prefixing "cdbp_"
//     ("sim.fit_checks" -> "cdbp_sim_fit_checks").
//   * Counters emit one line:        cdbp_<name> <value>
//   * Gauges emit two lines:         cdbp_<name> <value>
//                                    cdbp_<name>_max <high-water mark>
//   * Histograms emit cumulative log2 buckets in Prometheus histogram
//     shape: `cdbp_<name>_bucket{le="<upper>"} <cumulative count>` for
//     every bucket up to the highest non-empty one (upper bound of bucket
//     b is 2^b - 1; bucket 0 is exactly {0}), a `le="+Inf"` line, then
//     `cdbp_<name>_sum` and `cdbp_<name>_count`.
//   * Every metric is preceded by a `# TYPE` comment line.
//
// The exposition is computed from a RegistrySnapshot, so one scrape pays
// one registry lock, not one per metric.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "telemetry/registry.hpp"

namespace cdbp::telemetry {

/// "sim.fit_checks" -> "cdbp_sim_fit_checks".
std::string expositionName(std::string_view name);

/// Writes the text exposition of `snapshot` to `out`.
void exposeText(const RegistrySnapshot& snapshot, std::ostream& out);

/// Snapshot-and-expose convenience for the daemon's scrape endpoint.
void exposeText(Registry& registry, std::ostream& out);

/// exposeText into a string (the SCRAPE frame payload).
std::string exposeTextString(Registry& registry);

}  // namespace cdbp::telemetry
