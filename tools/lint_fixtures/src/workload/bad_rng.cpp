// Fixture: entropy-seeded / C-library RNG outside util/rng.hpp.
#include <cstdlib>
#include <random>

namespace cdbp_fixture {

double notReproducible() {
  std::random_device entropy;
  std::mt19937_64 engine(entropy());
  return static_cast<double>(engine() % 100) / 100.0;
}

int legacyRand() { return std::rand(); }

}  // namespace cdbp_fixture
