// Fixture: a justified suppression covers a deliberate raw parse, and
// mentions of std::stod in comments or strings never fire.

#include <cstdlib>
#include <string>

namespace cdbp_fixture {

// Docs may say "std::stod accepts '16abc'" without calling it.
inline const char* kDoc = "std::stod and strtod( are parser landmines";

double lastResort(const std::string& cell) {
  // cdbp-lint: allow(raw-number-parse): fuzz harness intentionally mirrors the lenient libc behavior
  return std::stod(cell);
}

}  // namespace cdbp_fixture
