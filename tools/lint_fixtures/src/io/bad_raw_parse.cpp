// Fixture: partial-prefix-tolerant parsers in library code must fire
// raw-number-parse.

#include <cstdlib>
#include <string>

namespace cdbp_fixture {

double viaStod(const std::string& cell) { return std::stod(cell); }

unsigned long long viaStoull(const std::string& cell) {
  return std::stoull(cell);
}

double viaStrtod(const char* cell) { return strtod(cell, nullptr); }

int viaAtoi(const char* cell) { return atoi(cell); }

}  // namespace cdbp_fixture
