// Fixture: idiomatic cdbp code that must lint clean.
#include "core/epsilon.hpp"

namespace cdbp_fixture {

bool fits(double level, double size) { return cdbp::fitsCapacity(level, size); }

bool atCapacity(double level) { return cdbp::approxEq(level, cdbp::kBinCapacity); }

double scale(double x) { return x * 1.05; }  // 1.05 is not the literal 1.0

}  // namespace cdbp_fixture
