// Fixture: a suppression without a justification is itself an error, and the
// underlying violation still fires.

namespace cdbp_fixture {

bool unjustified(double level) {
  return level <= 1.0;  // cdbp-lint: allow(capacity-compare)
}

}  // namespace cdbp_fixture
