// Fixture: justified suppressions silence findings; comments and strings are
// never matched.

namespace cdbp_fixture {

// A comparison against kBinCapacity in a comment must not fire: x <= kBinCapacity.
inline const char* kDoc = "size == 1.0 inside a string must not fire";

double sentinel() {
  // cdbp-lint: allow(capacity-compare): sentinel value, not a feasibility decision
  return 2.0 * kBinCapacity;
}

bool exactBoundary(double size) {
  return size == 1.0;  // cdbp-lint: allow(capacity-compare): exact generator output, no arithmetic involved
}

}  // namespace cdbp_fixture
