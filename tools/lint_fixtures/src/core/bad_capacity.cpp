// Fixture: raw capacity comparisons that must route through epsilon helpers.
#include "core/types.hpp"

namespace cdbp_fixture {

bool rawCapacityCompare(double level, double size) {
  return level + size <= kBinCapacity;  // violation: raw kBinCapacity use
}

bool rawLiteralCompare(double size) {
  return size == 1.0;  // violation: raw comparison against literal 1.0
}

bool rawLiteralCompareReversed(double load) {
  return 1.0 < load;  // violation: literal on the left is still a comparison
}

bool assignmentIsFine(double& x) {
  x = 1.0;  // not a comparison: must NOT fire
  return x > 0.5;
}

}  // namespace cdbp_fixture
