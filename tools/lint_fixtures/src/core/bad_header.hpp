// Fixture: header without #pragma once (the guard below does not count).
#ifndef CDBP_FIXTURE_BAD_HEADER_HPP
#define CDBP_FIXTURE_BAD_HEADER_HPP

namespace cdbp_fixture {
inline int three() { return 3; }
}  // namespace cdbp_fixture

#endif
