// Fixture: direct clock reads in library code must fire wallclock-in-lib.
#include <chrono>

double now1() {
  auto t = std::chrono::steady_clock::now();
  return t.time_since_epoch().count();
}

double now2() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}

double now3() {
  return std::chrono::high_resolution_clock::now().time_since_epoch().count();
}
