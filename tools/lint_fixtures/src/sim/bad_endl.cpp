// Fixture: std::endl in src/ hot paths.
#include <ostream>

namespace cdbp_fixture {

void render(std::ostream& os) { os << "row" << std::endl; }

}  // namespace cdbp_fixture
