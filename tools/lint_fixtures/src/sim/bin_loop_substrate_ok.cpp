// Fixture: the placement substrate (src/sim/) is the sanctioned home of
// linear reference scans; raw-bin-loop must stay quiet here.

namespace cdbp_fixture {

struct Manager {
  const int* openBins(int) const { return nullptr; }
  bool fits(int, double) const { return false; }
};

int linearReferenceScan(const Manager& bins, int category, double size) {
  for (int id : bins.openBins(category)) {
    if (bins.fits(id, size)) return id;
  }
  return -1;
}

}  // namespace cdbp_fixture
