#pragma once
// Fixture: util/parse.hpp is the sanctioned home of text-to-number
// conversion — raw parser spellings inside it are exempt.

#include <cstdlib>
#include <string>

namespace cdbp_fixture {

inline bool tryParseDouble(const std::string& text, double& out) {
  char* end = nullptr;
  out = strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

}  // namespace cdbp_fixture
