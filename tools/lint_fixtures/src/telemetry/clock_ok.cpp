// Fixture: src/telemetry/ is the sanctioned home for clock reads — the
// wallclock-in-lib rule must stay quiet here.
#include <chrono>
#include <cstdint>

std::uint64_t monotonicNanosFixture() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}
