// Fixture: a justified suppression covers a bespoke open-bin scan, and
// mentions of openBins() in comments or strings never fire.

namespace cdbp_fixture {

// Policies often document `for (BinId id : view.openBins())` without looping.
inline const char* kDoc = "for (BinId id : view.openBins()) in a string";

struct View {
  const int* openBins() const { return nullptr; }
  bool fits(int, double) const { return false; }
};

int bespokeScan(const View& view, double size) {
  // cdbp-lint: allow(raw-bin-loop): selection keys on policy-private state the substrate cannot rank by
  for (int id : view.openBins()) {
    if (view.fits(id, size)) return id;
  }
  return -1;
}

}  // namespace cdbp_fixture
