// Fixture: hand-rolled open-bin scans in policy code must fire raw-bin-loop.

namespace cdbp_fixture {

struct View {
  const int* openBins() const { return nullptr; }
  const int* openBins(int) const { return nullptr; }
  bool fits(int, double) const { return false; }
};

int scanAll(const View& view, double size) {
  for (int id : view.openBins()) {
    if (view.fits(id, size)) return id;
  }
  return -1;
}

int scanCategory(const View& view, int category, double size) {
  for (int id : view.openBins(category)) {
    if (view.fits(id, size)) return id;
  }
  return -1;
}

}  // namespace cdbp_fixture
