// Fixture: <iostream> is banned in the algorithmic library directories.
#include <iostream>

namespace cdbp_fixture {

void debugPrint(int bins) { std::cout << bins << "\n"; }

}  // namespace cdbp_fixture
