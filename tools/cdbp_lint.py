#!/usr/bin/env python3
"""cdbp_lint — project-specific invariant linter for the cdbp codebase.

The correctness proofs reproduced from the paper (Theorems 1/2/4/5) rest on
coding conventions that generic tools cannot check. This linter enforces them
mechanically over ``src/``, ``tests/``, ``bench/`` and ``examples/``:

  capacity-compare   Size/Time values must never be compared against
                     ``kBinCapacity`` or the literal ``1.0`` with raw
                     ``<``/``<=``/``==``-family operators, and raw arithmetic
                     on ``kBinCapacity`` is confined to ``core/epsilon.hpp``.
                     All capacity decisions route through the shared
                     tolerance helpers (``leq``/``lt``/``approxEq``/
                     ``fitsCapacity``/``freeCapacity``) so every module
                     accepts exactly the same packings.
  rng-discipline     No ``std::rand``/``std::srand``/``std::random_device``
                     outside ``util/rng.hpp``. Experiments must be seeded
                     and reproducible; entropy-seeded RNG silently breaks
                     golden regression tests.
  iostream-in-lib    No ``#include <iostream>`` in the algorithmic library
                     directories (``src/core``, ``src/online``,
                     ``src/offline``, ``src/multidim``). Algorithm code
                     reports through return values; stream globals drag in
                     static initializers and tempt ad-hoc printing.
  endl-in-lib        No ``std::endl`` anywhere under ``src/`` (use ``'\\n'``;
                     ``std::endl`` flushes, which is a measurable cost in
                     table/chart rendering hot paths).
  pragma-once        Every header carries ``#pragma once``.
  wallclock-in-lib   No direct ``steady_clock``/``system_clock``/
                     ``high_resolution_clock`` ``::now()`` calls under
                     ``src/`` outside ``src/telemetry/``. All timing routes
                     through ``telemetry/clock.hpp`` (monotonicNanos /
                     wallclockUnixMicros) so instrumentation stays
                     centralized and mockable, and library code stays
                     deterministic.
  raw-bin-loop       No range-``for`` iteration over ``openBins(...)`` under
                     ``src/`` outside the placement substrate
                     (``src/sim/``). Linear open-bin scans bypass the
                     engine-routed PlacementView queries (firstFit /
                     bestFit / worstFit / minScoreFitIn), silently lose the
                     sublinear indexed engine and skew the ``sim.fit_checks``
                     accounting. Policies whose selection rule genuinely
                     keys on policy-private state must carry a justified
                     suppression.
  raw-number-parse   No ``std::sto*``/``ato*``/``strto*`` under ``src/``
                     outside ``util/parse.hpp``. Those parsers accept
                     partial prefixes ("16abc" -> 16) and, for stoull,
                     wrap negatives modulo 2^64 — both have produced
                     silently-wrong experiment configs. All text-to-number
                     conversion routes through the checked
                     ``tryParseDouble``/``tryParseUint``/``tryParseLong``
                     helpers in ``util/parse.hpp``, which reject trailing
                     junk.

Suppressing a finding
---------------------
Append (or put on the immediately preceding line) a justified suppression::

    double sentinel = 2 * kBinCapacity;  // cdbp-lint: allow(capacity-compare): sentinel, not a feasibility decision

A suppression without a justification after the ``:`` is itself an error —
the justification is the reviewable artifact.

Usage::

    python3 tools/cdbp_lint.py              # lint the repository, exit 1 on findings
    python3 tools/cdbp_lint.py --root DIR   # lint DIR's src/tests/bench/examples
    python3 tools/cdbp_lint.py --self-test  # verify the linter against its fixtures

Stdlib-only by design; runs identically in CI, `scripts/check.sh` and ctest.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

SCAN_DIRS = ("src", "tests", "bench", "examples")
EXTENSIONS = (".cpp", ".hpp", ".h", ".cc")

# Files whose whole purpose is to define the checked discipline.
CAPACITY_EXEMPT = ("core/epsilon.hpp", "core/types.hpp")
RNG_EXEMPT = ("util/rng.hpp",)

EPSILON_HELPERS = ("leq(", "lt(", "approxEq(", "fitsCapacity(", "freeCapacity(")

LIB_IOSTREAM_DIRS = ("src/core/", "src/online/", "src/offline/", "src/multidim/")

SUPPRESS_RE = re.compile(
    r"cdbp-lint:\s*allow\(([a-z-]+)\)\s*(?::\s*(\S.*))?$"
)

# Comparison against the literal 1.0 (either side). Single `=` (assignment)
# and compound assignment never match; `1.05` etc. is excluded by the
# trailing guard.
CMP_1_0_RE = re.compile(
    r"(?:==|!=|<=|>=|<|>)\s*1\.0(?![\d.])|(?<![\d.])1\.0\s*(?:==|!=|<=|>=|<|>)"
)

RNG_RE = re.compile(r"\bstd::s?rand\b|\bs?rand\s*\(|\brandom_device\b")

IOSTREAM_RE = re.compile(r"#\s*include\s*<iostream>")

WALLCLOCK_RE = re.compile(
    r"\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\("
)

# The sanctioned clock wrappers live here; everything else under src/ must
# go through them.
WALLCLOCK_EXEMPT_DIR = "src/telemetry/"

# Range-for over an openBins(...) list — the shape of a hand-rolled linear
# placement scan. The opening brace of the range-for body may sit on the
# same line or the loop header may span lines; matching the `: ...openBins(`
# core is enough for this codebase's formatting.
RAW_BIN_LOOP_RE = re.compile(r"for\s*\(.*:\s*[\w.\->]*openBins\s*\(")

# The substrate itself (manager, view, index) is the sanctioned home of
# linear reference scans.
RAW_BIN_LOOP_EXEMPT_DIR = "src/sim/"

# Partial-prefix/wraparound-prone parsers. `std::stoi` et al. are plain
# identifiers; `atof`/`strtod` et al. are matched as calls so words like
# "atoll" inside longer identifiers don't trip it.
RAW_PARSE_RE = re.compile(
    r"\bstd\s*::\s*sto(?:d|f|ld|i|l|ll|ul|ull)\b"
    r"|\bato(?:f|i|l|ll)\s*\("
    r"|\bstrto(?:d|f|ld|imax|umax|l|ll|ul|ull)\s*\("
)

# The checked helpers live here; they wrap std::from_chars directly.
RAW_PARSE_EXEMPT = ("util/parse.hpp",)

ALL_RULES = (
    "capacity-compare",
    "rng-discipline",
    "iostream-in-lib",
    "endl-in-lib",
    "pragma-once",
    "wallclock-in-lib",
    "raw-bin-loop",
    "raw-number-parse",
)


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Removes comments and string/char literal contents from one line.

    Returns the stripped line and whether a /* block comment is still open.
    Literal contents are blanked (kept as spaces) so column positions and
    operators outside literals survive. This is a lexer-lite: good enough for
    the line-oriented patterns above, not a C++ parser.
    """
    out: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                return "".join(out), True
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            break  # rest of line is a comment
        if c == "/" and nxt == "*":
            in_block_comment = True
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append(" ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


class FileLint:
    def __init__(self, root: str, relpath: str, text: str):
        self.relpath = relpath.replace(os.sep, "/")
        self.raw_lines = text.splitlines()
        self.findings: list[Finding] = []
        # suppressions[line_no] = set of rule names allowed on that line.
        self.suppressions: dict[int, set[str]] = {}
        self.code_lines: list[str] = []
        self._collect_suppressions()
        self._strip()

    def _collect_suppressions(self) -> None:
        for idx, line in enumerate(self.raw_lines, start=1):
            m = SUPPRESS_RE.search(line)
            if not m:
                continue
            rule, justification = m.group(1), m.group(2)
            if rule not in ALL_RULES:
                self.findings.append(
                    Finding(self.relpath, idx, "suppression",
                            f"unknown rule '{rule}' in cdbp-lint suppression"))
                continue
            if not justification:
                self.findings.append(
                    Finding(self.relpath, idx, "suppression",
                            f"suppression of '{rule}' lacks a justification "
                            "(write `// cdbp-lint: allow(rule): why`)"))
                continue
            self.suppressions.setdefault(idx, set()).add(rule)
            # A suppression on its own comment line covers the next line.
            stripped = line.strip()
            if stripped.startswith("//"):
                self.suppressions.setdefault(idx + 1, set()).add(rule)

    def _strip(self) -> None:
        in_block = False
        for line in self.raw_lines:
            stripped, in_block = strip_code_line(line, in_block)
            self.code_lines.append(stripped)

    def report(self, lineno: int, rule: str, message: str) -> None:
        if rule in self.suppressions.get(lineno, set()):
            return
        self.findings.append(Finding(self.relpath, lineno, rule, message))

    # --- rules ---

    def check_capacity_compare(self) -> None:
        if self.relpath.endswith(CAPACITY_EXEMPT):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if "kBinCapacity" in code:
                if not any(h in code for h in EPSILON_HELPERS):
                    self.report(
                        idx, "capacity-compare",
                        "raw use of kBinCapacity outside the epsilon helpers "
                        "(route through leq/lt/approxEq/fitsCapacity/"
                        "freeCapacity from core/epsilon.hpp)")
                    continue
            if CMP_1_0_RE.search(code):
                self.report(
                    idx, "capacity-compare",
                    "raw comparison against literal 1.0 (use the epsilon "
                    "helpers, or kBinCapacity arithmetic through them)")

    def check_rng_discipline(self) -> None:
        if self.relpath.endswith(RNG_EXEMPT):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if RNG_RE.search(code):
                self.report(
                    idx, "rng-discipline",
                    "non-reproducible RNG source (std::rand/random_device); "
                    "use cdbp::Rng from util/rng.hpp with an explicit seed")

    def check_iostream_in_lib(self) -> None:
        if not self.relpath.startswith(LIB_IOSTREAM_DIRS):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if IOSTREAM_RE.search(code):
                self.report(
                    idx, "iostream-in-lib",
                    "#include <iostream> in algorithmic library code "
                    "(report through return values; use <ostream> for "
                    "operator<< declarations)")

    def check_endl_in_lib(self) -> None:
        if not self.relpath.startswith("src/"):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if "std::endl" in code:
                self.report(
                    idx, "endl-in-lib",
                    "std::endl flushes on every use; write '\\n' and let the "
                    "stream flush on close")

    def check_wallclock_in_lib(self) -> None:
        if not self.relpath.startswith("src/"):
            return
        if self.relpath.startswith(WALLCLOCK_EXEMPT_DIR):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if WALLCLOCK_RE.search(code):
                self.report(
                    idx, "wallclock-in-lib",
                    "direct clock ::now() call in library code; use "
                    "telemetry/clock.hpp (monotonicNanos / "
                    "wallclockUnixMicros) so timing stays centralized")

    def check_raw_bin_loop(self) -> None:
        if not self.relpath.startswith("src/"):
            return
        if self.relpath.startswith(RAW_BIN_LOOP_EXEMPT_DIR):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if RAW_BIN_LOOP_RE.search(code):
                self.report(
                    idx, "raw-bin-loop",
                    "hand-rolled scan over openBins(); route placement "
                    "through the PlacementView queries (firstFit/bestFit/"
                    "worstFit/minScoreFitIn) so both engines serve it, or "
                    "justify why the selection rule cannot be expressed as "
                    "a substrate query")

    def check_raw_number_parse(self) -> None:
        if not self.relpath.startswith("src/"):
            return
        if self.relpath.endswith(RAW_PARSE_EXEMPT):
            return
        for idx, code in enumerate(self.code_lines, start=1):
            if RAW_PARSE_RE.search(code):
                self.report(
                    idx, "raw-number-parse",
                    "partial-prefix-tolerant number parser (std::sto*/ato*/"
                    "strto*); use tryParseDouble/tryParseUint/tryParseLong "
                    "from util/parse.hpp, which reject trailing junk")

    def check_pragma_once(self) -> None:
        if not self.relpath.endswith((".hpp", ".h")):
            return
        for code in self.code_lines:
            if re.search(r"#\s*pragma\s+once", code):
                return
        self.report(1, "pragma-once", "header is missing #pragma once")

    def run(self) -> list[Finding]:
        self.check_capacity_compare()
        self.check_rng_discipline()
        self.check_iostream_in_lib()
        self.check_endl_in_lib()
        self.check_wallclock_in_lib()
        self.check_raw_bin_loop()
        self.check_raw_number_parse()
        self.check_pragma_once()
        return self.findings


def lint_tree(root: str) -> list[Finding]:
    findings: list[Finding] = []
    for scan in SCAN_DIRS:
        base = os.path.join(root, scan)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(EXTENSIONS):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, root)
                with open(path, encoding="utf-8", errors="replace") as fh:
                    text = fh.read()
                findings.extend(FileLint(root, rel, text).run())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# --- self-test against the checked-in fixtures ---

# relpath (under the fixture root) -> set of rules that must fire there.
# An empty set means the file must lint clean.
FIXTURE_EXPECTATIONS = {
    "src/core/bad_capacity.cpp": {"capacity-compare"},
    "src/core/bad_header.hpp": {"pragma-once"},
    "src/core/bad_suppression.cpp": {"suppression", "capacity-compare"},
    "src/core/suppressed_ok.cpp": set(),
    "src/online/bad_iostream.cpp": {"iostream-in-lib"},
    "src/sim/bad_endl.cpp": {"endl-in-lib"},
    "src/workload/bad_rng.cpp": {"rng-discipline"},
    "src/core/clean.cpp": set(),
    "src/sim/bad_wallclock.cpp": {"wallclock-in-lib"},
    "src/telemetry/clock_ok.cpp": set(),
    "src/online/bad_bin_loop.cpp": {"raw-bin-loop"},
    "src/online/bin_loop_suppressed_ok.cpp": set(),
    "src/sim/bin_loop_substrate_ok.cpp": set(),
    "src/io/bad_raw_parse.cpp": {"raw-number-parse"},
    "src/io/raw_parse_suppressed_ok.cpp": set(),
    "src/util/parse.hpp": set(),
}


def self_test(fixture_root: str) -> int:
    findings = lint_tree(fixture_root)
    by_file: dict[str, set[str]] = {rel: set() for rel in FIXTURE_EXPECTATIONS}
    unexpected_files = []
    for f in findings:
        if f.path in by_file:
            by_file[f.path].add(f.rule)
        else:
            unexpected_files.append(f)
    failures = 0
    for rel, expected in sorted(FIXTURE_EXPECTATIONS.items()):
        got = by_file[rel]
        if got != expected:
            failures += 1
            print(f"self-test FAIL {rel}: expected rules {sorted(expected)}, "
                  f"got {sorted(got)}")
    for f in unexpected_files:
        failures += 1
        print(f"self-test FAIL unexpected finding: {f.render()}")
    if failures:
        return 1
    print(f"self-test OK: {len(FIXTURE_EXPECTATIONS)} fixtures, "
          f"{len(findings)} expected findings")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root to lint (default: the parent "
                             "of this script's directory)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter against tools/lint_fixtures and "
                             "verify the expected findings fire")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and exit")
    args = parser.parse_args(argv)

    script_dir = os.path.dirname(os.path.abspath(__file__))
    default_root = os.path.dirname(script_dir)

    if args.list_rules:
        for rule in ALL_RULES:
            print(rule)
        return 0

    if args.self_test:
        return self_test(os.path.join(script_dir, "lint_fixtures"))

    root = os.path.abspath(args.root or default_root)
    if not any(os.path.isdir(os.path.join(root, d)) for d in SCAN_DIRS):
        print(f"cdbp_lint: error: no {'/'.join(SCAN_DIRS)} directory under "
              f"{root} -- nothing would be linted (typo'd --root?)",
              file=sys.stderr)
        return 2
    findings = lint_tree(root)
    for f in findings:
        print(f.render())
    if findings:
        print(f"cdbp_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
