#!/usr/bin/env python3
"""Perf guard: compare two cdbp-bench-report JSON files by items/sec.

Modes
-----
Regression guard (default):

    perf_guard.py BASELINE CURRENT [--max-regression 20]

  For every benchmark present in both reports, compute the throughput
  ratio current/baseline. Ratios are normalized by their geometric mean
  before the check, so a uniformly faster or slower machine (CI runners
  vary a lot) cancels out and only *relative* shifts between benchmarks
  count. The guard fails when any normalized ratio drops more than
  --max-regression percent below parity. Pass --absolute to skip the
  normalization (meaningful only when both reports come from the same
  machine).

Speedup assertion:

    perf_guard.py BASELINE CURRENT --min-speedup 3 [--filter ManyOpen]

  Requires current/baseline >= FACTOR (raw, never normalized) for every
  benchmark whose name contains the --filter substring. Used to pin the
  capacity-indexed placement engine's win over the linear-scan reference:
  both reports are produced back to back on the same machine, so raw
  ratios are meaningful.

Scaling assertion:

    perf_guard.py BASELINE CURRENT --scaling-num /t4 --scaling-den /t1 \
        --min-ratio 2.5 [--scaling-slack 25]

  Pairs every benchmark in CURRENT whose name contains --scaling-num
  with its --scaling-den sibling (same name, substring swapped) and
  computes the within-report throughput ratio num/den — e.g. the 4-loop
  serve daemon over the 1-loop daemon on identical byte streams. Fails
  when any pair's ratio is below --min-ratio, or below the same pair's
  BASELINE ratio minus --scaling-slack percent. Both checks compare
  dimensionless ratios measured inside one report, so they are robust
  to absolute machine speed; the baseline-relative check additionally
  catches sharding regressions that stay above the absolute floor.

Only the Python standard library is used.
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load_throughputs(path: str) -> dict[str, float]:
    """Returns {benchmark name: items per second} from a bench report."""
    try:
        with open(path, encoding="utf-8") as f:
            report = json.load(f)
    except OSError as e:
        sys.exit(f"perf_guard: cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"perf_guard: {path} is not valid JSON: {e}")
    if report.get("schema") != "cdbp-bench-report":
        sys.exit(f"perf_guard: {path} is not a cdbp-bench-report")
    result: dict[str, float] = {}
    for timing in report.get("timings", []):
        ips = timing.get("items_per_second", 0.0)
        if ips > 0:
            result[timing["name"]] = ips
    if not result:
        sys.exit(f"perf_guard: {path} contains no timings")
    return result


def geometric_mean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def scaling_ratios(throughputs: dict[str, float], num: str,
                   den: str) -> dict[str, float]:
    """Returns {numerator name: ips[num series] / ips[den sibling]}."""
    ratios: dict[str, float] = {}
    for name, ips in throughputs.items():
        if num not in name:
            continue
        partner = name.replace(num, den)
        if partner == name or partner not in throughputs:
            continue
        ratios[name] = ips / throughputs[partner]
    return ratios


def check_scaling(args: argparse.Namespace, baseline: dict[str, float],
                  current: dict[str, float]) -> int:
    pairs = scaling_ratios(current, args.scaling_num, args.scaling_den)
    pairs = {n: r for n, r in pairs.items() if args.filter in n}
    if not pairs:
        sys.exit("perf_guard: no benchmark pairs match "
                 f"--scaling-num '{args.scaling_num}' / "
                 f"--scaling-den '{args.scaling_den}'")
    base_pairs = scaling_ratios(baseline, args.scaling_num, args.scaling_den)
    # Every pair the baseline guards must also exist in the candidate
    # report. Without this check a candidate that silently drops a guarded
    # series (bench filter typo, series renamed, bench crashed mid-run)
    # sails through on the pairs that remain.
    missing = sorted(n for n in base_pairs
                     if args.filter in n and n not in pairs)
    if missing:
        sys.exit("perf_guard: FAILED — baseline-guarded scaling series "
                 f"missing from {args.current}: {', '.join(missing)} "
                 "(each guarded series must be re-measured, not dropped)")
    slack = 1.0 - args.scaling_slack / 100.0
    print(f"perf_guard: scaling check ('{args.scaling_num}' over "
          f"'{args.scaling_den}', floor {args.min_ratio:g}x, baseline slack "
          f"{args.scaling_slack:g}%), {len(pairs)} pair(s):")
    failures = []
    for name in sorted(pairs):
        ratio = pairs[name]
        floor = args.min_ratio
        base = base_pairs.get(name)
        note = ""
        if base is not None:
            floor = max(floor, base * slack)
            note = f", baseline {base:.2f}x"
        verdict = "ok" if ratio >= floor else "FAIL"
        print(f"  {verdict:4} {name}: {ratio:.2f}x scaling "
              f"(floor {floor:.2f}x{note})")
        if verdict == "FAIL":
            failures.append(name)
    if failures:
        print(f"perf_guard: FAILED — {len(failures)} pair(s) below the "
              f"scaling floor: {', '.join(failures)}")
        return 1
    print("perf_guard: scaling check passed")
    return 0


def _report(path: str, series: dict[str, float]) -> str:
    """Writes a minimal cdbp-bench-report fixture; returns the path."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"schema": "cdbp-bench-report",
                   "timings": [{"name": n, "items_per_second": ips}
                               for n, ips in series.items()]}, f)
    return path


def self_test() -> int:
    """Exercises the scaling guard against known-good/-bad fixtures.

    Pins the hard-failure contract for baseline-guarded series that are
    absent from the candidate report — the case that used to pass
    silently.
    """
    import subprocess
    import tempfile

    def run(base: dict[str, float], cur: dict[str, float],
            extra: list[str]) -> tuple[int, str]:
        with tempfile.TemporaryDirectory() as tmp:
            b = _report(f"{tmp}/base.json", base)
            c = _report(f"{tmp}/cur.json", cur)
            proc = subprocess.run(
                [sys.executable, __file__, b, c, *extra],
                capture_output=True, text=True)
            return proc.returncode, proc.stdout + proc.stderr

    scaling = ["--scaling-num", "/t4", "--scaling-den", "/t1",
               "--min-ratio", "3"]
    healthy = {"Flat/cdt-ff/1000000/t1": 1.0e6, "Flat/cdt-ff/1000000/t4": 3.5e6}
    checks = [
        ("healthy scaling passes",
         run(healthy, healthy, scaling), 0, "scaling check passed"),
        ("below absolute floor fails",
         run(healthy,
             {"Flat/cdt-ff/1000000/t1": 1.0e6,
              "Flat/cdt-ff/1000000/t4": 2.0e6}, scaling),
         1, "below the scaling floor"),
        ("regressing past baseline slack fails",
         run({"Flat/cdt-ff/1000000/t1": 1.0e6,
              "Flat/cdt-ff/1000000/t4": 6.0e6},
             {"Flat/cdt-ff/1000000/t1": 1.0e6,
              "Flat/cdt-ff/1000000/t4": 3.2e6},
             scaling + ["--scaling-slack", "25"]),
         1, "below the scaling floor"),
        ("guarded series missing from candidate fails",
         run(healthy, {"Flat/cdt-ff/1000000/t1": 1.0e6,
                       "Other/bench/t1": 5.0e5, "Other/bench/t4": 2.0e6},
             scaling), 1, "missing from"),
        ("missing series outside --filter is not guarded",
         run(healthy, {"Other/bench/t1": 5.0e5, "Other/bench/t4": 2.0e6},
             scaling + ["--filter", "Other"]), 0, "scaling check passed"),
    ]
    failures = 0
    for label, (code, output), want_code, want_text in checks:
        ok = code == want_code and want_text in output
        print(f"  {'ok' if ok else 'FAIL':4} {label}")
        if not ok:
            failures += 1
            print(f"       exit={code} (want {want_code}), looked for "
                  f"{want_text!r} in:\n{output}")
    if failures:
        print(f"perf_guard --self-test: {failures} check(s) FAILED")
        return 1
    print("perf_guard --self-test: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?",
                        help="reference BENCH_throughput.json")
    parser.add_argument("current", nargs="?",
                        help="freshly produced BENCH_throughput.json")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the built-in fixture checks instead of comparing reports")
    parser.add_argument(
        "--max-regression", type=float, default=20.0, metavar="PCT",
        help="fail when a benchmark loses more than PCT%% items/sec "
             "relative to the fleet (default 20)")
    parser.add_argument(
        "--absolute", action="store_true",
        help="compare raw ratios without geometric-mean normalization")
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="FACTOR",
        help="instead of the regression check, require current >= "
             "FACTOR x baseline (raw) on matching benchmarks")
    parser.add_argument(
        "--filter", default="", metavar="SUBSTR",
        help="restrict the comparison to benchmarks containing SUBSTR")
    parser.add_argument(
        "--scaling-num", default=None, metavar="SUBSTR",
        help="scaling mode: numerator series marker (e.g. '/t4')")
    parser.add_argument(
        "--scaling-den", default=None, metavar="SUBSTR",
        help="scaling mode: denominator series marker (e.g. '/t1')")
    parser.add_argument(
        "--min-ratio", type=float, default=2.5, metavar="FACTOR",
        help="scaling mode: absolute floor for num/den throughput "
             "(default 2.5)")
    parser.add_argument(
        "--scaling-slack", type=float, default=25.0, metavar="PCT",
        help="scaling mode: allow the ratio to drop PCT%% below the "
             "baseline's ratio before failing (default 25)")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.error("baseline and current reports are required "
                     "(or pass --self-test)")
    if (args.scaling_num is None) != (args.scaling_den is None):
        parser.error("--scaling-num and --scaling-den go together")

    baseline = load_throughputs(args.baseline)
    current = load_throughputs(args.current)

    if args.scaling_num is not None:
        return check_scaling(args, baseline, current)

    names = sorted(
        name for name in baseline
        if name in current and args.filter in name)
    if not names:
        sys.exit("perf_guard: no common benchmarks to compare "
                 f"(filter: '{args.filter or '<none>'}')")
    skipped = sorted(set(baseline) ^ set(current))
    if skipped:
        print(f"perf_guard: note: {len(skipped)} benchmark(s) present in "
              f"only one report are skipped: {', '.join(skipped)}")

    ratios = {name: current[name] / baseline[name] for name in names}

    if args.min_speedup is not None:
        failures = []
        print(f"perf_guard: speedup check (>= {args.min_speedup:g}x) over "
              f"{len(names)} benchmark(s):")
        for name in names:
            verdict = "ok" if ratios[name] >= args.min_speedup else "FAIL"
            print(f"  {verdict:4} {name}: {ratios[name]:.2f}x "
                  f"({baseline[name]:,.0f} -> {current[name]:,.0f} items/s)")
            if verdict == "FAIL":
                failures.append(name)
        if failures:
            print(f"perf_guard: FAILED — {len(failures)} benchmark(s) below "
                  f"{args.min_speedup:g}x: {', '.join(failures)}")
            return 1
        print("perf_guard: speedup check passed")
        return 0

    norm = 1.0 if args.absolute else geometric_mean(list(ratios.values()))
    floor = 1.0 - args.max_regression / 100.0
    mode = "absolute" if args.absolute else f"fleet-normalized (geomean {norm:.3f}x)"
    print(f"perf_guard: regression check, {mode}, floor {floor:.2f}x, "
          f"{len(names)} benchmark(s):")
    failures = []
    for name in names:
        normalized = ratios[name] / norm
        verdict = "ok" if normalized >= floor else "FAIL"
        print(f"  {verdict:4} {name}: {normalized:.3f}x normalized "
              f"({ratios[name]:.3f}x raw, "
              f"{baseline[name]:,.0f} -> {current[name]:,.0f} items/s)")
        if verdict == "FAIL":
            failures.append(name)
    if failures:
        print(f"perf_guard: FAILED — {len(failures)} benchmark(s) regressed "
              f"more than {args.max_regression:g}%: {', '.join(failures)}")
        return 1
    print("perf_guard: no regression beyond "
          f"{args.max_regression:g}% detected")
    return 0


if __name__ == "__main__":
    sys.exit(main())
