"""cdbp_analyze — semantic (AST-based) static analysis for the cdbp codebase.

This is the second analysis layer next to ``tools/cdbp_lint.py``. The lint
layer is textual: fast, dependency-free, and deliberately line-oriented. It
cannot see through type aliases, macro argument expansion, or overload
resolution. This layer parses the real C++ through libclang (the Python
``clang.cindex`` bindings), driven by the project's ``compile_commands.json``,
and enforces the conventions the paper's competitive-ratio arguments
(Theorems 1/2/4/5) and the bit-reproducibility bar actually rest on:

  capacity-compare            Relational/equality operators whose operand's
                              *canonical* type is Size/Time/double compared
                              against a capacity expression (``kBinCapacity``
                              under any alias, or the literal ``1.0``). The
                              textual linter only sees the spelling; this
                              check sees through ``using MySize = Size``.
  side-effecting-check        Assignments, ``++``/``--``, or non-const member
                              calls inside ``CDBP_CHECK``/``CDBP_DCHECK``
                              arguments. A DCHECK argument is never evaluated
                              in Release builds, so a side effect there makes
                              Release and Debug behave differently.
  nondeterministic-iteration  Range-``for`` over ``std::unordered_map`` /
                              ``std::unordered_set`` (and multi variants).
                              Hash iteration order is implementation-defined;
                              anything it feeds — packing results, CSV/JSON
                              output, run_many aggregation — loses
                              bit-reproducibility. Order-insensitive uses
                              carry a justified suppression.
  narrowing-conversion        Implicit ``double``→integer or wide→narrow
                              integer conversions in ``src/core/`` and
                              ``src/sim/`` arithmetic (initializers,
                              assignments, call arguments, returns). Explicit
                              ``static_cast`` is the sanctioned spelling.
  engine-bypass               Direct ``BinManager`` probing (``fits`` /
                              ``wouldFit`` / ``openBins``) outside the
                              placement substrate (``src/sim/``). The
                              AST-grounded version of the textual
                              ``raw-bin-loop`` rule: it resolves the callee's
                              class, so renamed locals or references cannot
                              hide a bypass.

Suppression syntax mirrors cdbp_lint (the justification is mandatory and is
the reviewable artifact)::

    for (const auto& [k, v] : seen_) {  // cdbp-analyze: allow(nondeterministic-iteration): reduction is commutative

Run ``python3 tools/cdbp_analyze --help`` (or ``python3 -m cdbp_analyze``
from ``tools/``) for the CLI. When libclang is unavailable the tool says so
loudly and exits 2 — it never silently passes.
"""

__version__ = "1.0.0"

from .checks import ALL_CHECKS, Finding  # noqa: F401
