"""Self-tests for cdbp_analyze.

Two layers, matching the tool's own architecture:

  * ``run_frontend_selftest`` — exercises every libclang-free component
    (marker parsing, check-macro range extraction, compile-command
    filtering, fixture-corpus invariants). Runs anywhere python3 runs, so
    it is registered unconditionally in ctest.
  * ``run_semantic_selftest`` — parses the fixture corpus with libclang and
    asserts the exact (file, line, check) set of findings against the
    inline ``// cdbp-analyze: expect(check)`` markers, in both directions:
    every expectation must fire and nothing unexpected may fire. Requires
    libclang; the ctest entry skips (exit 77) when it is missing.
"""

from __future__ import annotations

import glob
import os
import tempfile

from .checks import ALL_CHECKS, SUPPRESSION_CHECK, Analyzer
from .loader import ParseError, parse_translation_unit
from .textscan import (filter_compile_args, find_check_macro_ranges,
                       load_compile_commands, scan_markers, strip_code_line)

FIXTURES_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "fixtures")

_KNOWN = frozenset(ALL_CHECKS) | {SUPPRESSION_CHECK}


def collect_expectations(root: str) -> set[tuple[str, int, str]]:
    """(relpath, line, check) triples from expect markers in the corpus.

    A marker sharing a line with code pins that line; a marker alone on a
    comment line pins the next line (same convention as suppressions).
    """
    expected: set[tuple[str, int, str]] = set()
    for path in _fixture_files(root):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        for marker in scan_markers(text, _KNOWN).expectations:
            expected.add((rel, marker.covers[-1], marker.check))
    return expected


def _fixture_files(root: str) -> list[str]:
    pattern = os.path.join(root, "src", "**", "*")
    return sorted(p for p in glob.glob(pattern, recursive=True)
                  if p.endswith((".cpp", ".hpp")))


def run_semantic_selftest(cindex, fixtures_dir: str = FIXTURES_DIR) -> int:
    expected = collect_expectations(fixtures_dir)
    analyzer = Analyzer(cindex, fixtures_dir)
    args = ["-xc++", "-std=c++20", "-nostdinc++",
            "-I", os.path.join(fixtures_dir, "src")]
    units = [p for p in _fixture_files(fixtures_dir) if p.endswith(".cpp")]
    if not units:
        print(f"self-test FAIL: no fixture TUs under {fixtures_dir}")
        return 1
    for unit in units:
        try:
            analyzer.analyze(parse_translation_unit(cindex, unit, args))
        except ParseError as err:
            print(f"self-test FAIL: fixture does not parse: {err}")
            return 1
    actual = {(f.path, f.line, f.check) for f in analyzer.findings()}

    failures = 0
    for rel, line, check in sorted(expected - actual):
        failures += 1
        print(f"self-test FAIL: expected [{check}] at {rel}:{line} did not "
              "fire")
    for rel, line, check in sorted(actual - expected):
        failures += 1
        print(f"self-test FAIL: unexpected [{check}] at {rel}:{line}")
    covered = {check for _, _, check in expected}
    for check in ALL_CHECKS:
        if check not in covered:
            failures += 1
            print(f"self-test FAIL: no positive fixture covers [{check}]")
    if failures:
        return 1
    print(f"self-test OK: {len(units)} fixture TUs, {len(expected)} expected "
          f"findings across {len(covered)} checks")
    return 0


# --- frontend (libclang-free) self-test ---

def _expect(condition: bool, label: str, failures: list[str]) -> None:
    if not condition:
        failures.append(label)


def run_frontend_selftest(fixtures_dir: str = FIXTURES_DIR) -> int:
    failures: list[str] = []

    # strip_code_line: comments and literals blank out, columns survive.
    line = 'x = "a < b"; // y < z'
    s, block = strip_code_line(line, False)
    _expect(s.rstrip() == 'x = "     ";', "strip: string+comment", failures)
    _expect(len(s) == len(line), "strip: column preservation", failures)
    s, block = strip_code_line("before /* open", False)
    _expect(block and s.startswith("before"), "strip: block open", failures)
    s, block = strip_code_line("still in */ after", True)
    _expect(not block and "after" in s and "still" not in s,
            "strip: block close", failures)

    # scan_markers: allow/expect grammar, coverage, and the error cases.
    scan = scan_markers(
        "int a;  // cdbp-analyze: allow(engine-bypass): fixture reason\n"
        "// cdbp-analyze: allow(capacity-compare): covers next line\n"
        "int b;\n"
        "int c;  // cdbp-analyze: allow(capacity-compare)\n"
        "int d;  // cdbp-analyze: allow(not-a-check): nope\n"
        "int e;  // cdbp-analyze: allow(suppression): nice try\n"
        "int f;  // cdbp-analyze: expect(narrowing-conversion)\n"
        "// cdbp-analyze: expect(engine-bypass)\n"
        "int g;\n", _KNOWN)
    _expect(scan.suppressions.get(1) == {"engine-bypass"},
            "markers: same-line allow", failures)
    _expect("capacity-compare" in scan.suppressions.get(3, set()),
            "markers: own-line allow covers next line", failures)
    _expect(len(scan.errors) == 3 and scan.errors[0][0] == 4,
            "markers: three marker errors", failures)
    _expect({m.covers[-1] for m in scan.expectations} == {7, 9},
            "markers: expect line pinning", failures)

    # find_check_macro_ranges: multi-line args, literals, identifier edges.
    text = (
        "void f() {\n"
        "  CDBP_DCHECK(a < b,\n"
        '              "a=", a);\n'
        '  log("CDBP_CHECK(not real)");\n'
        "  MY_CDBP_CHECKER(x);\n"
        "  CDBP_CHECK(ok(), \"m\"); CDBP_CHECK(two(), \"n\");\n"
        "}\n")
    ranges = find_check_macro_ranges(text)
    _expect(len(ranges) == 3, "ranges: count", failures)
    if len(ranges) == 3:
        _expect(ranges[0].macro == "CDBP_DCHECK" and ranges[0].line == 2,
                "ranges: first macro", failures)
        _expect(ranges[0].contains(3, 20) and not ranges[0].contains(4, 10),
                "ranges: multi-line containment", failures)
        _expect(ranges[1].line == 6 and ranges[2].line == 6,
                "ranges: two per line", failures)

    # filter_compile_args: compiler, -c/-o and the input drop out.
    args = filter_compile_args(
        ["g++", "-I/x", "-DNDEBUG", "-O2", "-c", "-o", "a.o", "foo.cpp",
         "-MF", "dep.d"], "foo.cpp")
    _expect(args[:3] == ["-I/x", "-DNDEBUG", "-O2"]
            and args[-1] == "-Wno-everything"
            and "a.o" not in args and "foo.cpp" not in args
            and "dep.d" not in args, "compile args: filtering", failures)

    # load_compile_commands: both "command" and "arguments" forms.
    with tempfile.TemporaryDirectory() as tmp:
        db = os.path.join(tmp, "compile_commands.json")
        with open(db, "w", encoding="utf-8") as fh:
            fh.write('[{"directory": "%s", "file": "a.cpp", '
                     '"command": "g++ -I. -c a.cpp -o a.o"},\n'
                     ' {"directory": "%s", "file": "b.cpp", '
                     '"arguments": ["g++", "-DX=1", "-c", "b.cpp"]}]'
                     % (tmp, tmp))
        commands = load_compile_commands(db)
        _expect(len(commands) == 2
                and commands[0].file == os.path.join(tmp, "a.cpp")
                and commands[1].args[0] == "-DX=1",
                "compile db: loading", failures)

    # Fixture-corpus invariants (checked without parsing C++): every check
    # has at least one positive expectation and at least one negative
    # fixture file, and every fixture parses its markers cleanly except the
    # dedicated bad-suppression fixture.
    expected = collect_expectations(fixtures_dir)
    covered = {check for _, _, check in expected}
    for check in ALL_CHECKS:
        _expect(check in covered, f"corpus: positive fixture for {check}",
                failures)
    positive_files = {rel for rel, _, _ in expected}
    all_files = {os.path.relpath(p, fixtures_dir).replace(os.sep, "/")
                 for p in _fixture_files(fixtures_dir)}
    _expect(len(all_files - positive_files) >= len(ALL_CHECKS),
            "corpus: at least one negative fixture per check", failures)
    for path in _fixture_files(fixtures_dir):
        rel = os.path.relpath(path, fixtures_dir).replace(os.sep, "/")
        with open(path, encoding="utf-8") as fh:
            scan = scan_markers(fh.read(), _KNOWN)
        if "suppression_bad" not in rel:
            _expect(not scan.errors, f"corpus: clean markers in {rel}",
                    failures)

    if failures:
        for f in failures:
            print(f"frontend self-test FAIL: {f}")
        return 1
    print(f"frontend self-test OK: {len(expected)} corpus expectations, "
          "marker/range/compile-db units green")
    return 0
