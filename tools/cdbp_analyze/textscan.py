"""Text-level plumbing for cdbp_analyze: the parts that read source as text.

Everything here is stdlib-only and libclang-free, so it is unit-tested by
``--self-test-frontend`` even on machines without libclang:

  * comment/string stripping (the same lexer-lite contract as cdbp_lint);
  * ``cdbp-analyze: allow(check): why`` suppression collection;
  * ``cdbp-analyze: expect(check)`` fixture expectation collection;
  * CDBP_CHECK / CDBP_DCHECK argument-range extraction (balanced-paren
    matching over stripped text — the *semantic* inspection of what sits
    inside those ranges is checks.py's job);
  * compile_commands.json loading and argument filtering.
"""

from __future__ import annotations

import json
import os
import shlex
from dataclasses import dataclass, field


def strip_code_line(line: str, in_block_comment: bool) -> tuple[str, bool]:
    """Blanks comments and string/char literal contents from one line.

    Columns are preserved (literal contents become spaces) so that positions
    reported by libclang can be compared against the stripped text. Returns
    the stripped line and whether a /* block comment is still open.
    """
    out: list[str] = []
    i = 0
    n = len(line)
    while i < n:
        if in_block_comment:
            end = line.find("*/", i)
            if end < 0:
                out.append(" " * (n - i))
                return "".join(out), True
            out.append(" " * (end + 2 - i))
            i = end + 2
            in_block_comment = False
            continue
        c = line[i]
        nxt = line[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            out.append(" " * (n - i))
            break
        if c == "/" and nxt == "*":
            in_block_comment = True
            out.append("  ")
            i += 2
            continue
        if c in "\"'":
            quote = c
            out.append(c)
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(quote)
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out), in_block_comment


def strip_text(text: str) -> list[str]:
    """strip_code_line applied to every line of a file."""
    stripped: list[str] = []
    in_block = False
    for line in text.splitlines():
        s, in_block = strip_code_line(line, in_block)
        stripped.append(s)
    return stripped


@dataclass
class Marker:
    """One ``cdbp-analyze: allow(...)`` or ``expect(...)`` comment."""

    line: int  # 1-based line the marker text sits on
    check: str
    justification: str | None  # None for expect markers
    covers: list[int] = field(default_factory=list)  # lines it applies to


@dataclass
class MarkerScan:
    """Suppressions/expectations found in one file, plus marker errors."""

    suppressions: dict[int, set[str]] = field(default_factory=dict)
    expectations: list[Marker] = field(default_factory=list)
    # (line, message) pairs for malformed markers; the analyzer reports
    # these as findings of check 'suppression' — a bad suppression must
    # never silently suppress nothing (or worse, everything).
    errors: list[tuple[int, str]] = field(default_factory=list)


_MARKER_TOKEN = "cdbp-analyze:"


def scan_markers(text: str, known_checks: frozenset[str]) -> MarkerScan:
    """Collects suppression and expectation markers from raw file text.

    Mirrors cdbp_lint's contract: a marker applies to its own line, and —
    when the marker comment is the only thing on the line — to the next
    line as well. ``allow`` without a justification is an error.
    """
    scan = MarkerScan()
    for idx, raw in enumerate(text.splitlines(), start=1):
        pos = raw.find(_MARKER_TOKEN)
        if pos < 0:
            continue
        body = raw[pos + len(_MARKER_TOKEN):].strip()
        own_line = raw.strip().startswith("//")
        covered = [idx, idx + 1] if own_line else [idx]
        kind, _, rest = body.partition("(")
        kind = kind.strip()
        check, _, tail = rest.partition(")")
        check = check.strip()
        if kind not in ("allow", "expect") or not rest:
            scan.errors.append(
                (idx, f"malformed cdbp-analyze marker (expected "
                      f"'allow(check): why' or 'expect(check)'): {body!r}"))
            continue
        if check not in known_checks:
            scan.errors.append(
                (idx, f"unknown check '{check}' in cdbp-analyze {kind}()"))
            continue
        if kind == "allow" and check == "suppression":
            scan.errors.append(
                (idx, "marker errors cannot be suppressed — fix the marker"))
            continue
        if kind == "allow":
            tail = tail.strip()
            justification = tail[1:].strip() if tail.startswith(":") else ""
            if not justification:
                scan.errors.append(
                    (idx, f"suppression of '{check}' lacks a justification "
                          "(write `// cdbp-analyze: allow(check): why`)"))
                continue
            for line in covered:
                scan.suppressions.setdefault(line, set()).add(check)
        else:
            scan.expectations.append(
                Marker(line=idx, check=check, justification=None,
                       covers=covered))
    return scan


@dataclass
class CheckMacroRange:
    """The argument extent of one CDBP_CHECK/CDBP_DCHECK invocation."""

    macro: str
    line: int        # 1-based line of the macro name
    start: tuple[int, int]  # (line, col) just after the opening '('
    end: tuple[int, int]    # (line, col) of the closing ')'

    def contains(self, line: int, col: int) -> bool:
        return self.start <= (line, col) < self.end


CHECK_MACROS = ("CDBP_DCHECK", "CDBP_CHECK")


def find_check_macro_ranges(text: str) -> list[CheckMacroRange]:
    """Finds every CDBP_CHECK/CDBP_DCHECK argument range in a file.

    Works on comment/string-stripped text with balanced-paren matching, so
    multi-line invocations and parens inside string literals are handled.
    Columns are 1-based to match libclang's SourceLocation convention.
    """
    stripped = strip_text(text)
    ranges: list[CheckMacroRange] = []
    for row, line in enumerate(stripped):
        col = 0
        while True:
            best = -1
            name = ""
            for macro in CHECK_MACROS:
                at = line.find(macro, col)
                if at >= 0 and (best < 0 or at < best):
                    # Reject identifiers that merely contain the macro name
                    # (e.g. CDBP_DCHECK inside MY_CDBP_CHECKER).
                    before_ok = at == 0 or not (line[at - 1].isalnum()
                                                or line[at - 1] == "_")
                    after = at + len(macro)
                    after_ok = after >= len(line) or not (
                        line[after].isalnum() or line[after] == "_")
                    if before_ok and after_ok:
                        best, name = at, macro
            if best < 0:
                break
            col = best + len(name)
            open_pos = _next_non_space(stripped, row, col)
            if open_pos is None:
                break
            r, c = open_pos
            if stripped[r][c] != "(":
                continue
            end = _match_paren(stripped, r, c)
            if end is None:
                break  # unbalanced (EOF inside macro) — nothing to scan
            ranges.append(
                CheckMacroRange(macro=name, line=row + 1,
                                start=(r + 1, c + 2), end=(end[0] + 1,
                                                           end[1] + 1)))
            if end[0] == row:
                col = end[1] + 1
            else:
                break  # continue scanning from the macro's own line only
    return ranges


def _next_non_space(lines: list[str], row: int, col: int) -> tuple[int, int] | None:
    while row < len(lines):
        while col < len(lines[row]):
            if not lines[row][col].isspace():
                return (row, col)
            col += 1
        row += 1
        col = 0
    return None


def _match_paren(lines: list[str], row: int, col: int) -> tuple[int, int] | None:
    """Given '(' at (row, col), returns the (row, col) of its matching ')'."""
    depth = 0
    r, c = row, col
    while r < len(lines):
        line = lines[r]
        while c < len(line):
            ch = line[c]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return (r, c)
            c += 1
        r += 1
        c = 0
    return None


# --- compile_commands.json ---

# Flags that clang's parser either rejects or that change nothing for
# analysis. '-o' and its argument, the input file, and the compiler argv[0]
# are stripped structurally, not listed here.
_DROP_FLAGS = frozenset({
    "-c", "-MMD", "-MD", "-MP", "-pipe", "-fno-keep-inline-dllexport",
    "-mno-direct-extern-access", "-fconcepts",
})
_DROP_WITH_ARG = frozenset({"-o", "-MF", "-MT", "-MQ", "--output"})


@dataclass
class CompileCommand:
    file: str       # absolute path of the translation unit
    args: list[str]  # parser arguments (no compiler, no -c/-o, no input)


def filter_compile_args(argv: list[str], source: str) -> list[str]:
    """Reduces a compile_commands argv to libclang parse arguments."""
    out: list[str] = []
    skip = False
    for arg in argv[1:]:  # argv[0] is the compiler
        if skip:
            skip = False
            continue
        if arg in _DROP_WITH_ARG:
            skip = True
            continue
        if arg in _DROP_FLAGS:
            continue
        if os.path.basename(arg) == os.path.basename(source) and not \
                arg.startswith("-"):
            continue
        out.append(arg)
    # Diagnostics from -W flags are the build's business, not the
    # analyzer's; silence them so parse-error detection is signal only.
    out.append("-Wno-everything")
    return out


def load_compile_commands(path: str) -> list[CompileCommand]:
    with open(path, encoding="utf-8") as fh:
        entries = json.load(fh)
    commands: list[CompileCommand] = []
    for entry in entries:
        directory = entry.get("directory", ".")
        source = entry.get("file", "")
        if "arguments" in entry:
            argv = list(entry["arguments"])
        else:
            argv = shlex.split(entry.get("command", ""))
        if not argv or not source:
            continue
        absolute = os.path.normpath(os.path.join(directory, source))
        commands.append(
            CompileCommand(file=absolute,
                           args=filter_compile_args(argv, source)))
    return commands
