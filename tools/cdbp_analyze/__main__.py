"""CLI for cdbp_analyze. See the package docstring for the check catalog.

Usage::

    python3 tools/cdbp_analyze                    # analyze src/ via compdb
    python3 tools/cdbp_analyze --compdb build-release/compile_commands.json
    python3 tools/cdbp_analyze --checks capacity-compare,engine-bypass
    python3 tools/cdbp_analyze --self-test            # needs libclang
    python3 tools/cdbp_analyze --self-test-frontend   # stdlib only
    python3 tools/cdbp_analyze --list-checks

Exit codes: 0 clean · 1 findings · 2 environment/usage error (including
missing libclang) · 3 parse errors in strict mode · 77 missing libclang
under --skip-missing-libclang (ctest's skip code).
"""

from __future__ import annotations

import argparse
import os
import sys

if __package__ in (None, ""):  # executed as `python3 tools/cdbp_analyze`
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    __package__ = "cdbp_analyze"  # noqa: A001 — PEP 366 re-anchor

from .checks import ALL_CHECKS, Analyzer  # noqa: E402
from .loader import ParseError, load_libclang, parse_translation_unit  # noqa: E402
from .selftest import (run_frontend_selftest,  # noqa: E402
                       run_semantic_selftest)
from .textscan import load_compile_commands  # noqa: E402

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_CONFIG = 2
EXIT_PARSE = 3
EXIT_SKIP = 77

_DEFAULT_COMPDB = ("build-release/compile_commands.json",
                   "build/compile_commands.json",
                   "compile_commands.json")


def _repo_root() -> str:
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _find_compdb(root: str, override: str | None) -> str | None:
    if override:
        return override if os.path.isfile(override) else None
    for candidate in _DEFAULT_COMPDB:
        path = os.path.join(root, candidate)
        if os.path.isfile(path):
            return path
    return None


def _require_libclang(skip_missing: bool) -> tuple[object | None, int]:
    status = load_libclang()
    if status.ok:
        return status.cindex, EXIT_CLEAN
    print(f"cdbp_analyze: libclang unavailable: {status.detail}",
          file=sys.stderr)
    if skip_missing:
        print("cdbp_analyze: --skip-missing-libclang given; reporting SKIP "
              "(exit 77) instead of failure", file=sys.stderr)
        return None, EXIT_SKIP
    return None, EXIT_CONFIG


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="cdbp_analyze",
        description="semantic (libclang AST) static analysis for cdbp")
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels above "
                             "this package)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path (default: search "
                             "build-release/, build/, then the root)")
    parser.add_argument("--checks", default=None,
                        help="comma-separated subset of checks to run")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the check names and exit")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the semantic checks against the "
                             "fixture corpus (requires libclang)")
    parser.add_argument("--self-test-frontend", action="store_true",
                        help="verify the libclang-free components "
                             "(markers, macro ranges, compile-db handling)")
    parser.add_argument("--skip-missing-libclang", action="store_true",
                        help="exit 77 (ctest SKIP) instead of 2 when "
                             "libclang is unavailable")
    parser.add_argument("--lenient-parse", action="store_true",
                        help="analyze translation units even when they "
                             "carry error-severity diagnostics")
    args = parser.parse_args(argv)

    if args.list_checks:
        for check in ALL_CHECKS:
            print(check)
        return EXIT_CLEAN

    if args.self_test_frontend:
        return EXIT_FINDINGS if run_frontend_selftest() else EXIT_CLEAN

    checks = ALL_CHECKS
    if args.checks:
        requested = tuple(c.strip() for c in args.checks.split(",") if
                          c.strip())
        unknown = [c for c in requested if c not in ALL_CHECKS]
        if unknown:
            print(f"cdbp_analyze: unknown check(s): {', '.join(unknown)} "
                  f"(run --list-checks)", file=sys.stderr)
            return EXIT_CONFIG
        checks = requested

    cindex, status = _require_libclang(args.skip_missing_libclang)
    if cindex is None:
        return status

    if args.self_test:
        return EXIT_FINDINGS if run_semantic_selftest(cindex) else EXIT_CLEAN

    root = os.path.abspath(args.root or _repo_root())
    compdb = _find_compdb(root, args.compdb)
    if compdb is None:
        print("cdbp_analyze: no compile_commands.json found (configure a "
              "preset first — every preset exports one — or pass --compdb)",
              file=sys.stderr)
        return EXIT_CONFIG

    src_prefix = os.path.join(root, "src") + os.sep
    commands = [c for c in load_compile_commands(compdb)
                if c.file.startswith(src_prefix)]
    if not commands:
        print(f"cdbp_analyze: {compdb} has no entries under {src_prefix}",
              file=sys.stderr)
        return EXIT_CONFIG

    analyzer = Analyzer(cindex, root, checks=checks)
    parse_failures: list[str] = []
    for command in commands:
        try:
            tu = parse_translation_unit(cindex, command.file, command.args,
                                        strict=not args.lenient_parse)
        except ParseError as err:
            parse_failures.append(str(err))
            continue
        analyzer.analyze(tu)

    findings = analyzer.findings()
    for finding in findings:
        print(finding.render())
    if parse_failures:
        for failure in parse_failures:
            print(f"cdbp_analyze: {failure}", file=sys.stderr)
        return EXIT_PARSE
    if findings:
        print(f"cdbp_analyze: {len(findings)} finding(s) across "
              f"{len(commands)} translation units", file=sys.stderr)
        return EXIT_FINDINGS
    print(f"cdbp_analyze: clean — {len(commands)} translation units, "
          f"{len(checks)} checks")
    return EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
