"""The five semantic checks, implemented over libclang cursors.

The Analyzer walks each translation unit once and dispatches every cursor
to the enabled checks. Findings are attributed to the file the cursor is
*spelled* in (so a violation in a header fires no matter which TU included
it) and deduplicated across translation units.

Path conventions (relative to the analysis root):

  * only files under ``src/`` are analyzed;
  * ``capacity-compare`` exempts ``src/core/epsilon.hpp`` and
    ``src/core/types.hpp`` — they *define* the checked discipline;
  * ``narrowing-conversion`` fires only under ``src/core/`` and
    ``src/sim/`` (the arithmetic that decides packings);
  * ``engine-bypass`` exempts ``src/sim/`` — the substrate itself is the
    sanctioned home of direct BinManager access.

The fixture corpus mirrors this layout under ``fixtures/<case>/src/...`` so
the self-test exercises exactly the path rules production runs use.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

from .textscan import (CheckMacroRange, MarkerScan, find_check_macro_ranges,
                       scan_markers)

ALL_CHECKS = (
    "capacity-compare",
    "side-effecting-check",
    "nondeterministic-iteration",
    "narrowing-conversion",
    "engine-bypass",
)

#: Pseudo-check under which malformed/unknown suppressions are reported.
SUPPRESSION_CHECK = "suppression"

_RELATIONAL_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})
_COMPOUND_ASSIGN_OPS = frozenset(
    {"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})
_UNORDERED_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)<")
_BIN_MANAGER_CLASSES = ("BasicBinManager", "BinManager")
_BIN_MANAGER_PROBES = frozenset({"fits", "wouldFit", "openBins"})

_CAPACITY_EXEMPT = ("src/core/epsilon.hpp", "src/core/types.hpp")
_NARROWING_DIRS = ("src/core/", "src/sim/")
_ENGINE_EXEMPT_DIR = "src/sim/"


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    col: int
    check: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.check}] " \
               f"{self.message}"


@dataclass
class _FileInfo:
    relpath: str
    markers: MarkerScan
    check_ranges: list[CheckMacroRange]
    marker_findings_emitted: bool = field(default=False)


class Analyzer:
    """Accumulates findings across translation units."""

    def __init__(self, cindex, root: str,
                 checks: tuple[str, ...] = ALL_CHECKS,
                 scope_prefix: str = "src"):
        self.cindex = cindex
        self.root = os.path.abspath(root)
        self.checks = frozenset(checks)
        self.scope_prefix = scope_prefix + "/"
        self._files: dict[str, _FileInfo | None] = {}
        self._findings: set[Finding] = set()
        ck = cindex.CursorKind
        self._expr_dispatch = {
            ck.BINARY_OPERATOR: self._visit_binary_operator,
            ck.COMPOUND_ASSIGNMENT_OPERATOR: self._visit_compound_assign,
            ck.UNARY_OPERATOR: self._visit_unary_operator,
            ck.CXX_FOR_RANGE_STMT: self._visit_for_range,
            ck.CALL_EXPR: self._visit_call,
            ck.VAR_DECL: self._visit_var_decl,
            ck.RETURN_STMT: self._visit_return,
        }

    # --- public API ---

    def analyze(self, tu) -> None:
        for cursor in tu.cursor.get_children():
            self._walk(cursor, result_type=None)

    def findings(self) -> list[Finding]:
        return sorted(self._findings,
                      key=lambda f: (f.path, f.line, f.col, f.check))

    # --- file bookkeeping ---

    def _file_info(self, file) -> _FileInfo | None:
        """Returns per-file text info, or None when out of scope."""
        if file is None:
            return None
        name = os.path.abspath(file.name)
        cached = self._files.get(name, "miss")
        if cached != "miss":
            return cached
        relpath = os.path.relpath(name, self.root).replace(os.sep, "/")
        if not relpath.startswith(self.scope_prefix):
            self._files[name] = None
            return None
        try:
            with open(name, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError:
            self._files[name] = None
            return None
        known = frozenset(ALL_CHECKS) | {SUPPRESSION_CHECK}
        info = _FileInfo(relpath=relpath,
                         markers=scan_markers(text, known),
                         check_ranges=find_check_macro_ranges(text))
        self._files[name] = info
        self._emit_marker_errors(info)
        return info

    def _emit_marker_errors(self, info: _FileInfo) -> None:
        if info.marker_findings_emitted:
            return
        info.marker_findings_emitted = True
        for line, message in info.markers.errors:
            self._findings.add(
                Finding(info.relpath, line, 1, SUPPRESSION_CHECK, message))

    def _report(self, info: _FileInfo, location, check: str,
                message: str) -> None:
        if check in info.markers.suppressions.get(location.line, set()):
            return
        self._findings.add(
            Finding(info.relpath, location.line, location.column, check,
                    message))

    # --- the walk ---

    def _walk(self, cursor, result_type) -> None:
        info = self._file_info(cursor.location.file)
        if info is None:
            return
        if cursor.kind == self.cindex.CursorKind.FUNCTION_DECL or \
                cursor.kind in (self.cindex.CursorKind.CXX_METHOD,
                                self.cindex.CursorKind.CONSTRUCTOR,
                                self.cindex.CursorKind.DESTRUCTOR,
                                self.cindex.CursorKind.FUNCTION_TEMPLATE,
                                self.cindex.CursorKind.LAMBDA_EXPR):
            result_type = cursor.result_type
        handler = self._expr_dispatch.get(cursor.kind)
        if handler is not None:
            handler(cursor, info, result_type)
        self._check_side_effects(cursor, info)
        for child in cursor.get_children():
            self._walk(child, result_type)

    # --- capacity-compare ---

    def _visit_binary_operator(self, cursor, info: _FileInfo,
                               result_type) -> None:
        op = self._binary_op_spelling(cursor)
        children = list(cursor.get_children())
        if len(children) != 2 or op is None:
            return
        if op == "=" and "narrowing-conversion" in self.checks:
            self._check_narrowing(info, cursor.location, children[0].type,
                                  children[1])
        if op not in _RELATIONAL_OPS:
            return
        if "capacity-compare" not in self.checks:
            return
        if info.relpath.endswith(_CAPACITY_EXEMPT):
            return
        lhs, rhs = children
        if not (self._is_double(lhs.type) or self._is_double(rhs.type)):
            return
        capacity_side = next(
            (side for side in (lhs, rhs) if self._mentions_capacity(side)),
            None)
        if capacity_side is None:
            return
        self._report(
            info, cursor.location, "capacity-compare",
            f"raw `{op}` between a Size/Time/double operand and a capacity "
            "expression; route the decision through the epsilon helpers "
            "(leq/lt/approxEq/fitsCapacity/freeCapacity in "
            "core/epsilon.hpp) so every module tolerates the same "
            "floating-point slack")

    def _is_double(self, ctype) -> bool:
        return ctype.get_canonical().kind in (self.cindex.TypeKind.DOUBLE,
                                              self.cindex.TypeKind.FLOAT,
                                              self.cindex.TypeKind.LONGDOUBLE)

    def _mentions_capacity(self, cursor) -> bool:
        """True when the expression references kBinCapacity (under any
        alias/qualification) or spells the literal 1.0."""
        ck = self.cindex.CursorKind
        stack = [cursor]
        while stack:
            node = stack.pop()
            if node.kind == ck.DECL_REF_EXPR:
                ref = node.referenced
                if ref is not None and ref.spelling == "kBinCapacity":
                    return True
            if node.kind == ck.FLOATING_LITERAL:
                token = next(iter(node.get_tokens()), None)
                if token is not None:
                    try:
                        if float(token.spelling.rstrip("fFlL")) == 1.0:
                            return True
                    except ValueError:
                        pass
            stack.extend(node.get_children())
        return False

    # --- side-effecting-check ---

    def _check_side_effects(self, cursor, info: _FileInfo) -> None:
        if "side-effecting-check" not in self.checks:
            return
        if not info.check_ranges:
            return
        loc = cursor.location
        rng = next((r for r in info.check_ranges
                    if r.contains(loc.line, loc.column)), None)
        if rng is None:
            return
        ck = self.cindex.CursorKind
        label: str | None = None
        if cursor.kind == ck.BINARY_OPERATOR:
            if self._binary_op_spelling(cursor) == "=":
                label = "assignment"
        elif cursor.kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
            label = "compound assignment"
        elif cursor.kind == ck.UNARY_OPERATOR:
            op = self._unary_op_spelling(cursor)
            if op in ("++", "--"):
                label = f"`{op}`"
        elif cursor.kind == ck.CALL_EXPR:
            ref = cursor.referenced
            if ref is not None and ref.kind == ck.CXX_METHOD and \
                    not ref.is_const_method() and not ref.is_static_method():
                name = ref.spelling
                if name == "operator=":
                    label = "assignment"
                elif not self._has_const_overload(ref):
                    label = f"non-const call `{name}()`"
        if label is None:
            return
        self._report(
            info, loc, "side-effecting-check",
            f"{label} inside {rng.macro} arguments; the condition is "
            "compiled out in Release (NDEBUG), so this side effect makes "
            "Debug and Release diverge — hoist it out of the check")

    def _has_const_overload(self, method) -> bool:
        """True when the method's class also declares a const overload of
        the same name (begin/end/rbegin/find on a non-const object pick the
        non-const overload; that choice is overload resolution, not a
        mutation)."""
        parent = method.semantic_parent
        if parent is None:
            return False
        ck = self.cindex.CursorKind
        for sibling in parent.get_children():
            if sibling.kind == ck.CXX_METHOD and \
                    sibling.spelling == method.spelling and \
                    sibling.is_const_method():
                return True
        return False

    # --- nondeterministic-iteration ---

    def _visit_for_range(self, cursor, info: _FileInfo, result_type) -> None:
        if "nondeterministic-iteration" not in self.checks:
            return
        for child in cursor.get_children():
            spelling = child.type.get_canonical().spelling
            if _UNORDERED_RE.search(spelling):
                short = _UNORDERED_RE.search(spelling).group(0)[:-1]
                self._report(
                    info, cursor.location, "nondeterministic-iteration",
                    f"range-for over std::{short}: hash iteration order is "
                    "implementation-defined, which breaks bit-reproducible "
                    "results the moment it feeds packing output, CSV/JSON "
                    "writers, or run_many aggregation; iterate a sorted "
                    "view (or switch to std::map), or justify an "
                    "order-insensitive reduction with a suppression")
                return

    # --- narrowing-conversion ---

    def _visit_var_decl(self, cursor, info: _FileInfo, result_type) -> None:
        if "narrowing-conversion" not in self.checks:
            return
        init = None
        for child in cursor.get_children():
            if child.kind.is_expression():
                init = child
        if init is not None:
            self._check_narrowing(info, cursor.location, cursor.type, init)

    def _visit_compound_assign(self, cursor, info: _FileInfo,
                               result_type) -> None:
        if "narrowing-conversion" not in self.checks:
            return
        children = list(cursor.get_children())
        if len(children) == 2:
            self._check_narrowing(info, cursor.location, children[0].type,
                                  children[1])

    def _visit_return(self, cursor, info: _FileInfo, result_type) -> None:
        if "narrowing-conversion" not in self.checks or result_type is None:
            return
        expr = next((c for c in cursor.get_children()
                     if c.kind.is_expression()), None)
        if expr is not None:
            self._check_narrowing(info, cursor.location, result_type, expr)

    def _visit_call(self, cursor, info: _FileInfo, result_type) -> None:
        self._check_engine_bypass(cursor, info)
        if "narrowing-conversion" not in self.checks:
            return
        ref = cursor.referenced
        if ref is None or ref.kind not in (
                self.cindex.CursorKind.FUNCTION_DECL,
                self.cindex.CursorKind.CXX_METHOD):
            return
        try:
            params = list(ref.type.argument_types())
        except Exception:
            return
        for param_type, arg in zip(params, cursor.get_arguments()):
            self._check_narrowing(info, arg.location, param_type, arg)

    def _check_narrowing(self, info: _FileInfo, location, dst_type,
                         src_expr) -> None:
        if not info.relpath.startswith(_NARROWING_DIRS):
            return
        tk = self.cindex.TypeKind
        ints = (tk.CHAR_U, tk.UCHAR, tk.USHORT, tk.UINT, tk.ULONG,
                tk.ULONGLONG, tk.CHAR_S, tk.SCHAR, tk.SHORT, tk.INT,
                tk.LONG, tk.LONGLONG)
        floats = (tk.FLOAT, tk.DOUBLE, tk.LONGDOUBLE)
        dst = dst_type.get_canonical()
        src_cursor = self._unwrap_expr(src_expr)
        ck = self.cindex.CursorKind
        if src_cursor.kind in (ck.INTEGER_LITERAL, ck.FLOATING_LITERAL,
                               ck.CHARACTER_LITERAL,
                               ck.CXX_BOOL_LITERAL_EXPR):
            return  # constants are compile-time checked territory
        src = src_expr.type.get_canonical()
        if dst.kind in ints and src.kind in floats:
            self._report(
                info, location, "narrowing-conversion",
                f"implicit {src.spelling} -> {dst.spelling} conversion "
                "truncates; make the rounding rule explicit with "
                "static_cast (after floor/ceil/round as intended)")
        elif dst.kind in ints and src.kind in ints and \
                0 < dst.get_size() < src.get_size():
            self._report(
                info, location, "narrowing-conversion",
                f"implicit {src.spelling} -> {dst.spelling} narrows "
                f"({src.get_size()*8} -> {dst.get_size()*8} bits); IDs and "
                "counts that fit must say so with static_cast")

    def _unwrap_expr(self, cursor):
        ck = self.cindex.CursorKind
        while cursor.kind in (ck.UNEXPOSED_EXPR, ck.PAREN_EXPR):
            children = list(cursor.get_children())
            if len(children) != 1:
                break
            cursor = children[0]
        return cursor

    # --- engine-bypass ---

    def _check_engine_bypass(self, cursor, info: _FileInfo) -> None:
        if "engine-bypass" not in self.checks:
            return
        if info.relpath.startswith(_ENGINE_EXEMPT_DIR):
            return
        ref = cursor.referenced
        if ref is None or ref.kind != self.cindex.CursorKind.CXX_METHOD:
            return
        if ref.spelling not in _BIN_MANAGER_PROBES:
            return
        parent = ref.semantic_parent
        if parent is None or parent.spelling not in _BIN_MANAGER_CLASSES:
            return
        self._report(
            info, cursor.location, "engine-bypass",
            f"direct BinManager::{ref.spelling}() outside the placement "
            "substrate; go through the PlacementView queries "
            "(fits/firstFit/bestFit/worstFit/minScoreFitIn) so the indexed "
            "engine serves the probe and sim.fit_checks accounting stays "
            "honest")

    # --- operator spelling helpers ---

    def _binary_op_spelling(self, cursor) -> str | None:
        children = list(cursor.get_children())
        if len(children) != 2:
            return None
        try:
            left_end = children[0].extent.end.offset
            right_start = children[1].extent.start.offset
        except Exception:
            return None
        punct = self.cindex.TokenKind.PUNCTUATION
        for token in cursor.get_tokens():
            off = token.extent.start.offset
            if left_end <= off < right_start and token.kind == punct:
                return token.spelling
        return None

    def _unary_op_spelling(self, cursor) -> str | None:
        tokens = list(cursor.get_tokens())
        if not tokens:
            return None
        if tokens[0].spelling in ("++", "--"):
            return tokens[0].spelling
        if tokens[-1].spelling in ("++", "--"):
            return tokens[-1].spelling
        return None
