// Positive fixture: capacity comparisons the textual linter cannot pin
// down — the operand types only resolve to Size/Time/double through
// aliases, and the capacity side is reached through qualification.
#include "core/epsilon.hpp"
#include "core/types.hpp"

namespace cdbp {

// Aliases that hide Size/Time from any spelling-based scan.
using LoadFactor = Size;
using Deadline = Time;

bool aliasedOperand(LoadFactor level, Size demand) {
  return level + demand <= kBinCapacity;  // cdbp-analyze: expect(capacity-compare)
}

bool qualifiedCapacity(Size level) {
  return level < ::cdbp::kBinCapacity;  // cdbp-analyze: expect(capacity-compare)
}

bool literalCapacity(Deadline remaining) {
  return 1.0 > remaining;  // cdbp-analyze: expect(capacity-compare)
}

bool exactEquality(Size level) {
  return level == kBinCapacity;  // cdbp-analyze: expect(capacity-compare)
}

}  // namespace cdbp
