// Negative fixture: capacity decisions routed through the epsilon
// helpers, comparisons that do not involve capacity, and a justified
// suppression. None of these may fire.
#include "core/epsilon.hpp"
#include "core/types.hpp"

namespace cdbp {

bool viaHelpers(Size level, Size demand) {
  return fitsCapacity(level, demand) && leq(level, kBinCapacity);
}

bool unrelatedDouble(double utilization) {
  return utilization < 0.5;  // no capacity expression involved
}

bool integerCompare(int open, int limit) {
  return open < limit;  // integral operands — not a Size/Time decision
}

double capacityArithmetic(Size level) {
  return kBinCapacity - level;  // arithmetic, not a comparison
}

bool saturationProbe(Size level) {
  return level >= kBinCapacity;  // cdbp-analyze: allow(capacity-compare): fixture — exact saturation probe, not a feasibility decision
}

}  // namespace cdbp
