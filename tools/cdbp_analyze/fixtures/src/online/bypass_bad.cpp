// Positive fixture: policy code poking at BinManager's probe surface
// directly. Policies must go through PlacementView so that probe counts
// and telemetry stay truthful.
#include "sim/bin_manager.hpp"

namespace cdbp {

BinId scanDirectly(const BinManager& bins, Size demand) {
  for (BinId id : bins.openBins()) {  // cdbp-analyze: expect(engine-bypass)
    if (bins.fits(id, demand)) {  // cdbp-analyze: expect(engine-bypass)
      return id;
    }
  }
  return -1;
}

bool peekWithoutCounting(const BinManager& bins, BinId id, Size demand) {
  return bins.wouldFit(id, demand);  // cdbp-analyze: expect(engine-bypass)
}

}  // namespace cdbp
