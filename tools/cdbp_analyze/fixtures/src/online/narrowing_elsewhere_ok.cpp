// Negative fixture: the same narrowing shapes as narrowing_bad.cpp, but
// outside src/core/ and src/sim/ — the check is scoped to the arithmetic
// that decides packings, so nothing here may fire.
#include "core/types.hpp"

namespace cdbp {

int policyLocalTruncation(Time departure) {
  int slot = departure;  // out of narrowing-conversion scope by path
  return slot;
}

unsigned int policyLocalShrink(unsigned long count) {
  unsigned int small = count;
  return small;
}

}  // namespace cdbp
