// Negative fixture: the same probe names through PlacementView — the
// sanctioned query layer — plus a justified direct probe.
#include "sim/bin_manager.hpp"

namespace cdbp {

BinId scanThroughView(const PlacementView& view, Size demand) {
  for (BinId id : view.openBins()) {
    if (view.fits(id, demand)) {
      return id;
    }
  }
  return view.firstFit(demand);
}

unsigned long countOnly(const BinManager& bins) {
  return bins.binsOpened();  // not a probe method — free to call anywhere
}

bool auditProbe(const BinManager& bins, BinId id, Size demand) {
  return bins.wouldFit(id, demand);  // cdbp-analyze: allow(engine-bypass): fixture — differential validator re-checks the engine's own answer
}

}  // namespace cdbp
