// Fixture mirror of the real util/check.hpp contract macros: the argument
// expressions are spelled at the call site, so the side-effecting-check
// range scan and AST inspection behave exactly as against the real macros.
#pragma once

namespace cdbp::detail {

[[noreturn]] void checkFailed(const char* file, int line, const char* expr);

template <typename... Args>
int sinkMessage(const Args&... args);

}  // namespace cdbp::detail

#define CDBP_CHECK(cond, ...)                                      \
  do {                                                             \
    if (!(cond)) {                                                 \
      (void)::cdbp::detail::sinkMessage(__VA_ARGS__);              \
      ::cdbp::detail::checkFailed(__FILE__, __LINE__, #cond);      \
    }                                                              \
  } while (false)

#define CDBP_DCHECK(cond, ...) CDBP_CHECK((cond), __VA_ARGS__)
