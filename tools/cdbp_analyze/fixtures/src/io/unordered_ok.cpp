// Negative fixture: ordered containers iterate deterministically; lookups
// into hash containers (no iteration) are fine; an order-insensitive
// reduction carries a justified suppression.
#include "support/std_stubs.hpp"

namespace cdbp {

double totalOrdered(const std::map<int, double>& cells) {
  double total = 0;
  for (const auto& cell : cells) {
    total = total * 10.0 + cell.second;
  }
  return total;
}

int sumVector(const std::vector<int>& values) {
  int sum = 0;
  for (int value : values) {
    sum += value;
  }
  return sum;
}

double lookupOnly(std::unordered_map<int, double>& cache, int key) {
  return cache[key];  // point lookup — no iteration order involved
}

int countEntries(const std::unordered_map<int, int>& index) {
  int count = 0;
  for (const auto& entry : index) {  // cdbp-analyze: allow(nondeterministic-iteration): fixture — counting is a commutative reduction, order cannot leak
    count += entry.second > 0 ? 1 : 0;
  }
  return count;
}

}  // namespace cdbp
