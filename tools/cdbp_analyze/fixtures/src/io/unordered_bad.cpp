// Positive fixture: range-for over hash containers. Iteration order is
// implementation-defined, so anything these loops feed (output rows,
// aggregation order, result vectors) loses bit-reproducibility.
#include "support/std_stubs.hpp"

namespace cdbp {

double totalByCell(const std::unordered_map<int, double>& cells) {
  double total = 0;
  for (const auto& cell : cells) {  // cdbp-analyze: expect(nondeterministic-iteration)
    total = total * 10.0 + cell.second;  // order-sensitive reduction
  }
  return total;
}

int firstSeen(const std::unordered_set<int>& seen) {
  for (int id : seen) {  // cdbp-analyze: expect(nondeterministic-iteration)
    return id;  // "first" depends on hashing — nondeterministic
  }
  return -1;
}

// A type alias must not hide the container from the canonical-type check.
using CellIndex = std::unordered_map<int, int>;

int aliasedContainer(const CellIndex& index) {
  int sum = 0;
  for (const auto& entry : index) {  // cdbp-analyze: expect(nondeterministic-iteration)
    sum += entry.second;
  }
  return sum;
}

}  // namespace cdbp
