// Minimal std:: container stand-ins so fixtures parse hermetically —
// the self-test must not depend on a host C++ standard library
// (fixtures are parsed with -nostdinc++). Declarations only; nothing
// here is ever executed.
#pragma once

namespace std {

template <typename K, typename V>
struct pair {
  K first;
  V second;
};

template <typename K, typename V>
class unordered_map {
 public:
  using value_type = pair<const K, V>;
  value_type* begin();
  value_type* end();
  const value_type* begin() const;
  const value_type* end() const;
  V& operator[](const K& key);
};

template <typename K>
class unordered_set {
 public:
  const K* begin() const;
  const K* end() const;
};

template <typename K, typename V>
class map {
 public:
  using value_type = pair<const K, V>;
  value_type* begin();
  value_type* end();
  const value_type* begin() const;
  const value_type* end() const;
};

template <typename T>
class vector {
 public:
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
  unsigned long size() const;
  bool empty() const;
  void push_back(const T& value);
};

}  // namespace std
