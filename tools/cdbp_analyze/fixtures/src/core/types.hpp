// Fixture mirror of the real core/types.hpp. Lives at the same relative
// path so the capacity-compare exemption rule is exercised exactly as in
// production: this file may spell kBinCapacity and 1.0 freely.
#pragma once

namespace cdbp {

using Time = double;
using Size = double;
using ItemId = unsigned int;
using BinId = int;

inline constexpr BinId kNewBin = -1;
inline constexpr Size kBinCapacity = 1.0;

}  // namespace cdbp
