// Negative fixture: pure conditions and const queries inside check
// macros, side effects adjacent to (but outside) the macros, and one
// justified suppression. None of these may fire.
#include "support/std_stubs.hpp"
#include "util/check.hpp"

namespace cdbp {

struct Ledger {
  int balance = 0;
  int peek() const { return balance; }
  void deposit(int amount) { balance += amount; }
};

int settle(Ledger& ledger, const std::vector<int>& entries, int amount) {
  ledger.deposit(amount);  // side effect *outside* the macro: fine
  CDBP_CHECK(amount >= 0, "negative deposit ", amount);
  CDBP_DCHECK(ledger.peek() >= amount, "const query is fine");
  CDBP_DCHECK(entries.empty() || entries.size() > 0, "const calls");
  int probes = 0;
  CDBP_DCHECK(probes++ == 0, "fixture");  // cdbp-analyze: allow(side-effecting-check): fixture — counter is debug-only diagnostics by design
  return ledger.peek() + probes;
}

struct Pool {
  std::vector<int> slots;

  bool audit() {
    // `slots` is non-const here, so overload resolution picks the
    // non-const begin()/end() — logically const, must not fire.
    CDBP_DCHECK(slots.begin() != slots.end(), "pool must not be empty");
    return slots.begin() != slots.end();
  }
};

}  // namespace cdbp
