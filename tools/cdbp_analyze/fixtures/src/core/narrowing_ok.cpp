// Negative fixture: explicit casts, literals, widening, and same-width
// conversions are all sanctioned; one justified suppression.
#include "core/types.hpp"
#include "support/std_stubs.hpp"

namespace cdbp {

unsigned int explicitShrink(unsigned long binsOpened) {
  return static_cast<unsigned int>(binsOpened);
}

int explicitFloor(Time departure) {
  return static_cast<int>(departure);
}

int fromLiteral() {
  int slots = 7;  // literal initializers are compile-time territory
  return slots;
}

double widen(int ticks) {
  return ticks;  // int -> double widens; nothing truncates
}

long sameWidth(long value) {
  unsigned long bits = static_cast<unsigned long>(value);
  return static_cast<long>(bits);
}

int suppressedFloor(Time t) {
  return t;  // cdbp-analyze: allow(narrowing-conversion): fixture — truncation toward zero is the intended floor here
}

}  // namespace cdbp
