// Positive fixture for the marker grammar itself: malformed suppression
// comments are findings (check name "suppression") and can never be
// suppressed away.
#include "core/types.hpp"

namespace cdbp {

inline constexpr int kMarkerFixtureAnchor = 1;

// cdbp-analyze: expect(suppression)
// cdbp-analyze: allow(made-up-check): the named check does not exist

// cdbp-analyze: expect(suppression)
// cdbp-analyze: allow(capacity-compare)

// cdbp-analyze: expect(suppression)
// cdbp-analyze: allow(suppression): trying to silence the meta-check

}  // namespace cdbp
