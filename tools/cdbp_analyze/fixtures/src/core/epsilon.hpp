// Fixture mirror of the real core/epsilon.hpp: the sanctioned tolerance
// helpers. Exempt from capacity-compare by path, like the real file.
#pragma once

#include "core/types.hpp"

namespace cdbp {

inline constexpr double kEpsilon = 1e-9;

inline bool leq(double a, double b) { return a <= b + kEpsilon; }
inline bool lt(double a, double b) { return a < b - kEpsilon; }
inline bool approxEq(double a, double b) {
  double diff = a - b;
  return diff <= kEpsilon && diff >= -kEpsilon;
}
inline bool fitsCapacity(Size level, Size demand) {
  return leq(level + demand, kBinCapacity);
}
inline Size freeCapacity(Size level) { return kBinCapacity - level; }

}  // namespace cdbp
