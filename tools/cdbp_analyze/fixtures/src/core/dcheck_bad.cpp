// Positive fixture: side effects inside CDBP_CHECK/CDBP_DCHECK arguments.
// A DCHECK argument is never evaluated in Release builds, so each of
// these makes Debug and Release behave differently.
#include "util/check.hpp"

namespace cdbp {

struct AuditTrail {
  int entries = 0;
  int append(int value) {
    entries += value;
    return entries;
  }
  int count() const { return entries; }
};

int advance(AuditTrail& trail, int next) {
  int calls = 0;
  CDBP_DCHECK(++calls < 3, "must not retry");  // cdbp-analyze: expect(side-effecting-check)
  int state = 0;
  CDBP_CHECK((state = next) >= 0, "state advanced");  // cdbp-analyze: expect(side-effecting-check)
  CDBP_DCHECK(trail.append(next) > 0, "recorded");  // cdbp-analyze: expect(side-effecting-check)
  int countdown = next;
  CDBP_DCHECK(next == 0 || countdown-- > 0, "countdown");  // cdbp-analyze: expect(side-effecting-check)
  return state + calls + countdown;
}

int messageSideEffect(AuditTrail& trail, int next) {
  // The message arguments only evaluate on the failure path (and never in
  // Release) — a mutation there is just as divergent as in the condition.
  CDBP_CHECK(next >= 0, "trail=", trail.append(next));  // cdbp-analyze: expect(side-effecting-check)
  return trail.count();
}

}  // namespace cdbp
