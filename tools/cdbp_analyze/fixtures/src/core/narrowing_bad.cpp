// Positive fixture: implicit narrowing in core arithmetic — the
// conversions that silently truncate sizes, times, and 64-bit counts.
#include "core/types.hpp"
#include "support/std_stubs.hpp"

namespace cdbp {

unsigned int shrinkCount(unsigned long binsOpened) {
  unsigned int small = binsOpened;  // cdbp-analyze: expect(narrowing-conversion)
  return small;
}

int truncateOnInit(Time departure) {
  int slot = departure;  // cdbp-analyze: expect(narrowing-conversion)
  return slot;
}

int truncateOnAssign(Time departure) {
  int slot = 0;
  slot = departure + 1.5;  // cdbp-analyze: expect(narrowing-conversion)
  return slot;
}

long truncateOnReturn(double usage) {
  return usage;  // cdbp-analyze: expect(narrowing-conversion)
}

void consumeEpoch(int epoch);

void truncateOnCall(Time now) {
  consumeEpoch(now);  // cdbp-analyze: expect(narrowing-conversion)
}

int shrinkSize(const std::vector<int>& items) {
  int count = items.size();  // cdbp-analyze: expect(narrowing-conversion)
  return count;
}

}  // namespace cdbp
