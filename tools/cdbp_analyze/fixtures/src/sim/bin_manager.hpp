// Fixture mirror of the placement substrate types. Under src/sim/ — the
// engine-bypass exemption path — exactly like the real headers.
#pragma once

#include "core/types.hpp"
#include "support/std_stubs.hpp"

namespace cdbp {

class BinManager {
 public:
  bool fits(BinId id, Size demand) const;
  bool wouldFit(BinId id, Size demand) const;
  const std::vector<BinId>& openBins() const;
  const std::vector<BinId>& openBins(int category) const;
  unsigned long binsOpened() const;
};

class PlacementView {
 public:
  bool fits(BinId id, Size demand) const;
  const std::vector<BinId>& openBins() const;
  BinId firstFit(Size demand) const;
  BinId bestFit(Size demand) const;
};

}  // namespace cdbp
