// Negative fixture: src/sim/ is the substrate itself — the engine and
// its validators own these probes, so the engine-bypass check is exempt
// here by path.
#include "sim/bin_manager.hpp"

namespace cdbp {

BinId substrateScan(const BinManager& bins, Size demand) {
  for (BinId id : bins.openBins()) {
    if (bins.fits(id, demand)) {
      return id;
    }
  }
  return -1;
}

bool substratePeek(const BinManager& bins, BinId id, Size demand) {
  return bins.wouldFit(id, demand);
}

}  // namespace cdbp
