"""libclang discovery and translation-unit parsing for cdbp_analyze.

The analyzer degrades loudly, never silently: when the Python bindings or
the shared library are missing, ``load_libclang`` returns a diagnostic that
names exactly what was tried and how to install it, and the CLI exits with
a distinct status (2, or 77 under ``--skip-missing-libclang`` so ctest can
record a SKIP instead of a failure).
"""

from __future__ import annotations

import glob
import os
from dataclasses import dataclass

#: Candidate libclang shared objects, newest first. ``CDBP_LIBCLANG``
#: overrides the search entirely.
_LIBCLANG_GLOBS = (
    "/usr/lib/llvm-*/lib/libclang.so*",
    "/usr/lib/x86_64-linux-gnu/libclang-*.so*",
    "/usr/lib/x86_64-linux-gnu/libclang.so*",
    "/usr/local/lib/libclang.so*",
    "/opt/homebrew/opt/llvm/lib/libclang.dylib",
)

MISSING_HINT = """\
cdbp_analyze needs libclang (the Python clang.cindex bindings plus the
libclang shared library). Neither regex nor this message can substitute for
the AST. To install on Debian/Ubuntu:

    sudo apt-get install -y python3-clang libclang-dev

or, in a virtualenv (bundles the shared library):

    pip install libclang

If libclang.so lives somewhere unusual, point CDBP_LIBCLANG at it:

    CDBP_LIBCLANG=/path/to/libclang.so python3 tools/cdbp_analyze ..."""


@dataclass
class LibclangStatus:
    ok: bool
    detail: str  # what loaded, or every path/import that failed
    cindex: object | None = None


def load_libclang() -> LibclangStatus:
    """Imports clang.cindex and binds it to a concrete libclang.so."""
    tried: list[str] = []
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError as err:
        return LibclangStatus(
            ok=False,
            detail=f"python bindings missing (import clang.cindex: {err})\n"
                   f"{MISSING_HINT}")

    override = os.environ.get("CDBP_LIBCLANG")
    candidates: list[str] = []
    if override:
        candidates.append(override)
    else:
        for pattern in _LIBCLANG_GLOBS:
            candidates.extend(sorted(glob.glob(pattern), reverse=True))
        candidates.append("")  # let cindex try its built-in default last

    last_error = "no libclang.so candidates found"
    for candidate in candidates:
        try:
            if candidate:
                cindex.Config.set_library_file(candidate)
            index = cindex.Index.create()
            del index
            return LibclangStatus(
                ok=True,
                detail=candidate or "clang.cindex default search",
                cindex=cindex)
        except Exception as err:  # cindex raises LibclangError and OSError
            tried.append(candidate or "<cindex default>")
            last_error = str(err)
            # Config is process-global and latches after the first
            # Index.create(); resetting loaded state lets the next
            # candidate be tried on bindings that support it.
            cindex.Config.loaded = False
    return LibclangStatus(
        ok=False,
        detail="could not bind a libclang shared library\n"
               f"  tried: {', '.join(tried)}\n  last error: {last_error}\n"
               f"{MISSING_HINT}")


class ParseError(RuntimeError):
    """A translation unit failed to parse cleanly enough to trust."""


def parse_translation_unit(cindex, path: str, args: list[str],
                           strict: bool = True):
    """Parses one TU; raises ParseError on error-severity diagnostics.

    Error-level diagnostics mean types may have decayed to int and the
    semantic checks would silently under-report — strict mode refuses to
    pretend such a file was analyzed.
    """
    index = cindex.Index.create()
    options = cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD
    try:
        tu = index.parse(path, args=args, options=options)
    except cindex.TranslationUnitLoadError as err:
        raise ParseError(f"{path}: libclang failed to parse: {err}") from err
    errors = [d for d in tu.diagnostics
              if d.severity >= cindex.Diagnostic.Error]
    if errors and strict:
        rendered = "\n".join(f"  {d}" for d in errors[:10])
        raise ParseError(
            f"{path}: {len(errors)} parse error(s); findings would be "
            f"unreliable (pass --lenient-parse to continue anyway):\n"
            f"{rendered}")
    return tu
