// Trace replay: load a job trace from CSV (size,arrival,departure), replay
// it through any policy, and export the packing and the open-server
// profile as CSV for external analysis.
//
// With no --trace flag the example writes a demo trace first, so it runs
// out of the box:
//
//   ./trace_replay                          # demo trace, First Fit
//   ./trace_replay --trace jobs.csv --policy cdt --out packing.csv
//
// Flags: --trace <path>, --policy <spec> (any makePolicy spec, e.g.
//        ff, bf, cdt, cd, minext, "cdt-ff(rho=2)"; default ff),
//        --out <path> (packing CSV), --profile <path> (open-bin CSV),
//        --decisions <path> (per-item decision trace CSV),
//        --chrome-trace <path> (timeline JSON for chrome://tracing).
#include <fstream>
#include <iostream>
#include <memory>

#include "core/lower_bounds.hpp"
#include "io/csv_io.hpp"
#include "telemetry/chrome_trace.hpp"
#include "online/policy_factory.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/simulator.hpp"
#include "util/flags.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv,
      {"trace", "policy", "out", "profile", "decisions", "chrome-trace"});

  std::string tracePath = flags.getString("trace", "");
  Instance trace;
  if (tracePath.empty()) {
    // Demo: synthesize a trace and round-trip it through CSV, exactly as a
    // user-supplied file would flow.
    WorkloadSpec spec;
    spec.numItems = 500;
    spec.mu = 24.0;
    tracePath = "demo_trace.csv";
    saveInstanceCsv(generateWorkload(spec, 123), tracePath);
    std::cout << "(no --trace given: wrote demo trace to " << tracePath
              << ")\n";
  }
  try {
    trace = loadInstanceCsv(tracePath);
  } catch (const std::exception& e) {
    std::cerr << "failed to load trace: " << e.what() << '\n';
    return 1;
  }

  // Parameter-free clairvoyant specs (cdt, cd, ...) self-tune to the
  // loaded trace's realized Delta and mu.
  std::string policyName = flags.getString("policy", "ff");
  PolicyPtr policy;
  try {
    policy = makePolicy(policyName, PolicyContext::forInstance(trace));
  } catch (const std::exception& e) {
    std::cerr << "bad --policy '" << policyName << "': " << e.what() << '\n';
    return 1;
  }

  DecisionTrace decisions;
  telemetry::ChromeTrace chromeTrace;
  SimOptions simOptions;
  simOptions.trace = &decisions;
  std::string chromeTracePath = flags.getString("chrome-trace", "");
  if (!chromeTracePath.empty()) {
    simOptions.chromeTrace = &chromeTrace;
  }
  SimResult result = simulateOnline(trace, *policy, simOptions);
  PackingMetrics metrics = computeMetrics(result.packing);
  LowerBounds lb = lowerBounds(trace);

  std::cout << "trace: " << trace.size() << " jobs, span " << trace.span()
            << ", mu " << trace.durationRatio() << '\n';
  std::cout << "policy " << policy->name() << ": usage " << result.totalUsage
            << " (vs LB3 " << lb.ceilIntegral << " -> ratio "
            << result.totalUsage / lb.ceilIntegral << ")\n";
  std::cout << "servers: " << metrics.binsUsed << " opened, peak "
            << metrics.maxConcurrentBins << ", avg open "
            << metrics.avgOpenBins << ", utilization " << metrics.utilization
            << '\n';
  std::cout << "rentals: " << metrics.rentalLengths.count() << " (median "
            << metrics.rentalLengths.median() << ", p95 "
            << metrics.rentalLengths.percentile(95) << ")\n";

  std::string outPath = flags.getString("out", "");
  if (!outPath.empty()) {
    savePackingCsv(result.packing, outPath);
    std::cout << "packing written to " << outPath << '\n';
  }
  std::cout << "decisions: new-bin rate " << decisions.newBinRate()
            << ", mean open bins at decision " << decisions.meanOpenBins()
            << '\n';
  std::string decisionsPath = flags.getString("decisions", "");
  if (!decisionsPath.empty()) {
    std::ofstream out(decisionsPath);
    decisions.writeCsv(out);
    std::cout << "decision trace written to " << decisionsPath << '\n';
  }
  std::string profilePath = flags.getString("profile", "");
  if (!profilePath.empty()) {
    std::ofstream out(profilePath);
    writeStepFunctionCsv(result.packing.openBinProfile(), out);
    std::cout << "open-server profile written to " << profilePath << '\n';
  }
  if (!chromeTracePath.empty()) {
    std::ofstream out(chromeTracePath);
    chromeTrace.write(out);
    std::cout << "timeline written to " << chromeTracePath
              << " (open in chrome://tracing or ui.perfetto.dev)\n";
  }
  return 0;
}
