// Batch analytics scenario (paper §1: "data analytics systems where jobs
// are mostly recurring"): since the whole recurring schedule is known in
// advance, the OFFLINE algorithms apply — plan tomorrow's server
// reservations tonight.
//
// Compares Duration Descending First Fit (Theorem 1) and Dual Coloring
// (Theorem 2) against an arrival-order First Fit plan and the lower bound.
//
// Flags: --templates <int> (default 60), --periods <int> (default 24),
//        --seed <int>.
#include <iostream>

#include "core/lower_bounds.hpp"
#include "offline/ddff.hpp"
#include "offline/chart_render.hpp"
#include "offline/dual_coloring.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags(argc, argv);
  BatchAnalyticsSpec spec;
  spec.numTemplates = static_cast<std::size_t>(flags.getInt("templates", 60));
  spec.numPeriods = static_cast<std::size_t>(flags.getInt("periods", 24));
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 7));

  Instance jobs = batchAnalyticsJobs(spec, seed);
  LowerBounds lb = lowerBounds(jobs);

  std::cout << "=== Batch analytics: " << spec.numTemplates
            << " recurring job templates x " << spec.numPeriods
            << " periods = " << jobs.size() << " runs ===\n";
  std::cout << "ideal server-minutes (LB3): " << lb.ceilIntegral << "\n\n";

  Table table({"planner", "server-minutes", "vs ideal", "servers", "peak"});

  Packing ddff = durationDescendingFirstFit(jobs);
  table.addRow({"DDFF (Thm 1, 5-approx)", Table::num(ddff.totalUsage(), 0),
                Table::num(ddff.totalUsage() / lb.ceilIntegral, 3),
                std::to_string(ddff.numBins()),
                std::to_string(ddff.maxConcurrentBins())});

  DualColoringResult dc = dualColoring(jobs);
  table.addRow({"DualColoring (Thm 2, 4-approx)",
                Table::num(dc.packing.totalUsage(), 0),
                Table::num(dc.packing.totalUsage() / lb.ceilIntegral, 3),
                std::to_string(dc.packing.numBins()),
                std::to_string(dc.packing.maxConcurrentBins())});

  table.print(std::cout);

  std::cout << "\nThe planner output is a concrete job->server assignment:\n";
  for (ItemId id = 0; id < std::min<std::size_t>(jobs.size(), 6); ++id) {
    const Item& r = jobs[id];
    std::cout << "  run " << id << " (share " << r.size << ", ["
              << r.arrival() << ", " << r.departure() << ")) -> server "
              << ddff.binOf(id) << '\n';
  }
  std::cout << "  ... (" << jobs.size() << " runs total)\n";

  // Show the Dual Coloring demand chart for a small slice of the plan
  // (the first period's small jobs) — the geometry of Figure 3.
  std::vector<Item> slice;
  for (const Item& r : jobs.items()) {
    if (r.arrival() < spec.periodMinutes && r.size <= 0.5) slice.push_back(r);
  }
  if (!slice.empty()) {
    std::cout << "\nDual Coloring demand chart of the first period's small "
                 "jobs:\n";
    DemandChart chart(slice);
    renderDemandChart(chart, std::cout, {.width = 72, .height = 14});
  }
  return 0;
}
