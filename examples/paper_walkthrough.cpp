// Paper walkthrough: reproduces the paper's inline worked examples with
// the actual library, printing each alongside the claim it illustrates.
//
//   1. §3.1 Figure 1 — span of an item list (union measure, not extent).
//   2. §3.2 Propositions 1-3 — the three lower bounds and their ordering.
//   3. §5.1 Figure 5 / Theorem 3 — the two adversary cases at x = phi.
//   4. §5.3 footnote 2 — classify-by-duration categories for alpha = 2,
//      durations in [1.5, 4.5].
//   5. §5.4 Figure 8 anchors and the mu = 4 crossover.
#include <iostream>

#include "analysis/adversary.hpp"
#include "analysis/ratios.hpp"
#include "core/brute_force.hpp"
#include "core/lower_bounds.hpp"
#include "online/any_fit.hpp"
#include "online/classify_duration.hpp"
#include "workload/adversarial.hpp"

int main() {
  using namespace cdbp;
  std::cout << "================ cdbp paper walkthrough ================\n\n";

  // --- 1. Span (Figure 1) ---
  Instance spanDemo = InstanceBuilder()
                          .add(0.5, 0, 4)
                          .add(0.5, 2, 6)
                          .add(0.5, 10, 12)
                          .build();
  std::cout << "1. Span (Figure 1): items cover [0,6) and [10,12)\n"
            << "   span = " << spanDemo.span()
            << " (union measure; the extent 12 would be wrong)\n\n";

  // --- 2. Lower bounds (Propositions 1-3) ---
  InstanceBuilder dense;
  for (int i = 0; i < 11; ++i) dense.add(0.1, 0, 10);
  Instance lbDemo = dense.build();
  LowerBounds lb = lowerBounds(lbDemo);
  std::cout << "2. Lower bounds on 11 items of size 0.1 over [0,10):\n"
            << "   Prop 1 (demand)        = " << lb.demand << '\n'
            << "   Prop 2 (span)          = " << lb.span << '\n'
            << "   Prop 3 (ceil integral) = " << lb.ceilIntegral
            << "  <- tightest: S(t) = 1.1 needs 2 bins throughout\n\n";

  // --- 3. Theorem 3 adversary at x = phi ---
  double phi = ratios::adversaryOptimalX();
  FirstFitPolicy ff;
  AdversaryOutcome ffOutcome = runTheorem3Adversary(ff, phi, 1e-3, 1e-6);
  std::cout << "3. Theorem 3 adversary at x = phi = " << phi << ":\n"
            << "   First Fit co-locates the two (1/2-eps) items -> case B\n"
            << "   extracted ratio = " << ffOutcome.ratio
            << " (lower bound " << ratios::onlineLowerBound() << ")\n";
  auto caseA = theorem3CaseA(phi, 1e-3);
  auto optA = bruteForceOptimal(caseA);
  std::cout << "   case A optimum (both items together): " << optA->usage
            << " = x\n\n";

  // --- 4. Footnote 2 categories ---
  ClassifyByDurationFF cd(1.0, 2.0);
  std::cout << "4. Footnote 2 (alpha = 2, durations 1.5 .. 4.5):\n";
  for (double d : {1.5, 2.0, 3.0, 4.0, 4.5}) {
    std::cout << "   duration " << d << " -> category [" << (1 << cd.categoryOf(d))
              << ", " << (1 << (cd.categoryOf(d) + 1)) << ")\n";
  }
  std::cout << "   three non-empty categories: [1,2), [2,4), [4,8)  "
            << "(ceil(log2 3) + 1 = 3)\n\n";

  // --- 5. Figure 8 anchors ---
  std::cout << "5. Figure 8 anchors (durations known):\n";
  for (double mu : {1.0, 4.0, 16.0, 100.0}) {
    std::cout << "   mu = " << mu << ": FF " << ratios::firstFitUpperBound(mu)
              << ", CDT-FF " << ratios::cdtBestRatio(mu) << ", CD-FF "
              << ratios::cdBestRatio(mu) << " (n* = "
              << ratios::optimalDurationCategories(mu) << ")\n";
  }
  std::cout << "   crossover of the two strategies: mu = "
            << ratios::classificationCrossoverMu()
            << " (paper: CDT wins below 4, CD above)\n";
  return 0;
}
