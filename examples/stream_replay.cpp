// Streaming trace replay: pull a cdbp-trace file through the
// bounded-memory simulator (sim/streaming.hpp) without ever holding the
// whole workload in RAM. The counterpart of trace_replay for traces larger
// than memory — and a demonstration that the stream reproduces the batch
// simulator's numbers exactly (DESIGN.md §11).
//
// With no --trace flag the example exports a demo trace first, so it runs
// out of the box:
//
//   ./stream_replay                                   # demo trace, First Fit
//   ./stream_replay --trace big.jsonl --policy cdt
//   ./stream_replay --trace big.jsonl --engine linear --chrome-trace t.json
//
// Flags: --trace <path> (.csv or .jsonl), --policy <spec> (any makePolicy
//        spec; default ff), --engine indexed|linear, --no-lb (skip the
//        incremental lower bound), --chrome-trace <path>.
//
// Clairvoyant specs (cdt, cd, ...) need the workload's minimum duration
// and duration ratio mu; a one-pass scanTrace pre-pass supplies them, so
// even the policy context is derived without materializing the trace.
#include <fstream>
#include <iostream>
#include <string>

#include "online/policy_factory.hpp"
#include "sim/streaming.hpp"
#include "telemetry/chrome_trace.hpp"
#include "util/flags.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv, {"trace", "policy", "engine", "no-lb", "chrome-trace"});

  std::string tracePath = flags.getString("trace", "");
  try {
    if (tracePath.empty()) {
      WorkloadSpec spec;
      spec.numItems = 2000;
      spec.mu = 24.0;
      tracePath = "demo_stream_trace.jsonl";
      saveTrace(generateWorkload(spec, 123), tracePath, "stream_replay demo");
      std::cout << "(no --trace given: wrote demo trace to " << tracePath
                << ")\n";
    }

    // Pre-pass: O(1)-memory scan for the clairvoyant context knobs.
    TraceStats stats = scanTrace(tracePath);
    PolicyContext context;
    context.minDuration = stats.minDuration;
    context.mu = stats.mu;

    std::string policySpec = flags.getString("policy", "ff");
    PolicyPtr policy;
    try {
      policy = makePolicy(policySpec, context);
    } catch (const std::exception& e) {
      std::cerr << "bad --policy '" << policySpec << "': " << e.what() << '\n';
      return 1;
    }

    StreamOptions options;
    std::string engine = flags.getString("engine", "indexed");
    if (engine == "indexed") {
      options.engine = PlacementEngine::kIndexed;
    } else if (engine == "linear") {
      options.engine = PlacementEngine::kLinearScan;
    } else {
      std::cerr << "bad --engine '" << engine << "' (indexed|linear)\n";
      return 2;
    }
    options.computeLowerBound = !flags.getBool("no-lb", false);
    telemetry::ChromeTrace chromeTrace;
    std::string chromeTracePath = flags.getString("chrome-trace", "");
    if (!chromeTracePath.empty()) options.chromeTrace = &chromeTrace;

    TraceArrivalSource source(tracePath);
    StreamResult result = simulateStream(source, *policy, options);

    std::cout << "trace: " << result.items << " jobs from " << tracePath
              << " (mu " << stats.mu << ", demand " << stats.demand << ")\n";
    std::cout << "policy " << policy->name() << ": usage " << result.totalUsage;
    if (options.computeLowerBound && result.lb3 > 0) {
      std::cout << " (vs LB3 " << result.lb3 << " -> ratio "
                << result.totalUsage / result.lb3 << ")";
    }
    std::cout << '\n';
    std::cout << "servers: " << result.binsOpened << " opened, peak "
              << result.maxOpenBins << ", categories " << result.categoriesUsed
              << '\n';
    std::cout << "memory: peak " << result.peakOpenItems
              << " open items of " << result.items << " total, ~"
              << result.peakResidentBytes / 1024 << " KiB simulator state\n";

    if (!chromeTracePath.empty()) {
      std::ofstream out(chromeTracePath);
      chromeTrace.write(out);
      std::cout << "timeline written to " << chromeTracePath
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "stream_replay: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
