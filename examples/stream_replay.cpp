// Streaming trace replay: pull a cdbp-trace file through the
// bounded-memory simulator (sim/streaming.hpp) without ever holding the
// whole workload in RAM. The counterpart of trace_replay for traces larger
// than memory — and a demonstration that the stream reproduces the batch
// simulator's numbers exactly (DESIGN.md §11).
//
// With no --trace flag the example exports a demo trace first, so it runs
// out of the box:
//
//   ./stream_replay                                   # demo trace, First Fit
//   ./stream_replay --trace big.jsonl --policy cdt
//   ./stream_replay --trace big.jsonl --engine linear --chrome-trace t.json
//
// With --connect the same replay becomes a load generator for the
// cdbp_served daemon (DESIGN.md §13): every item travels as a PLACE frame
// over the socket, the final DRAIN_OK carries the StreamResult — still
// bit-identical to the local run — and the end-to-end placement latency
// is summarized as percentiles:
//
//   ./cdbp_served --unix cdbp.sock &
//   ./stream_replay --connect unix:cdbp.sock --policy cdt --tenant demo
//
// Flags: --trace <path> (.csv or .jsonl), --policy <spec> (any makePolicy
//        spec; default ff), --engine indexed|linear, --no-lb (skip the
//        incremental lower bound), --chrome-trace <path>,
//        --connect unix:<path>|tcp:<host>:<port>, --tenant <name>.
//
// Clairvoyant specs (cdt, cd, ...) need the workload's minimum duration
// and duration ratio mu; a one-pass scanTrace pre-pass supplies them, so
// even the policy context is derived without materializing the trace.
#include <fstream>
#include <iostream>
#include <string>

#include "online/policy_factory.hpp"
#include "serve/client.hpp"
#include "sim/streaming.hpp"
#include "telemetry/chrome_trace.hpp"
#include "telemetry/clock.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace {

// Replays the trace against a running daemon, one PLACE round trip per
// item, and reports the served StreamResult plus latency percentiles.
int replayOverSocket(const std::string& connectSpec,
                     const std::string& tenant, const std::string& tracePath,
                     const std::string& policySpec,
                     const cdbp::PolicyContext& context,
                     std::uint8_t engineCode) {
  using namespace cdbp;
  using namespace cdbp::serve;

  Address address;
  std::string addressError;
  if (!parseAddress(connectSpec, address, addressError)) {
    std::cerr << "bad --connect '" << connectSpec << "': " << addressError
              << '\n';
    return 2;
  }
  Client client = Client::connect(address);

  HelloFrame hello;
  hello.engine = engineCode;
  hello.minDuration = context.minDuration;
  hello.mu = context.mu;
  hello.seed = context.seed;
  hello.tenant = tenant;
  hello.policySpec = policySpec;
  HelloOkFrame ok = client.hello(hello);
  std::cout << "connected to " << connectSpec << " as tenant #" << ok.tenantId
            << " (" << tenant << "), policy " << ok.policyName << '\n';

  TraceArrivalSource source(tracePath);
  SummaryStats latencyUs;
  StreamItem item;
  while (source.next(item)) {
    std::uint64_t start = telemetry::monotonicNanos();
    client.place(item.size, item.arrival, item.departure);
    std::uint64_t elapsed = telemetry::monotonicNanos() - start;
    latencyUs.add(static_cast<double>(elapsed) / 1e3);
  }
  DrainOkFrame result = client.drain();

  std::cout << "served: " << result.items << " placements, usage "
            << result.totalUsage;
  if (result.lb3 > 0) {
    std::cout << " (vs LB3 " << result.lb3 << " -> ratio "
              << result.totalUsage / result.lb3 << ")";
  }
  std::cout << '\n';
  std::cout << "servers: " << result.binsOpened << " opened, peak "
            << result.maxOpenBins << ", categories " << result.categoriesUsed
            << '\n';
  std::cout << "latency (us): p50 " << latencyUs.percentile(50.0) << ", p90 "
            << latencyUs.percentile(90.0) << ", p99 "
            << latencyUs.percentile(99.0) << ", max " << latencyUs.max()
            << " over " << latencyUs.count() << " round trips\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv, {"trace", "policy", "engine", "no-lb", "chrome-trace",
                   "connect", "tenant"});

  std::string tracePath = flags.getString("trace", "");
  try {
    if (tracePath.empty()) {
      WorkloadSpec spec;
      spec.numItems = 2000;
      spec.mu = 24.0;
      tracePath = "demo_stream_trace.jsonl";
      saveTrace(generateWorkload(spec, 123), tracePath, "stream_replay demo");
      std::cout << "(no --trace given: wrote demo trace to " << tracePath
                << ")\n";
    }

    // Pre-pass: O(1)-memory scan for the clairvoyant context knobs.
    TraceStats stats = scanTrace(tracePath);
    PolicyContext context;
    context.minDuration = stats.minDuration;
    context.mu = stats.mu;

    std::string policySpec = flags.getString("policy", "ff");
    PolicyPtr policy;
    try {
      policy = makePolicy(policySpec, context);
    } catch (const std::exception& e) {
      std::cerr << "bad --policy '" << policySpec << "': " << e.what() << '\n';
      return 1;
    }

    StreamOptions options;
    std::string engine = flags.getString("engine", "indexed");
    if (engine == "indexed") {
      options.engine = PlacementEngine::kIndexed;
    } else if (engine == "linear") {
      options.engine = PlacementEngine::kLinearScan;
    } else {
      std::cerr << "bad --engine '" << engine << "' (indexed|linear)\n";
      return 2;
    }
    std::string connectSpec = flags.getString("connect", "");
    if (!connectSpec.empty()) {
      return replayOverSocket(
          connectSpec, flags.getString("tenant", "stream-replay"), tracePath,
          policySpec, context,
          options.engine == PlacementEngine::kLinearScan ? std::uint8_t{1}
                                                         : std::uint8_t{0});
    }

    options.computeLowerBound = !flags.getBool("no-lb", false);
    telemetry::ChromeTrace chromeTrace;
    std::string chromeTracePath = flags.getString("chrome-trace", "");
    if (!chromeTracePath.empty()) options.chromeTrace = &chromeTrace;

    TraceArrivalSource source(tracePath);
    StreamResult result = simulateStream(source, *policy, options);

    std::cout << "trace: " << result.items << " jobs from " << tracePath
              << " (mu " << stats.mu << ", demand " << stats.demand << ")\n";
    std::cout << "policy " << policy->name() << ": usage " << result.totalUsage;
    if (options.computeLowerBound && result.lb3 > 0) {
      std::cout << " (vs LB3 " << result.lb3 << " -> ratio "
                << result.totalUsage / result.lb3 << ")";
    }
    std::cout << '\n';
    std::cout << "servers: " << result.binsOpened << " opened, peak "
              << result.maxOpenBins << ", categories " << result.categoriesUsed
              << '\n';
    std::cout << "memory: peak " << result.peakOpenItems
              << " open items of " << result.items << " total, ~"
              << result.peakResidentBytes / 1024 << " KiB simulator state\n";

    if (!chromeTracePath.empty()) {
      std::ofstream out(chromeTracePath);
      chromeTrace.write(out);
      std::cout << "timeline written to " << chromeTracePath
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "stream_replay: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
