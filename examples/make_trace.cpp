// Trace exporter: run any synthetic generator and write the result as a
// versioned cdbp-trace file (workload/trace_io.hpp), so the exact same
// workload can be replayed later — by stream_replay, the runMany grid, or
// a different process entirely — without re-threading generator knobs.
//
//   ./make_trace                                    # 10k jobs -> trace.jsonl
//   ./make_trace --items 1000000 --mu 64 --out big.csv
//   ./make_trace --arrivals bursty --burst 16 --durations pareto --out h.jsonl
//
// Flags: --items N, --seed N, --out <path> (.csv or .jsonl; the extension
//        picks the flavor; default trace.jsonl),
//        --arrivals poisson|uniform|bursty, --rate X, --burst N,
//        --durations uniform|exponential|pareto|lognormal|bimodal,
//        --mu X, --min-duration X,
//        --sizes uniform|small|flavors, --min-size X, --max-size X.
#include <iostream>
#include <string>

#include "util/flags.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv,
      {"items", "seed", "out", "arrivals", "rate", "burst", "durations", "mu",
       "min-duration", "sizes", "min-size", "max-size"});

  WorkloadSpec spec;
  std::uint64_t seed = 42;
  try {
    spec.numItems = static_cast<std::size_t>(flags.getInt("items", 10000));
    spec.arrivalRate = flags.getDouble("rate", spec.arrivalRate);
    spec.burstSize = static_cast<std::size_t>(
        flags.getInt("burst", static_cast<long>(spec.burstSize)));
    spec.minDuration = flags.getDouble("min-duration", spec.minDuration);
    spec.mu = flags.getDouble("mu", spec.mu);
    spec.minSize = flags.getDouble("min-size", spec.minSize);
    spec.maxSize = flags.getDouble("max-size", spec.maxSize);
    seed = static_cast<std::uint64_t>(flags.getInt("seed", 42));
  } catch (const std::exception& e) {
    std::cerr << "make_trace: " << e.what() << '\n';
    return 2;
  }

  std::string arrivals = flags.getString("arrivals", "poisson");
  if (arrivals == "poisson") {
    spec.arrivals = ArrivalProcess::kPoisson;
  } else if (arrivals == "uniform") {
    spec.arrivals = ArrivalProcess::kUniform;
  } else if (arrivals == "bursty") {
    spec.arrivals = ArrivalProcess::kBursty;
  } else {
    std::cerr << "bad --arrivals '" << arrivals
              << "' (poisson|uniform|bursty)\n";
    return 2;
  }

  std::string durations = flags.getString("durations", "uniform");
  if (durations == "uniform") {
    spec.durations = DurationDist::kUniform;
  } else if (durations == "exponential") {
    spec.durations = DurationDist::kExponential;
  } else if (durations == "pareto") {
    spec.durations = DurationDist::kPareto;
  } else if (durations == "lognormal") {
    spec.durations = DurationDist::kLogNormal;
  } else if (durations == "bimodal") {
    spec.durations = DurationDist::kBimodal;
  } else {
    std::cerr << "bad --durations '" << durations
              << "' (uniform|exponential|pareto|lognormal|bimodal)\n";
    return 2;
  }

  std::string sizes = flags.getString("sizes", "uniform");
  if (sizes == "uniform") {
    spec.sizes = SizeDist::kUniform;
  } else if (sizes == "small") {
    spec.sizes = SizeDist::kSmallOnly;
  } else if (sizes == "flavors") {
    spec.sizes = SizeDist::kFlavors;
  } else {
    std::cerr << "bad --sizes '" << sizes << "' (uniform|small|flavors)\n";
    return 2;
  }

  std::string out = flags.getString("out", "trace.jsonl");

  try {
    Instance instance = generateWorkload(spec, seed);
    std::string note = "make_trace items=" + std::to_string(spec.numItems) +
                       " arrivals=" + arrivals + " durations=" + durations +
                       " sizes=" + sizes + " mu=" + std::to_string(spec.mu) +
                       " seed=" + std::to_string(seed);
    saveTrace(instance, out, note);

    // Read the file back for the summary: what scanTrace reports is what
    // every later consumer will see.
    TraceStats stats = scanTrace(out);
    std::cout << "wrote " << stats.count << " jobs to " << out << " ("
              << traceFormatName(traceFormatForPath(out)) << " v"
              << kTraceFormatVersion << ")\n";
    std::cout << "  arrivals in [" << stats.minArrival << ", "
              << stats.maxArrival << "], last departure " << stats.maxDeparture
              << '\n';
    std::cout << "  durations in [" << stats.minDuration << ", "
              << stats.maxDuration << "] (mu " << stats.mu << "), max size "
              << stats.maxSize << ", demand " << stats.demand << '\n';
  } catch (const std::exception& e) {
    std::cerr << "make_trace: " << e.what() << '\n';
    return 1;
  }
  return 0;
}
