// Cloud gaming scenario (paper §1: "cloud gaming where the ending times of
// game sessions can be predicted with reasonable accuracy").
//
// Simulates a multi-day session trace with a diurnal arrival pattern and
// compares the server-hours (and dollar cost under pay-as-you-go billing)
// of the non-clairvoyant baselines against the clairvoyant classification
// strategies.
//
// Flags: --sessions <int> (default 4000), --price <double> $/server-hour
//        (default 0.35), --seed <int>.
#include <iostream>

#include "analysis/empirical.hpp"
#include "core/lower_bounds.hpp"
#include "online/policy_factory.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags(argc, argv);
  CloudGamingSpec spec;
  spec.numSessions = static_cast<std::size_t>(flags.getInt("sessions", 4000));
  double pricePerHour = flags.getDouble("price", 0.35);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 2016));

  Instance sessions = cloudGamingSessions(spec, seed);
  LowerBounds lb = lowerBounds(sessions);

  std::cout << "=== Cloud gaming: " << sessions.size()
            << " sessions over " << sessions.span() / (24 * 60)
            << " days (peak concurrency "
            << sessions.maxConcurrentItems() << " sessions) ===\n";
  std::cout << "duration spread mu = " << sessions.durationRatio()
            << ", ideal server-minutes (LB3) = " << lb.ceilIntegral << "\n\n";

  Table table({"policy", "server-minutes", "vs ideal", "servers opened",
               "est. cost ($)"});
  for (const PolicyPtr& policy :
       fullRoster(sessions.minDuration(), sessions.durationRatio())) {
    EmpiricalResult result = evaluatePolicy(sessions, *policy);
    double hours = result.usage / 60.0;
    table.addRow({result.algorithm, Table::num(result.usage, 0),
                  Table::num(result.ratio, 3),
                  std::to_string(result.binsOpened),
                  Table::num(hours * pricePerHour, 2)});
  }
  table.print(std::cout);

  std::cout << "\nPay-as-you-go at $" << pricePerHour
            << "/server-hour; 'vs ideal' is usage divided by the "
               "Proposition 3 lower bound.\n";
  return 0;
}
