// Quickstart: the cdbp public API in one page.
//
// Builds a small instance by hand, packs it three ways — online First Fit,
// online classify-by-departure-time First Fit, and the offline Dual
// Coloring algorithm — and prints usage against the lower bounds.
#include <iostream>

#include "core/instance.hpp"
#include "core/lower_bounds.hpp"
#include "offline/dual_coloring.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace cdbp;

  // Jobs: (resource share of a server, start time, end time). In the
  // clairvoyant setting the end time is known on arrival.
  Instance jobs = InstanceBuilder()
                      .add(0.45, 0.0, 2.0)    // short job
                      .add(0.45, 0.1, 9.0)    // long job
                      .add(0.45, 0.2, 2.2)    // short job
                      .add(0.45, 0.3, 9.5)    // long job
                      .add(0.30, 4.0, 8.0)    // mid-day job
                      .add(0.80, 5.0, 7.0)    // big job
                      .build();

  LowerBounds lb = lowerBounds(jobs);
  std::cout << "instance: " << jobs.size() << " jobs, span " << jobs.span()
            << ", demand " << jobs.demand() << ", mu " << jobs.durationRatio()
            << "\n";
  std::cout << "lower bounds: demand " << lb.demand << ", span " << lb.span
            << ", ceil-integral " << lb.ceilIntegral << "\n\n";

  // 1. Non-clairvoyant baseline: online First Fit.
  FirstFitPolicy firstFit;
  SimResult ff = simulateOnline(jobs, firstFit);
  std::cout << "online FirstFit:    usage " << ff.totalUsage << "  ("
            << ff.binsOpened << " servers)\n";

  // 2. Clairvoyant: classify-by-departure-time First Fit (Theorem 4).
  auto cdt = ClassifyByDepartureFF::withKnownDurations(jobs.minDuration(),
                                                       jobs.durationRatio());
  SimResult cdtResult = simulateOnline(jobs, cdt);
  std::cout << "online CDT-FF:      usage " << cdtResult.totalUsage << "  ("
            << cdtResult.binsOpened << " servers)\n";

  // 3. Offline: Dual Coloring (Theorem 2, 4-approximation).
  DualColoringResult dc = dualColoring(jobs);
  std::cout << "offline DualColor:  usage " << dc.packing.totalUsage() << "  ("
            << dc.packing.numBins() << " servers)\n\n";

  // Every packing can be validated independently.
  if (auto error = cdtResult.packing.validate()) {
    std::cout << "BUG: " << *error << '\n';
    return 1;
  }
  std::cout << "all packings feasible; usage >= ceil-integral bound holds: "
            << (cdtResult.totalUsage >= lb.ceilIntegral - 1e-9 ? "yes" : "no")
            << '\n';
  return 0;
}
