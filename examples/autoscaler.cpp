// Autoscaler scenario: an online service receiving jobs with announced
// deadlines (the clairvoyant setting) decides, per arrival, whether to
// place the job on a running server or acquire a new one. The example
// shows the open-server count over time — the quantity an autoscaler
// watches — for plain First Fit vs classify-by-departure-time First Fit,
// and the impact of imperfect duration estimates.
//
// Flags: --items <int> (default 3000), --mu <double> (default 32),
//        --noise <double> (default 0.25), --seed <int>.
#include <iostream>

#include "core/lower_bounds.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "sim/simulator.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags(argc, argv);
  WorkloadSpec spec;
  spec.numItems = static_cast<std::size_t>(flags.getInt("items", 3000));
  spec.mu = flags.getDouble("mu", 32.0);
  spec.durations = DurationDist::kPareto;  // heavy-tailed job lengths
  double noise = flags.getDouble("noise", 0.25);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 11));

  Instance jobs = generateWorkload(spec, seed);
  double delta = jobs.minDuration();
  double mu = jobs.durationRatio();
  std::cout << "=== Autoscaler: " << jobs.size()
            << " jobs, heavy-tailed durations (mu = " << mu << ") ===\n\n";

  FirstFitPolicy ff;
  SimResult ffRun = simulateOnline(jobs, ff);

  ClassifyByDepartureFF cdt = ClassifyByDepartureFF::withKnownDurations(delta, mu);
  SimResult cdtRun = simulateOnline(jobs, cdt);

  // Same policy, but deadlines announced with +-noise relative error.
  SimOptions noisy;
  auto rng = std::make_shared<Rng>(seed ^ 0xabcdef);
  noisy.announce = [rng, noise](const Item& r) {
    double factor = 1.0 + noise * (2.0 * rng->uniform01() - 1.0);
    return Item(r.id, r.size, r.arrival(),
                r.arrival() + r.duration() * factor);
  };
  ClassifyByDepartureFF cdtNoisy =
      ClassifyByDepartureFF::withKnownDurations(delta, mu);
  SimResult noisyRun = simulateOnline(jobs, cdtNoisy, noisy);

  double lb3 = lowerBounds(jobs).ceilIntegral;
  Table table({"policy", "server-time", "vs ideal", "peak servers"});
  table.addRow({"FirstFit (no deadline info)", Table::num(ffRun.totalUsage, 0),
                Table::num(ffRun.totalUsage / lb3, 3),
                std::to_string(ffRun.maxOpenBins)});
  table.addRow({"CDT-FF (exact deadlines)", Table::num(cdtRun.totalUsage, 0),
                Table::num(cdtRun.totalUsage / lb3, 3),
                std::to_string(cdtRun.maxOpenBins)});
  table.addRow({"CDT-FF (noisy deadlines)", Table::num(noisyRun.totalUsage, 0),
                Table::num(noisyRun.totalUsage / lb3, 3),
                std::to_string(noisyRun.maxOpenBins)});
  table.print(std::cout);

  // Open-server curves, sampled on a uniform grid.
  StepFunction ffServers = ffRun.packing.openBinProfile();
  StepFunction cdtServers = cdtRun.packing.openBinProfile();
  std::vector<double> ts, ffCurve, cdtCurve;
  double horizon = jobs.activeUnion().max();
  for (int i = 0; i <= 60; ++i) {
    double t = horizon * i / 60.0;
    ts.push_back(t);
    ffCurve.push_back(ffServers.valueAt(t));
    cdtCurve.push_back(cdtServers.valueAt(t));
  }
  AsciiChart chart(72, 14);
  chart.addSeries("FirstFit open servers", ts, ffCurve);
  chart.addSeries("CDT-FF open servers", ts, cdtCurve);
  std::cout << '\n';
  chart.print(std::cout);
  return 0;
}
