// Multi-dimensional scheduling example: VMs demanding CPU and memory
// shares are packed onto servers; every dimension must fit (paper §6
// future-work extension, implemented in the multidim module).
//
// Flags: --items <int> (default 2000), --correlation <double> (default 0.5),
//        --seed <int>.
#include <iostream>

#include "multidim/md_lower_bounds.hpp"
#include "multidim/md_policies.hpp"
#include "multidim/md_workload.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags(argc, argv);
  MdWorkloadSpec spec;
  spec.numItems = static_cast<std::size_t>(flags.getInt("items", 2000));
  spec.dims = 2;  // CPU, memory
  spec.correlation = flags.getDouble("correlation", 0.5);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 21));

  MdInstance vms = generateMdWorkload(spec, seed);
  MdLowerBounds lb = mdLowerBounds(vms);
  std::cout << "=== VM scheduling: " << vms.size()
            << " VMs with (CPU, RAM) demands, correlation "
            << spec.correlation << " ===\n";
  std::cout << "ideal server-time (per-dimension LB3): " << lb.ceilIntegral
            << "\n\n";

  Table table({"policy", "server-time", "vs ideal", "servers", "peak"});
  std::vector<MdClassifyPolicy::Config> configs = {
      {MdFitRule::kFirstFit, MdCategoryRule::kNone, 1, 1, 2},
      {MdFitRule::kDominantFit, MdCategoryRule::kNone, 1, 1, 2},
      {MdFitRule::kFirstFit, MdCategoryRule::kDeparture, 8, 1, 2},
      {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1, vms.minDuration(), 2},
  };
  for (const MdClassifyPolicy::Config& config : configs) {
    MdClassifyPolicy policy(config);
    MdSimResult r = mdSimulateOnline(vms, policy);
    if (auto error = r.packing.validate()) {
      std::cout << "BUG in " << policy.name() << ": " << *error << '\n';
      return 1;
    }
    table.addRow({policy.name(), Table::num(r.totalUsage, 0),
                  Table::num(r.totalUsage / lb.ceilIntegral, 3),
                  std::to_string(r.binsOpened), std::to_string(r.maxOpenBins)});
  }
  table.print(std::cout);
  std::cout << "\nEvery placement satisfied BOTH the CPU and the RAM "
               "capacity at all times.\n";
  return 0;
}
