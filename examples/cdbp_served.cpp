// cdbp_served: the placement-as-a-service daemon (DESIGN.md §13).
//
// Runs the serve::Server event loop in the foreground, listening on a
// Unix socket and/or loopback TCP, until SIGTERM/SIGINT requests a
// graceful drain: in-flight requests are answered, replies flushed,
// connections closed, and the process exits 0 after printing a final
// telemetry exposition (the same text the SCRAPE frame serves live).
//
//   ./cdbp_served                              # unix socket ./cdbp.sock
//   ./cdbp_served --unix /tmp/cdbp.sock
//   ./cdbp_served --tcp --port 7077            # 127.0.0.1:7077
//   ./cdbp_served --tcp --port 0               # ephemeral, port printed
//
// Clients open one session per connection with a HELLO frame carrying a
// makePolicy spec — see stream_replay --connect for a ready-made load
// generator and serve/client.hpp for the client library.
//
// Flags: --unix <path>, --tcp, --port <n>, --write-limit <bytes>,
//        --drain-timeout-ms <n>.
#include <csignal>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "telemetry/expose.hpp"
#include "telemetry/registry.hpp"
#include "util/flags.hpp"

namespace {

cdbp::serve::Server* g_server = nullptr;

// Async-signal-safe: requestDrain is an atomic store plus an eventfd
// write.
void onSignal(int) {
  if (g_server != nullptr) g_server->requestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv, {"unix", "tcp", "port", "write-limit", "drain-timeout-ms"});

  serve::ServerOptions options;
  options.unixPath = flags.getString("unix", "");
  options.tcp = flags.getBool("tcp", false);
  options.tcpPort = static_cast<std::uint16_t>(flags.getInt("port", 0));
  options.writeBufferLimit = static_cast<std::size_t>(
      flags.getInt("write-limit",
                   static_cast<long>(options.writeBufferLimit)));
  options.drainTimeoutNanos = static_cast<std::uint64_t>(
      flags.getInt("drain-timeout-ms", 5000)) * 1'000'000ull;
  if (options.unixPath.empty() && !options.tcp) {
    options.unixPath = "cdbp.sock";  // out-of-the-box default
  }

  serve::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "cdbp_served: " << e.what() << '\n';
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  if (!options.unixPath.empty()) {
    std::cout << "listening on unix:" << options.unixPath << '\n';
  }
  if (options.tcp) {
    std::cout << "listening on tcp:127.0.0.1:" << server.tcpPort() << '\n';
  }
  std::cout << "serving (SIGTERM drains and exits)\n" << std::flush;

  server.join();

  serve::ServerStats stats = server.stats();
  std::cout << "drained: " << stats.placements << " placements across "
            << stats.sessionsOpened << " sessions, "
            << stats.framesReceived << " frames in / " << stats.framesSent
            << " out, " << stats.errorsSent << " typed errors\n";
  std::cout << "--- final telemetry ---\n";
  telemetry::exposeText(telemetry::Registry::global(), std::cout);
  return 0;
}
