// cdbp_served: the placement-as-a-service daemon (DESIGN.md §13).
//
// Runs the sharded serve::Server — N epoll loop threads, connections
// pinned round-robin — in the foreground until SIGTERM/SIGINT requests
// a graceful drain: every shard answers its in-flight requests, flushes
// replies, closes, and the process exits 0 after printing a final
// telemetry exposition (the same text the SCRAPE frame serves live).
//
//   ./cdbp_served                               # unix socket ./cdbp.sock
//   ./cdbp_served --listen unix:/tmp/cdbp.sock
//   ./cdbp_served --listen tcp:127.0.0.1:7077 --threads 4
//   ./cdbp_served --tcp --port 0                # ephemeral, port printed
//
// Clients open one session per connection with a HELLO frame carrying a
// makePolicy spec — see stream_replay --connect for a ready-made load
// generator and serve/client.hpp for the client library.
//
// Flags: --listen <spec> (unix:<path> | tcp:<host>:<port>),
//        --threads <n> (0 = one loop per hardware thread),
//        --write-limit <bytes>, --drain-timeout-ms <n>,
//        and the legacy spellings --unix <path>, --tcp, --port <n>.
#include <csignal>
#include <iostream>
#include <string>

#include "serve/server.hpp"
#include "telemetry/expose.hpp"
#include "telemetry/registry.hpp"
#include "util/flags.hpp"

namespace {

cdbp::serve::Server* g_server = nullptr;

// Async-signal-safe: requestDrain is a per-shard atomic store plus an
// eventfd write over an immutable loop vector.
void onSignal(int) {
  if (g_server != nullptr) g_server->requestDrain();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv,
      {"listen", "unix", "tcp", "port", "threads", "write-limit",
       "drain-timeout-ms"});

  serve::ServerOptionsBuilder builder;
  std::string listenSpec = flags.getString("listen", "");
  std::string unixPath = flags.getString("unix", "");
  bool tcp = flags.getBool("tcp", false);
  long port = flags.getInt("port", 0);
  bool haveListener = false;
  try {
    if (!listenSpec.empty()) {
      builder.listenOn(listenSpec);
      haveListener = true;
    }
    if (!unixPath.empty()) {
      builder.listenOn("unix:" + unixPath);
      haveListener = true;
    }
    if (tcp) {
      builder.listenOn("tcp:127.0.0.1:" + std::to_string(port));
      haveListener = true;
    }
    if (!haveListener) {
      builder.listenOn("unix:cdbp.sock");  // out-of-the-box default
    }
    builder.loopThreads(static_cast<unsigned>(flags.getInt("threads", 0)))
        .writeBufferLimit(static_cast<std::size_t>(
            flags.getInt("write-limit", 256 * 1024)))
        .drainTimeout(static_cast<std::uint64_t>(
                          flags.getInt("drain-timeout-ms", 5000)) *
                      1'000'000ull);
  } catch (const std::exception& e) {
    std::cerr << "cdbp_served: " << e.what() << '\n';
    return 1;
  }

  serve::Server server(builder.build());
  try {
    server.start();
  } catch (const std::exception& e) {
    std::cerr << "cdbp_served: " << e.what() << '\n';
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  for (const serve::Address& address : server.options().listen) {
    if (address.kind == serve::Address::Kind::kTcp && address.port == 0) {
      std::cout << "listening on tcp:" << address.host << ':'
                << server.tcpPort() << '\n';
    } else {
      std::cout << "listening on " << serve::formatAddress(address) << '\n';
    }
  }
  std::cout << "serving on " << server.options().loopThreads
            << " loop threads (SIGTERM drains and exits)\n"
            << std::flush;

  server.join();

  serve::ServerStats stats = server.stats();
  std::cout << "drained: " << stats.placements << " placements ("
            << stats.batches << " batches) across " << stats.sessionsOpened
            << " sessions, " << stats.framesReceived << " frames in / "
            << stats.framesSent << " out, " << stats.errorsSent
            << " typed errors\n";
  std::cout << "--- final telemetry ---\n";
  telemetry::exposeText(telemetry::Registry::global(), std::cout);
  return 0;
}
