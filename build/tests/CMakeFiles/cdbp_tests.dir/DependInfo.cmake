
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/adversary_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/analysis/adversary_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/analysis/adversary_test.cpp.o.d"
  "/root/repo/tests/analysis/audit_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/analysis/audit_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/analysis/audit_test.cpp.o.d"
  "/root/repo/tests/analysis/empirical_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/analysis/empirical_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/analysis/empirical_test.cpp.o.d"
  "/root/repo/tests/analysis/figure8_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/analysis/figure8_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/analysis/figure8_test.cpp.o.d"
  "/root/repo/tests/analysis/ratios_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/analysis/ratios_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/analysis/ratios_test.cpp.o.d"
  "/root/repo/tests/core/bin_timeline_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/bin_timeline_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/bin_timeline_test.cpp.o.d"
  "/root/repo/tests/core/binpack_exact_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/binpack_exact_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/binpack_exact_test.cpp.o.d"
  "/root/repo/tests/core/brute_force_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/brute_force_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/brute_force_test.cpp.o.d"
  "/root/repo/tests/core/epsilon_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/epsilon_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/epsilon_test.cpp.o.d"
  "/root/repo/tests/core/instance_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/instance_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/instance_test.cpp.o.d"
  "/root/repo/tests/core/interval_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/interval_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/interval_test.cpp.o.d"
  "/root/repo/tests/core/lower_bounds_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/lower_bounds_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/lower_bounds_test.cpp.o.d"
  "/root/repo/tests/core/opt_total_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/opt_total_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/opt_total_test.cpp.o.d"
  "/root/repo/tests/core/packing_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/packing_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/packing_test.cpp.o.d"
  "/root/repo/tests/core/step_function_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/core/step_function_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/core/step_function_test.cpp.o.d"
  "/root/repo/tests/cost/billing_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/cost/billing_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/cost/billing_test.cpp.o.d"
  "/root/repo/tests/flexible/flexible_job_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/flexible/flexible_job_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/flexible/flexible_job_test.cpp.o.d"
  "/root/repo/tests/flexible/flexible_scheduler_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/flexible/flexible_scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/flexible/flexible_scheduler_test.cpp.o.d"
  "/root/repo/tests/flexible/online_flexible_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/flexible/online_flexible_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/flexible/online_flexible_test.cpp.o.d"
  "/root/repo/tests/integration/edge_cases_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/integration/edge_cases_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/integration/edge_cases_test.cpp.o.d"
  "/root/repo/tests/integration/feasibility_properties_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/integration/feasibility_properties_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/integration/feasibility_properties_test.cpp.o.d"
  "/root/repo/tests/integration/golden_regression_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/integration/golden_regression_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/integration/golden_regression_test.cpp.o.d"
  "/root/repo/tests/integration/multidim_scalar_consistency_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/integration/multidim_scalar_consistency_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/integration/multidim_scalar_consistency_test.cpp.o.d"
  "/root/repo/tests/integration/scenario_integration_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/integration/scenario_integration_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/integration/scenario_integration_test.cpp.o.d"
  "/root/repo/tests/integration/theorem_bounds_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/integration/theorem_bounds_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/integration/theorem_bounds_test.cpp.o.d"
  "/root/repo/tests/interval_sched/interval_sched_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/interval_sched/interval_sched_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/interval_sched/interval_sched_test.cpp.o.d"
  "/root/repo/tests/io/csv_io_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/io/csv_io_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/io/csv_io_test.cpp.o.d"
  "/root/repo/tests/multidim/md_instance_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/multidim/md_instance_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/multidim/md_instance_test.cpp.o.d"
  "/root/repo/tests/multidim/md_policies_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/multidim/md_policies_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/multidim/md_policies_test.cpp.o.d"
  "/root/repo/tests/multidim/md_workload_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/multidim/md_workload_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/multidim/md_workload_test.cpp.o.d"
  "/root/repo/tests/multidim/resources_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/multidim/resources_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/multidim/resources_test.cpp.o.d"
  "/root/repo/tests/offline/chart_render_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/offline/chart_render_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/offline/chart_render_test.cpp.o.d"
  "/root/repo/tests/offline/ddff_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/offline/ddff_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/offline/ddff_test.cpp.o.d"
  "/root/repo/tests/offline/demand_chart_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/offline/demand_chart_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/offline/demand_chart_test.cpp.o.d"
  "/root/repo/tests/offline/dual_coloring_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/offline/dual_coloring_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/offline/dual_coloring_test.cpp.o.d"
  "/root/repo/tests/offline/ordered_first_fit_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/offline/ordered_first_fit_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/offline/ordered_first_fit_test.cpp.o.d"
  "/root/repo/tests/offline/xperiods_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/offline/xperiods_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/offline/xperiods_test.cpp.o.d"
  "/root/repo/tests/online/any_fit_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/online/any_fit_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/online/any_fit_test.cpp.o.d"
  "/root/repo/tests/online/classify_departure_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/online/classify_departure_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/online/classify_departure_test.cpp.o.d"
  "/root/repo/tests/online/classify_duration_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/online/classify_duration_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/online/classify_duration_test.cpp.o.d"
  "/root/repo/tests/online/combined_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/online/combined_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/online/combined_test.cpp.o.d"
  "/root/repo/tests/online/departure_fit_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/online/departure_fit_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/online/departure_fit_test.cpp.o.d"
  "/root/repo/tests/online/hybrid_ff_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/online/hybrid_ff_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/online/hybrid_ff_test.cpp.o.d"
  "/root/repo/tests/online/policy_factory_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/online/policy_factory_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/online/policy_factory_test.cpp.o.d"
  "/root/repo/tests/sim/bin_manager_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/sim/bin_manager_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/sim/bin_manager_test.cpp.o.d"
  "/root/repo/tests/sim/metrics_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/sim/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/sim/metrics_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/trace_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/sim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/sim/trace_test.cpp.o.d"
  "/root/repo/tests/util/ascii_chart_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/util/ascii_chart_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/util/ascii_chart_test.cpp.o.d"
  "/root/repo/tests/util/flags_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/util/flags_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/util/flags_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/util/thread_pool_test.cpp.o.d"
  "/root/repo/tests/workload/adversarial_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/workload/adversarial_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/workload/adversarial_test.cpp.o.d"
  "/root/repo/tests/workload/generators_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/workload/generators_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/workload/generators_test.cpp.o.d"
  "/root/repo/tests/workload/scenarios_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/workload/scenarios_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/workload/scenarios_test.cpp.o.d"
  "/root/repo/tests/workload/transforms_test.cpp" "tests/CMakeFiles/cdbp_tests.dir/workload/transforms_test.cpp.o" "gcc" "tests/CMakeFiles/cdbp_tests.dir/workload/transforms_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cdbp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
