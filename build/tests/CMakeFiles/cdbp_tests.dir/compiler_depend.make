# Empty compiler generated dependencies file for cdbp_tests.
# This may be replaced when dependencies are built.
