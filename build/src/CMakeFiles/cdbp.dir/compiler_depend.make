# Empty compiler generated dependencies file for cdbp.
# This may be replaced when dependencies are built.
