file(REMOVE_RECURSE
  "libcdbp.a"
)
