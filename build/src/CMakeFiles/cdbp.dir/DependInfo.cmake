
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/adversary.cpp" "src/CMakeFiles/cdbp.dir/analysis/adversary.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/analysis/adversary.cpp.o.d"
  "/root/repo/src/analysis/audit.cpp" "src/CMakeFiles/cdbp.dir/analysis/audit.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/analysis/audit.cpp.o.d"
  "/root/repo/src/analysis/empirical.cpp" "src/CMakeFiles/cdbp.dir/analysis/empirical.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/analysis/empirical.cpp.o.d"
  "/root/repo/src/analysis/figure8.cpp" "src/CMakeFiles/cdbp.dir/analysis/figure8.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/analysis/figure8.cpp.o.d"
  "/root/repo/src/analysis/ratios.cpp" "src/CMakeFiles/cdbp.dir/analysis/ratios.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/analysis/ratios.cpp.o.d"
  "/root/repo/src/core/binpack_exact.cpp" "src/CMakeFiles/cdbp.dir/core/binpack_exact.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/core/binpack_exact.cpp.o.d"
  "/root/repo/src/core/brute_force.cpp" "src/CMakeFiles/cdbp.dir/core/brute_force.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/core/brute_force.cpp.o.d"
  "/root/repo/src/core/instance.cpp" "src/CMakeFiles/cdbp.dir/core/instance.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/core/instance.cpp.o.d"
  "/root/repo/src/core/lower_bounds.cpp" "src/CMakeFiles/cdbp.dir/core/lower_bounds.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/core/lower_bounds.cpp.o.d"
  "/root/repo/src/core/opt_total.cpp" "src/CMakeFiles/cdbp.dir/core/opt_total.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/core/opt_total.cpp.o.d"
  "/root/repo/src/core/packing.cpp" "src/CMakeFiles/cdbp.dir/core/packing.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/core/packing.cpp.o.d"
  "/root/repo/src/core/step_function.cpp" "src/CMakeFiles/cdbp.dir/core/step_function.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/core/step_function.cpp.o.d"
  "/root/repo/src/cost/billing.cpp" "src/CMakeFiles/cdbp.dir/cost/billing.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/cost/billing.cpp.o.d"
  "/root/repo/src/flexible/flexible_job.cpp" "src/CMakeFiles/cdbp.dir/flexible/flexible_job.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/flexible/flexible_job.cpp.o.d"
  "/root/repo/src/flexible/flexible_scheduler.cpp" "src/CMakeFiles/cdbp.dir/flexible/flexible_scheduler.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/flexible/flexible_scheduler.cpp.o.d"
  "/root/repo/src/flexible/flexible_workload.cpp" "src/CMakeFiles/cdbp.dir/flexible/flexible_workload.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/flexible/flexible_workload.cpp.o.d"
  "/root/repo/src/flexible/online_flexible.cpp" "src/CMakeFiles/cdbp.dir/flexible/online_flexible.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/flexible/online_flexible.cpp.o.d"
  "/root/repo/src/interval_sched/interval_sched.cpp" "src/CMakeFiles/cdbp.dir/interval_sched/interval_sched.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/interval_sched/interval_sched.cpp.o.d"
  "/root/repo/src/io/csv_io.cpp" "src/CMakeFiles/cdbp.dir/io/csv_io.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/io/csv_io.cpp.o.d"
  "/root/repo/src/multidim/md_instance.cpp" "src/CMakeFiles/cdbp.dir/multidim/md_instance.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/multidim/md_instance.cpp.o.d"
  "/root/repo/src/multidim/md_lower_bounds.cpp" "src/CMakeFiles/cdbp.dir/multidim/md_lower_bounds.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/multidim/md_lower_bounds.cpp.o.d"
  "/root/repo/src/multidim/md_packing.cpp" "src/CMakeFiles/cdbp.dir/multidim/md_packing.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/multidim/md_packing.cpp.o.d"
  "/root/repo/src/multidim/md_policies.cpp" "src/CMakeFiles/cdbp.dir/multidim/md_policies.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/multidim/md_policies.cpp.o.d"
  "/root/repo/src/multidim/md_workload.cpp" "src/CMakeFiles/cdbp.dir/multidim/md_workload.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/multidim/md_workload.cpp.o.d"
  "/root/repo/src/offline/chart_render.cpp" "src/CMakeFiles/cdbp.dir/offline/chart_render.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/offline/chart_render.cpp.o.d"
  "/root/repo/src/offline/ddff.cpp" "src/CMakeFiles/cdbp.dir/offline/ddff.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/offline/ddff.cpp.o.d"
  "/root/repo/src/offline/demand_chart.cpp" "src/CMakeFiles/cdbp.dir/offline/demand_chart.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/offline/demand_chart.cpp.o.d"
  "/root/repo/src/offline/dual_coloring.cpp" "src/CMakeFiles/cdbp.dir/offline/dual_coloring.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/offline/dual_coloring.cpp.o.d"
  "/root/repo/src/offline/ordered_first_fit.cpp" "src/CMakeFiles/cdbp.dir/offline/ordered_first_fit.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/offline/ordered_first_fit.cpp.o.d"
  "/root/repo/src/offline/xperiods.cpp" "src/CMakeFiles/cdbp.dir/offline/xperiods.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/offline/xperiods.cpp.o.d"
  "/root/repo/src/online/any_fit.cpp" "src/CMakeFiles/cdbp.dir/online/any_fit.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/online/any_fit.cpp.o.d"
  "/root/repo/src/online/classify_departure.cpp" "src/CMakeFiles/cdbp.dir/online/classify_departure.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/online/classify_departure.cpp.o.d"
  "/root/repo/src/online/classify_duration.cpp" "src/CMakeFiles/cdbp.dir/online/classify_duration.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/online/classify_duration.cpp.o.d"
  "/root/repo/src/online/combined.cpp" "src/CMakeFiles/cdbp.dir/online/combined.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/online/combined.cpp.o.d"
  "/root/repo/src/online/departure_fit.cpp" "src/CMakeFiles/cdbp.dir/online/departure_fit.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/online/departure_fit.cpp.o.d"
  "/root/repo/src/online/hybrid_ff.cpp" "src/CMakeFiles/cdbp.dir/online/hybrid_ff.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/online/hybrid_ff.cpp.o.d"
  "/root/repo/src/online/policy_factory.cpp" "src/CMakeFiles/cdbp.dir/online/policy_factory.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/online/policy_factory.cpp.o.d"
  "/root/repo/src/sim/bin_manager.cpp" "src/CMakeFiles/cdbp.dir/sim/bin_manager.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/sim/bin_manager.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/cdbp.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/cdbp.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/cdbp.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/ascii_chart.cpp" "src/CMakeFiles/cdbp.dir/util/ascii_chart.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/util/ascii_chart.cpp.o.d"
  "/root/repo/src/util/flags.cpp" "src/CMakeFiles/cdbp.dir/util/flags.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/util/flags.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/cdbp.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/cdbp.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/workload/adversarial.cpp" "src/CMakeFiles/cdbp.dir/workload/adversarial.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/workload/adversarial.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/cdbp.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/workload/generators.cpp.o.d"
  "/root/repo/src/workload/scenarios.cpp" "src/CMakeFiles/cdbp.dir/workload/scenarios.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/workload/scenarios.cpp.o.d"
  "/root/repo/src/workload/transforms.cpp" "src/CMakeFiles/cdbp.dir/workload/transforms.cpp.o" "gcc" "src/CMakeFiles/cdbp.dir/workload/transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
