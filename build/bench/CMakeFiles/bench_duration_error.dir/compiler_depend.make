# Empty compiler generated dependencies file for bench_duration_error.
# This may be replaced when dependencies are built.
