file(REMOVE_RECURSE
  "CMakeFiles/bench_duration_error.dir/bench_duration_error.cpp.o"
  "CMakeFiles/bench_duration_error.dir/bench_duration_error.cpp.o.d"
  "bench_duration_error"
  "bench_duration_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_duration_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
