# Empty compiler generated dependencies file for bench_lb_quality.
# This may be replaced when dependencies are built.
