file(REMOVE_RECURSE
  "CMakeFiles/bench_rho_sweep.dir/bench_rho_sweep.cpp.o"
  "CMakeFiles/bench_rho_sweep.dir/bench_rho_sweep.cpp.o.d"
  "bench_rho_sweep"
  "bench_rho_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rho_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
