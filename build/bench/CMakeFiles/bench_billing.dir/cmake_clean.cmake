file(REMOVE_RECURSE
  "CMakeFiles/bench_billing.dir/bench_billing.cpp.o"
  "CMakeFiles/bench_billing.dir/bench_billing.cpp.o.d"
  "bench_billing"
  "bench_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
