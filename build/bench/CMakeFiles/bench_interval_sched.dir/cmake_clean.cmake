file(REMOVE_RECURSE
  "CMakeFiles/bench_interval_sched.dir/bench_interval_sched.cpp.o"
  "CMakeFiles/bench_interval_sched.dir/bench_interval_sched.cpp.o.d"
  "bench_interval_sched"
  "bench_interval_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interval_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
