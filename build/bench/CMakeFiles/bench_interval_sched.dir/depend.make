# Empty dependencies file for bench_interval_sched.
# This may be replaced when dependencies are built.
