file(REMOVE_RECURSE
  "CMakeFiles/bench_offline_approx.dir/bench_offline_approx.cpp.o"
  "CMakeFiles/bench_offline_approx.dir/bench_offline_approx.cpp.o.d"
  "bench_offline_approx"
  "bench_offline_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offline_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
