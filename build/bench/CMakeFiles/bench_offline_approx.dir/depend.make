# Empty dependencies file for bench_offline_approx.
# This may be replaced when dependencies are built.
