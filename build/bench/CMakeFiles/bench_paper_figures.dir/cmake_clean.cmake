file(REMOVE_RECURSE
  "CMakeFiles/bench_paper_figures.dir/bench_paper_figures.cpp.o"
  "CMakeFiles/bench_paper_figures.dir/bench_paper_figures.cpp.o.d"
  "bench_paper_figures"
  "bench_paper_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_paper_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
