# Empty compiler generated dependencies file for bench_multidim.
# This may be replaced when dependencies are built.
