file(REMOVE_RECURSE
  "CMakeFiles/bench_multidim.dir/bench_multidim.cpp.o"
  "CMakeFiles/bench_multidim.dir/bench_multidim.cpp.o.d"
  "bench_multidim"
  "bench_multidim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multidim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
