# Empty compiler generated dependencies file for bench_online_empirical.
# This may be replaced when dependencies are built.
