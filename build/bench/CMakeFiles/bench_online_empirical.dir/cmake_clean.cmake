file(REMOVE_RECURSE
  "CMakeFiles/bench_online_empirical.dir/bench_online_empirical.cpp.o"
  "CMakeFiles/bench_online_empirical.dir/bench_online_empirical.cpp.o.d"
  "bench_online_empirical"
  "bench_online_empirical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
