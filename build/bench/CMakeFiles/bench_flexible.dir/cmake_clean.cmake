file(REMOVE_RECURSE
  "CMakeFiles/bench_flexible.dir/bench_flexible.cpp.o"
  "CMakeFiles/bench_flexible.dir/bench_flexible.cpp.o.d"
  "bench_flexible"
  "bench_flexible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flexible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
