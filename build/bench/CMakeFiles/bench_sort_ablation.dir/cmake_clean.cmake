file(REMOVE_RECURSE
  "CMakeFiles/bench_sort_ablation.dir/bench_sort_ablation.cpp.o"
  "CMakeFiles/bench_sort_ablation.dir/bench_sort_ablation.cpp.o.d"
  "bench_sort_ablation"
  "bench_sort_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sort_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
