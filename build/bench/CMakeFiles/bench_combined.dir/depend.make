# Empty dependencies file for bench_combined.
# This may be replaced when dependencies are built.
