file(REMOVE_RECURSE
  "CMakeFiles/bench_combined.dir/bench_combined.cpp.o"
  "CMakeFiles/bench_combined.dir/bench_combined.cpp.o.d"
  "bench_combined"
  "bench_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
