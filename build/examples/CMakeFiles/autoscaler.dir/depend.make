# Empty dependencies file for autoscaler.
# This may be replaced when dependencies are built.
