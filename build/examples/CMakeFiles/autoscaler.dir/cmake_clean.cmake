file(REMOVE_RECURSE
  "CMakeFiles/autoscaler.dir/autoscaler.cpp.o"
  "CMakeFiles/autoscaler.dir/autoscaler.cpp.o.d"
  "autoscaler"
  "autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
