# Empty compiler generated dependencies file for multidim_scheduler.
# This may be replaced when dependencies are built.
