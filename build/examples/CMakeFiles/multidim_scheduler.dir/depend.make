# Empty dependencies file for multidim_scheduler.
# This may be replaced when dependencies are built.
