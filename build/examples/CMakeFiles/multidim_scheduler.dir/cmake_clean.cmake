file(REMOVE_RECURSE
  "CMakeFiles/multidim_scheduler.dir/multidim_scheduler.cpp.o"
  "CMakeFiles/multidim_scheduler.dir/multidim_scheduler.cpp.o.d"
  "multidim_scheduler"
  "multidim_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidim_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
