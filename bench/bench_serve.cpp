// Placement-as-a-service macro-bench: the serve daemon against the
// in-process StreamEngine on identical workloads, over a socketpair (no
// TCP stack variance). Measures the full server path — framing, epoll
// loop, session dispatch — per placement.
//
// Series (n = items):
//   Local/<policy>/n        StreamEngine in-process (the floor)
//   RoundTrip/<policy>/n    one PLACE request/reply per item (latency mode)
//   Pipelined/<policy>/n    BATCH bursts of 256, replies read per burst
//   Sharded/<policy>/n/t<k> 4 concurrent client threads, each pipelining
//                           the full item set against a k-loop server;
//                           the t<threads>/t1 ratio is the scaling number
//                           perf_guard.py --scaling enforces
//
// The trailing latency table reports round-trip percentiles from the
// RoundTrip series — the numbers stream_replay --connect prints, measured
// under the bench harness.
//
// Flags:
//   --reps N        timed repetitions per benchmark (default 5)
//   --warmup N      untimed warmup passes (default 1)
//   --filter STR    only run benchmarks whose name contains STR
//   --max-items N   skip benchmarks with more than N items (CI perf-smoke)
//   --mu X          duration ratio of the generated workloads (default 16)
//   --seed S        workload seed (default 1)
//   --engine E      placement engine: indexed (default) | linear
//   --threads K     loop threads for the sharded series (default 4)
//   --csv           render the summary table as CSV
//   --json[=PATH]   write BENCH_serve.json (schema: DESIGN.md §8.3)
#include <sys/socket.h>

#include <cstdint>
#include <exception>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "online/policy_factory.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "sim/streaming.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/clock.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

volatile double g_sink = 0;

constexpr std::size_t kBurst = 256;

/// Concurrent client threads driving each Sharded series.
constexpr std::size_t kShardedClients = 4;

struct Spec {
  std::string name;
  std::size_t items;
  std::function<void()> body;
};

serve::Client openSession(serve::Server& server, const std::string& policySpec,
                          const PolicyContext& context, PlacementEngine engine,
                          const std::string& tenant) {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw std::runtime_error("bench_serve: socketpair failed");
  }
  server.adoptConnection(fds[1]);
  serve::Client client(fds[0]);
  serve::HelloFrame hello;
  hello.engine = engine == PlacementEngine::kLinearScan ? 1 : 0;
  hello.minDuration = context.minDuration;
  hello.mu = context.mu;
  hello.seed = context.seed;
  hello.tenant = tenant;
  hello.policySpec = policySpec;
  client.hello(hello);
  return client;
}

/// One pipelined pass over the full item set: queue in bursts, flush,
/// read the burst's replies, drain at the end.
void runPipelined(serve::Client& client,
                  const std::vector<StreamItem>& items) {
  std::size_t i = 0;
  while (i < items.size()) {
    std::size_t end = std::min(i + kBurst, items.size());
    for (std::size_t j = i; j < end; ++j) {
      const StreamItem& item = items[j];
      client.queuePlace(item.size, item.arrival, item.departure);
    }
    client.flushQueued();
    while (client.queued() > 0) client.readPlaced();
    i = end;
  }
  g_sink = client.drain().totalUsage;
}

}  // namespace
}  // namespace cdbp

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv, {"reps", "warmup", "filter", "max-items", "mu", "seed",
                   "engine", "threads", "csv", "json"});
  std::size_t reps = static_cast<std::size_t>(flags.getInt("reps", 5));
  std::size_t warmup = static_cast<std::size_t>(flags.getInt("warmup", 1));
  std::string filter = flags.getString("filter", "");
  long maxItems = flags.getInt("max-items", 0);  // 0 = no limit
  double mu = flags.getDouble("mu", 16.0);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  std::string engineName = flags.getString("engine", "indexed");
  unsigned threads = static_cast<unsigned>(flags.getInt("threads", 4));
  PlacementEngine engine;
  if (engineName == "indexed") {
    engine = PlacementEngine::kIndexed;
  } else if (engineName == "linear") {
    engine = PlacementEngine::kLinearScan;
  } else {
    std::cerr << "bench_serve: --engine must be 'indexed' or 'linear', got '"
              << engineName << "'\n";
    return 1;
  }
  if (threads == 0) {
    std::cerr << "bench_serve: --threads must be >= 1\n";
    return 1;
  }

  // Single-loop server for the per-series floor (Local/RoundTrip/
  // Pipelined measure the protocol path, not parallelism), plus one
  // k-loop server per sharded series point.
  serve::Server server{
      serve::ServerOptionsBuilder().loopThreads(1).build()};
  server.start();
  std::vector<unsigned> shardPoints = {1};
  if (threads > 1) shardPoints.push_back(threads);
  std::map<unsigned, std::unique_ptr<serve::Server>> shardServers;
  for (unsigned k : shardPoints) {
    auto s = std::make_unique<serve::Server>(
        serve::ServerOptionsBuilder().loopThreads(k).build());
    s->start();
    shardServers.emplace(k, std::move(s));
  }

  // Round-trip latency samples per RoundTrip benchmark (microseconds),
  // accumulated across every timed rep.
  std::map<std::string, SummaryStats> latencies;

  std::vector<Spec> specs;
  const std::vector<std::size_t> allSizes = {20000, 100000};
  for (std::size_t n : allSizes) {
    if (maxItems > 0 && n > static_cast<std::size_t>(maxItems)) continue;
    WorkloadSpec w;
    w.numItems = n;
    w.mu = mu;
    Instance inst(generateWorkload(w, seed).sortedByArrival());
    PolicyContext context = PolicyContext::forInstance(inst, seed);
    auto items = std::make_shared<std::vector<StreamItem>>();
    items->reserve(inst.size());
    for (const Item& item : inst.items()) {
      items->push_back(
          StreamItem{item.size, item.arrival(), item.departure()});
    }

    for (const char* policySpec : {"ff", "cdt-ff"}) {
      std::string tag = std::string(policySpec) + "/" + std::to_string(n);
      std::string spec(policySpec);

      specs.push_back({"Local/" + tag, n, [items, spec, context, engine] {
                         PolicyPtr policy = makePolicy(spec, context);
                         StreamOptions options;
                         options.engine = engine;
                         StreamEngine streamEngine(*policy, options);
                         for (const StreamItem& item : *items) {
                           streamEngine.place(item);
                         }
                         g_sink = streamEngine.finish().totalUsage;
                       }});

      std::string rtName = "RoundTrip/" + tag;
      specs.push_back(
          {rtName, n, [items, spec, context, engine, rtName, &server,
                       &latencies] {
             serve::Client client =
                 openSession(server, spec, context, engine, "bench");
             SummaryStats& stats = latencies[rtName];
             for (const StreamItem& item : *items) {
               std::uint64_t t0 = telemetry::monotonicNanos();
               client.place(item.size, item.arrival, item.departure);
               stats.add(static_cast<double>(telemetry::monotonicNanos() -
                                             t0) /
                         1e3);
             }
             g_sink = client.drain().totalUsage;
           }});

      specs.push_back(
          {"Pipelined/" + tag, n, [items, spec, context, engine, &server] {
             serve::Client client =
                 openSession(server, spec, context, engine, "bench");
             runPipelined(client, *items);
           }});

      // Sharded: kShardedClients threads each pipeline the full item set
      // through their own session against a k-loop server. Total work is
      // kShardedClients * n placements; sessions spread round-robin over
      // the loops, so t<threads> vs t1 measures loop-thread scaling on
      // identical byte streams.
      for (unsigned k : shardPoints) {
        serve::Server* sharded = shardServers.at(k).get();
        specs.push_back(
            {"Sharded/" + tag + "/t" + std::to_string(k),
             kShardedClients * n, [items, spec, context, engine, sharded] {
               std::vector<std::thread> workers;
               std::vector<std::exception_ptr> failures(kShardedClients);
               for (std::size_t c = 0; c < kShardedClients; ++c) {
                 workers.emplace_back([&, c] {
                   try {
                     serve::Client client = openSession(
                         *sharded, spec, context, engine,
                         "bench-c" + std::to_string(c));
                     runPipelined(client, *items);
                   } catch (...) {
                     failures[c] = std::current_exception();
                   }
                 });
               }
               for (std::thread& worker : workers) worker.join();
               for (const std::exception_ptr& failure : failures) {
                 if (failure) std::rethrow_exception(failure);
               }
             }});
      }
    }
  }

  telemetry::BenchReport report("serve");
  report.setParam("reps", reps);
  report.setParam("warmup", warmup);
  report.setParam("mu", mu);
  report.setParam("seed", static_cast<long>(seed));
  report.setParam("max_items", maxItems);
  report.setParam("filter", filter);
  report.setParam("engine", engineName);
  report.setParam("threads", static_cast<long>(threads));

  Table table({"benchmark", "items", "mean ms", "stddev ms", "items/s"});
  std::size_t ran = 0;
  for (const Spec& spec : specs) {
    if (!filter.empty() && spec.name.find(filter) == std::string::npos) {
      continue;
    }
    ++ran;
    for (std::size_t w = 0; w < warmup; ++w) spec.body();
    telemetry::RegistrySnapshot before =
        telemetry::Registry::global().snapshot();
    telemetry::BenchTimingSeries& series =
        report.addTiming(spec.name, spec.items);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::uint64_t t0 = telemetry::monotonicNanos();
      spec.body();
      std::uint64_t t1 = telemetry::monotonicNanos();
      series.addRepSeconds(static_cast<double>(t1 - t0) * 1e-9);
    }
    telemetry::RegistrySnapshot after =
        telemetry::Registry::global().snapshot();
    series.setCounterDeltas(telemetry::diffCounters(before, after));

    table.addRow({spec.name, std::to_string(spec.items),
                  Table::num(series.seconds().mean() * 1e3, 3),
                  Table::num(series.seconds().stddev() * 1e3, 3),
                  Table::num(series.itemsPerSecond(), 0)});
  }

  std::cout << "=== serve (" << reps << " reps, warmup " << warmup << ", mu "
            << mu << ", engine " << engineName << ", threads " << threads
            << ", telemetry " << (telemetry::kEnabled ? "on" : "off")
            << ") ===\n";
  if (flags.has("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }

  // Per-placement round-trip latency through the full server path.
  Table latency({"benchmark", "samples", "p50 us", "p90 us", "p99 us",
                 "max us"});
  for (const auto& [name, stats] : latencies) {
    latency.addRow({name, std::to_string(stats.count()),
                    Table::num(stats.percentile(50.0), 2),
                    Table::num(stats.percentile(90.0), 2),
                    Table::num(stats.percentile(99.0), 2),
                    Table::num(stats.max(), 2)});
  }
  if (!latencies.empty()) {
    std::cout << "--- round-trip latency ---\n";
    if (flags.has("csv")) {
      latency.printCsv(std::cout);
    } else {
      latency.print(std::cout);
    }
    report.addTable("latency", latency);
  }

  server.stop();
  server.join();
  for (auto& [k, sharded] : shardServers) {
    sharded->stop();
    sharded->join();
  }

  if (ran == 0) {
    std::cerr << "bench_serve: no benchmark matched --filter/--max-items\n";
    return 1;
  }
  report.writeIfRequested(flags, std::cout);
  return 0;
}
