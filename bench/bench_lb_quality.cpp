// Experiment LB (quantifying §3.2): how tight the three lower bounds are
// against the exact repacking adversary OPT_total on small instances.
// Proposition 3's bound dominates the other two by construction; this
// bench measures by how much, and how close it gets to OPT_total.
//
// Expected shape: LB3/OPT near 1 (it only loses where repacking cannot
// actually achieve ceil(S(t)) bins), demand and span significantly looser,
// with span collapsing as load (arrival rate) grows.
//
// Flags: --items <int> (default 12), --seeds <int> (default 40).
#include <iostream>

#include "core/lower_bounds.hpp"
#include "core/opt_total.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 12));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 40));

  std::cout << "=== LB: lower bound quality vs exact OPT_total (" << items
            << " items x " << numSeeds << " seeds) ===\n";
  Table table({"arrival rate", "LB1(demand)/OPT", "LB2(span)/OPT",
               "LB3(ceil)/OPT"});
  for (double rate : {0.5, 2.0, 8.0}) {
    SummaryStats lb1Stats, lb2Stats, lb3Stats;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      WorkloadSpec spec;
      spec.numItems = items;
      spec.arrivalRate = rate;
      spec.mu = 6.0;
      Instance inst = generateWorkload(spec, 1300 + s);
      OptTotalResult opt = optTotal(inst);
      if (!opt.exact || opt.value() <= 0) continue;
      LowerBounds lb = lowerBounds(inst);
      lb1Stats.add(lb.demand / opt.value());
      lb2Stats.add(lb.span / opt.value());
      lb3Stats.add(lb.ceilIntegral / opt.value());
    }
    table.addRow({Table::num(rate, 1), Table::num(lb1Stats.mean(), 3),
                  Table::num(lb2Stats.mean(), 3),
                  Table::num(lb3Stats.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nAll ratios <= 1 by the Propositions; LB3 is the yardstick "
               "the empirical benches normalize by.\n";

  telemetry::BenchReport report("lb_quality");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.addTable("lb_over_opt", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
