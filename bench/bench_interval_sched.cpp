// Experiment IS: the bounded-parallelism special case (related work that
// the paper generalizes and improves, §2 and §5.3). Compares Flammini's
// longest-first greedy (offline) and Shalom's BucketFirstFit (online)
// empirically, and prints the bound improvement the paper proves:
// BucketFirstFit's (2a+2)*ceil(log_a mu) versus our a + ceil(log_a mu) + 4.
//
// Flags: --jobs <int> (default 2000), --g <int> (default 5),
//        --seeds <int> (default 5).
#include <iostream>

#include "analysis/ratios.hpp"
#include "core/lower_bounds.hpp"
#include "interval_sched/interval_sched.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"jobs", "g", "seeds", "json"});
  std::size_t jobs = static_cast<std::size_t>(flags.getInt("jobs", 2000));
  std::size_t g = static_cast<std::size_t>(flags.getInt("g", 5));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));

  std::cout << "=== IS1: interval scheduling with machine capacity g = " << g
            << " (" << jobs << " jobs x " << numSeeds << " seeds) ===\n";
  Table empirical({"mu", "greedy (offline) /LB3", "BucketFF a=2 /LB3",
                   "BucketFF a=4 /LB3"});
  for (double mu : {4.0, 16.0, 64.0}) {
    SummaryStats greedyStats, bucket2Stats, bucket4Stats;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      Rng rng(400 + s);
      std::vector<IntervalJob> jobList;
      Time t = 0;
      for (ItemId i = 0; i < jobs; ++i) {
        t += rng.exponential(0.25);
        jobList.push_back({i, {t, t + rng.uniform(1.0, mu)}});
      }
      IntervalSchedInstance inst(std::move(jobList), g);
      IntervalScheduleResult greedy = greedyLongestFirst(inst);
      double lb3 = lowerBounds(*greedy.dbpInstance).ceilIntegral;
      greedyStats.add(greedy.totalBusyTime / lb3);
      bucket2Stats.add(bucketFirstFit(inst, 2.0).totalBusyTime / lb3);
      bucket4Stats.add(bucketFirstFit(inst, 4.0).totalBusyTime / lb3);
    }
    empirical.addRow({Table::num(mu, 0), Table::num(greedyStats.mean(), 3),
                      Table::num(bucket2Stats.mean(), 3),
                      Table::num(bucket4Stats.mean(), 3)});
  }
  empirical.print(std::cout);

  std::cout << "\n=== IS2: proven bounds — Shalom et al. vs this paper "
               "(Theorem 5 applied at unit demands) ===\n";
  Table bounds({"mu", "alpha", "BucketFF bound (2a+2)ceil(log)",
                "paper bound a+ceil(log)+4"});
  for (double mu : {4.0, 16.0, 64.0, 256.0, 1024.0}) {
    for (double alpha : {2.0, 4.0}) {
      bounds.addRow({Table::num(mu, 0), Table::num(alpha, 0),
                     Table::num(ratios::bucketFirstFitBound(alpha, mu), 1),
                     Table::num(ratios::cdRatio(alpha, mu), 1)});
    }
  }
  bounds.print(std::cout);
  std::cout << "\nSame algorithm, new analysis: the paper's bound is "
               "asymptotically lower (and the analysis also covers arbitrary "
               "item sizes).\n";

  telemetry::BenchReport report("interval_sched");
  report.setParam("jobs", jobs);
  report.setParam("g", g);
  report.setParam("seeds", numSeeds);
  report.addTable("empirical", empirical);
  report.addTable("proven_bounds", bounds);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
