// Experiment "Fig. 8" (paper §5.4): best-achievable competitive ratios of
// classify-by-departure-time FF (2*sqrt(mu)+3) and classify-by-duration FF
// (min_n mu^(1/n)+n+3) against the original First Fit (mu+4), as functions
// of the duration ratio mu, with the Theorem 3 lower bound for reference.
//
// Flags: --mu-max <double> (default 100), --points <int> (default 100),
//        --csv (emit CSV instead of the aligned table).
#include <iostream>

#include "analysis/figure8.hpp"
#include "analysis/ratios.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags =
      Flags::strictOrDie(argc, argv, {"mu-max", "points", "csv", "json"});
  double muMax = flags.getDouble("mu-max", 100.0);
  std::size_t points = static_cast<std::size_t>(flags.getInt("points", 100));

  std::vector<double> grid = figure8MuGrid(muMax, points);
  std::vector<Figure8Row> rows = figure8Series(grid);

  std::cout << "=== Figure 8: competitive ratios vs mu (durations known) ===\n";
  Table table({"mu", "FirstFit(mu+4)", "CDT-FF(2sqrt(mu)+3)",
               "CD-FF(min_n)", "opt n", "lower bound"});
  // Print a readable subset of the grid in the table; the chart uses all.
  std::size_t stride = std::max<std::size_t>(1, rows.size() / 20);
  for (std::size_t i = 0; i < rows.size(); i += stride) {
    const Figure8Row& row = rows[i];
    table.addRow({Table::num(row.mu, 1), Table::num(row.firstFit, 3),
                  Table::num(row.cdtBest, 3), Table::num(row.cdBest, 3),
                  std::to_string(row.cdBestN), Table::num(row.lowerBound, 4)});
  }
  if (flags.has("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }

  std::vector<double> mu, ff, cdt, cd;
  for (const Figure8Row& row : rows) {
    mu.push_back(row.mu);
    ff.push_back(row.firstFit);
    cdt.push_back(row.cdtBest);
    cd.push_back(row.cdBest);
  }
  AsciiChart chart(72, 22);
  chart.addSeries("FirstFit mu+4", mu, ff);
  chart.addSeries("CDT-FF 2sqrt(mu)+3", mu, cdt);
  chart.addSeries("CD-FF min_n mu^(1/n)+n+3", mu, cd);
  std::cout << '\n';
  chart.print(std::cout);

  std::cout << "\nCrossover of the two classification strategies: mu = "
            << ratios::classificationCrossoverMu()
            << "  (paper: CDT wins below mu=4, CD wins above)\n";

  telemetry::BenchReport report("fig8");
  report.setParam("mu_max", muMax);
  report.setParam("points", points);
  report.addTable("competitive_ratios_vs_mu", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
