// Experiment E7 (ablation of Theorem 1's design choice): offline First Fit
// under five item orders. Duration-descending is what makes the 5x bound
// provable; this bench measures how much the order matters in practice.
//
// Expected shape: duration-descending and demand-descending cluster at the
// best ratios; duration-ASCENDING is the worst (short items pin bins open
// before long ones arrive); arrival order sits in between; FFD-style
// size-descending ignores time and suffers on wide-mu loads.
//
// Flags: --items <int> (default 600), --seeds <int> (default 6).
#include <iostream>

#include "core/lower_bounds.hpp"
#include "offline/ordered_first_fit.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 600));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 6));

  constexpr ItemOrder kOrders[] = {
      ItemOrder::kDurationDescending, ItemOrder::kDemandDescending,
      ItemOrder::kArrival, ItemOrder::kSizeDescending,
      ItemOrder::kDurationAscending};

  std::cout << "=== E7: offline First Fit order ablation (usage/LB3, "
            << items << " items x " << numSeeds << " seeds) ===\n";
  Table table([&] {
    std::vector<std::string> h = {"mu"};
    for (ItemOrder order : kOrders) h.push_back(itemOrderName(order));
    return h;
  }());
  for (double mu : {2.0, 8.0, 32.0, 128.0}) {
    std::vector<std::string> row = {Table::num(mu, 0)};
    for (ItemOrder order : kOrders) {
      SummaryStats stats;
      for (std::size_t s = 0; s < numSeeds; ++s) {
        WorkloadSpec spec;
        spec.numItems = items;
        spec.mu = mu;
        spec.durations = DurationDist::kBimodal;
        Instance inst = generateWorkload(spec, 900 + s);
        Packing packing = orderedFirstFit(inst, order);
        stats.add(packing.totalUsage() / lowerBounds(inst).ceilIntegral);
      }
      row.push_back(Table::num(stats.mean(), 3));
    }
    table.addRow(row);
  }
  table.print(std::cout);
  std::cout << "\nTheorem 1's 5x guarantee is proven only for the "
               "duration-descending order.\n";

  telemetry::BenchReport report("sort_ablation");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.addTable("order_ablation", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
