// Experiment MD (paper §6 future work: multiple resource dimensions):
// vector packing policies across dimension counts and demand correlation,
// plus timed throughput series for the generic placement substrate.
//
// Expected shape: usage/LB grows with the number of dimensions for every
// policy (the per-dimension lower bound gets looser and stranded capacity
// multiplies), uncorrelated demands are harder than correlated ones, and
// the classification strategies keep their edge over plain fits on
// fragmentation-prone duration mixes.
//
// The MdManyOpen timing series is the perf-guard gate for the indexed
// engine on the vector substrate: a high arrival rate keeps hundreds of
// bins open, so placement cost is dominated by bin search — O(B) probes
// under --engine linear versus a pruned tree descent under the indexed
// engine. Demand correlation is set high because the index prunes on the
// componentwise minimum over a subtree: with correlated demands that
// minimum is close to a level some real bin attains, so pruning is nearly
// exact; with independent coordinates the minimum is an optimistic phantom
// and the descent degenerates toward a scan.
//
// Flags:
//   --items N       items per ratio-table cell (default 1500)
//   --seeds N       seeds per ratio-table cell (default 4)
//   --threads N     worker threads for the ratio tables (0 = hardware)
//   --engine E      placement engine: indexed (default) | linear
//   --reps N        timed repetitions per benchmark (default 7)
//   --warmup N      untimed warmup passes (default 1)
//   --filter STR    only run timing series whose name contains STR
//                   (a non-empty filter also skips the ratio tables)
//   --max-items N   skip timing series with more than N items (CI smoke)
//   --csv           render the timing table as CSV
//   --json[=PATH]   write BENCH_multidim.json (schema: DESIGN.md §8.3)
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "multidim/md_lower_bounds.hpp"
#include "multidim/md_policies.hpp"
#include "multidim/md_workload.hpp"
#include "sim/run_many.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/clock.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace cdbp {
namespace {

// A volatile sink keeps the optimizer from discarding benchmark results.
volatile double g_sink = 0;

struct PolicySpec {
  std::string label;
  MdClassifyPolicy::Config config;
};

/// One point on a ratio-table axis: a row label plus the workload spec and
/// seed base that generate its instances.
struct AxisPoint {
  std::string label;
  MdWorkloadSpec spec;
  std::uint64_t seedBase;
};

/// Builds one usage/LB3 table: rows are axis points, columns are policies,
/// each cell the mean ratio over `numSeeds` seeds. Instances (and their
/// lower bounds) are generated once per (point, seed) and shared across the
/// policy axis; all cells fan out over runCells, with results written into
/// pre-sized slots so the table is identical under any --threads value.
Table ratioTable(const std::string& axisHeader,
                 const std::vector<AxisPoint>& axis,
                 const std::vector<PolicySpec>& policies, std::size_t numSeeds,
                 unsigned threads, const MdSimOptions& simOptions) {
  const std::size_t numPolicies = policies.size();

  struct Built {
    std::shared_ptr<const MdInstance> inst;
    double lb = 1;
  };
  std::vector<Built> built(axis.size() * numSeeds);
  runCells(threads, built.size(), [&](std::size_t task) {
    std::size_t a = task / numSeeds;
    std::size_t s = task % numSeeds;
    auto inst = std::make_shared<const MdInstance>(
        generateMdWorkload(axis[a].spec, axis[a].seedBase + s));
    built[task].lb = mdLowerBounds(*inst).ceilIntegral;
    built[task].inst = std::move(inst);
  });

  std::vector<double> ratios(axis.size() * numPolicies * numSeeds);
  runCells(threads, ratios.size(), [&](std::size_t cell) {
    std::size_t a = cell / (numPolicies * numSeeds);
    std::size_t p = (cell / numSeeds) % numPolicies;
    std::size_t s = cell % numSeeds;
    const Built& input = built[a * numSeeds + s];
    MdClassifyPolicy::Config config = policies[p].config;
    config.base = input.inst->minDuration();
    MdClassifyPolicy policy(config);
    MdSimResult r = mdSimulateOnline(*input.inst, policy, simOptions);
    ratios[cell] = r.totalUsage / input.lb;
  });

  Table table([&] {
    std::vector<std::string> h = {axisHeader};
    for (const PolicySpec& p : policies) h.push_back(p.label);
    return h;
  }());
  for (std::size_t a = 0; a < axis.size(); ++a) {
    std::vector<std::string> row = {axis[a].label};
    for (std::size_t p = 0; p < numPolicies; ++p) {
      SummaryStats stats;
      for (std::size_t s = 0; s < numSeeds; ++s) {
        stats.add(ratios[(a * numPolicies + p) * numSeeds + s]);
      }
      row.push_back(Table::num(stats.mean(), 3));
    }
    table.addRow(row);
  }
  return table;
}

struct Spec {
  std::string name;
  std::size_t items;
  std::function<void()> body;
};

void addMdSeries(std::vector<Spec>& specs, const std::string& name,
                 const MdClassifyPolicy::Config& base,
                 std::vector<std::size_t> sizes, const MdWorkloadSpec& w0,
                 std::uint64_t seed, const MdSimOptions& simOptions) {
  for (std::size_t n : sizes) {
    MdWorkloadSpec w = w0;
    w.numItems = n;
    auto inst = std::make_shared<const MdInstance>(generateMdWorkload(w, seed));
    MdClassifyPolicy::Config config = base;
    config.base = inst->minDuration();
    specs.push_back(
        {name + "/" + std::to_string(n), n, [inst, config, simOptions] {
           MdClassifyPolicy policy(config);
           MdSimResult r = mdSimulateOnline(*inst, policy, simOptions);
           g_sink = r.totalUsage;
         }});
  }
}

}  // namespace
}  // namespace cdbp

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv, {"items", "seeds", "threads", "engine", "reps", "warmup",
                   "filter", "max-items", "csv", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 1500));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 4));
  unsigned threads = static_cast<unsigned>(flags.getInt("threads", 0));
  std::size_t reps = static_cast<std::size_t>(flags.getInt("reps", 7));
  std::size_t warmup = static_cast<std::size_t>(flags.getInt("warmup", 1));
  std::string filter = flags.getString("filter", "");
  long maxItems = flags.getInt("max-items", 0);  // 0 = no limit
  std::string engineName = flags.getString("engine", "indexed");
  MdSimOptions simOptions;
  if (engineName == "indexed") {
    simOptions.engine = PlacementEngine::kIndexed;
  } else if (engineName == "linear") {
    simOptions.engine = PlacementEngine::kLinearScan;
  } else {
    std::cerr << "bench_multidim: --engine must be 'indexed' or 'linear', "
                 "got '" << engineName << "'\n";
    return 1;
  }

  std::vector<PolicySpec> policies = {
      {"MD-FirstFit", {MdFitRule::kFirstFit, MdCategoryRule::kNone, 1, 1, 2}},
      {"MD-DominantFit",
       {MdFitRule::kDominantFit, MdCategoryRule::kNone, 1, 1, 2}},
      {"MD-CDT-FF", {MdFitRule::kFirstFit, MdCategoryRule::kDeparture, 8, 1, 2}},
      {"MD-CD-FF", {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1, 1, 2}},
  };

  telemetry::BenchReport report("multidim");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.setParam("reps", reps);
  report.setParam("warmup", warmup);
  report.setParam("max_items", maxItems);
  report.setParam("filter", filter);
  report.setParam("engine", engineName);

  // Ratio tables (skipped under --filter: a filtered run wants exactly the
  // named timing series, e.g. the perf-guard engine comparison).
  if (filter.empty()) {
    std::vector<AxisPoint> dimsAxis;
    for (std::size_t dims : {1u, 2u, 3u, 4u, 6u}) {
      MdWorkloadSpec spec;
      spec.numItems = items;
      spec.dims = dims;
      dimsAxis.push_back({std::to_string(dims), spec, 100});
    }
    std::cout << "=== MD1: usage / per-dimension LB3 vs dimension count ("
              << items << " items x " << numSeeds << " seeds) ===\n";
    Table byDims =
        ratioTable("dims", dimsAxis, policies, numSeeds, threads, simOptions);
    byDims.print(std::cout);

    std::vector<AxisPoint> corrAxis;
    for (double corr : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      MdWorkloadSpec spec;
      spec.numItems = items;
      spec.dims = 3;
      spec.correlation = corr;
      corrAxis.push_back({Table::num(corr, 2), spec, 200});
    }
    std::cout << "\n=== MD2: effect of demand correlation (dims = 3) ===\n";
    Table byCorr = ratioTable("correlation", corrAxis, policies, numSeeds,
                              threads, simOptions);
    byCorr.print(std::cout);
    std::cout << "\nRatios use the per-dimension Proposition 3 bound, which "
                 "weakens as dims grow — expect all curves to rise.\n\n";

    report.addTable("usage_vs_dims", byDims);
    report.addTable("usage_vs_correlation", byCorr);
  }

  // Timed series.
  MdWorkloadSpec base;
  base.dims = 3;
  // The engine-comparison stress series (see the file comment): many open
  // bins via the arrival rate, high correlation so the index prunes well.
  MdWorkloadSpec manyOpen;
  manyOpen.dims = 2;
  manyOpen.arrivalRate = 512.0;
  manyOpen.correlation = 0.95;

  std::vector<Spec> specs;
  addMdSeries(specs, "MdFirstFitOnline", policies[0].config, {1000, 4000},
              base, 400, simOptions);
  addMdSeries(specs, "MdDominantFitOnline", policies[1].config, {1000, 4000},
              base, 400, simOptions);
  addMdSeries(specs, "MdManyOpen", policies[0].config, {4000, 16000}, manyOpen,
              401, simOptions);

  Table table({"benchmark", "items", "mean ms", "stddev ms", "items/s"});
  std::size_t ran = 0;
  for (const Spec& spec : specs) {
    if (!filter.empty() && spec.name.find(filter) == std::string::npos) {
      continue;
    }
    if (maxItems > 0 && spec.items > static_cast<std::size_t>(maxItems)) {
      continue;
    }
    ++ran;
    for (std::size_t w = 0; w < warmup; ++w) spec.body();

    telemetry::RegistrySnapshot before = telemetry::Registry::global().snapshot();
    telemetry::BenchTimingSeries& series =
        report.addTiming(spec.name, spec.items);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::uint64_t t0 = telemetry::monotonicNanos();
      spec.body();
      std::uint64_t t1 = telemetry::monotonicNanos();
      series.addRepSeconds(static_cast<double>(t1 - t0) * 1e-9);
    }
    telemetry::RegistrySnapshot after = telemetry::Registry::global().snapshot();
    series.setCounterDeltas(telemetry::diffCounters(before, after));

    table.addRow({spec.name, std::to_string(spec.items),
                  Table::num(series.seconds().mean() * 1e3, 3),
                  Table::num(series.seconds().stddev() * 1e3, 3),
                  Table::num(series.itemsPerSecond(), 0)});
  }

  std::cout << "=== multidim timings (" << reps << " reps, warmup " << warmup
            << ", engine " << engineName << ", telemetry "
            << (telemetry::kEnabled ? "on" : "off") << ") ===\n";
  if (flags.has("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (ran == 0) {
    std::cerr << "bench_multidim: no benchmark matched --filter/--max-items\n";
    return 1;
  }

  report.addTable("timings", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
