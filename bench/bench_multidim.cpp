// Experiment MD (paper §6 future work: multiple resource dimensions):
// vector packing policies across dimension counts and demand correlation.
//
// Expected shape: usage/LB grows with the number of dimensions for every
// policy (the per-dimension lower bound gets looser and stranded capacity
// multiplies), uncorrelated demands are harder than correlated ones, and
// the classification strategies keep their edge over plain fits on
// fragmentation-prone duration mixes.
//
// Flags: --items <int> (default 1500), --seeds <int> (default 4).
#include <iostream>

#include "multidim/md_lower_bounds.hpp"
#include "multidim/md_policies.hpp"
#include "multidim/md_workload.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 1500));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 4));

  struct PolicySpec {
    std::string label;
    MdClassifyPolicy::Config config;
  };
  std::vector<PolicySpec> policies = {
      {"MD-FirstFit", {MdFitRule::kFirstFit, MdCategoryRule::kNone, 1, 1, 2}},
      {"MD-DominantFit",
       {MdFitRule::kDominantFit, MdCategoryRule::kNone, 1, 1, 2}},
      {"MD-CDT-FF", {MdFitRule::kFirstFit, MdCategoryRule::kDeparture, 8, 1, 2}},
      {"MD-CD-FF", {MdFitRule::kFirstFit, MdCategoryRule::kDuration, 1, 1, 2}},
  };

  std::cout << "=== MD1: usage / per-dimension LB3 vs dimension count ("
            << items << " items x " << numSeeds << " seeds) ===\n";
  Table byDims([&] {
    std::vector<std::string> h = {"dims"};
    for (const PolicySpec& p : policies) h.push_back(p.label);
    return h;
  }());
  for (std::size_t dims : {1u, 2u, 3u, 4u, 6u}) {
    std::vector<std::string> row = {std::to_string(dims)};
    for (const PolicySpec& p : policies) {
      SummaryStats stats;
      for (std::size_t s = 0; s < numSeeds; ++s) {
        MdWorkloadSpec spec;
        spec.numItems = items;
        spec.dims = dims;
        MdInstance inst = generateMdWorkload(spec, 100 + s);
        MdClassifyPolicy::Config config = p.config;
        config.base = inst.minDuration();
        MdClassifyPolicy policy(config);
        MdSimResult r = mdSimulateOnline(inst, policy);
        stats.add(r.totalUsage / mdLowerBounds(inst).ceilIntegral);
      }
      row.push_back(Table::num(stats.mean(), 3));
    }
    byDims.addRow(row);
  }
  byDims.print(std::cout);

  std::cout << "\n=== MD2: effect of demand correlation (dims = 3) ===\n";
  Table byCorr([&] {
    std::vector<std::string> h = {"correlation"};
    for (const PolicySpec& p : policies) h.push_back(p.label);
    return h;
  }());
  for (double corr : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<std::string> row = {Table::num(corr, 2)};
    for (const PolicySpec& p : policies) {
      SummaryStats stats;
      for (std::size_t s = 0; s < numSeeds; ++s) {
        MdWorkloadSpec spec;
        spec.numItems = items;
        spec.dims = 3;
        spec.correlation = corr;
        MdInstance inst = generateMdWorkload(spec, 200 + s);
        MdClassifyPolicy::Config config = p.config;
        config.base = inst.minDuration();
        MdClassifyPolicy policy(config);
        MdSimResult r = mdSimulateOnline(inst, policy);
        stats.add(r.totalUsage / mdLowerBounds(inst).ceilIntegral);
      }
      row.push_back(Table::num(stats.mean(), 3));
    }
    byCorr.addRow(row);
  }
  byCorr.print(std::cout);
  std::cout << "\nRatios use the per-dimension Proposition 3 bound, which "
               "weakens as dims grow — expect all curves to rise.\n";

  telemetry::BenchReport report("multidim");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.addTable("usage_vs_dims", byDims);
  report.addTable("usage_vs_correlation", byCorr);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
