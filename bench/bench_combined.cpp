// Experiment E5 (the paper's future-work §5.4/§6): the combined
// classification strategy (duration classes, then departure windows inside
// each class) against the two single strategies across mu.
//
// Expected shape: combined tracks the better single strategy on both sides
// of the mu = 4 crossover, at the cost of more categories (more open bins
// on sparse loads).
//
// One runMany grid: (7 mu generators) x (4 policy specs) x (seeds); each
// clairvoyant cell self-tunes to its instance's realized delta/mu.
//
// Flags: --items <int> (default 2500), --seeds <int> (default 5),
//        --threads <int> (default 0 = hardware).
#include <iostream>

#include "sim/run_many.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags =
      Flags::strictOrDie(argc, argv, {"items", "seeds", "threads", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2500));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));
  unsigned threads = static_cast<unsigned>(flags.getInt("threads", 0));

  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(91 + s);

  std::cout << "=== E5: combined classification vs single strategies ===\n";
  const std::vector<std::pair<std::string, std::string>> policyAxis = {
      {"FirstFit", "ff"},
      {"CDT-FF", "cdt-ff"},
      {"CD-FF", "cd-ff"},
      {"Combined-FF", "combined-ff"}};
  std::vector<double> mus = {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};

  RunManySpec grid;
  grid.threads = threads;
  grid.seeds = seeds;
  for (const auto& [name, spec] : policyAxis) grid.policies.emplace_back(spec);
  for (double mu : mus) {
    WorkloadSpec spec;
    spec.numItems = items;
    spec.mu = mu;
    spec.durations = DurationDist::kBimodal;  // stresses classification
    grid.instances.push_back(
        [spec](std::uint64_t seed) { return generateWorkload(spec, seed); });
  }
  std::vector<RunResult> results = runMany(grid);

  const std::size_t numPolicies = policyAxis.size();
  Table table({"mu", "FirstFit", "CDT-FF", "CD-FF", "Combined-FF"});
  std::vector<std::vector<double>> series(numPolicies);
  for (std::size_t m = 0; m < mus.size(); ++m) {
    std::vector<std::string> row = {Table::num(mus[m], 0)};
    for (std::size_t p = 0; p < numPolicies; ++p) {
      SummaryStats stats;
      for (std::size_t s = 0; s < numSeeds; ++s) {
        stats.add(results[(m * numPolicies + p) * numSeeds + s].ratio);
      }
      row.push_back(Table::num(stats.mean(), 3));
      series[p].push_back(stats.mean());
    }
    table.addRow(row);
  }
  table.print(std::cout);

  AsciiChart chart(72, 16);
  chart.setLogX(true);
  for (std::size_t p = 0; p < numPolicies; ++p) {
    chart.addSeries(policyAxis[p].first, mus, series[p]);
  }
  std::cout << '\n';
  chart.print(std::cout);

  telemetry::BenchReport report("combined");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.setParam("threads", static_cast<std::size_t>(threads));
  report.addTable("combined_vs_single", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
