// Experiment E5 (the paper's future-work §5.4/§6): the combined
// classification strategy (duration classes, then departure windows inside
// each class) against the two single strategies across mu.
//
// Expected shape: combined tracks the better single strategy on both sides
// of the mu = 4 crossover, at the cost of more categories (more open bins
// on sparse loads).
//
// Flags: --items <int> (default 2500), --seeds <int> (default 5).
#include <iostream>

#include "analysis/empirical.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "online/combined.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2500));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));

  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(91 + s);

  std::cout << "=== E5: combined classification vs single strategies ===\n";
  Table table({"mu", "FirstFit", "CDT-FF", "CD-FF", "Combined-FF"});
  std::vector<double> mus = {2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
  std::vector<double> sFF, sCdt, sCd, sComb;
  for (double mu : mus) {
    WorkloadSpec spec;
    spec.numItems = items;
    spec.mu = mu;
    spec.durations = DurationDist::kBimodal;  // stresses classification
    Instance probe = generateWorkload(spec, seeds[0]);
    double delta = probe.minDuration();
    double realizedMu = probe.durationRatio();

    auto sweep = [&](std::function<PolicyPtr()> make) {
      return sweepPolicy(
                 seeds,
                 [&](std::uint64_t seed) { return generateWorkload(spec, seed); },
                 make)
          .ratios.mean();
    };
    double ff = sweep([] { return std::make_unique<FirstFitPolicy>(); });
    double cdt = sweep([&]() -> PolicyPtr {
      return std::make_unique<ClassifyByDepartureFF>(
          ClassifyByDepartureFF::withKnownDurations(delta, realizedMu));
    });
    double cd = sweep([&]() -> PolicyPtr {
      return std::make_unique<ClassifyByDurationFF>(
          ClassifyByDurationFF::withKnownDurations(delta, realizedMu));
    });
    double comb = sweep([&]() -> PolicyPtr {
      return std::make_unique<CombinedClassifyFF>(
          CombinedClassifyFF::withKnownDurations(delta, realizedMu));
    });
    table.addRow({Table::num(mu, 0), Table::num(ff, 3), Table::num(cdt, 3),
                  Table::num(cd, 3), Table::num(comb, 3)});
    sFF.push_back(ff);
    sCdt.push_back(cdt);
    sCd.push_back(cd);
    sComb.push_back(comb);
  }
  table.print(std::cout);

  AsciiChart chart(72, 16);
  chart.setLogX(true);
  chart.addSeries("FirstFit", mus, sFF);
  chart.addSeries("CDT-FF", mus, sCdt);
  chart.addSeries("CD-FF", mus, sCd);
  chart.addSeries("Combined-FF", mus, sComb);
  std::cout << '\n';
  chart.print(std::cout);

  telemetry::BenchReport report("combined");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.addTable("combined_vs_single", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
