// Reconstructions of the paper's illustrative Figures 1-7 using real
// library objects (Figure 8, the evaluation figure, lives in bench_fig8).
// Each section prints the construct the figure explains, computed — not
// drawn by hand — from the corresponding module.
#include <iomanip>
#include <iostream>

#include "analysis/ratios.hpp"
#include "core/brute_force.hpp"
#include "core/instance.hpp"
#include "offline/chart_render.hpp"
#include "offline/ddff.hpp"
#include "offline/demand_chart.hpp"
#include "offline/dual_coloring.hpp"
#include "offline/xperiods.hpp"
#include "sim/run_many.hpp"
#include "sim/trace.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"

namespace {

void timelineBar(const char* label, cdbp::Interval I, double scale,
                 double origin) {
  int lead = static_cast<int>((I.lo - origin) * scale);
  int len = std::max(1, static_cast<int>(I.length() * scale));
  std::cout << "  " << std::setw(8) << label << " |" << std::string(lead, ' ')
            << std::string(len, '=') << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"json"});
  std::cout << "===== Reconstructing the paper's Figures 1-7 =====\n";

  // ---- Figure 1: span of an item list ----
  std::cout << "\n-- Figure 1: span of an item list --\n";
  Instance fig1 = InstanceBuilder()
                      .add(0.4, 0, 5)
                      .add(0.4, 3, 9)
                      .add(0.4, 12, 16)
                      .build();
  for (const Item& r : fig1.items()) {
    timelineBar(("item " + std::to_string(r.id)).c_str(), r.interval, 4.0, 0);
  }
  std::cout << "  span(R) = " << fig1.span()
            << " (busy pieces [0,9) and [12,16); the idle gap does not "
               "count)\n";

  // ---- Figure 2: X-periods of a bin ----
  std::cout << "\n-- Figure 2: splitting a bin's item intervals into "
               "X-periods --\n";
  std::vector<Item> fig2 = {Item(0, 0.3, 0, 6), Item(1, 0.3, 2, 4),
                            Item(2, 0.3, 3, 9), Item(3, 0.3, 7, 12)};
  for (const Item& r : fig2) {
    timelineBar(("item " + std::to_string(r.id)).c_str(), r.interval, 4.0, 0);
  }
  std::cout << "  item 1 is contained in item 0 -> removed in R'\n";
  for (const XPeriod& x : xPeriods(fig2)) {
    std::cout << "  X(item " << x.item << ") = [" << x.period.lo << ", "
              << x.period.hi << ")\n";
  }
  std::cout << "  total X length = span of the bin, each X inside its "
               "owner's interval\n";

  // ---- Figures 3 & 4: demand chart + stripes ----
  std::cout << "\n-- Figure 3: Phase 1 item placement in the demand chart "
               "--\n";
  WorkloadSpec chartSpec;
  chartSpec.numItems = 14;
  chartSpec.sizes = SizeDist::kSmallOnly;
  chartSpec.minSize = 0.1;
  chartSpec.arrivalRate = 3.0;
  chartSpec.mu = 4.0;
  Instance chartInst = generateWorkload(chartSpec, 4);
  DemandChart chart(chartInst.items());
  renderDemandChart(chart, std::cout, {.width = 66, .height = 12});

  std::cout << "\n-- Figure 4: Phase 2 stripe packing --\n";
  DualColoringResult dc = dualColoring(chartInst);
  std::cout << "  max chart height " << chart.maxHeight() << " -> m = "
            << dc.numStripes << " stripes of height 1/2; bins used: "
            << dc.packing.numBins() << " (<= 2m-1 = "
            << 2 * dc.numStripes - 1 << ")\n";
  for (std::size_t i = 0; i < chart.placements().size(); ++i) {
    const ChartPlacement& p = chart.placements()[i];
    std::cout << "  item " << p.item << " at altitude " << std::setprecision(3)
              << p.altitude << " -> bin " << dc.packing.binOf(p.item) << "\n";
    if (i == 5) {
      std::cout << "  ... (" << chart.placements().size() << " items total)\n";
      break;
    }
  }

  // ---- Figure 5: the two adversary cases ----
  std::cout << "\n-- Figure 5: Theorem 3 adversary cases (x = phi) --\n";
  double phi = ratios::adversaryOptimalX();
  Instance caseA = theorem3CaseA(phi, 0.01);
  Instance caseB = theorem3CaseB(phi, 0.01, 0.05);
  double caseAOpt = bruteForceOptimal(caseA)->usage;
  double caseBOpt = bruteForceOptimal(caseB)->usage;
  std::cout << "  case A: two items of size 1/2-eps at t=0, durations x and 1\n";
  std::cout << "    optimum (co-locate): " << caseAOpt << "\n";
  std::cout << "  case B: plus two items of size 1/2+eps at tau\n";
  std::cout << "    optimum (pair 1&3, 2&4): " << caseBOpt
            << "\n    co-locating algorithms pay 2x+1 = " << 2 * phi + 1
            << "\n";

  // ---- Figures 6 & 7: the three stages of a CDT category ----
  std::cout << "\n-- Figures 6-7: three-stage decomposition of a "
               "classify-by-departure-time category --\n";
  WorkloadSpec cdtSpec;
  cdtSpec.numItems = 60;
  cdtSpec.mu = 6.0;
  // One-cell runMany grid; the parameter-free cdt-ff spec self-tunes to
  // rho = sqrt(mu)*Delta of the generated instance, and captureTrace hands
  // back the per-cell decision trace the stage decomposition reads.
  RunManySpec cdtGrid;
  cdtGrid.instances.push_back(
      [cdtSpec](std::uint64_t seed) { return generateWorkload(cdtSpec, seed); });
  cdtGrid.policies.emplace_back("cdt-ff");
  cdtGrid.seeds = {8};
  cdtGrid.captureTrace = true;
  RunResult cdtRun = std::move(runMany(cdtGrid).front());
  double delta = cdtRun.instance->minDuration();
  double mu = cdtRun.instance->durationRatio();
  double rho = std::sqrt(mu) * delta;
  const DecisionTrace& traceLog = *cdtRun.trace;

  // Pick the busiest category and derive t1, t2, t3 from the definitions.
  std::map<int, std::vector<PlacementRecord>> byCategory;
  for (const PlacementRecord& r : traceLog.records()) {
    byCategory[r.category].push_back(r);
  }
  const auto* busiest = &*byCategory.begin();
  for (const auto& entry : byCategory) {
    if (entry.second.size() > busiest->second.size()) busiest = &entry;
  }
  double windowEnd = (busiest->first + 1) * rho;
  double t = windowEnd - rho;  // departures fall in (t, t+rho]
  double t1 = t - mu * delta;
  double t3 = t - delta;
  double t2 = t3;  // if no second bin opens before t3
  std::size_t binsSeen = 0;
  for (const PlacementRecord& r : busiest->second) {
    if (r.openedNewBin && ++binsSeen == 2) {
      t2 = std::min(std::max(r.time, t1), t3);
      break;
    }
  }
  std::cout << "  category " << busiest->first << " ("
            << busiest->second.size() << " items departing in (" << t << ", "
            << windowEnd << "]):\n";
  std::cout << "    t1 = t - mu*Delta = " << t1
            << "   (earliest possible arrival)\n";
  std::cout << "    t2 = second bin opens = " << t2 << "\n";
  std::cout << "    t3 = t - Delta = " << t3 << "\n";
  std::cout << "  stage 1 [t1,t2): one open bin; stage 2 [t2,t3): avg level "
               "> 1/2 (Lemma 6); stage 3 [t3,t+rho): left/right usage split "
               "(Figure 7)\n";

  Table constants({"figure", "quantity", "value"});
  constants.addRow({"1", "span(R)", Table::num(fig1.span(), 4)});
  constants.addRow(
      {"4", "stripes m", std::to_string(dc.numStripes)});
  constants.addRow(
      {"4", "bins used", std::to_string(dc.packing.numBins())});
  constants.addRow({"5", "phi", Table::num(phi, 6)});
  constants.addRow({"5", "case A optimum", Table::num(caseAOpt, 4)});
  constants.addRow({"5", "case B optimum", Table::num(caseBOpt, 4)});
  constants.addRow({"6", "t1", Table::num(t1, 4)});
  constants.addRow({"6", "t2", Table::num(t2, 4)});
  constants.addRow({"6", "t3", Table::num(t3, 4)});
  telemetry::BenchReport report("paper_figures");
  report.addTable("figure_constants", constants);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
