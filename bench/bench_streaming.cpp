// Streaming-ingestion macro-benchmarks: the bounded-memory simulator
// against the batch simulator on identical workloads, plus the trace file
// pipeline (write, scan, stream-from-file) that feeds it.
//
// Series (n = items):
//   Batch/<policy>/n       simulateOnline on a materialized Instance
//   Stream/<policy>/n      simulateStream via InstanceArrivalSource
//   StreamLb3/ff/n         simulateStream with the incremental LB3 on
//   TraceWrite/<fmt>/n     saveTrace of the generated instance
//   TraceScan/<fmt>/n      scanTrace one-pass statistics
//   StreamFile/<fmt>/n     TraceArrivalSource -> simulateStream (parse + sim)
//   FlatTrace/cdt-ff/n/t1  single-threaded indexed stream (scaling denominator)
//   FlatTrace/cdt-ff/n/tK  epoch-sharded stream with K workers (--threads)
//
// The FlatTrace pair is the committed scaling guard: CI re-measures both
// series back to back and perf_guard.py --scaling-num /tK --scaling-den /t1
// pins the sharded engine's speedup over the indexed single-thread stream.
//
// The trailing memory table reports each streaming run's peak open items
// and estimated resident bytes — the bounded-memory claim, measured.
//
// Flags:
//   --reps N        timed repetitions per benchmark (default 5)
//   --warmup N      untimed warmup passes (default 1)
//   --filter STR    only run benchmarks whose name contains STR
//   --max-items N   skip benchmarks with more than N items (CI perf-smoke)
//   --mu X          duration ratio of the generated workloads (default 16)
//   --seed S        workload seed (default 1)
//   --engine E      placement engine: indexed (default) | linear | sharded
//   --threads N     worker threads for the sharded series (default 4)
//   --csv           render the summary table as CSV
//   --json[=PATH]   write BENCH_streaming.json (schema: DESIGN.md §8.3)
#include <cstdint>
#include <filesystem>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "sim/streaming.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/clock.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace cdbp {
namespace {

volatile double g_sink = 0;

struct Spec {
  std::string name;
  std::size_t items;
  std::function<void()> body;
};

}  // namespace
}  // namespace cdbp

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv, {"reps", "warmup", "filter", "max-items", "mu", "seed",
                   "engine", "threads", "csv", "json"});
  std::size_t reps = static_cast<std::size_t>(flags.getInt("reps", 5));
  std::size_t warmup = static_cast<std::size_t>(flags.getInt("warmup", 1));
  std::string filter = flags.getString("filter", "");
  long maxItems = flags.getInt("max-items", 0);  // 0 = no limit
  double mu = flags.getDouble("mu", 16.0);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  std::string engineName = flags.getString("engine", "indexed");
  std::size_t threads = static_cast<std::size_t>(flags.getInt("threads", 4));
  PlacementEngine engine;
  if (engineName == "indexed") {
    engine = PlacementEngine::kIndexed;
  } else if (engineName == "linear") {
    engine = PlacementEngine::kLinearScan;
  } else if (engineName == "sharded") {
    engine = PlacementEngine::kSharded;
  } else {
    std::cerr << "bench_streaming: --engine must be 'indexed', 'linear' or "
                 "'sharded', got '" << engineName << "'\n";
    return 1;
  }
  if (threads == 0) {
    std::cerr << "bench_streaming: --threads must be at least 1\n";
    return 1;
  }

  // Last StreamResult per streaming benchmark, for the memory table. Only
  // entries that actually ran appear.
  std::map<std::string, StreamResult> streamResults;
  std::vector<std::filesystem::path> tempFiles;

  std::vector<Spec> specs;
  // Sizes are filtered BEFORE any instance is generated, so a perf-smoke
  // run with --max-items 200000 never pays for the 1M workload.
  const std::vector<std::size_t> allSizes = {50000, 200000, 1000000};
  for (std::size_t n : allSizes) {
    if (maxItems > 0 && n > static_cast<std::size_t>(maxItems)) continue;
    WorkloadSpec w;
    w.numItems = n;
    w.mu = mu;
    auto inst = std::make_shared<Instance>(generateWorkload(w, seed));
    PolicyContext context = PolicyContext::forInstance(*inst, seed);

    for (const char* policySpec : {"ff", "cdt-ff"}) {
      std::string tag = std::string(policySpec) + "/" + std::to_string(n);
      auto batchPolicy =
          std::shared_ptr<OnlinePolicy>(makePolicy(policySpec, context));
      SimOptions batchOptions;
      batchOptions.engine = engine;
      batchOptions.shardedThreads = threads;
      specs.push_back({"Batch/" + tag, n, [inst, batchPolicy, batchOptions] {
                         SimResult r =
                             simulateOnline(*inst, *batchPolicy, batchOptions);
                         g_sink = r.totalUsage;
                       }});

      auto streamPolicy =
          std::shared_ptr<OnlinePolicy>(makePolicy(policySpec, context));
      auto source = std::make_shared<InstanceArrivalSource>(*inst);
      StreamOptions streamOptions;
      streamOptions.engine = engine;
      streamOptions.shardedThreads = threads;
      streamOptions.computeLowerBound = false;  // apples-to-apples with batch
      std::string streamName = "Stream/" + tag;
      specs.push_back(
          {streamName, n,
           [source, streamPolicy, streamOptions, streamName, &streamResults] {
             source->reset();
             StreamResult r =
                 simulateStream(*source, *streamPolicy, streamOptions);
             g_sink = r.totalUsage;
             streamResults[streamName] = r;
           }});
    }

    {
      auto lbPolicy = std::shared_ptr<OnlinePolicy>(makePolicy("ff", context));
      auto source = std::make_shared<InstanceArrivalSource>(*inst);
      StreamOptions lbOptions;
      lbOptions.engine = engine;
      lbOptions.shardedThreads = threads;
      lbOptions.computeLowerBound = true;
      std::string lbName = "StreamLb3/ff/" + std::to_string(n);
      specs.push_back({lbName, n,
                       [source, lbPolicy, lbOptions, lbName, &streamResults] {
                         source->reset();
                         StreamResult r =
                             simulateStream(*source, *lbPolicy, lbOptions);
                         g_sink = r.lb3;
                         streamResults[lbName] = r;
                       }});
    }

    for (const char* fmt : {"csv", "jsonl"}) {
      std::filesystem::path path =
          std::filesystem::temp_directory_path() /
          ("cdbp_bench_stream_" + std::to_string(n) + "." + fmt);
      tempFiles.push_back(path);
      std::string pathStr = path.string();
      specs.push_back({"TraceWrite/" + std::string(fmt) + "/" +
                           std::to_string(n),
                       n, [inst, pathStr] {
                         saveTrace(*inst, pathStr, "bench_streaming");
                         g_sink = static_cast<double>(inst->size());
                       }});
      specs.push_back({"TraceScan/" + std::string(fmt) + "/" +
                           std::to_string(n),
                       n, [pathStr] {
                         TraceStats stats = scanTrace(pathStr);
                         g_sink = stats.demand;
                       }});
      auto filePolicy =
          std::shared_ptr<OnlinePolicy>(makePolicy("ff", context));
      StreamOptions fileOptions;
      fileOptions.engine = engine;
      fileOptions.shardedThreads = threads;
      fileOptions.computeLowerBound = false;
      std::string fileName =
          "StreamFile/" + std::string(fmt) + "/" + std::to_string(n);
      specs.push_back(
          {fileName, n,
           [pathStr, filePolicy, fileOptions, fileName, &streamResults] {
             TraceArrivalSource source(pathStr);
             StreamResult r =
                 simulateStream(source, *filePolicy, fileOptions);
             g_sink = r.totalUsage;
             streamResults[fileName] = r;
           }});
    }

    // The committed scaling pair: same flat in-memory trace, cdt-ff (the
    // headline partitionable policy), single-threaded indexed stream as
    // the denominator and the epoch-sharded engine as the numerator.
    // Always engine-independent so the guard measures the same thing no
    // matter which --engine the rest of the run uses.
    {
      std::string flatTag = "FlatTrace/cdt-ff/" + std::to_string(n);
      auto flatPolicy =
          std::shared_ptr<OnlinePolicy>(makePolicy("cdt-ff", context));
      auto flatSource = std::make_shared<InstanceArrivalSource>(*inst);
      StreamOptions denOptions;
      denOptions.engine = PlacementEngine::kIndexed;
      denOptions.computeLowerBound = false;
      specs.push_back({flatTag + "/t1", n,
                       [flatSource, flatPolicy, denOptions] {
                         flatSource->reset();
                         StreamResult r = simulateStream(*flatSource,
                                                         *flatPolicy,
                                                         denOptions);
                         g_sink = r.totalUsage;
                       }});
      if (threads >= 2) {
        auto shardPolicy =
            std::shared_ptr<OnlinePolicy>(makePolicy("cdt-ff", context));
        auto shardSource = std::make_shared<InstanceArrivalSource>(*inst);
        StreamOptions numOptions;
        numOptions.engine = PlacementEngine::kSharded;
        numOptions.shardedThreads = threads;
        numOptions.computeLowerBound = false;
        specs.push_back({flatTag + "/t" + std::to_string(threads), n,
                         [shardSource, shardPolicy, numOptions] {
                           shardSource->reset();
                           StreamResult r = simulateStream(*shardSource,
                                                           *shardPolicy,
                                                           numOptions);
                           g_sink = r.totalUsage;
                         }});
      }
    }
  }

  telemetry::BenchReport report("streaming");
  report.setParam("reps", reps);
  report.setParam("warmup", warmup);
  report.setParam("mu", mu);
  report.setParam("seed", static_cast<long>(seed));
  report.setParam("max_items", maxItems);
  report.setParam("filter", filter);
  report.setParam("engine", engineName);
  report.setParam("threads", static_cast<long>(threads));

  Table table({"benchmark", "items", "mean ms", "stddev ms", "items/s"});
  std::size_t ran = 0;
  for (const Spec& spec : specs) {
    if (!filter.empty() && spec.name.find(filter) == std::string::npos) {
      continue;
    }
    ++ran;
    for (std::size_t w = 0; w < warmup; ++w) spec.body();

    telemetry::RegistrySnapshot before =
        telemetry::Registry::global().snapshot();
    telemetry::BenchTimingSeries& series =
        report.addTiming(spec.name, spec.items);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::uint64_t t0 = telemetry::monotonicNanos();
      spec.body();
      std::uint64_t t1 = telemetry::monotonicNanos();
      series.addRepSeconds(static_cast<double>(t1 - t0) * 1e-9);
    }
    telemetry::RegistrySnapshot after =
        telemetry::Registry::global().snapshot();
    series.setCounterDeltas(telemetry::diffCounters(before, after));

    table.addRow({spec.name, std::to_string(spec.items),
                  Table::num(series.seconds().mean() * 1e3, 3),
                  Table::num(series.seconds().stddev() * 1e3, 3),
                  Table::num(series.itemsPerSecond(), 0)});
  }

  std::cout << "=== streaming (" << reps << " reps, warmup " << warmup
            << ", mu " << mu << ", engine " << engineName << ", telemetry "
            << (telemetry::kEnabled ? "on" : "off") << ") ===\n";
  if (flags.has("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }

  // The bounded-memory claim, measured: peak simultaneously-open items and
  // estimated resident simulator state per streaming run.
  Table memory({"benchmark", "items", "peak open items", "open/total",
                "resident KiB"});
  for (const auto& [name, r] : streamResults) {
    memory.addRow({name, std::to_string(r.items),
                   std::to_string(r.peakOpenItems),
                   Table::num(r.items > 0
                                  ? static_cast<double>(r.peakOpenItems) /
                                        static_cast<double>(r.items)
                                  : 0.0,
                              4),
                   std::to_string(r.peakResidentBytes / 1024)});
  }
  if (!streamResults.empty()) {
    std::cout << "--- streaming memory ---\n";
    if (flags.has("csv")) {
      memory.printCsv(std::cout);
    } else {
      memory.print(std::cout);
    }
    report.addTable("memory", memory);
  }

  for (const std::filesystem::path& path : tempFiles) {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }

  if (ran == 0) {
    std::cerr << "bench_streaming: no benchmark matched --filter/--max-items\n";
    return 1;
  }

  report.addTable("streaming", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
