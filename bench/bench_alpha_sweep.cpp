// Experiment E4 (ablation of Theorem 5): sweep the number of duration
// categories n (alpha = mu^(1/n)) of classify-by-duration First Fit and
// compare with the theoretical curve mu^(1/n) + n + 3.
//
// Expected shape: the theoretical curve is minimized at the closed-form
// optimal n*; empirically, too few categories behaves like plain FF on a
// wide-mu load, too many categories fragments bins.
//
// The whole sweep is one runMany grid: (1 generator) x (10 alpha specs) x
// (seeds), fanned over --threads workers.
//
// Flags: --items <int> (default 2500), --mu <double> (default 64),
//        --seeds <int> (default 5), --threads <int> (default 0 = hardware).
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>

#include "analysis/ratios.hpp"
#include "sim/run_many.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv,
                                   {"items", "mu", "seeds", "threads", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2500));
  double mu = flags.getDouble("mu", 64.0);
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));
  unsigned threads = static_cast<unsigned>(flags.getInt("threads", 0));

  WorkloadSpec spec;
  spec.numItems = items;
  spec.mu = mu;
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(61 + s);

  Instance probe = generateWorkload(spec, seeds[0]);
  double delta = probe.minDuration();
  double realizedMu = probe.durationRatio();
  std::size_t optN = ratios::optimalDurationCategories(realizedMu);

  std::cout << "=== E4: category-count sweep for CD-FF (mu = " << realizedMu
            << ", closed-form optimal n* = " << optN << ") ===\n";

  constexpr std::size_t kMaxCategories = 10;
  RunManySpec grid;
  grid.instances.push_back(
      [spec](std::uint64_t seed) { return generateWorkload(spec, seed); });
  grid.seeds = seeds;
  grid.threads = threads;
  std::vector<double> alphas;
  for (std::size_t n = 1; n <= kMaxCategories; ++n) {
    double alpha = std::max(
        std::pow(realizedMu, 1.0 / static_cast<double>(n)), 1.0 + 1e-9);
    alphas.push_back(alpha);
    std::ostringstream policySpec;
    policySpec.precision(17);
    policySpec << "cd-ff(base=" << delta << ",alpha=" << alpha << ")";
    grid.policies.emplace_back(policySpec.str());
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = runMany(grid);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  Table table({"n", "alpha=mu^(1/n)", "empirical usage/LB3",
               "theoretical mu^(1/n)+n+3"});
  std::vector<double> xs, empirical, theory;
  for (std::size_t n = 1; n <= kMaxCategories; ++n) {
    SummaryStats stats;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      stats.add(results[(n - 1) * numSeeds + s].ratio);
    }
    double bound = ratios::cdRatioForCategories(realizedMu, n);
    table.addRow({std::to_string(n), Table::num(alphas[n - 1], 3),
                  Table::num(stats.mean(), 3), Table::num(bound, 3)});
    xs.push_back(static_cast<double>(n));
    empirical.push_back(stats.mean());
    theory.push_back(bound);
  }
  table.print(std::cout);
  std::cout << "grid: " << results.size() << " runs in "
            << Table::num(elapsed, 2) << "s (threads=" << threads << ")\n";

  AsciiChart chart(72, 16);
  chart.addSeries("empirical", xs, empirical);
  chart.addSeries("theoretical bound", xs, theory);
  std::cout << '\n';
  chart.print(std::cout);

  telemetry::BenchReport report("alpha_sweep");
  report.setParam("items", items);
  report.setParam("mu", mu);
  report.setParam("seeds", numSeeds);
  report.setParam("threads", static_cast<std::size_t>(threads));
  report.setParam("grid_seconds", elapsed);
  report.addTable("category_count_sweep", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
