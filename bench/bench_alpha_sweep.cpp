// Experiment E4 (ablation of Theorem 5): sweep the number of duration
// categories n (alpha = mu^(1/n)) of classify-by-duration First Fit and
// compare with the theoretical curve mu^(1/n) + n + 3.
//
// Expected shape: the theoretical curve is minimized at the closed-form
// optimal n*; empirically, too few categories behaves like plain FF on a
// wide-mu load, too many categories fragments bins.
//
// Flags: --items <int> (default 2500), --mu <double> (default 64),
//        --seeds <int> (default 5).
#include <cmath>
#include <iostream>

#include "analysis/empirical.hpp"
#include "analysis/ratios.hpp"
#include "online/classify_duration.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "mu", "seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2500));
  double mu = flags.getDouble("mu", 64.0);
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));

  WorkloadSpec spec;
  spec.numItems = items;
  spec.mu = mu;
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(61 + s);

  Instance probe = generateWorkload(spec, seeds[0]);
  double delta = probe.minDuration();
  double realizedMu = probe.durationRatio();
  std::size_t optN = ratios::optimalDurationCategories(realizedMu);

  std::cout << "=== E4: category-count sweep for CD-FF (mu = " << realizedMu
            << ", closed-form optimal n* = " << optN << ") ===\n";

  Table table({"n", "alpha=mu^(1/n)", "empirical usage/LB3",
               "theoretical mu^(1/n)+n+3"});
  std::vector<double> xs, empirical, theory;
  for (std::size_t n = 1; n <= 10; ++n) {
    double alpha =
        std::max(std::pow(realizedMu, 1.0 / static_cast<double>(n)), 1.0 + 1e-9);
    RatioSummary summary = sweepPolicy(
        seeds, [&](std::uint64_t seed) { return generateWorkload(spec, seed); },
        [&]() -> PolicyPtr {
          return std::make_unique<ClassifyByDurationFF>(delta, alpha);
        });
    double bound = ratios::cdRatioForCategories(realizedMu, n);
    table.addRow({std::to_string(n), Table::num(alpha, 3),
                  Table::num(summary.ratios.mean(), 3), Table::num(bound, 3)});
    xs.push_back(static_cast<double>(n));
    empirical.push_back(summary.ratios.mean());
    theory.push_back(bound);
  }
  table.print(std::cout);

  AsciiChart chart(72, 16);
  chart.addSeries("empirical", xs, empirical);
  chart.addSeries("theoretical bound", xs, theory);
  std::cout << '\n';
  chart.print(std::cout);

  telemetry::BenchReport report("alpha_sweep");
  report.setParam("items", items);
  report.setParam("mu", mu);
  report.setParam("seeds", numSeeds);
  report.addTable("category_count_sweep", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
