// Experiment FLEX (paper §6 future work: flexible jobs with release times
// and deadlines): how much usage the alignment-greedy scheduler saves over
// ASAP scheduling as the slack grows.
//
// Expected shape: at zero slack both schedulers coincide; the saving grows
// with the slack factor and saturates once windows are wide enough to
// nestle every short job into already-paid-for busy periods.
//
// Flags: --jobs <int> (default 400), --seeds <int> (default 5).
#include <iostream>

#include "core/lower_bounds.hpp"
#include "flexible/flexible_scheduler.hpp"
#include "flexible/flexible_workload.hpp"
#include "flexible/online_flexible.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"jobs", "seeds", "json"});
  std::size_t jobs = static_cast<std::size_t>(flags.getInt("jobs", 400));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));

  std::cout << "=== FLEX: alignment-greedy vs ASAP scheduling of flexible "
               "jobs ===\n";
  Table table({"slack factor", "ASAP usage/LB3", "Aligned usage/LB3",
               "mean saving (%)"});
  for (double slack : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    SummaryStats asapRatio, alignedRatio, saving;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      FlexibleWorkloadSpec spec;
      spec.numJobs = jobs;
      spec.slackFactor = slack;
      FlexibleInstance inst = generateFlexibleWorkload(spec, 300 + s);
      FlexibleSchedule asap = scheduleAsap(inst);
      FlexibleSchedule aligned = scheduleAligned(inst);
      // Normalize both by the LB3 of the ASAP materialization — a fixed
      // yardstick per instance (the true flexible optimum can only be
      // lower).
      double lb3 = lowerBounds(*asap.fixedInstance).ceilIntegral;
      asapRatio.add(asap.totalUsage / lb3);
      alignedRatio.add(aligned.totalUsage / lb3);
      saving.add(100.0 * (asap.totalUsage - aligned.totalUsage) /
                 asap.totalUsage);
    }
    table.addRow({Table::num(slack, 2), Table::num(asapRatio.mean(), 3),
                  Table::num(alignedRatio.mean(), 3),
                  Table::num(saving.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nSaving is (ASAP - Aligned)/ASAP usage; both schedules are "
               "validated against windows and capacities.\n";

  // Online setting: jobs become known at release; deferral is the only
  // lever. Expect the online defer-align policy to recover part of the
  // offline saving, paying for its lack of lookahead with forced starts.
  std::cout << "\n=== FLEX-online: deferred starts without lookahead ===\n";
  Table online({"slack factor", "online ASAP /LB3", "online DeferAlign /LB3",
                "saving (%)", "forced starts (%)"});
  for (double slack : {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    SummaryStats asapRatio, alignRatio, saving, forcedShare;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      FlexibleWorkloadSpec spec;
      spec.numJobs = jobs;
      spec.slackFactor = slack;
      FlexibleInstance inst = generateFlexibleWorkload(spec, 300 + s);
      FlexStartAsapFF asapPolicy;
      FlexDeferAlign alignPolicy;
      FlexOnlineResult asap = simulateFlexibleOnline(inst, asapPolicy);
      FlexOnlineResult aligned = simulateFlexibleOnline(inst, alignPolicy);
      double lb3 = lowerBounds(*asap.fixedInstance).ceilIntegral;
      asapRatio.add(asap.totalUsage / lb3);
      alignRatio.add(aligned.totalUsage / lb3);
      saving.add(100.0 * (asap.totalUsage - aligned.totalUsage) /
                 asap.totalUsage);
      forcedShare.add(100.0 * static_cast<double>(aligned.forcedStarts) /
                      static_cast<double>(inst.size()));
    }
    online.addRow({Table::num(slack, 2), Table::num(asapRatio.mean(), 3),
                   Table::num(alignRatio.mean(), 3),
                   Table::num(saving.mean(), 1),
                   Table::num(forcedShare.mean(), 1)});
  }
  online.print(std::cout);

  telemetry::BenchReport report("flexible");
  report.setParam("jobs", jobs);
  report.setParam("seeds", numSeeds);
  report.addTable("offline_aligned_vs_asap", table);
  report.addTable("online_defer_align", online);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
