// Experiment FLEX (paper §6 future work: flexible jobs with release times
// and deadlines): how much usage the alignment-greedy scheduler saves over
// ASAP scheduling as the slack grows.
//
// Expected shape: at zero slack both schedulers coincide; the saving grows
// with the slack factor and saturates once windows are wide enough to
// nestle every short job into already-paid-for busy periods.
//
// Flags:
//   --jobs N     jobs per cell (default 400)
//   --seeds N    seeds per cell (default 5)
//   --threads N  worker threads for the sweep cells (0 = hardware)
//   --engine E   placement engine for the online simulator:
//                indexed (default) | linear
//   --json[=PATH]  write BENCH_flexible.json (schema: DESIGN.md §8.3)
#include <iostream>
#include <vector>

#include "core/lower_bounds.hpp"
#include "flexible/flexible_scheduler.hpp"
#include "flexible/flexible_workload.hpp"
#include "flexible/online_flexible.hpp"
#include "sim/run_many.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv,
                                   {"jobs", "seeds", "threads", "engine",
                                    "json"});
  std::size_t jobs = static_cast<std::size_t>(flags.getInt("jobs", 400));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));
  unsigned threads = static_cast<unsigned>(flags.getInt("threads", 0));
  std::string engineName = flags.getString("engine", "indexed");
  FlexSimOptions simOptions;
  if (engineName == "indexed") {
    simOptions.engine = PlacementEngine::kIndexed;
  } else if (engineName == "linear") {
    simOptions.engine = PlacementEngine::kLinearScan;
  } else {
    std::cerr << "bench_flexible: --engine must be 'indexed' or 'linear', "
                 "got '" << engineName << "'\n";
    return 1;
  }

  std::cout << "=== FLEX: alignment-greedy vs ASAP scheduling of flexible "
               "jobs ===\n";
  const std::vector<double> offlineSlacks = {0.0, 0.25, 0.5, 1.0,
                                             2.0, 4.0,  8.0};
  // Cells fan out over runCells into pre-sized slots, so the tables are
  // identical under any --threads value.
  struct OfflineCell {
    double asapRatio = 0, alignedRatio = 0, saving = 0;
  };
  std::vector<OfflineCell> offlineCells(offlineSlacks.size() * numSeeds);
  runCells(threads, offlineCells.size(), [&](std::size_t cell) {
    std::size_t k = cell / numSeeds;
    std::size_t s = cell % numSeeds;
    FlexibleWorkloadSpec spec;
    spec.numJobs = jobs;
    spec.slackFactor = offlineSlacks[k];
    FlexibleInstance inst = generateFlexibleWorkload(spec, 300 + s);
    FlexibleSchedule asap = scheduleAsap(inst);
    FlexibleSchedule aligned = scheduleAligned(inst);
    // Normalize both by the LB3 of the ASAP materialization — a fixed
    // yardstick per instance (the true flexible optimum can only be
    // lower).
    double lb3 = lowerBounds(*asap.fixedInstance).ceilIntegral;
    offlineCells[cell] = {asap.totalUsage / lb3, aligned.totalUsage / lb3,
                          100.0 * (asap.totalUsage - aligned.totalUsage) /
                              asap.totalUsage};
  });
  Table table({"slack factor", "ASAP usage/LB3", "Aligned usage/LB3",
               "mean saving (%)"});
  for (std::size_t k = 0; k < offlineSlacks.size(); ++k) {
    SummaryStats asapRatio, alignedRatio, saving;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      const OfflineCell& c = offlineCells[k * numSeeds + s];
      asapRatio.add(c.asapRatio);
      alignedRatio.add(c.alignedRatio);
      saving.add(c.saving);
    }
    table.addRow({Table::num(offlineSlacks[k], 2),
                  Table::num(asapRatio.mean(), 3),
                  Table::num(alignedRatio.mean(), 3),
                  Table::num(saving.mean(), 1)});
  }
  table.print(std::cout);
  std::cout << "\nSaving is (ASAP - Aligned)/ASAP usage; both schedules are "
               "validated against windows and capacities.\n";

  // Online setting: jobs become known at release; deferral is the only
  // lever. Expect the online defer-align policy to recover part of the
  // offline saving, paying for its lack of lookahead with forced starts.
  std::cout << "\n=== FLEX-online: deferred starts without lookahead ===\n";
  const std::vector<double> onlineSlacks = {0.0, 0.5, 1.0, 2.0, 4.0, 8.0};
  struct OnlineCell {
    double asapRatio = 0, alignRatio = 0, saving = 0, forcedShare = 0;
  };
  std::vector<OnlineCell> onlineCells(onlineSlacks.size() * numSeeds);
  runCells(threads, onlineCells.size(), [&](std::size_t cell) {
    std::size_t k = cell / numSeeds;
    std::size_t s = cell % numSeeds;
    FlexibleWorkloadSpec spec;
    spec.numJobs = jobs;
    spec.slackFactor = onlineSlacks[k];
    FlexibleInstance inst = generateFlexibleWorkload(spec, 300 + s);
    FlexStartAsapFF asapPolicy;
    FlexDeferAlign alignPolicy;
    FlexOnlineResult asap = simulateFlexibleOnline(inst, asapPolicy, simOptions);
    FlexOnlineResult aligned =
        simulateFlexibleOnline(inst, alignPolicy, simOptions);
    double lb3 = lowerBounds(*asap.fixedInstance).ceilIntegral;
    onlineCells[cell] = {asap.totalUsage / lb3, aligned.totalUsage / lb3,
                         100.0 * (asap.totalUsage - aligned.totalUsage) /
                             asap.totalUsage,
                         100.0 * static_cast<double>(aligned.forcedStarts) /
                             static_cast<double>(inst.size())};
  });
  Table online({"slack factor", "online ASAP /LB3", "online DeferAlign /LB3",
                "saving (%)", "forced starts (%)"});
  for (std::size_t k = 0; k < onlineSlacks.size(); ++k) {
    SummaryStats asapRatio, alignRatio, saving, forcedShare;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      const OnlineCell& c = onlineCells[k * numSeeds + s];
      asapRatio.add(c.asapRatio);
      alignRatio.add(c.alignRatio);
      saving.add(c.saving);
      forcedShare.add(c.forcedShare);
    }
    online.addRow({Table::num(onlineSlacks[k], 2),
                   Table::num(asapRatio.mean(), 3),
                   Table::num(alignRatio.mean(), 3),
                   Table::num(saving.mean(), 1),
                   Table::num(forcedShare.mean(), 1)});
  }
  online.print(std::cout);

  telemetry::BenchReport report("flexible");
  report.setParam("jobs", jobs);
  report.setParam("seeds", numSeeds);
  report.setParam("engine", engineName);
  report.addTable("offline_aligned_vs_asap", table);
  report.addTable("online_defer_align", online);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
