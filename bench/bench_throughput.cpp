// Throughput macro-benchmarks: packing speed of the online policies, the
// offline algorithms and the core data structures across instance sizes.
//
// Hand-rolled repetition harness (no external benchmark dependency): each
// benchmark runs `--warmup` untimed passes, then `--reps` timed passes
// measured through telemetry::monotonicNanos(). Per-benchmark registry
// counter deltas (bins scanned, bins opened, fit attempts, ...) are
// attributed from snapshots taken around the timed passes.
//
// Flags:
//   --reps N        timed repetitions per benchmark (default 7)
//   --warmup N      untimed warmup passes (default 1)
//   --filter STR    only run benchmarks whose name contains STR
//   --max-items N   skip benchmarks with more than N items (CI perf-smoke)
//   --mu X          duration ratio of the generated workloads (default 16)
//   --seed S        workload seed (default 1)
//   --engine E      placement engine: indexed (default) | linear | sharded
//   --threads N     worker threads when --engine sharded (default 4)
//   --csv           render the summary table as CSV
//   --json[=PATH]   write BENCH_throughput.json (schema: DESIGN.md §8.3)
#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/lower_bounds.hpp"
#include "core/step_function.hpp"
#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "telemetry/bench_report.hpp"
#include "telemetry/clock.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

// A volatile sink keeps the optimizer from discarding benchmark results.
volatile double g_sink = 0;

Instance makeInstance(std::size_t n, double mu, std::uint64_t seed) {
  WorkloadSpec spec;
  spec.numItems = n;
  spec.mu = mu;
  return generateWorkload(spec, seed);
}

struct Spec {
  std::string name;
  std::size_t items;
  std::function<void()> body;
};

void addOnline(std::vector<Spec>& specs, const std::string& name,
               const std::string& policySpec, std::vector<std::size_t> sizes,
               const WorkloadSpec& base, std::uint64_t seed,
               PlacementEngine engine, std::size_t threads) {
  for (std::size_t n : sizes) {
    WorkloadSpec w = base;
    w.numItems = n;
    auto inst = std::make_shared<Instance>(generateWorkload(w, seed));
    auto policy = std::shared_ptr<OnlinePolicy>(
        makePolicy(policySpec, PolicyContext::forInstance(*inst, seed)));
    SimOptions options;
    options.engine = engine;
    options.shardedThreads = threads;
    specs.push_back({name + "/" + std::to_string(n), n, [inst, policy, options] {
                       SimResult r = simulateOnline(*inst, *policy, options);
                       g_sink = r.totalUsage;
                     }});
  }
}

}  // namespace
}  // namespace cdbp

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(
      argc, argv, {"reps", "warmup", "filter", "max-items", "mu", "seed",
                   "engine", "threads", "csv", "json"});
  std::size_t reps = static_cast<std::size_t>(flags.getInt("reps", 7));
  std::size_t warmup = static_cast<std::size_t>(flags.getInt("warmup", 1));
  std::string filter = flags.getString("filter", "");
  long maxItems = flags.getInt("max-items", 0);  // 0 = no limit
  double mu = flags.getDouble("mu", 16.0);
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 1));
  std::string engineName = flags.getString("engine", "indexed");
  std::size_t threads = static_cast<std::size_t>(flags.getInt("threads", 4));
  PlacementEngine engine;
  if (engineName == "indexed") {
    engine = PlacementEngine::kIndexed;
  } else if (engineName == "linear") {
    engine = PlacementEngine::kLinearScan;
  } else if (engineName == "sharded") {
    engine = PlacementEngine::kSharded;
  } else {
    std::cerr << "bench_throughput: --engine must be 'indexed', 'linear' or "
                 "'sharded', got '" << engineName << "'\n";
    return 1;
  }

  WorkloadSpec base;
  base.mu = mu;
  // The stress series for the placement engines: a high arrival rate keeps
  // hundreds of bins open at once, so per-item placement cost is dominated
  // by bin search — O(B) under --engine linear, O(log B) under the
  // capacity-indexed engine.
  WorkloadSpec manyOpen = base;
  manyOpen.arrivalRate = 256.0;

  std::vector<Spec> specs;
  addOnline(specs, "FirstFitOnline", "ff", {1000, 4000, 16000}, base, seed,
            engine, threads);
  addOnline(specs, "FirstFitManyOpen", "ff", {4000, 32000}, manyOpen, seed,
            engine, threads);
  addOnline(specs, "BestFitOnline", "bf", {1000, 4000}, base, seed, engine,
            threads);
  addOnline(specs, "BestFitManyOpen", "bf", {4000, 32000}, manyOpen, seed,
            engine, threads);
  addOnline(specs, "CdtFFOnline", "cdt-ff", {1000, 4000, 16000}, base, seed,
            engine, threads);
  addOnline(specs, "CdFFOnline", "cd-ff", {1000, 4000, 16000}, base, seed,
            engine, threads);
  for (std::size_t n : {std::size_t{500}, std::size_t{2000}}) {
    auto inst = std::make_shared<Instance>(makeInstance(n, mu, seed));
    specs.push_back({"Ddff/" + std::to_string(n), n, [inst] {
                       Packing p = durationDescendingFirstFit(*inst);
                       g_sink = p.totalUsage();
                     }});
  }
  for (std::size_t n : {std::size_t{200}, std::size_t{500}}) {
    auto inst = std::make_shared<Instance>(makeInstance(n, mu, seed));
    specs.push_back({"DualColoring/" + std::to_string(n), n, [inst] {
                       DualColoringResult r = dualColoring(*inst);
                       g_sink = r.packing.totalUsage();
                     }});
  }
  for (std::size_t n : {std::size_t{1000}, std::size_t{10000}}) {
    auto inst = std::make_shared<Instance>(makeInstance(n, mu, seed));
    specs.push_back({"LowerBounds/" + std::to_string(n), n, [inst] {
                       LowerBounds lb = lowerBounds(*inst);
                       g_sink = lb.ceilIntegral;
                     }});
  }
  for (std::size_t n : {std::size_t{1000}, std::size_t{10000}}) {
    auto inst = std::make_shared<Instance>(makeInstance(n, mu, seed));
    specs.push_back({"StepFunctionRangeAdd/" + std::to_string(n), n, [inst] {
                       StepFunction f;
                       for (const Item& r : inst->items()) {
                         f.add(r.interval, r.size);
                       }
                       g_sink = f.maxValue();
                     }});
  }

  telemetry::BenchReport report("throughput");
  report.setParam("reps", reps);
  report.setParam("warmup", warmup);
  report.setParam("mu", mu);
  report.setParam("seed", static_cast<long>(seed));
  report.setParam("max_items", maxItems);
  report.setParam("filter", filter);
  report.setParam("engine", engineName);
  report.setParam("threads", static_cast<long>(threads));

  Table table({"benchmark", "items", "mean ms", "stddev ms", "items/s"});
  std::size_t ran = 0;
  for (const Spec& spec : specs) {
    if (!filter.empty() && spec.name.find(filter) == std::string::npos) {
      continue;
    }
    if (maxItems > 0 && spec.items > static_cast<std::size_t>(maxItems)) {
      continue;
    }
    ++ran;
    for (std::size_t w = 0; w < warmup; ++w) spec.body();

    telemetry::RegistrySnapshot before = telemetry::Registry::global().snapshot();
    telemetry::BenchTimingSeries& series =
        report.addTiming(spec.name, spec.items);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      std::uint64_t t0 = telemetry::monotonicNanos();
      spec.body();
      std::uint64_t t1 = telemetry::monotonicNanos();
      series.addRepSeconds(static_cast<double>(t1 - t0) * 1e-9);
    }
    telemetry::RegistrySnapshot after = telemetry::Registry::global().snapshot();
    series.setCounterDeltas(telemetry::diffCounters(before, after));

    table.addRow({spec.name, std::to_string(spec.items),
                  Table::num(series.seconds().mean() * 1e3, 3),
                  Table::num(series.seconds().stddev() * 1e3, 3),
                  Table::num(series.itemsPerSecond(), 0)});
  }

  std::cout << "=== throughput (" << reps << " reps, warmup " << warmup
            << ", mu " << mu << ", engine " << engineName << ", telemetry "
            << (telemetry::kEnabled ? "on" : "off") << ") ===\n";
  if (flags.has("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  if (ran == 0) {
    std::cerr << "bench_throughput: no benchmark matched --filter/--max-items\n";
    return 1;
  }

  report.addTable("throughput", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
