// Performance benchmarks (google-benchmark): packing throughput of the
// online policies and the offline algorithms, plus the core data
// structures, across instance sizes.
#include <benchmark/benchmark.h>

#include "core/lower_bounds.hpp"
#include "core/step_function.hpp"
#include "offline/ddff.hpp"
#include "offline/dual_coloring.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace cdbp {
namespace {

Instance makeInstance(std::size_t n, double mu = 16.0, std::uint64_t seed = 1) {
  WorkloadSpec spec;
  spec.numItems = n;
  spec.mu = mu;
  return generateWorkload(spec, seed);
}

void BM_FirstFitOnline(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  FirstFitPolicy policy;
  for (auto _ : state) {
    SimResult r = simulateOnline(inst, policy);
    benchmark::DoNotOptimize(r.totalUsage);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FirstFitOnline)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_BestFitOnline(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  BestFitPolicy policy;
  for (auto _ : state) {
    SimResult r = simulateOnline(inst, policy);
    benchmark::DoNotOptimize(r.totalUsage);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BestFitOnline)->Arg(1000)->Arg(4000);

void BM_CdtFFOnline(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  ClassifyByDepartureFF policy = ClassifyByDepartureFF::withKnownDurations(
      inst.minDuration(), inst.durationRatio());
  for (auto _ : state) {
    SimResult r = simulateOnline(inst, policy);
    benchmark::DoNotOptimize(r.totalUsage);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CdtFFOnline)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_CdFFOnline(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  ClassifyByDurationFF policy = ClassifyByDurationFF::withKnownDurations(
      inst.minDuration(), inst.durationRatio());
  for (auto _ : state) {
    SimResult r = simulateOnline(inst, policy);
    benchmark::DoNotOptimize(r.totalUsage);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CdFFOnline)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_Ddff(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Packing p = durationDescendingFirstFit(inst);
    benchmark::DoNotOptimize(p.totalUsage());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Ddff)->Arg(500)->Arg(2000);

void BM_DualColoring(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    DualColoringResult r = dualColoring(inst);
    benchmark::DoNotOptimize(r.packing.totalUsage());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DualColoring)->Arg(200)->Arg(500);

void BM_LowerBounds(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    LowerBounds lb = lowerBounds(inst);
    benchmark::DoNotOptimize(lb.ceilIntegral);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LowerBounds)->Arg(1000)->Arg(10000);

void BM_StepFunctionRangeAdd(benchmark::State& state) {
  Instance inst = makeInstance(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    StepFunction f;
    for (const Item& r : inst.items()) f.add(r.interval, r.size);
    benchmark::DoNotOptimize(f.maxValue());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StepFunctionRangeAdd)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace cdbp

BENCHMARK_MAIN();
