// Experiment COST: packing quality under real billing models. The paper's
// objective (usage time) equals cost under continuous billing; this bench
// shows what per-minute and per-hour increments (plus minimum charges) do
// to each policy's bill — policies that open many short-lived bins pay the
// largest rounding overhead.
//
// Flags: --sessions <int> (default 2500), --seed <int>.
#include <iostream>

#include "cost/billing.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"sessions", "seed", "json"});
  CloudGamingSpec spec;
  spec.numSessions = static_cast<std::size_t>(flags.getInt("sessions", 2500));
  std::uint64_t seed = static_cast<std::uint64_t>(flags.getInt("seed", 77));
  Instance sessions = cloudGamingSessions(spec, seed);
  double delta = sessions.minDuration();
  double mu = sessions.durationRatio();

  std::cout << "=== COST: billing-model sensitivity (cloud gaming trace, "
            << sessions.size() << " sessions; times in minutes) ===\n\n";

  struct Model {
    std::string label;
    BillingModel model;
  };
  std::vector<Model> models = {
      {"continuous", BillingModel::continuous(1.0)},
      {"per-minute", BillingModel::metered(1.0, 1.0)},
      {"per-hour", BillingModel::metered(60.0, 1.0)},
      {"per-hour+10min-min", BillingModel::metered(60.0, 1.0, 10.0)},
  };

  PolicyContext context;
  context.minDuration = delta;
  context.mu = mu;
  std::vector<PolicyPtr> policies;
  for (const char* spec : {"ff", "cdt-ff", "cd-ff", "min-ext"}) {
    policies.push_back(makePolicy(spec, context));
  }

  Table table([&] {
    std::vector<std::string> h = {"policy", "rentals"};
    for (const Model& m : models) h.push_back(m.label);
    h.push_back("hourly overhead");
    return h;
  }());
  for (const PolicyPtr& policy : policies) {
    SimResult r = simulateOnline(sessions, *policy);
    std::vector<std::string> row = {policy->name(), ""};
    CostBreakdown hourly;
    std::size_t rentals = 0;
    for (const Model& m : models) {
      CostBreakdown cost = evaluateCost(r.packing, m.model);
      rentals = cost.acquisitions;
      if (m.label == "per-hour") hourly = cost;
      row.push_back(Table::num(cost.total, 0));
    }
    row[1] = std::to_string(rentals);
    row.push_back(Table::num(hourly.roundingOverhead(), 3));
    table.addRow(row);
  }
  table.print(std::cout);

  std::cout << "\n'hourly overhead' = billed/raw usage under per-hour "
               "billing. Policies opening many short rentals (classification"
               " with narrow categories) pay more rounding than their raw "
               "usage advantage.\n";

  telemetry::BenchReport report("billing");
  report.setParam("sessions", spec.numSessions);
  report.setParam("seed", static_cast<long>(seed));
  report.addTable("billing_models", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
