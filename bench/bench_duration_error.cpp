// Experiment E6 (the paper's future-work §6: "analyze how inaccurate
// estimates of item durations would impact the competitiveness"): the
// clairvoyant policies see departure times perturbed by a multiplicative
// log-uniform noise factor in [1/(1+e), 1+e]; the system evolves with the
// true departures.
//
// Expected shape: classification policies degrade gracefully — mild noise
// only misfiles items near window/category boundaries; with extreme noise
// CDT-FF drifts toward plain First Fit behavior while remaining feasible.
//
// Flags: --items <int> (default 2500), --mu <double> (default 32),
//        --seeds <int> (default 5).
#include <cmath>
#include <iostream>

#include "analysis/empirical.hpp"
#include "core/lower_bounds.hpp"
#include "online/policy_factory.hpp"
#include "sim/simulator.hpp"
#include "telemetry/bench_report.hpp"
#include "util/flags.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "mu", "seeds", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2500));
  double mu = flags.getDouble("mu", 32.0);
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));

  WorkloadSpec spec;
  spec.numItems = items;
  spec.mu = mu;

  Instance probe = generateWorkload(spec, 7);
  double delta = probe.minDuration();
  double realizedMu = probe.durationRatio();

  std::cout << "=== E6: sensitivity to duration-estimate error (mu = "
            << realizedMu << ") ===\n";
  std::cout << "noise e: announced duration = true duration * U[1/(1+e), 1+e]\n\n";

  // The known-durations context both clairvoyant specs tune against; the
  // noise perturbs the announced departures, not these parameters.
  PolicyContext context;
  context.minDuration = delta;
  context.mu = realizedMu;

  Table table({"noise e", "CDT-FF", "CD-FF", "FirstFit (noise-free ref)"});
  // Reference: FF ignores departures entirely, so noise cannot affect it.
  SummaryStats ffStats;
  for (std::size_t s = 0; s < numSeeds; ++s) {
    Instance inst = generateWorkload(spec, 500 + s);
    PolicyPtr ff = makePolicy("ff");
    ffStats.add(evaluatePolicy(inst, *ff).ratio);
  }

  for (double noise : {0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0}) {
    SummaryStats cdtStats, cdStats;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      Instance inst = generateWorkload(spec, 500 + s);
      double lb3 = lowerBounds(inst).ceilIntegral;

      // One noise stream per (seed, policy) so both policies face the same
      // perturbation pattern.
      auto makeAnnounce = [&](std::uint64_t streamSeed) {
        auto rng = std::make_shared<Rng>(streamSeed);
        return [rng, noise](const Item& r) {
          double lo = 1.0 / (1.0 + noise);
          double hi = 1.0 + noise;
          double factor = std::exp(rng->uniform(std::log(lo), std::log(hi)));
          double announcedDuration = r.duration() * factor;
          return Item(r.id, r.size, r.arrival(), r.arrival() + announcedDuration);
        };
      };

      SimOptions options;
      options.announce = makeAnnounce(9000 + s);
      PolicyPtr cdt = makePolicy("cdt-ff", context);
      cdtStats.add(simulateOnline(inst, *cdt, options).totalUsage / lb3);

      options.announce = makeAnnounce(9000 + s);
      PolicyPtr cd = makePolicy("cd-ff", context);
      cdStats.add(simulateOnline(inst, *cd, options).totalUsage / lb3);
    }
    table.addRow({Table::num(noise, 2), Table::num(cdtStats.mean(), 3),
                  Table::num(cdStats.mean(), 3), Table::num(ffStats.mean(), 3)});
  }
  table.print(std::cout);
  std::cout << "\nFeasibility is never at risk: estimates only steer "
               "classification; capacity uses true sizes.\n";

  telemetry::BenchReport report("duration_error");
  report.setParam("items", items);
  report.setParam("mu", mu);
  report.setParam("seeds", numSeeds);
  report.addTable("noise_sensitivity", table);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
