// Experiment E1: empirical usage/LB3 of every online policy as a function
// of the duration ratio mu, on seeded random workloads.
//
// Expected shape (the simulation counterpart of Figure 8): the
// classification strategies track plain First Fit for small mu and beat it
// increasingly as mu grows; Best Fit is erratic; the sliver-style
// degradation of non-clairvoyant policies shows in the tail columns.
//
// Both experiments are runMany grids — E1 is (9 mu generators) x (9 policy
// specs) x (seeds), E1b is (sliver-trap instances) x (9 specs) x 1 — so
// the whole bench parallelizes across --threads workers. Clairvoyant specs
// carry no explicit parameters: each cell derives its known-durations
// optimum from the instance it runs on (PolicyContext::forInstance).
//
// Flags: --items <int> (default 2000), --seeds <int> (default 5),
//        --threads <int> (default 0 = hardware), --csv.
#include <chrono>
#include <iostream>

#include "sim/run_many.hpp"
#include "telemetry/bench_report.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv,
                                   {"items", "seeds", "threads", "csv", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2000));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));
  unsigned threads = static_cast<unsigned>(flags.getInt("threads", 0));

  std::vector<double> mus = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(1000 + s);

  std::cout << "=== E1: empirical usage / LB3 vs mu (" << items
            << " items, mean over " << numSeeds << " seeds) ===\n";

  // Policy axis: spec strings plus the display name each column carries.
  const std::vector<std::pair<std::string, std::string>> policyAxis = {
      {"FirstFit", "ff"},          {"BestFit", "bf"},
      {"NextFit", "nf"},           {"HybridFF", "hybrid-ff"},
      {"CDT-FF", "cdt-ff"},        {"CD-FF", "cd-ff"},
      {"Combined-FF", "combined-ff"}, {"MinExtension", "min-ext"},
      {"DepAlignedBF", "dep-bf"}};

  RunManySpec grid;
  grid.threads = threads;
  grid.seeds = seeds;
  for (const auto& [name, spec] : policyAxis) grid.policies.emplace_back(spec);
  for (double mu : mus) {
    WorkloadSpec spec;
    spec.numItems = items;
    spec.mu = mu;
    // Keep the instantaneous load comparable across mu: scale the arrival
    // rate down as durations stretch.
    spec.arrivalRate = 16.0 / (1.0 + mu / 8.0);
    grid.instances.push_back(
        [spec](std::uint64_t seed) { return generateWorkload(spec, seed); });
  }

  auto start = std::chrono::steady_clock::now();
  std::vector<RunResult> results = runMany(grid);
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const std::size_t numPolicies = policyAxis.size();
  auto meanRatio = [&](std::size_t instance, std::size_t policy) {
    SummaryStats stats;
    for (std::size_t s = 0; s < numSeeds; ++s) {
      stats.add(results[(instance * numPolicies + policy) * numSeeds + s].ratio);
    }
    return stats.mean();
  };

  Table table([&] {
    std::vector<std::string> header = {"mu"};
    for (const auto& [name, spec] : policyAxis) header.push_back(name);
    return header;
  }());
  std::vector<std::vector<double>> series(numPolicies);
  for (std::size_t m = 0; m < mus.size(); ++m) {
    std::vector<std::string> row = {Table::num(mus[m], 0)};
    for (std::size_t p = 0; p < numPolicies; ++p) {
      double mean = meanRatio(m, p);
      row.push_back(Table::num(mean, 3));
      series[p].push_back(mean);
    }
    table.addRow(row);
  }

  if (flags.has("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout << "grid: " << results.size() << " runs in "
            << Table::num(elapsed, 2) << "s (threads=" << threads << ")\n";

  AsciiChart chart(72, 20);
  chart.setLogX(true);
  for (std::size_t p = 0; p < numPolicies; ++p) {
    const std::string& name = policyAxis[p].first;
    if (name == "BestFit" || name == "NextFit") continue;  // declutter
    chart.addSeries(name, mus, series[p]);
  }
  std::cout << '\n';
  chart.print(std::cout);
  std::cout << "\nNote: ratios are against LB3 <= OPT_total, i.e. upper "
               "bounds on the true competitive performance.\n";

  // Part 2: the empirical counterpart of Figure 8. Random Poisson loads are
  // benign for every Any Fit rule, so the separation the theory predicts
  // only shows on fragmentation-prone inputs: sliver cascades where
  // non-clairvoyant policies strand near-empty bins for mu time units.
  std::cout << "\n=== E1b: fragmentation-prone workload (sliver cascade, k=24"
               " phases) ===\n";
  std::vector<double> trapMus;
  RunManySpec trapGrid;
  trapGrid.threads = threads;
  trapGrid.seeds = {0};  // the trap is deterministic; one seed
  for (const auto& [name, spec] : policyAxis) {
    trapGrid.policies.emplace_back(spec);
  }
  for (double mu : mus) {
    if (mu < 2) continue;
    trapMus.push_back(mu);
    trapGrid.instances.push_back(
        [mu](std::uint64_t) { return firstFitSliverTrap(24, mu); });
  }
  std::vector<RunResult> trapResults = runMany(trapGrid);

  Table trap([&] {
    std::vector<std::string> header = {"mu"};
    for (const auto& [name, spec] : policyAxis) header.push_back(name);
    return header;
  }());
  for (std::size_t m = 0; m < trapMus.size(); ++m) {
    std::vector<std::string> row = {Table::num(trapMus[m], 0)};
    for (std::size_t p = 0; p < numPolicies; ++p) {
      row.push_back(Table::num(trapResults[m * numPolicies + p].ratio, 3));
    }
    trap.addRow(row);
  }
  if (flags.has("csv")) {
    trap.printCsv(std::cout);
  } else {
    trap.print(std::cout);
  }
  std::cout << "\nExpected shape: FirstFit/BestFit/NextFit grow linearly "
               "with mu (stranded bins), the clairvoyant strategies stay "
               "flat — the simulation analogue of Figure 8.\n";

  telemetry::BenchReport report("online_empirical");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.setParam("threads", static_cast<std::size_t>(threads));
  report.setParam("grid_seconds", elapsed);
  report.addTable("usage_over_lb3_vs_mu", table);
  report.addTable("sliver_trap_vs_mu", trap);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
