// Experiment E1: empirical usage/LB3 of every online policy as a function
// of the duration ratio mu, on seeded random workloads.
//
// Expected shape (the simulation counterpart of Figure 8): the
// classification strategies track plain First Fit for small mu and beat it
// increasingly as mu grows; Best Fit is erratic; the sliver-style
// degradation of non-clairvoyant policies shows in the tail columns.
//
// Flags: --items <int> (default 2000), --seeds <int> (default 5),
//        --csv.
#include <iostream>

#include "analysis/empirical.hpp"
#include "telemetry/bench_report.hpp"
#include "online/any_fit.hpp"
#include "online/classify_departure.hpp"
#include "online/classify_duration.hpp"
#include "online/combined.hpp"
#include "online/departure_fit.hpp"
#include "online/hybrid_ff.hpp"
#include "util/ascii_chart.hpp"
#include "util/flags.hpp"
#include "core/lower_bounds.hpp"
#include "sim/simulator.hpp"
#include "util/table.hpp"
#include "workload/adversarial.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace cdbp;
  Flags flags = Flags::strictOrDie(argc, argv, {"items", "seeds", "csv", "json"});
  std::size_t items = static_cast<std::size_t>(flags.getInt("items", 2000));
  std::size_t numSeeds = static_cast<std::size_t>(flags.getInt("seeds", 5));

  std::vector<double> mus = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0};
  std::vector<std::uint64_t> seeds;
  for (std::size_t s = 0; s < numSeeds; ++s) seeds.push_back(1000 + s);

  std::cout << "=== E1: empirical usage / LB3 vs mu (" << items
            << " items, mean over " << numSeeds << " seeds) ===\n";

  // Policy factories, keyed by a stable display name.
  struct Entry {
    std::string name;
    std::function<PolicyPtr(double delta, double mu)> make;
    std::vector<double> series;
  };
  std::vector<Entry> entries;
  entries.push_back({"FirstFit", [](double, double) -> PolicyPtr {
                       return std::make_unique<FirstFitPolicy>();
                     },
                     {}});
  entries.push_back({"BestFit", [](double, double) -> PolicyPtr {
                       return std::make_unique<BestFitPolicy>();
                     },
                     {}});
  entries.push_back({"NextFit", [](double, double) -> PolicyPtr {
                       return std::make_unique<NextFitPolicy>();
                     },
                     {}});
  entries.push_back({"HybridFF", [](double, double) -> PolicyPtr {
                       return std::make_unique<HybridFirstFitPolicy>();
                     },
                     {}});
  entries.push_back({"CDT-FF", [](double delta, double mu) -> PolicyPtr {
                       return std::make_unique<ClassifyByDepartureFF>(
                           ClassifyByDepartureFF::withKnownDurations(delta, mu));
                     },
                     {}});
  entries.push_back({"CD-FF", [](double delta, double mu) -> PolicyPtr {
                       return std::make_unique<ClassifyByDurationFF>(
                           ClassifyByDurationFF::withKnownDurations(delta, mu));
                     },
                     {}});
  entries.push_back({"Combined-FF", [](double delta, double mu) -> PolicyPtr {
                       return std::make_unique<CombinedClassifyFF>(
                           CombinedClassifyFF::withKnownDurations(delta, mu));
                     },
                     {}});
  entries.push_back({"MinExtension", [](double, double) -> PolicyPtr {
                       return std::make_unique<MinExtensionPolicy>();
                     },
                     {}});
  entries.push_back({"DepAlignedBF", [](double, double) -> PolicyPtr {
                       return std::make_unique<DepartureAlignedBestFit>();
                     },
                     {}});

  Table table([&] {
    std::vector<std::string> header = {"mu"};
    for (const Entry& e : entries) header.push_back(e.name);
    return header;
  }());

  for (double mu : mus) {
    WorkloadSpec spec;
    spec.numItems = items;
    spec.mu = mu;
    // Keep the instantaneous load comparable across mu: scale the arrival
    // rate down as durations stretch.
    spec.arrivalRate = 16.0 / (1.0 + mu / 8.0);
    // A representative instance fixes delta/mu for the clairvoyant
    // policies (known-durations setting).
    Instance probe = generateWorkload(spec, seeds[0]);
    double delta = probe.minDuration();
    double realizedMu = probe.durationRatio();

    std::vector<std::string> row = {Table::num(mu, 0)};
    for (Entry& entry : entries) {
      RatioSummary summary = sweepPolicy(
          seeds, [&](std::uint64_t seed) { return generateWorkload(spec, seed); },
          [&] { return entry.make(delta, realizedMu); });
      row.push_back(Table::num(summary.ratios.mean(), 3));
      entry.series.push_back(summary.ratios.mean());
    }
    table.addRow(row);
  }

  if (flags.has("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }

  AsciiChart chart(72, 20);
  chart.setLogX(true);
  for (const Entry& e : entries) {
    if (e.name == "BestFit" || e.name == "NextFit") continue;  // declutter
    chart.addSeries(e.name, mus, e.series);
  }
  std::cout << '\n';
  chart.print(std::cout);
  std::cout << "\nNote: ratios are against LB3 <= OPT_total, i.e. upper "
               "bounds on the true competitive performance.\n";

  // Part 2: the empirical counterpart of Figure 8. Random Poisson loads are
  // benign for every Any Fit rule, so the separation the theory predicts
  // only shows on fragmentation-prone inputs: sliver cascades where
  // non-clairvoyant policies strand near-empty bins for mu time units.
  std::cout << "\n=== E1b: fragmentation-prone workload (sliver cascade, k=24"
               " phases) ===\n";
  Table trap([&] {
    std::vector<std::string> header = {"mu"};
    for (const Entry& e : entries) header.push_back(e.name);
    return header;
  }());
  std::vector<std::vector<double>> trapSeries(entries.size());
  for (double mu : mus) {
    if (mu < 2) continue;
    Instance inst = firstFitSliverTrap(24, mu);
    double delta = inst.minDuration();
    double realizedMu = inst.durationRatio();
    double lb3 = lowerBounds(inst).ceilIntegral;
    std::vector<std::string> row = {Table::num(mu, 0)};
    for (std::size_t e = 0; e < entries.size(); ++e) {
      PolicyPtr policy = entries[e].make(delta, realizedMu);
      SimResult r = simulateOnline(inst, *policy);
      double ratio = r.totalUsage / lb3;
      row.push_back(Table::num(ratio, 3));
      trapSeries[e].push_back(ratio);
    }
    trap.addRow(row);
  }
  if (flags.has("csv")) {
    trap.printCsv(std::cout);
  } else {
    trap.print(std::cout);
  }
  std::cout << "\nExpected shape: FirstFit/BestFit/NextFit grow linearly "
               "with mu (stranded bins), the clairvoyant strategies stay "
               "flat — the simulation analogue of Figure 8.\n";

  telemetry::BenchReport report("online_empirical");
  report.setParam("items", items);
  report.setParam("seeds", numSeeds);
  report.addTable("usage_over_lb3_vs_mu", table);
  report.addTable("sliver_trap_vs_mu", trap);
  report.writeIfRequested(flags, std::cout);
  return 0;
}
